//! The scheduling-sweep runner behind Figs. 5–8.

use mems_os::sched::Algorithm;
use storage_sim::{Driver, SimReport, StorageDevice, Workload};

/// One (algorithm, arrival-rate) measurement.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Algorithm label (paper name).
    pub algorithm: &'static str,
    /// Arrival rate in requests/second (or scale factor for traces).
    pub rate: f64,
    /// Mean response time, milliseconds.
    pub mean_response_ms: f64,
    /// Squared coefficient of variation of response time.
    pub cv2: f64,
    /// Mean service time, milliseconds.
    pub mean_service_ms: f64,
    /// Largest queue depth observed.
    pub max_queue: usize,
}

/// Runs one workload through one scheduler and device.
pub fn run_one<W, D>(workload: W, algorithm: Algorithm, device: D, warmup: u64) -> SimReport
where
    W: Workload,
    D: StorageDevice,
{
    // `Driver` is generic over the scheduler type, so route through the
    // boxed trait object the Algorithm factory returns.
    let scheduler = algorithm.build();
    let mut driver = Driver::new(workload, scheduler, device).warmup_requests(warmup);
    driver.run()
}

/// Sweeps every algorithm over a set of rates. `make_workload(rate)` and
/// `make_device()` produce a fresh workload/device per run so runs are
/// independent and deterministic.
pub fn sched_sweep<W, D>(
    rates: &[f64],
    algorithms: &[Algorithm],
    mut make_workload: impl FnMut(f64) -> W,
    mut make_device: impl FnMut() -> D,
    warmup: u64,
) -> Vec<SweepPoint>
where
    W: Workload,
    D: StorageDevice,
{
    let mut points = Vec::with_capacity(rates.len() * algorithms.len());
    for &alg in algorithms {
        for &rate in rates {
            let report = run_one(make_workload(rate), alg, make_device(), warmup);
            points.push(SweepPoint {
                algorithm: alg.label(),
                rate,
                mean_response_ms: report.response.mean_ms(),
                cv2: report.response.sq_coeff_var(),
                mean_service_ms: report.mean_service_ms(),
                max_queue: report.max_queue_depth,
            });
        }
    }
    points
}

/// A measurement replicated over several workload seeds.
#[derive(Debug, Clone)]
pub struct ReplicatedPoint {
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Arrival rate (requests/second).
    pub rate: f64,
    /// Mean of the per-seed mean response times, milliseconds.
    pub mean_ms: f64,
    /// Standard error of that mean, milliseconds.
    pub stderr_ms: f64,
    /// Number of replicas.
    pub replicas: usize,
}

impl ReplicatedPoint {
    /// Half-width of the ~95% confidence interval (1.96 standard errors).
    pub fn ci95_ms(&self) -> f64 {
        1.96 * self.stderr_ms
    }
}

/// Runs one (algorithm, rate) cell over several seeds and reports the
/// mean response time with its standard error — for checking that a
/// figure's conclusions aren't artifacts of a single workload draw.
pub fn replicated_point<W, D>(
    rate: f64,
    algorithm: Algorithm,
    seeds: &[u64],
    mut make_workload: impl FnMut(f64, u64) -> W,
    mut make_device: impl FnMut() -> D,
    warmup: u64,
) -> ReplicatedPoint
where
    W: Workload,
    D: StorageDevice,
{
    assert!(!seeds.is_empty(), "need at least one replica");
    let means: Vec<f64> = seeds
        .iter()
        .map(|&seed| {
            run_one(make_workload(rate, seed), algorithm, make_device(), warmup)
                .response
                .mean_ms()
        })
        .collect();
    let n = means.len() as f64;
    let mean = means.iter().sum::<f64>() / n;
    let stderr = if means.len() > 1 {
        let var = means.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (var / n).sqrt()
    } else {
        0.0
    };
    ReplicatedPoint {
        algorithm: algorithm.label(),
        rate,
        mean_ms: mean,
        stderr_ms: stderr,
        replicas: seeds.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_device::{MemsDevice, MemsParams};
    use storage_trace::RandomWorkload;

    #[test]
    fn replication_reports_tight_intervals_at_low_load() {
        let point = replicated_point(
            300.0,
            Algorithm::Clook,
            &[1, 2, 3, 4, 5],
            |rate, seed| RandomWorkload::paper(6_750_000, rate, 1500, seed),
            || MemsDevice::new(MemsParams::default()),
            100,
        );
        assert_eq!(point.replicas, 5);
        assert!(point.mean_ms > 0.5);
        // At 300 req/s the system is far from saturation: seeds agree to
        // within a few percent.
        assert!(
            point.ci95_ms() < 0.1 * point.mean_ms,
            "ci {} vs mean {}",
            point.ci95_ms(),
            point.mean_ms
        );
    }

    #[test]
    fn single_replica_has_zero_stderr() {
        let point = replicated_point(
            200.0,
            Algorithm::Fcfs,
            &[7],
            |rate, seed| RandomWorkload::paper(6_750_000, rate, 300, seed),
            || MemsDevice::new(MemsParams::default()),
            0,
        );
        assert_eq!(point.stderr_ms, 0.0);
    }

    #[test]
    fn sweep_produces_a_point_per_cell() {
        let rates = [100.0, 500.0];
        let points = sched_sweep(
            &rates,
            &Algorithm::ALL,
            |rate| RandomWorkload::paper(6_750_000, rate, 300, 42),
            || MemsDevice::new(MemsParams::default()),
            0,
        );
        assert_eq!(points.len(), 8);
        assert!(points.iter().all(|p| p.mean_response_ms > 0.0));
    }

    #[test]
    fn higher_load_increases_response_time() {
        let points = sched_sweep(
            &[200.0, 1800.0],
            &[Algorithm::Fcfs],
            |rate| RandomWorkload::paper(6_750_000, rate, 2000, 7),
            || MemsDevice::new(MemsParams::default()),
            0,
        );
        assert!(points[1].mean_response_ms > points[0].mean_response_ms);
    }
}
