//! The scheduling-sweep runner behind Figs. 5–8.
//!
//! Every sweep cell (one algorithm at one arrival rate, or one seed of a
//! replicated point) owns a fresh workload, scheduler, and device, so the
//! cells are embarrassingly parallel: they run on `std::thread::scope`
//! workers pulling from a shared atomic work index. Each worker collects
//! its `(cell, result)` pairs privately — no lock is taken per cell — and
//! the pairs are merged back into job order afterwards, so the output
//! (and hence every downstream table, CSV, and statistic) is identical to
//! the serial runner's.
//!
//! Cells that share MEMS parameters can also share one immutable
//! [`SeekSurface`] through [`shared_seek_surface`]: the surface is solved
//! once, in parallel, and every cell's device borrows it via `Arc` — the
//! per-cell cost drops from re-memoizing thousands of seeks to a
//! read-only table lookup.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;

use mems_device::{MemsDevice, MemsParams, SeekSurface};
use mems_os::sched::{Algorithm, ClookScheduler, SptfScheduler, SstfScheduler};
use storage_sim::{Driver, FifoScheduler, Scheduler, SimReport, StorageDevice, Workload};

/// One (algorithm, arrival-rate) measurement.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Algorithm label (paper name).
    pub algorithm: &'static str,
    /// Arrival rate in requests/second (or scale factor for traces).
    pub rate: f64,
    /// Mean response time, milliseconds.
    pub mean_response_ms: f64,
    /// Squared coefficient of variation of response time.
    pub cv2: f64,
    /// Mean service time, milliseconds.
    pub mean_service_ms: f64,
    /// Largest queue depth observed.
    pub max_queue: usize,
}

/// Runs one workload through one scheduler and device.
pub fn run_one<W, D>(workload: W, algorithm: Algorithm, device: D, warmup: u64) -> SimReport
where
    W: Workload,
    D: StorageDevice,
{
    fn go<W: Workload, S: Scheduler, D: StorageDevice>(
        workload: W,
        scheduler: S,
        device: D,
        warmup: u64,
    ) -> SimReport {
        Driver::new(workload, scheduler, device)
            .warmup_requests(warmup)
            .run()
    }
    // Dispatch on the concrete scheduler type here, once, so the driver's
    // event loop runs monomorphized — no `Box<dyn Scheduler>` vtable hop
    // on every pick of the hottest path.
    match algorithm {
        Algorithm::Fcfs => go(workload, FifoScheduler::new(), device, warmup),
        Algorithm::SstfLbn => go(workload, SstfScheduler::new(), device, warmup),
        Algorithm::Clook => go(workload, ClookScheduler::new(), device, warmup),
        Algorithm::Sptf => go(workload, SptfScheduler::new(), device, warmup),
    }
}

/// Runs `n` independent jobs on scoped worker threads (one per available
/// core, capped by the job count) and returns their results in job order —
/// the scheduling of workers onto jobs can never affect the output.
fn run_cells<T, F>(n: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    run_cells_on(threads, n, job)
}

/// [`run_cells`] with an explicit worker count (tested directly so the
/// threaded path is covered even on single-core machines).
fn run_cells_on<T, F>(threads: usize, n: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.min(n);
    if threads <= 1 {
        return (0..n).map(job).collect();
    }
    // Workers pull cells off a shared atomic index but accumulate their
    // (index, result) pairs privately, so result collection is lock-free:
    // the merge happens once, after the scope joins, by a stable sort on
    // the cell index.
    let next = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, T)>> = Vec::with_capacity(threads);
    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, job(i)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            parts.push(handle.join().expect("no poisoned cell"));
        }
    });
    let mut merged: Vec<(usize, T)> = parts.into_iter().flatten().collect();
    merged.sort_by_key(|&(i, _)| i);
    assert_eq!(merged.len(), n, "every cell ran exactly once");
    merged.into_iter().map(|(_, result)| result).collect()
}

/// One registry entry: the parameter set and the surface solved for it.
type SurfaceEntry = (MemsParams, Arc<SeekSurface>);

/// Process-wide registry of immutable seek surfaces, keyed by the MEMS
/// parameter set that produced them. `MemsParams` is not hashable (it
/// holds floats), so lookup is a linear scan — the registry holds a
/// handful of parameter sets at most.
static SURFACE_REGISTRY: OnceLock<Mutex<Vec<SurfaceEntry>>> = OnceLock::new();

/// Returns the process-shared [`SeekSurface`] for `params`, solving it
/// (once, across all cores) on first request. Subsequent calls — from any
/// sweep cell on any thread — get an [`Arc`] clone of the same read-only
/// tables. Returns `None` when the surface would exceed its size guard
/// ([`SeekSurface::MAX_X_MATRIX_BYTES`]); callers fall back to the
/// per-device memo table.
///
/// The registry lock is held across the build on purpose: two cells
/// racing for the same parameters must not both pay the full-matrix
/// solve (≈50 MB for the paper device).
pub fn shared_seek_surface(params: &MemsParams) -> Option<Arc<SeekSurface>> {
    let registry = SURFACE_REGISTRY.get_or_init(|| Mutex::new(Vec::new()));
    let mut entries = registry.lock().expect("surface registry poisoned");
    if let Some((_, surface)) = entries.iter().find(|(p, _)| p == params) {
        return Some(Arc::clone(surface));
    }
    let surface = Arc::new(SeekSurface::build(params)?);
    entries.push((params.clone(), Arc::clone(&surface)));
    Some(surface)
}

/// A MEMS device whose positioning queries hit the process-shared
/// [`SeekSurface`] for `params` — the fastest query path. Falls back to
/// the memoizing seek table when the surface exceeds its size guard, so
/// the device is always usable and always bit-identical to the direct
/// solver.
pub fn surfaced_mems_device(params: &MemsParams) -> MemsDevice {
    let dev = MemsDevice::new(params.clone()).with_seek_table(true);
    match shared_seek_surface(params) {
        Some(surface) => dev.with_seek_surface(surface),
        None => dev,
    }
}

/// Sweeps every algorithm over a set of rates, running the cells in
/// parallel. `make_workload(rate)` and `make_device()` produce a fresh
/// workload/device per cell so runs are independent and deterministic;
/// the returned points are in the serial order (algorithm-major).
pub fn sched_sweep<W, D>(
    rates: &[f64],
    algorithms: &[Algorithm],
    make_workload: impl Fn(f64) -> W + Sync,
    make_device: impl Fn() -> D + Sync,
    warmup: u64,
) -> Vec<SweepPoint>
where
    W: Workload,
    D: StorageDevice,
{
    let cells: Vec<(Algorithm, f64)> = algorithms
        .iter()
        .flat_map(|&alg| rates.iter().map(move |&rate| (alg, rate)))
        .collect();
    run_cells(cells.len(), |i| {
        let (alg, rate) = cells[i];
        let report = run_one(make_workload(rate), alg, make_device(), warmup);
        SweepPoint {
            algorithm: alg.label(),
            rate,
            mean_response_ms: report.response.mean_ms(),
            cv2: report.response.sq_coeff_var(),
            mean_service_ms: report.mean_service_ms(),
            max_queue: report.max_queue_depth,
        }
    })
}

/// A measurement replicated over several workload seeds.
#[derive(Debug, Clone)]
pub struct ReplicatedPoint {
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Arrival rate (requests/second).
    pub rate: f64,
    /// Mean of the per-seed mean response times, milliseconds.
    pub mean_ms: f64,
    /// Standard error of that mean, milliseconds.
    pub stderr_ms: f64,
    /// Number of replicas.
    pub replicas: usize,
}

impl ReplicatedPoint {
    /// Half-width of the ~95% confidence interval (1.96 standard errors).
    pub fn ci95_ms(&self) -> f64 {
        1.96 * self.stderr_ms
    }
}

/// Runs one (algorithm, rate) cell over several seeds — in parallel, one
/// replica per worker — and reports the mean response time with its
/// standard error, for checking that a figure's conclusions aren't
/// artifacts of a single workload draw. Per-seed means are reduced in
/// seed order, so the result is bitwise identical to the serial runner's.
pub fn replicated_point<W, D>(
    rate: f64,
    algorithm: Algorithm,
    seeds: &[u64],
    make_workload: impl Fn(f64, u64) -> W + Sync,
    make_device: impl Fn() -> D + Sync,
    warmup: u64,
) -> ReplicatedPoint
where
    W: Workload,
    D: StorageDevice,
{
    assert!(!seeds.is_empty(), "need at least one replica");
    let means: Vec<f64> = run_cells(seeds.len(), |i| {
        run_one(
            make_workload(rate, seeds[i]),
            algorithm,
            make_device(),
            warmup,
        )
        .response
        .mean_ms()
    });
    let n = means.len() as f64;
    let mean = means.iter().sum::<f64>() / n;
    let stderr = if means.len() > 1 {
        let var = means.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (var / n).sqrt()
    } else {
        0.0
    };
    ReplicatedPoint {
        algorithm: algorithm.label(),
        rate,
        mean_ms: mean,
        stderr_ms: stderr,
        replicas: seeds.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_device::{MemsDevice, MemsParams};
    use storage_trace::RandomWorkload;

    #[test]
    fn replication_reports_tight_intervals_at_low_load() {
        let point = replicated_point(
            300.0,
            Algorithm::Clook,
            &[1, 2, 3, 4, 5],
            |rate, seed| RandomWorkload::paper(6_750_000, rate, 1500, seed),
            || MemsDevice::new(MemsParams::default()),
            100,
        );
        assert_eq!(point.replicas, 5);
        assert!(point.mean_ms > 0.5);
        // At 300 req/s the system is far from saturation: seeds agree to
        // within a few percent.
        assert!(
            point.ci95_ms() < 0.1 * point.mean_ms,
            "ci {} vs mean {}",
            point.ci95_ms(),
            point.mean_ms
        );
    }

    #[test]
    fn single_replica_has_zero_stderr() {
        let point = replicated_point(
            200.0,
            Algorithm::Fcfs,
            &[7],
            |rate, seed| RandomWorkload::paper(6_750_000, rate, 300, seed),
            || MemsDevice::new(MemsParams::default()),
            0,
        );
        assert_eq!(point.stderr_ms, 0.0);
    }

    #[test]
    fn sweep_produces_a_point_per_cell() {
        let rates = [100.0, 500.0];
        let points = sched_sweep(
            &rates,
            &Algorithm::ALL,
            |rate| RandomWorkload::paper(6_750_000, rate, 300, 42),
            || MemsDevice::new(MemsParams::default()),
            0,
        );
        assert_eq!(points.len(), 8);
        assert!(points.iter().all(|p| p.mean_response_ms > 0.0));
        // Output is algorithm-major regardless of worker scheduling.
        let labels: Vec<&str> = points.iter().map(|p| p.algorithm).collect();
        let expected: Vec<&str> = Algorithm::ALL
            .iter()
            .flat_map(|a| std::iter::repeat_n(a.label(), rates.len()))
            .collect();
        assert_eq!(labels, expected);
    }

    #[test]
    fn parallel_sweep_matches_serial_run_one() {
        // The parallel runner must produce the same numbers as composing
        // run_one cells by hand.
        let rates = [400.0, 1200.0];
        let points = sched_sweep(
            &rates,
            &[Algorithm::Sptf],
            |rate| RandomWorkload::paper(6_750_000, rate, 400, 11),
            || MemsDevice::new(MemsParams::default()),
            50,
        );
        for (i, &rate) in rates.iter().enumerate() {
            let report = run_one(
                RandomWorkload::paper(6_750_000, rate, 400, 11),
                Algorithm::Sptf,
                MemsDevice::new(MemsParams::default()),
                50,
            );
            assert_eq!(points[i].mean_response_ms, report.response.mean_ms());
            assert_eq!(points[i].max_queue, report.max_queue_depth);
        }
    }

    #[test]
    fn threaded_cells_return_in_job_order() {
        // Force the scoped-thread path regardless of host parallelism and
        // check results land in their slots in job order.
        let results = super::run_cells_on(4, 37, |i| i * i);
        let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
        assert_eq!(results, expected);
    }

    #[test]
    fn threaded_sweep_cells_match_serial_cells() {
        let job = |i: usize| {
            let rate = 300.0 + 400.0 * i as f64;
            run_one(
                RandomWorkload::paper(6_750_000, rate, 250, 5),
                Algorithm::Sptf,
                MemsDevice::new(MemsParams::default()),
                25,
            )
            .response
            .mean_ms()
        };
        let serial = super::run_cells_on(1, 4, job);
        let threaded = super::run_cells_on(4, 4, job);
        assert_eq!(serial, threaded);
    }

    #[test]
    fn higher_load_increases_response_time() {
        let points = sched_sweep(
            &[200.0, 1800.0],
            &[Algorithm::Fcfs],
            |rate| RandomWorkload::paper(6_750_000, rate, 2000, 7),
            || MemsDevice::new(MemsParams::default()),
            0,
        );
        assert!(points[1].mean_response_ms > points[0].mean_response_ms);
    }
}
