//! Telemetry report: windowed time-series metrics and spatial media
//! heatmaps for four representative cells, plus a wall-clock self-profile
//! of the simulator.
//!
//! Cells:
//!
//! 1. `mems_sptf` — the Fig. 6 SPTF/MEMS random cell (1000 req/s, seed
//!    `0x5EED_0006`): the healthy-device timeline and media heatmap.
//! 2. `mems_fault_ramp` — the same device behind `DegradedDevice` while 6%
//!    of tips fail in the first half second: the timeline shows the
//!    fault_recovery utilization and fault-rate ramp of §6.
//! 3. `disk_clook` — C-LOOK on the Atlas 10K baseline (100 req/s): the
//!    per-zone heatmap counterpart.
//! 4. `mems_adaptive` — the adaptive-placement wrapper on a skewed bursty
//!    stream: the timeline's `util_background_wait` column shows when
//!    migration traffic delays foreground arrivals, and the wrapper's
//!    migration ledger lands in `target/telemetry_summary.json`.
//!
//! Outputs `results/telemetry_timeline.csv` and
//! `results/telemetry_heatmap.csv` — both purely sim-time derived, so they
//! are committed goldens byte-gated by the CI `figures` job — plus
//! `target/telemetry_profile.json` and `target/telemetry_summary.json`;
//! the profile contains *wall-clock* numbers (events/sec, per-component
//! shares, seek-cache hit rate) and is therefore untracked and
//! informational only.
//!
//! Two gates make the bin a regression check (exit non-zero on failure):
//! the telemetry window totals must reconcile with the driver's report,
//! and the heatmaps must reconcile exactly with the serviced request
//! stream (Σ region accesses == Σ stripes touched, Σ tip-group sectors ==
//! Σ request sectors). The profiled rerun must also reproduce the
//! telemetry run's simulated results bit for bit — wall-clock probes must
//! never perturb the simulation.

use std::process::ExitCode;

use atlas_disk::{DiskDevice, DiskParams, ZoneHeatmap};
use mems_bench::{surfaced_mems_device, write_csv};
use mems_device::{MediaHeatmap, MemsDevice, MemsParams};
use mems_os::fault::DegradedDevice;
use mems_os::placement::{AdaptiveDevice, PlacementConfig};
use mems_os::sched::{ClookScheduler, SptfScheduler};
use storage_sim::{
    Driver, FaultClock, Profiler, RingTracer, SimReport, SimTime, Telemetry, TraceEvent, TracerPair,
};
use storage_trace::{RandomWorkload, ZipfWorkload};

const MEMS_SEED: u64 = 0x5EED_0006;
const MEMS_RATE: f64 = 1000.0;
const MEMS_REQUESTS: u64 = 2_000;
const FAULT_SEED: u64 = 0x5EED_0063;
const FAULT_WORKLOAD_SEED: u64 = 42;
const FAILED_TIP_FRAC: f64 = 0.06;
const FAIL_WINDOW_S: f64 = 0.5;
const DISK_SEED: u64 = 0x5EED_0005;
const DISK_RATE: f64 = 100.0;
const DISK_REQUESTS: u64 = 600;
/// Telemetry window width, seconds: 100 ms buckets over the ~2 s cells.
const WINDOW_S: f64 = 0.1;
const MAX_WINDOWS: usize = 256;
/// MEMS region grid: 10 cylinder buckets × 9 row buckets.
const GRID_X: usize = 10;
const GRID_Y: usize = 9;
/// Adaptive cell: Zipf(0.99) over 512 KB placement blocks in ON/OFF
/// bursts — the idle-window regime migration is built for (same tuning
/// as `placement_sweep`).
const ADAPTIVE_SEED: u64 = 42;
const ADAPTIVE_RATE: f64 = 500.0;
const ADAPTIVE_REQUESTS: u64 = 20_000;
const ADAPTIVE_BLOCK_SECTORS: u32 = 1024;
const ADAPTIVE_BURST_LEN: u64 = 50;
const ADAPTIVE_BURST_IDLE: f64 = 0.060;

fn adaptive_placement() -> PlacementConfig {
    PlacementConfig {
        block_sectors: ADAPTIVE_BLOCK_SECTORS,
        half_life: 1.0,
        idle_window: 4e-3,
        max_swaps_per_window: 4,
        hysteresis: 1.5,
        min_rank_gain: 64,
        min_heat: 4.0,
        migrate: true,
    }
}

fn mems_workload(seed: u64) -> RandomWorkload {
    let capacity = MemsParams::default().geometry().total_sectors();
    RandomWorkload::paper(capacity, MEMS_RATE, MEMS_REQUESTS, seed)
}

type Recorder = TracerPair<RingTracer, Telemetry>;

fn recorder(requests: u64) -> Recorder {
    let ring = usize::try_from(requests).expect("request count fits usize") * 4 + 64;
    TracerPair::new(RingTracer::new(ring), Telemetry::new(WINDOW_S, MAX_WINDOWS))
}

/// Replays the ring's `Service` events into a MEMS heatmap.
fn mems_heatmap(ring: &RingTracer) -> MediaHeatmap {
    MediaHeatmap::from_services(
        &MemsParams::default(),
        GRID_X,
        GRID_Y,
        ring.events().filter_map(|ev| match *ev {
            TraceEvent::Service {
                lbn,
                sectors,
                energy_positioning_j,
                energy_transfer_j,
                energy_overhead_j,
                ..
            } => Some((
                lbn,
                sectors,
                energy_positioning_j + energy_transfer_j + energy_overhead_j,
            )),
            _ => None,
        }),
    )
}

fn check(ok: bool, failures: &mut u64, what: &str) {
    if !ok {
        eprintln!("FAIL: {what}");
        *failures += 1;
    }
}

/// Telemetry window totals must reconcile with the driver's own report.
fn check_timeline(cell: &str, tel: &Telemetry, report: &SimReport, failures: &mut u64) {
    let completions: u64 = tel.windows().iter().map(|w| w.completions).sum();
    let arrivals: u64 = tel.windows().iter().map(|w| w.arrivals).sum();
    let faults: u64 = tel.windows().iter().map(|w| w.faults).sum();
    check(
        completions == report.completed,
        failures,
        &format!(
            "{cell}: telemetry completions {completions} != report {}",
            report.completed
        ),
    );
    check(
        arrivals == report.completed,
        failures,
        &format!(
            "{cell}: telemetry arrivals {arrivals} != {}",
            report.completed
        ),
    );
    check(
        faults == report.fault_events,
        failures,
        &format!(
            "{cell}: telemetry faults {faults} != report {}",
            report.fault_events
        ),
    );
    let busy: f64 = tel.windows().iter().map(|w| w.phase.total()).sum();
    check(
        (busy - report.busy_secs).abs() < 1e-9,
        failures,
        &format!(
            "{cell}: telemetry phase total {busy} != busy {}",
            report.busy_secs
        ),
    );
}

fn main() -> ExitCode {
    let mut failures = 0u64;
    let mut timeline = String::from(Telemetry::csv_header());
    timeline.push('\n');
    let mut heatmap_csv = String::from("cell,kind,i,j,accesses,sectors,dwell_s,energy_j\n");

    // Cell 1: healthy SPTF/MEMS (the Fig. 6 anchor cell).
    let mut driver = Driver::new(
        mems_workload(MEMS_SEED),
        SptfScheduler::new(),
        MemsDevice::new(MemsParams::default()),
    )
    .with_tracer(recorder(MEMS_REQUESTS));
    let sptf_report = driver.run();
    let pair = driver.tracer();
    check_timeline("mems_sptf", &pair.second, &sptf_report, &mut failures);
    timeline.push_str(&pair.second.csv_rows("mems_sptf"));

    let map = mems_heatmap(&pair.first);
    check(
        map.region_access_total() == map.total_stripes(),
        &mut failures,
        "mems_sptf: region accesses do not reconcile with stripes",
    );
    check(
        map.tip_sector_total() == map.total_sectors(),
        &mut failures,
        "mems_sptf: tip-group sectors do not reconcile with request sectors",
    );
    check(
        map.requests() == sptf_report.completed,
        &mut failures,
        "mems_sptf: heatmap requests != completions",
    );
    heatmap_csv.push_str(&map.csv_rows("mems_sptf"));
    println!(
        "mems_sptf:       {} windows ({} coarsenings), {} stripes over {} requests",
        pair.second.windows().len(),
        pair.second.coarsenings(),
        map.total_stripes(),
        map.requests()
    );

    // Cell 2: 6% of tips fail in the first 0.5 s behind DegradedDevice.
    let tips = MemsParams::default().tips;
    let n_failed = (FAILED_TIP_FRAC * f64::from(tips)).round() as usize;
    let clock = FaultClock::tip_failures(
        FAULT_SEED,
        n_failed,
        tips,
        SimTime::from_secs(FAIL_WINDOW_S),
    );
    let device =
        DegradedDevice::mems(MemsDevice::new(MemsParams::default()), FAULT_SEED).with_spare_tips(8);
    let mut driver = Driver::new(
        mems_workload(FAULT_WORKLOAD_SEED),
        SptfScheduler::new(),
        device,
    )
    .with_faults(clock)
    .with_tracer(recorder(MEMS_REQUESTS));
    let ramp_report = driver.run();
    let pair = driver.tracer();
    check_timeline("mems_fault_ramp", &pair.second, &ramp_report, &mut failures);
    check(
        ramp_report.fault_events == n_failed as u64,
        &mut failures,
        "mems_fault_ramp: not every scheduled tip failure was delivered",
    );
    let recovery: f64 = pair
        .second
        .windows()
        .iter()
        .map(|w| w.phase.fault_recovery)
        .sum();
    check(
        recovery > 0.0,
        &mut failures,
        "mems_fault_ramp: no fault_recovery time in any window",
    );
    timeline.push_str(&pair.second.csv_rows("mems_fault_ramp"));
    println!(
        "mems_fault_ramp: {} tip failures, {:.1} ms recovery billed, {} windows",
        ramp_report.fault_events,
        recovery * 1e3,
        pair.second.windows().len()
    );

    // Cell 3: C-LOOK on the Atlas 10K baseline, for the zone heatmap.
    let params = DiskParams::quantum_atlas_10k();
    let capacity = params.total_sectors();
    let mut driver = Driver::new(
        RandomWorkload::paper(capacity, DISK_RATE, DISK_REQUESTS, DISK_SEED),
        ClookScheduler::new(),
        DiskDevice::new(params.clone()),
    )
    .with_tracer(recorder(DISK_REQUESTS));
    let disk_report = driver.run();
    let pair = driver.tracer();
    check_timeline("disk_clook", &pair.second, &disk_report, &mut failures);
    timeline.push_str(&pair.second.csv_rows("disk_clook"));

    let mut zones = ZoneHeatmap::new(&params);
    for ev in pair.first.events() {
        if let TraceEvent::Service { lbn, sectors, .. } = *ev {
            zones.record(lbn, sectors);
        }
    }
    check(
        zones.requests() == disk_report.completed,
        &mut failures,
        "disk_clook: heatmap requests != completions",
    );
    check(
        zones.zone_sector_total() == zones.total_sectors(),
        &mut failures,
        "disk_clook: zone sectors do not reconcile",
    );
    heatmap_csv.push_str(&zones.csv_rows("disk_clook"));
    println!(
        "disk_clook:      {} requests over {} zones",
        zones.requests(),
        zones.zones()
    );

    // Cell 4: adaptive placement under a skewed bursty stream. Migration
    // chunk I/O is billed to foreground arrivals as background_wait, so
    // the timeline's util_background_wait column lights up exactly when
    // the placement layer is moving blocks.
    let capacity = MemsParams::default().geometry().total_sectors();
    let mut driver = Driver::new(
        ZipfWorkload::new(
            capacity,
            ADAPTIVE_BLOCK_SECTORS,
            0.99,
            ADAPTIVE_RATE,
            ADAPTIVE_REQUESTS,
            ADAPTIVE_SEED,
        )
        .bursty(ADAPTIVE_BURST_LEN, ADAPTIVE_BURST_IDLE),
        SptfScheduler::new(),
        AdaptiveDevice::new(
            surfaced_mems_device(&MemsParams::default()),
            adaptive_placement(),
        ),
    )
    .with_tracer(recorder(ADAPTIVE_REQUESTS));
    let adaptive_report = driver.run();
    let pair = driver.tracer();
    check_timeline(
        "mems_adaptive",
        &pair.second,
        &adaptive_report,
        &mut failures,
    );
    let migration = driver.device().migration_stats().clone();
    check(
        migration.swaps > 0,
        &mut failures,
        "mems_adaptive: no migrations on a skewed bursty stream",
    );
    let bg_wait: f64 = pair
        .second
        .windows()
        .iter()
        .map(|w| w.phase.background_wait)
        .sum();
    check(
        (bg_wait - adaptive_report.breakdown_sum.background_wait).abs() < 1e-9,
        &mut failures,
        "mems_adaptive: telemetry background_wait does not reconcile with the report",
    );
    timeline.push_str(&pair.second.csv_rows("mems_adaptive"));
    println!(
        "mems_adaptive:   {} swaps ({} chunk I/Os), {:.1} ms foreground wait, {} windows",
        migration.swaps,
        migration.chunk_ios,
        migration.foreground_wait_secs * 1e3,
        pair.second.windows().len()
    );

    write_csv("telemetry_timeline.csv", &timeline);
    write_csv("telemetry_heatmap.csv", &heatmap_csv);

    // Self-profile: rerun the SPTF cell under the wall-clock profiler. The
    // simulated results must be bit-identical — the probes read the host
    // clock but never feed back into the simulation.
    let mut driver = Driver::new(
        mems_workload(MEMS_SEED),
        SptfScheduler::new(),
        MemsDevice::new(MemsParams::default()),
    )
    .with_tracer(Profiler::new());
    let prof_report = driver.run();
    check(
        prof_report.response.mean() == sptf_report.response.mean()
            && prof_report.makespan == sptf_report.makespan
            && prof_report.busy_secs == sptf_report.busy_secs,
        &mut failures,
        "profiled rerun diverged from the telemetry run",
    );
    let stats = driver.device().seek_table_stats();
    let prof = driver.tracer();
    let json = prof.profile_json(Some((stats.hits, stats.misses)));
    let _ = std::fs::create_dir_all("target");
    let path = std::path::Path::new("target").join("telemetry_profile.json");
    if std::fs::write(&path, &json).is_ok() {
        println!("wrote {} (wall-clock, informational)", path.display());
    }
    let summary = format!(
        "{{\n  \"cell\": \"mems_adaptive\",\n  \"completed\": {},\n  \
         \"mean_response_ms\": {:.4},\n  \"background_wait_s\": {:.6},\n  \
         \"migration\": {}\n}}\n",
        adaptive_report.completed,
        adaptive_report.response.mean_ms(),
        adaptive_report.breakdown_sum.background_wait,
        migration.summary_json()
    );
    let path = std::path::Path::new("target").join("telemetry_summary.json");
    if std::fs::write(&path, &summary).is_ok() {
        println!("wrote {}", path.display());
    }
    println!(
        "self-profile:    {:.0} events/s wall; sched_pick {:.1}%, device_service {:.1}% of wall",
        prof.events_per_sec(),
        100.0 * prof.scope(storage_sim::ProfScope::SchedPick).seconds()
            / (prof.run_nanos() as f64 * 1e-9),
        100.0 * prof.scope(storage_sim::ProfScope::DeviceService).seconds()
            / (prof.run_nanos() as f64 * 1e-9),
    );

    if failures > 0 {
        eprintln!("\ntelemetry_report: {failures} check(s) FAILED");
        return ExitCode::FAILURE;
    }
    println!("\nall telemetry reconciliation and bit-identity checks passed");
    ExitCode::SUCCESS
}
