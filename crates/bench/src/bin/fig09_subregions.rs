//! Figure 9: request service time inside 5×5 sled subregions (§5.1).
//!
//! Divides the area accessible by a probe tip into 25 subregions of
//! 400×400 bits centered at bit offsets (±800, ±400, 0) from the sled
//! center, and reports the average service time of 10,000 random 4 KB
//! requests that start and end inside each subregion — once with the X
//! settle time and once without.
//!
//! Paper shape to check: the centermost subregion is fastest and the
//! corners slowest (spring forces grow with displacement), with a 10–20%
//! spread; removing settle shrinks every number by roughly the settling
//! constant.

use mems_bench::{write_csv, Table};
use mems_device::{MemsDevice, MemsParams, SledState};
use storage_sim::rng;
use storage_sim::{IoKind, Request, SimTime};

/// Mean service time of `n` random 4 KB requests confined to the
/// subregion centered at bit offsets (cx, cy).
fn subregion_mean(device: &MemsDevice, cx: i64, cy: i64, n: u64, seed: u64) -> f64 {
    let mapper = device.mapper();
    let geom = device.geometry();
    let center_cyl = i64::from(geom.cylinders) / 2;
    let cyl_lo = (center_cyl + cx - 200) as u32;
    let cyl_hi = (center_cyl + cx + 200) as u32;
    // Y band: bits [center+cy-200, center+cy+200) → tip-sector rows.
    let bits_per_row = 90i64;
    let center_bit = i64::from(geom.bits_per_side) / 2;
    let row_lo = ((center_bit + cy - 200) / bits_per_row) as u32;
    let row_hi = (((center_bit + cy + 200) / bits_per_row) as u32).min(geom.rows_per_track - 1);

    let mut rng_state = rng::seeded(seed);
    // Start the sled at rest in the middle of the subregion.
    let mid_cyl = (cyl_lo + cyl_hi) / 2;
    let mut state = SledState {
        x: mapper.x_of_cylinder(mid_cyl),
        y: mapper.y_of_row_start((row_lo + row_hi) / 2),
        vy: 0.0,
    };
    let mut total = 0.0;
    for i in 0..n {
        let cyl = cyl_lo + rng::uniform_u64(&mut rng_state, u64::from(cyl_hi - cyl_lo)) as u32;
        let track = rng::uniform_u64(&mut rng_state, 5) as u32;
        let row = row_lo + rng::uniform_u64(&mut rng_state, u64::from(row_hi - row_lo + 1)) as u32;
        // Slot ≤ 12 keeps the 8-sector request within the row.
        let slot = rng::uniform_u64(&mut rng_state, 13) as u32;
        let lbn = mapper.compose(mems_device::PhysAddr {
            cylinder: cyl,
            track,
            row,
            slot,
        });
        let req = Request::new(i, SimTime::ZERO, lbn, 8, IoKind::Read);
        let (b, end) = device.service_from(state, &req);
        total += b.total();
        state = end;
    }
    total / n as f64
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let offsets: [i64; 5] = [-800, -400, 0, 400, 800];

    println!("Figure 9: average 4 KB service time (ms) per 400x400-bit subregion");
    println!("({n} requests per cell; upper = with X settle, lower = zero settle)\n");

    let with_settle = MemsDevice::new(MemsParams::default());
    let no_settle = MemsDevice::new(MemsParams::default().with_settle_constants(0.0));

    let mut csv = String::from("cy,cx,with_settle_ms,no_settle_ms\n");
    // Render top row (cy = +800) first like the paper's figure.
    for &cy in offsets.iter().rev() {
        let mut table = Table::new(
            offsets
                .iter()
                .map(|cx| format!("({cx},{cy})"))
                .collect::<Vec<_>>(),
        );
        let mut upper = Vec::new();
        let mut lower = Vec::new();
        for &cx in &offsets {
            let seed = 0x5EED_0009 ^ ((cx + 1000) as u64) << 16 ^ (cy + 1000) as u64;
            let a = subregion_mean(&with_settle, cx, cy, n, seed) * 1e3;
            let b = subregion_mean(&no_settle, cx, cy, n, seed) * 1e3;
            upper.push(format!("{a:.3}"));
            lower.push(format!("{b:.3}"));
            csv.push_str(&format!("{cy},{cx},{a:.4},{b:.4}\n"));
        }
        table.row(upper);
        table.row(lower);
        println!("{}", table.render());
    }
    write_csv("fig09_subregions.csv", &csv);

    // The §5.1 headline: center-to-corner spread.
    let center = subregion_mean(&with_settle, 0, 0, n, 0xC0FFEE);
    let corner = subregion_mean(&with_settle, 800, 800, n, 0xC0FFEE);
    println!(
        "corner/center service-time ratio: {:.3} (paper: 10-20% spread)",
        corner / center
    );
}
