//! `overload_sweep` — open-loop overload and recovery cells.
//!
//! ROADMAP item 4: drive an open-loop arrival process past the device's
//! saturation rate and watch the queue grow, then bring the rate back
//! down and watch it drain. The arrival profile is [`RampWorkload`]'s
//! trapezoid (`low → high → low`, §3 request envelope); the request
//! budget is sized so the last arrival lands near the end of the
//! down-ramp, making `makespan − ramp_end` a direct measure of how long
//! the residual backlog takes to drain.
//!
//! Each overload intensity is run under four admission policies:
//!
//! * `none` — pure open loop: the queue absorbs the whole burst;
//! * `shed` — queue-depth watermarks with hysteresis (drop arrivals at
//!   `shed_high`, resume below `resume_low`);
//! * `shed+timeout` — watermarks plus a queue-residency deadline;
//! * `timeout` — the deadline alone.
//!
//! Every row bills explicitly: `completed + shed + timed_out` must equal
//! the request budget (asserted). The bin opens with an in-process gate:
//! a policy whose watermarks can never trigger must be digest-identical
//! to the plain open-loop run — admission control that isn't exercised
//! must cost nothing and change nothing — and any divergence exits
//! non-zero before a CSV is written.
//!
//! The CSV (`results/overload_sweep.csv`) is byte-stable and golden-gated
//! in CI. Pass a request-budget scale factor to experiment; goldens are
//! only valid at the default.

use mems_bench::{surfaced_mems_device, write_csv, Table};
use mems_device::MemsParams;
use storage_sim::{Driver, FifoScheduler, OverloadPolicy, SimReport, SimTime};
use storage_trace::RampWorkload;

const CAPACITY: u64 = 6_750_000;
const SEED: u64 = 0x5EED_0010;
const RATE_LOW: f64 = 200.0;
const RAMP_SECS: f64 = 2.0;
const HOLD_SECS: f64 = 4.0;
/// Watermarks: shed arrivals at 256 queued, readmit below 64.
const SHED_HIGH: usize = 256;
const RESUME_LOW: usize = 64;
/// Queue-residency deadline for the timeout policies — tight enough to
/// fire even under the watermark-capped queue (≈190 ms of FIFO backlog
/// at 256 deep), so `shed+timeout` differs visibly from `shed` alone.
const TIMEOUT_MS: f64 = 150.0;

/// Request budget matching the expected arrival count of one trapezoid,
/// so arrivals stop at the end of the down-ramp and the drain is visible.
fn budget(rate_high: f64) -> u64 {
    (RATE_LOW * HOLD_SECS + rate_high * HOLD_SECS + (RATE_LOW + rate_high) * RAMP_SECS) as u64
}

fn run_cell(rate_high: f64, scale: u64, policy: Option<OverloadPolicy>) -> SimReport {
    let workload = RampWorkload::new(
        CAPACITY,
        RATE_LOW,
        rate_high,
        RAMP_SECS,
        HOLD_SECS,
        budget(rate_high) * scale,
        SEED,
    );
    let mut driver = Driver::new(
        workload,
        FifoScheduler::new(),
        surfaced_mems_device(&MemsParams::default()),
    )
    .with_arrival_lookahead(1024);
    if let Some(p) = policy {
        driver = driver.with_overload(p);
    }
    driver.run()
}

/// Bit-exact digest for the zero-shed gate.
fn digest(r: &SimReport) -> String {
    format!(
        "n={} shed={} to={} mk={:016x} rm={:016x} rsd={:016x} qm={:016x} busy={:016x} depth={} restr={}",
        r.completed,
        r.shed,
        r.timed_out,
        r.makespan.as_secs().to_bits(),
        r.response.mean().to_bits(),
        r.response.std_dev().to_bits(),
        r.queue_time.mean().to_bits(),
        r.busy_secs.to_bits(),
        r.max_queue_depth,
        r.event_queue_restructures,
    )
}

fn main() {
    let scale: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    // Gate: admission control that never triggers must be invisible.
    let plain = run_cell(2_000.0, scale, None);
    let idle_policy = run_cell(
        2_000.0,
        scale,
        Some(OverloadPolicy::watermarks(1_000_000, 1)),
    );
    if digest(&plain) != digest(&idle_policy) {
        eprintln!("FAIL: an untriggered overload policy changed the simulation");
        eprintln!("  plain:  {}", digest(&plain));
        eprintln!("  policed: {}", digest(&idle_policy));
        std::process::exit(1);
    }
    println!("zero-shed gate: untriggered policy is digest-identical to open loop\n");

    let ramp_end = 2.0 * (HOLD_SECS + RAMP_SECS);
    println!(
        "overload_sweep: trapezoid {RATE_LOW} -> high -> {RATE_LOW} req/s, ramp {RAMP_SECS} s, hold {HOLD_SECS} s"
    );
    println!(
        "policies: shed@{SHED_HIGH}/resume@{RESUME_LOW}, timeout {TIMEOUT_MS} ms; FIFO on MEMS\n"
    );

    let mut table = Table::new(
        [
            "rate_high",
            "policy",
            "requests",
            "completed",
            "shed",
            "timed_out",
            "mean_ms",
            "p99_ms",
            "max_depth",
            "drain_s",
        ]
        .map(String::from)
        .to_vec(),
    );
    let timeout = SimTime::from_ms(TIMEOUT_MS);
    for rate_high in [2_000.0, 4_000.0] {
        let cells: [(&str, Option<OverloadPolicy>); 4] = [
            ("none", None),
            (
                "shed",
                Some(OverloadPolicy::watermarks(SHED_HIGH, RESUME_LOW)),
            ),
            (
                "shed+timeout",
                Some(OverloadPolicy::watermarks(SHED_HIGH, RESUME_LOW).with_queue_timeout(timeout)),
            ),
            ("timeout", Some(OverloadPolicy::timeout_only(timeout))),
        ];
        for (name, policy) in cells {
            let requests = budget(rate_high) * scale;
            let mut report = run_cell(rate_high, scale, policy);
            assert_eq!(
                report.completed + report.shed + report.timed_out,
                requests,
                "billing must conserve the request budget"
            );
            let drain = (report.makespan.as_secs() - ramp_end).max(0.0);
            table.row(vec![
                format!("{rate_high:.0}"),
                name.to_string(),
                format!("{requests}"),
                format!("{}", report.completed),
                format!("{}", report.shed),
                format!("{}", report.timed_out),
                format!("{:.3}", report.response.mean_ms()),
                format!("{:.3}", report.response.percentile(0.99) * 1e3),
                format!("{}", report.max_queue_depth),
                format!("{drain:.3}"),
            ]);
        }
    }
    println!("{}", table.render());
    if scale == 1 {
        write_csv("overload_sweep.csv", &table.to_csv());
    } else {
        println!("[scale {scale}: goldens untouched]");
    }
}
