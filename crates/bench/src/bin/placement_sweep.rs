//! Adaptive vs static placement on skewed workloads.
//!
//! Three series per workload, all under SPTF on the surfaced MEMS
//! device:
//!
//! * `bare` — no placement layer (the device's native layout);
//! * `organ_static` — the strongest static baseline: an offline
//!   organ-pipe permutation built from a *complete frequency census of
//!   the exact request stream*, served through the same wrapper with
//!   migrations off;
//! * `adaptive` — the online policy: identity start, decayed frequency
//!   tracking, idle-window migration toward the center.
//!
//! Workloads: classical Zipf(0.99) block popularity (spatially
//! scattered — good for any frequency-aware layout, static or online)
//! and a shifting hotspot (the span relocates every epoch — a static
//! layout can only average over epochs, an online one chases the drift).
//!
//! Every row is split into a `foreground` phase (driver-visible response
//! stats) and a `migration` phase (the wrapper's separately-accounted
//! migration traffic: chunk I/O tails, busy time, energy, and the wait
//! it imposed on foreground arrivals), so migration cost is visible,
//! not amortized away. Output: byte-stable `results/placement_sweep.csv`.
//!
//! The bin opens with an in-process zero-migration identity gate: a
//! migrations-off wrap at the identity placement must reproduce the
//! bare device bit for bit on MEMS and disk, or the process exits
//! non-zero before any CSV is written (pass `--identity-only` to run
//! just the gate, as the CI step does). It closes with the headline
//! gate: adaptive must beat the static organ pipe's foreground mean on
//! the shifting-hotspot workload. Pass `--long` for the informational
//! 10× horizon (CSV under `target/long/`, goldens untouched).

use atlas_disk::{DiskDevice, DiskParams};
use mems_bench::{surfaced_mems_device, write_csv, Table};
use mems_device::MemsParams;
use mems_os::layout::OrganPipeMap;
use mems_os::placement::{AdaptiveDevice, MigrationStats, PlacementConfig};
use mems_os::sched::SptfScheduler;
use storage_sim::{Driver, Request, SimReport, StorageDevice, VecWorkload, Workload};
use storage_trace::{RandomWorkload, ShiftingHotspotWorkload, ZipfWorkload};

const MEMS_CAPACITY: u64 = 6_750_000;
const WORKLOAD_SEED: u64 = 42;
/// Placement granularity: 512 KB blocks (1024 sectors). Coarse blocks
/// matter twice: each hot block collects enough accesses per half-life
/// for its decayed weight to be a low-noise signal (fine blocks thrash
/// — similar-weight hot blocks endlessly displace each other), and the
/// whole working set moves in tens of swaps rather than hundreds.
const BLOCK_SECTORS: u32 = 1024;
const RATE: f64 = 500.0;
const REQUESTS: u64 = 900_000;
const WARMUP: u64 = 2_000;
/// Hot working set: 0.5% of the device (~33.7k sectors, 64 scattered
/// fragments of ~527 sectors, ~100 placement blocks). Compact enough
/// that each gathered block repays its 2 MB swap many times over within
/// one epoch, and that idle-window bandwidth re-centers the whole set
/// in the first third of an epoch. The *union* of all 60 epochs still
/// covers over half the device, which is what starves the static
/// baseline: it can only organ-pipe that diluted union, while the
/// online policy re-gathers each epoch's compact set.
const HOT_SECTORS: u64 = MEMS_CAPACITY / 200;
/// The working set relocates every 15 s — 120 epochs over the 1800 s run.
const EPOCH_SECS: f64 = 15.0;
const HOT_FRACTION: f64 = 0.9;
/// ON/OFF arrivals: bursts of 50 requests (a 100 ms mean cycle at the
/// 500 req/s long-run rate) separated by ~60 ms idle gaps — the regime
/// idle-window migration is designed for. Pure Poisson gaps are
/// memoryless, so every idle-triggered swap would overrun the next
/// arrival and the wait bill would drown the placement benefit.
const BURST_LEN: u64 = 50;
const BURST_IDLE: f64 = 0.060;

fn placement_config(migrate: bool) -> PlacementConfig {
    PlacementConfig {
        block_sectors: BLOCK_SECTORS,
        // Half-life well under the epoch: ex-working-set blocks decay
        // to displaceable within ~1–2 s of the shift, so the new set
        // can take over the center early in its epoch.
        half_life: 1.0,
        idle_window: 4e-3,
        max_swaps_per_window: 4,
        hysteresis: 1.5,
        // The working set is ~220 blocks; once a block is inside the
        // innermost ~couple hundred ranks, further inward shuffling buys
        // nothing. 64 ranks ≈ 32 cylinders of displacement minimum.
        min_rank_gain: 64,
        // Hot blocks sustain ~10 decayed accesses; Poisson clustering
        // on warm Zipf-tail blocks rarely spikes past 4, so the floor
        // keeps the tail from buying migrations it cannot repay.
        min_heat: 4.0,
        migrate,
    }
}

fn collect(mut w: impl Workload) -> Vec<Request> {
    let mut out = Vec::new();
    while let Some(r) = w.next_request() {
        out.push(r);
    }
    out
}

/// Offline frequency census: accesses per placement block over the
/// whole request stream (the same spanning-block rule the tracker
/// uses).
fn census(requests: &[Request], capacity: u64) -> Vec<f64> {
    let bs = u64::from(BLOCK_SECTORS);
    let n_blocks = (capacity / bs) as usize;
    let mut freqs = vec![0.0f64; n_blocks];
    for r in requests {
        let first = r.lbn / bs;
        let last = (r.end_lbn().max(r.lbn + 1) - 1) / bs;
        for b in first..=last.min(n_blocks as u64 - 1) {
            freqs[b as usize] += 1.0;
        }
    }
    freqs
}

/// One series: runs the request stream and returns the report plus the
/// wrapper's migration stats (`None` for the bare series).
fn run_series(requests: &[Request], series: &str) -> (SimReport, Option<MigrationStats>) {
    let params = MemsParams::default();
    let workload = VecWorkload::new(requests.to_vec());
    match series {
        "bare" => {
            let mut driver = Driver::new(
                workload,
                SptfScheduler::new(),
                surfaced_mems_device(&params),
            )
            .warmup_requests(WARMUP);
            (driver.run(), None)
        }
        "organ_static" => {
            let map = OrganPipeMap::build(&census(requests, MEMS_CAPACITY));
            let dev = AdaptiveDevice::new(surfaced_mems_device(&params), placement_config(false))
                .with_initial_placement(&map);
            let mut driver =
                Driver::new(workload, SptfScheduler::new(), dev).warmup_requests(WARMUP);
            let report = driver.run();
            let stats = driver.device().migration_stats().clone();
            (report, Some(stats))
        }
        "adaptive" => {
            let dev = AdaptiveDevice::new(surfaced_mems_device(&params), placement_config(true));
            let mut driver =
                Driver::new(workload, SptfScheduler::new(), dev).warmup_requests(WARMUP);
            let report = driver.run();
            let stats = driver.device().migration_stats().clone();
            (report, Some(stats))
        }
        _ => unreachable!("unknown series"),
    }
}

/// Field-by-field bit comparison of two reports (the zero-migration
/// identity gate's notion of "identical").
fn reports_identical(a: &SimReport, b: &SimReport) -> bool {
    let completions_match = match (&a.completions, &b.completions) {
        (Some(x), Some(y)) => {
            x.len() == y.len()
                && x.iter().zip(y).all(|(p, q)| {
                    p.request.id == q.request.id
                        && p.start_service == q.start_service
                        && p.completion == q.completion
                })
        }
        _ => false,
    };
    a.completed == b.completed
        && a.makespan == b.makespan
        && a.response.mean().to_bits() == b.response.mean().to_bits()
        && a.response.max().to_bits() == b.response.max().to_bits()
        && a.busy_secs.to_bits() == b.busy_secs.to_bits()
        && a.breakdown_sum.positioning.to_bits() == b.breakdown_sum.positioning.to_bits()
        && a.breakdown_sum.transfer.to_bits() == b.breakdown_sum.transfer.to_bits()
        && a.breakdown_sum.background_wait.to_bits() == b.breakdown_sum.background_wait.to_bits()
        && completions_match
}

/// The zero-migration identity gate: a migrations-off wrap at the
/// identity placement must be bit-identical to the bare device, on MEMS
/// and on the disk baseline. Exits non-zero on divergence.
fn identity_gate() {
    fn gate<D: StorageDevice + Clone>(label: &str, device: D, capacity: u64) {
        let requests = collect(RandomWorkload::paper(capacity, RATE, 4_000, WORKLOAD_SEED));
        let bare = Driver::new(
            VecWorkload::new(requests.clone()),
            SptfScheduler::new(),
            device.clone(),
        )
        .record_completions(true)
        .run();
        let wrapped = Driver::new(
            VecWorkload::new(requests),
            SptfScheduler::new(),
            AdaptiveDevice::new(device, placement_config(false)),
        )
        .record_completions(true)
        .run();
        if !reports_identical(&bare, &wrapped) {
            eprintln!("FAIL: migrations-off wrap diverged from the bare device on {label}");
            eprintln!(
                "  bare:    completed={} busy={:.9}",
                bare.completed, bare.busy_secs
            );
            eprintln!(
                "  wrapped: completed={} busy={:.9}",
                wrapped.completed, wrapped.busy_secs
            );
            std::process::exit(1);
        }
        println!("identity gate ({label}): migrations-off wrap is bit-identical");
    }
    gate(
        "MEMS",
        surfaced_mems_device(&MemsParams::default()),
        MEMS_CAPACITY,
    );
    let disk_params = DiskParams::quantum_atlas_10k();
    let disk_capacity = disk_params.total_sectors();
    gate("disk", DiskDevice::new(disk_params), disk_capacity);
}

struct Cell {
    workload: &'static str,
    series: &'static str,
    report: SimReport,
    migration: Option<MigrationStats>,
}

fn run_workload(workload: &'static str, scale: u64, cells: &mut Vec<Cell>) {
    let requests = match workload {
        "zipf" => collect(
            ZipfWorkload::new(
                MEMS_CAPACITY,
                BLOCK_SECTORS,
                0.99,
                RATE,
                REQUESTS * scale,
                WORKLOAD_SEED,
            )
            .bursty(BURST_LEN, BURST_IDLE),
        ),
        "hotspot" => collect(
            ShiftingHotspotWorkload::new(
                MEMS_CAPACITY,
                HOT_SECTORS,
                EPOCH_SECS,
                HOT_FRACTION,
                RATE,
                REQUESTS * scale,
                WORKLOAD_SEED,
            )
            .bursty(BURST_LEN, BURST_IDLE),
        ),
        _ => unreachable!(),
    };
    for series in ["bare", "organ_static", "adaptive"] {
        let (report, migration) = run_series(&requests, series);
        cells.push(Cell {
            workload,
            series,
            report,
            migration,
        });
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let identity_only = args.iter().any(|a| a == "--identity-only");
    let long = args.iter().any(|a| a == "--long");

    identity_gate();
    if identity_only {
        return;
    }

    let scale = if long { 10 } else { 1 };
    println!(
        "\nplacement sweep: {} requests/cell at {RATE:.0} req/s, {BLOCK_SECTORS}-sector blocks\n",
        REQUESTS * scale
    );

    let mut cells = Vec::new();
    run_workload("zipf", scale, &mut cells);
    run_workload("hotspot", scale, &mut cells);

    let mut table = Table::new(
        [
            "workload", "series", "phase", "requests", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
            "max_ms", "busy_s", "util", "energy_j", "swaps", "wait_ms",
        ]
        .map(String::from)
        .to_vec(),
    );
    for cell in &mut cells {
        let makespan = cell.report.makespan.as_secs();
        let resp = &mut cell.report.response;
        table.row(vec![
            cell.workload.into(),
            cell.series.into(),
            "foreground".into(),
            cell.report.completed.to_string(),
            format!("{:.3}", resp.mean_ms()),
            format!("{:.3}", resp.percentile(0.50) * 1e3),
            format!("{:.3}", resp.percentile(0.95) * 1e3),
            format!("{:.3}", resp.percentile(0.99) * 1e3),
            format!("{:.3}", resp.max() * 1e3),
            format!("{:.3}", cell.report.busy_secs),
            format!("{:.4}", cell.report.busy_secs / makespan),
            "0.000".into(),
            "0".into(),
            format!("{:.3}", cell.report.breakdown_sum.background_wait * 1e3),
        ]);
        // The bare series has no placement layer; its migration row is
        // all zeros.
        let m = cell.migration.clone().unwrap_or_default();
        table.row(vec![
            cell.workload.into(),
            cell.series.into(),
            "migration".into(),
            m.chunk_ios.to_string(),
            format!("{:.3}", m.chunk_time.mean() * 1e3),
            format!("{:.3}", m.chunk_tail.quantile(0.50) * 1e3),
            format!("{:.3}", m.chunk_tail.quantile(0.95) * 1e3),
            format!("{:.3}", m.chunk_tail.quantile(0.99) * 1e3),
            format!("{:.3}", m.chunk_time.max().max(0.0) * 1e3),
            format!("{:.3}", m.busy_secs),
            format!("{:.4}", m.busy_secs / makespan),
            format!("{:.3}", m.energy_j),
            m.swaps.to_string(),
            format!("{:.3}", m.foreground_wait_secs * 1e3),
        ]);
    }
    println!("{}", table.render());

    if long {
        // Informational horizon: never touches the byte-gated goldens.
        let dir = std::path::Path::new("target/long");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
        } else {
            let path = dir.join("placement_sweep.csv");
            match std::fs::write(&path, table.to_csv()) {
                Ok(()) => println!("[wrote {}]", path.display()),
                Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
            }
        }
    } else {
        write_csv("placement_sweep.csv", &table.to_csv());
    }

    // Headline gate: on the shifting hotspot, the online policy must
    // beat the offline-census organ pipe on foreground mean response.
    let mean_of = |cells: &[Cell], series: &str| {
        cells
            .iter()
            .find(|c| c.workload == "hotspot" && c.series == series)
            .expect("cell exists")
            .report
            .response
            .mean_ms()
    };
    let static_mean = mean_of(&cells, "organ_static");
    let adaptive_mean = mean_of(&cells, "adaptive");
    println!(
        "hotspot foreground mean: organ_static {static_mean:.3} ms, \
         adaptive {adaptive_mean:.3} ms"
    );
    if adaptive_mean >= static_mean {
        eprintln!("FAIL: adaptive placement did not beat the static organ pipe");
        std::process::exit(1);
    }
}
