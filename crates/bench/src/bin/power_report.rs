//! §7 quantitative report: power profiles, idle-mode policies, the
//! energy-per-bit law, and the compress-to-save-tips optimization.

use atlas_disk::DiskEnergyModel;
use mems_bench::{write_csv, Table};
use mems_device::{MemsDevice, MemsEnergyModel, MemsParams};
use mems_os::power::{compressed_transfer_energy, PowerManagedDevice, PowerProfile};
use storage_sim::rng;
use storage_sim::{IoKind, Request, SimTime, StorageDevice};

fn main() {
    // --- profiles ---------------------------------------------------------
    println!("== power profiles ==\n");
    let mems_profile = PowerProfile::mems(&MemsEnergyModel::default(), 1280);
    let disk_profile = PowerProfile::disk(&DiskEnergyModel::atlas_10k());
    let mobile_profile = PowerProfile::disk(&DiskEnergyModel::travelstar_class());
    let mut t = Table::new(vec![
        "device".into(),
        "active (W)".into(),
        "idle (W)".into(),
        "sleep (W)".into(),
        "restart".into(),
        "break-even idle".into(),
    ]);
    for (name, p) in [
        ("MEMS", &mems_profile),
        ("Atlas 10K", &disk_profile),
        ("Travelstar-class", &mobile_profile),
    ] {
        t.row(vec![
            name.into(),
            format!("{:.2}", p.active_power),
            format!("{:.2}", p.idle_power),
            format!("{:.3}", p.sleep_power),
            if p.restart_time < 1.0 {
                format!("{:.1} ms", p.restart_time * 1e3)
            } else {
                format!("{:.1} s", p.restart_time)
            },
            if p.breakeven_idle() < 1.0 {
                format!("{:.1} ms", p.breakeven_idle() * 1e3)
            } else {
                format!("{:.0} s", p.breakeven_idle())
            },
        ]);
    }
    println!("{}", t.render());

    // --- timeout-policy sweep ----------------------------------------------
    println!("== idle-policy sweep: bursty workload with idle gaps ==\n");
    println!("1000 random 4 KB requests in bursts of 10, exponential 2 s gaps");
    println!("between bursts; energy and mean added wake-latency per policy:\n");

    let run = |timeout: f64| -> (f64, f64) {
        let mut dev = PowerManagedDevice::new(
            MemsDevice::new(MemsParams::default()),
            mems_profile,
            timeout,
        );
        let capacity = dev.capacity_lbns();
        let mut r = rng::seeded(0x5EED_0071);
        let mut t = 0.0f64;
        for i in 0..1000u64 {
            if i % 10 == 0 {
                t += rng::exponential(&mut r, 2.0);
            }
            let lbn = rng::uniform_u64(&mut r, capacity - 8);
            let req = Request::new(i, SimTime::from_secs(t), lbn, 8, IoKind::Read);
            let b = dev.service(&req, SimTime::from_secs(t));
            t += b.total();
        }
        dev.finish(SimTime::from_secs(t));
        (dev.energy(), dev.stats().mean_added_latency())
    };

    let mut t = Table::new(vec![
        "policy (sleep timeout)".into(),
        "energy (J)".into(),
        "mean added latency".into(),
    ]);
    let mut csv = String::from("timeout_s,energy_j,added_latency_s\n");
    for (label, timeout) in [
        ("immediate (MEMS policy)", 0.0),
        ("100 ms", 0.1),
        ("1 s", 1.0),
        ("10 s", 10.0),
        ("never sleep", f64::INFINITY),
    ] {
        let (e, lat) = run(timeout);
        t.row(vec![
            label.into(),
            format!("{e:.2}"),
            format!("{:.3} ms", lat * 1e3),
        ]);
        csv.push_str(&format!("{timeout},{e:.4},{lat:.6}\n"));
    }
    println!("{}", t.render());
    write_csv("power_policy_sweep.csv", &csv);
    println!("paper check: the immediate policy wins outright because the 0.5 ms");
    println!("restart is imperceptible — no trade-off curve as with disks.\n");

    // --- the same sweep on a mobile disk ------------------------------------
    println!("== the disk trade-off the MEMS device escapes ==\n");
    println!("same workload on a Travelstar-class mobile disk (spin-down =");
    println!("1.8 s restart), showing the latency/energy bargain:\n");
    let run_disk = |timeout: f64| -> (f64, f64) {
        let mut dev = PowerManagedDevice::new(
            atlas_disk::DiskDevice::new(atlas_disk::DiskParams::ibm_travelstar_class()),
            mobile_profile,
            timeout,
        );
        let capacity = dev.capacity_lbns();
        let mut r = rng::seeded(0x5EED_0071);
        let mut t = 0.0f64;
        for i in 0..1000u64 {
            if i % 10 == 0 {
                t += rng::exponential(&mut r, 2.0);
            }
            let lbn = rng::uniform_u64(&mut r, capacity - 8);
            let req = Request::new(i, SimTime::from_secs(t), lbn, 8, IoKind::Read);
            let b = dev.service(&req, SimTime::from_secs(t));
            t += b.total();
        }
        dev.finish(SimTime::from_secs(t));
        (dev.energy(), dev.stats().mean_added_latency())
    };
    let mut t = Table::new(vec![
        "policy (spin-down timeout)".into(),
        "energy (J)".into(),
        "mean added latency".into(),
    ]);
    for (label, timeout) in [
        ("immediate", 0.0),
        ("1 s", 1.0),
        ("10 s", 10.0),
        ("never spin down", f64::INFINITY),
    ] {
        let (e, lat) = run_disk(timeout);
        t.row(vec![
            label.into(),
            format!("{e:.2}"),
            format!("{:.1} ms", lat * 1e3),
        ]);
    }
    println!("{}", t.render());

    // --- energy is linear in bits accessed ----------------------------------
    println!("== energy vs bits accessed (§7: power ∝ bits) ==\n");
    let model = MemsEnergyModel::default();
    let mut dev = MemsDevice::new(MemsParams::default());
    let mut t = Table::new(vec![
        "request size".into(),
        "energy (mJ)".into(),
        "energy/KB (uJ)".into(),
    ]);
    let mut csv = String::from("kb,energy_mj,energy_per_kb_uj\n");
    for sectors in [8u32, 32, 128, 512, 2048] {
        let lbn = 1250 * 2700;
        let req = Request::new(0, SimTime::ZERO, lbn, sectors, IoKind::Read);
        let b = dev.service(&req, SimTime::ZERO);
        let e = model.request_energy(&b, 1280);
        let kb = f64::from(sectors) / 2.0;
        t.row(vec![
            format!("{:.0} KB", kb),
            format!("{:.3}", e * 1e3),
            format!("{:.2}", e / kb * 1e6),
        ]);
        csv.push_str(&format!("{kb},{:.6},{:.4}\n", e * 1e3, e / kb * 1e6));
    }
    println!("{}", t.render());
    write_csv("power_energy_per_bit.csv", &csv);
    println!("(per-KB energy flattens to a constant as transfers grow — the");
    println!("positioning energy amortizes away and power is ∝ bits accessed)\n");

    // --- compression saves tip-seconds --------------------------------------
    println!("== §7 compress-to-save-tips optimization ==\n");
    let mut t = Table::new(vec![
        "compression ratio".into(),
        "energy per 1 MB transfer (mJ)".into(),
    ]);
    for ratio in [1.0, 1.5, 2.0, 3.0, 4.0] {
        let e = compressed_transfer_energy(&model, 1 << 20, 1280, ratio);
        t.row(vec![format!("{ratio}"), format!("{:.2}", e * 1e3)]);
    }
    println!("{}", t.render());
}
