//! Ablation: the on-device speed-matching buffer and readahead
//! (§2.4.11).
//!
//! Sweeps the readahead cap on (a) a pure sequential stream, (b) the
//! bursty Cello-like trace, and (c) a random workload — showing that
//! readahead converts sequential misses into buffer hits at essentially
//! no cost to random traffic.

use mems_bench::{write_csv, Table};
use mems_device::{MemsDevice, MemsParams};
use mems_os::cache::CachedDevice;
use storage_sim::{Driver, FifoScheduler, IoKind, Request, SimTime, VecWorkload};
use storage_trace::{cello_for_capacity, TraceWorkload};

fn sequential_workload(n: u64) -> Vec<Request> {
    (0..n)
        .map(|i| {
            Request::new(
                i,
                SimTime::from_us(i as f64 * 500.0),
                100_000 + i * 8,
                8,
                IoKind::Read,
            )
        })
        .collect()
}

fn random_workload(n: u64, capacity: u64) -> Vec<Request> {
    let mut lbn = 17u64;
    (0..n)
        .map(|i| {
            lbn = (lbn.wrapping_mul(6364136223846793005).wrapping_add(3)) % (capacity - 8);
            Request::new(i, SimTime::from_us(i as f64 * 900.0), lbn, 8, IoKind::Read)
        })
        .collect()
}

fn main() {
    let capacity = MemsParams::default().geometry().total_sectors();
    let n = 4000u64;
    println!("Ablation: device buffer readahead cap (4 MB buffer, 20 us hits)\n");
    let mut table = Table::new(vec![
        "readahead (sectors)".into(),
        "sequential mean (ms)".into(),
        "seq hit rate".into(),
        "cello mean (ms)".into(),
        "cello hit rate".into(),
        "random mean (ms)".into(),
    ]);
    let mut csv = String::from("readahead,seq_ms,seq_hit,cello_ms,cello_hit,rand_ms\n");
    for readahead in [0u32, 32, 128, 512, 2048] {
        let make = || {
            CachedDevice::new(
                MemsDevice::new(MemsParams::default()),
                8192,
                readahead,
                20e-6,
            )
        };
        let mut d1 = Driver::new(
            VecWorkload::new(sequential_workload(n)),
            FifoScheduler::new(),
            make(),
        );
        let r1 = d1.run();
        let seq_ms = r1.mean_service_ms();
        let seq_hit = d1.device().stats().hit_rate();

        let trace = cello_for_capacity(capacity, n, 0xCACE);
        let mut d2 = Driver::new(TraceWorkload::new(trace, 4.0), FifoScheduler::new(), make());
        let r2 = d2.run();
        let cello_ms = r2.mean_service_ms();
        let cello_hit = d2.device().stats().hit_rate();

        let mut d3 = Driver::new(
            VecWorkload::new(random_workload(n, capacity)),
            FifoScheduler::new(),
            make(),
        );
        let r3 = d3.run();
        let rand_ms = r3.mean_service_ms();

        table.row(vec![
            format!("{readahead}"),
            format!("{seq_ms:.3}"),
            format!("{:.1}%", seq_hit * 100.0),
            format!("{cello_ms:.3}"),
            format!("{:.1}%", cello_hit * 100.0),
            format!("{rand_ms:.3}"),
        ]);
        csv.push_str(&format!(
            "{readahead},{seq_ms:.4},{seq_hit:.4},{cello_ms:.4},{cello_hit:.4},{rand_ms:.4}\n"
        ));
    }
    println!("{}", table.render());
    write_csv("ablation_cache.csv", &csv);
    println!("reading the table: readahead collapses sequential service times");
    println!("toward the buffer hit cost, picks up the Cello trace's sequential");
    println!("runs, and leaves random traffic untouched (§2.4.11).");
}
