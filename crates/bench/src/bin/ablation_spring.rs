//! Ablation: how much does the spring factor matter?
//!
//! §5.1 attributes the subregion effect (and the turnaround-time spread)
//! to the spring restoring force reaching 75% of the actuator force at
//! full displacement. This sweep re-derives the device behaviour across
//! spring factors from nearly-none to nearly-overpowering.

use mems_bench::{write_csv, Table};
use mems_device::{MemsDevice, MemsParams, SledState, SpringSled};
use storage_sim::{IoKind, Request, SimTime};

fn main() {
    println!("Ablation: spring factor (paper default 0.75)\n");
    let mut table = Table::new(vec![
        "spring factor".into(),
        "full stroke (ms)".into(),
        "edge 5um seek (ms)".into(),
        "center 5um seek (ms)".into(),
        "turnaround min (ms)".into(),
        "turnaround max (ms)".into(),
        "rand 4KB svc (ms)".into(),
    ]);
    let mut csv =
        String::from("spring,full_ms,edge5_ms,center5_ms,turn_min_ms,turn_max_ms,rand4k_ms\n");
    for sf in [0.05, 0.25, 0.5, 0.75, 0.9] {
        let params = MemsParams::default().with_spring_factor(sf);
        let sled = SpringSled::from_spring_factor(params.accel, sf, params.half_mobility());
        let full = sled.rest_seek_time(-50e-6, 50e-6);
        let edge = sled.rest_seek_time(44e-6, 49e-6);
        let center = sled.rest_seek_time(0.0, 5e-6);
        let v = params.access_velocity();
        let (mut tmin, mut tmax) = (f64::INFINITY, 0.0f64);
        for i in 0..=100 {
            let p = (i as f64 / 100.0 - 0.5) * params.mobility * 0.98;
            for dir in [v, -v] {
                let t = sled.turnaround_time(p, dir);
                tmin = tmin.min(t);
                tmax = tmax.max(t);
            }
        }
        // Mean random 4 KB service time.
        let dev = MemsDevice::new(params);
        let mut sum = 0.0;
        let mut lbn = 31u64;
        let mut state = SledState::CENTERED;
        let n = 3000;
        for i in 0..n {
            lbn = (lbn.wrapping_mul(6364136223846793005).wrapping_add(17))
                % (dev.geometry().total_sectors() - 8);
            let req = Request::new(i, SimTime::ZERO, lbn, 8, IoKind::Read);
            let (b, end) = dev.service_from(state, &req);
            sum += b.total();
            state = end;
        }
        let rand4k = sum / n as f64;
        table.row(vec![
            format!("{sf}"),
            format!("{:.3}", full * 1e3),
            format!("{:.3}", edge * 1e3),
            format!("{:.3}", center * 1e3),
            format!("{:.3}", tmin * 1e3),
            format!("{:.3}", tmax * 1e3),
            format!("{:.3}", rand4k * 1e3),
        ]);
        csv.push_str(&format!(
            "{sf},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            full * 1e3,
            edge * 1e3,
            center * 1e3,
            tmin * 1e3,
            tmax * 1e3,
            rand4k * 1e3
        ));
    }
    println!("{}", table.render());
    write_csv("ablation_spring.csv", &csv);
    println!("reading the table: stiffer springs barely change full-stroke time");
    println!("(the outbound drag cancels the inbound assist) but widen the");
    println!("edge-vs-center gap and the turnaround spread — exactly the effects");
    println!("the subregioned layout and Table 2's caption exploit.");
}
