//! Ablation: closed-loop multiprogramming level.
//!
//! The paper's figures use open arrivals; this companion view holds a
//! fixed population of zero-think-time processes and sweeps the
//! multiprogramming level, showing (a) how much concurrency each device
//! needs to reach peak throughput and (b) how much SPTF widens the MEMS
//! device's lead as the pending set deepens.

use atlas_disk::{DiskDevice, DiskParams};
use mems_bench::{write_csv, Table};
use mems_device::{MemsDevice, MemsParams};
use mems_os::sched::Algorithm;
use storage_sim::{closed_loop, rng, IoKind};

fn main() {
    let requests: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4000);
    println!("Ablation: throughput vs multiprogramming level (closed loop)");
    println!("({requests} random 4 KB reads per point, zero think time)\n");

    let mpls = [1u32, 2, 4, 8, 16, 32, 64];
    let mut table = Table::new(vec![
        "MPL".into(),
        "MEMS FCFS (req/s)".into(),
        "MEMS SPTF (req/s)".into(),
        "Atlas FCFS (req/s)".into(),
        "Atlas SPTF (req/s)".into(),
    ]);
    let mut csv = String::from("mpl,mems_fcfs,mems_sptf,atlas_fcfs,atlas_sptf\n");
    for &mpl in &mpls {
        let mut row = vec![format!("{mpl}")];
        let mut line = format!("{mpl}");
        for (device_is_mems, alg) in [
            (true, Algorithm::Fcfs),
            (true, Algorithm::Sptf),
            (false, Algorithm::Fcfs),
            (false, Algorithm::Sptf),
        ] {
            let capacity = if device_is_mems {
                MemsParams::default().geometry().total_sectors()
            } else {
                DiskParams::quantum_atlas_10k().total_sectors()
            };
            let mut r = rng::seeded(0xAB1A + u64::from(mpl));
            let source = move |_t: u32| {
                (
                    rng::uniform_u64(&mut r, capacity - 8),
                    8u32,
                    IoKind::Read,
                    0.0f64,
                )
            };
            let n = if device_is_mems {
                requests
            } else {
                requests / 4
            };
            let throughput = if device_is_mems {
                closed_loop(
                    mpl,
                    n,
                    source,
                    alg.build(),
                    MemsDevice::new(MemsParams::default()),
                    n / 10,
                )
                .throughput
            } else {
                closed_loop(
                    mpl,
                    n,
                    source,
                    alg.build(),
                    DiskDevice::new(DiskParams::quantum_atlas_10k()),
                    n / 10,
                )
                .throughput
            };
            row.push(format!("{throughput:.0}"));
            line.push_str(&format!(",{throughput:.1}"));
        }
        table.row(row);
        csv.push_str(&line);
        csv.push('\n');
    }
    println!("{}", table.render());
    write_csv("ablation_mpl.csv", &csv);
    println!("reading the table: with one outstanding request the schedulers");
    println!("tie; as the pending set deepens SPTF converts queue depth into");
    println!("throughput on both devices, and the MEMS device sustains roughly");
    println!("an order of magnitude more 4 KB reads per second throughout.");
}
