//! Figure 7: the Cello-like and TPC-C-like traces on the MEMS device.
//!
//! Following §4.3, the traced interarrival times are divided by a scale
//! factor to produce a range of average arrival rates (scale 1 = as
//! traced).
//!
//! Paper shape to check: on Cello the algorithms behave as under the
//! random workload; on TPC-C, SPTF outperforms the others by a much
//! larger margin because many concurrently-pending requests sit at very
//! small inter-LBN distances, which LBN-based schedulers cannot tell
//! apart.

use mems_bench::{run_one, write_csv, Table};
use mems_device::{MemsDevice, MemsParams};
use mems_os::sched::Algorithm;
use storage_trace::{cello_for_capacity, tpcc_for_capacity, TraceRecord, TraceWorkload};

fn run_panel(name: &str, csv: &str, records: &[TraceRecord], scales: &[f64], requests: usize) {
    println!("Figure 7 {name}: average response time (ms) vs trace scale factor");
    let mut headers = vec!["scale".to_string()];
    headers.extend(Algorithm::ALL.iter().map(|a| a.label().to_string()));
    let mut table = Table::new(headers);
    for &scale in scales {
        let mut row = vec![format!("{scale}")];
        for alg in Algorithm::ALL {
            let workload = TraceWorkload::new(records[..requests].to_vec(), scale);
            let report = run_one(workload, alg, MemsDevice::new(MemsParams::default()), 200);
            row.push(format!("{:.3}", report.response.mean_ms()));
        }
        table.row(row);
    }
    println!("{}", table.render());
    write_csv(csv, &table.to_csv());
}

fn main() {
    let requests: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let capacity = MemsParams::default().geometry().total_sectors();

    // Generate traces once; the base (scale-1) arrival rates are modest,
    // so the sweep scales them up toward device saturation.
    let cello = cello_for_capacity(capacity, requests as u64, 0x5EED_0007);
    let tpcc = tpcc_for_capacity(capacity, requests as u64, 0x5EED_0007);

    run_panel(
        "(a) Cello-like",
        "fig07_a_cello.csv",
        &cello,
        &[1.0, 2.0, 4.0, 8.0, 16.0, 24.0, 32.0],
        requests,
    );
    run_panel(
        "(b) TPC-C-like",
        "fig07_b_tpcc.csv",
        &tpcc,
        &[1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0],
        requests,
    );
}
