//! Observability report: per-phase time and energy breakdown of one
//! Fig. 6-style cell (SPTF on the default MEMS device, random workload),
//! recorded with a [`RingTracer`] and cross-checked against the device's
//! closed-form kinematics.
//!
//! Three invariants are verified and the binary exits non-zero if any
//! fails, so CI can run it as a regression gate:
//!
//! 1. **Phase sums**: for every request, `positioning + transfer +
//!    overhead` equals the reported service time and `queue + service`
//!    equals the reported response time, to ≤ 1e-9 s.
//! 2. **Parallel seeks**: `positioning == max(seek_x + settle, seek_y)` —
//!    the X and Y actuators move concurrently (§2.4.1).
//! 3. **Closed-form replay**: replaying the serviced request sequence on a
//!    fresh device with the seek-time memo table *disabled* (every seek a
//!    direct closed-form solve) reproduces each per-phase breakdown to
//!    ≤ 1e-9 s — the traced numbers are the kinematics, not cache
//!    artifacts.
//!
//! Outputs: an aligned phase table on stdout, `results/obs_phase_breakdown.csv`
//! (committed; CI diffs it against the golden), and the raw event stream as
//! `target/obs_trace.jsonl` plus `target/obs_summary.json` (untracked).
//!
//! The summary also carries a `migration` section from a companion cell:
//! the same device behind the adaptive-placement wrapper on a skewed
//! bursty stream, so migration-side costs (swaps, chunk tails, foreground
//! wait) are visible next to the foreground phase breakdown. The companion
//! runs separately because the main cell must stay a bare [`MemsDevice`] —
//! the closed-form replay gate depends on it.

use std::collections::HashMap;
use std::process::ExitCode;

use mems_bench::{surfaced_mems_device, write_csv, Table};
use mems_device::{MemsDevice, MemsParams};
use mems_os::placement::{AdaptiveDevice, PlacementConfig};
use mems_os::sched::SptfScheduler;
use storage_sim::{
    Driver, IoKind, Request, RingTracer, ServiceBreakdown, SimTime, StorageDevice, TraceEvent,
};
use storage_trace::{RandomWorkload, ZipfWorkload};

const SEED: u64 = 0x5EED_0006;
const RATE: f64 = 1000.0;
/// Agreement tolerance between traced phases and recomputed/closed-form
/// values, seconds (same bound the device's own memo-table test uses).
const TOL: f64 = 1e-9;
/// Companion migration cell: Zipf(0.99) over 512 KB placement blocks in
/// ON/OFF bursts — the regime idle-window migration is built for (same
/// tuning as `placement_sweep`).
const MIGRATION_SEED: u64 = 42;
const MIGRATION_RATE: f64 = 500.0;
const MIGRATION_REQUESTS: u64 = 20_000;
const MIGRATION_BLOCK_SECTORS: u32 = 1024;
const MIGRATION_BURST_LEN: u64 = 50;
const MIGRATION_BURST_IDLE: f64 = 0.060;

fn migration_placement() -> PlacementConfig {
    PlacementConfig {
        block_sectors: MIGRATION_BLOCK_SECTORS,
        half_life: 1.0,
        idle_window: 4e-3,
        max_swaps_per_window: 4,
        hysteresis: 1.5,
        min_rank_gain: 64,
        min_heat: 4.0,
        migrate: true,
    }
}

fn main() -> ExitCode {
    let requests: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let params = MemsParams::default();
    let capacity = params.geometry().total_sectors();

    println!("obs_report: SPTF / MEMS (default), {RATE:.0} req/s, {requests} requests, seed {SEED:#010x}\n");

    // Four lifecycle events per request; size the ring so nothing drops.
    let ring = usize::try_from(requests).expect("request count fits usize") * 4 + 64;
    let mut driver = Driver::new(
        RandomWorkload::paper(capacity, RATE, requests, SEED),
        SptfScheduler::new(),
        MemsDevice::new(params.clone()),
    )
    .record_completions(true)
    .with_tracer(RingTracer::new(ring));
    let report = driver.run();

    let trace = driver.tracer();
    let counters = trace.counters();
    let mut failures = 0u64;
    if counters.dropped_events != 0 {
        eprintln!("FAIL: ring dropped {} events", counters.dropped_events);
        failures += 1;
    }

    // Index the event stream by request id.
    let mut kinds: HashMap<u64, IoKind> = HashMap::new();
    let mut services: HashMap<u64, (f64, u64, u32, ServiceBreakdown)> = HashMap::new();
    let mut service_order: Vec<u64> = Vec::new();
    let mut completes = 0u64;
    for ev in trace.events() {
        match *ev {
            TraceEvent::Arrival { id, read, .. } => {
                kinds.insert(id, if read { IoKind::Read } else { IoKind::Write });
            }
            TraceEvent::Service {
                id,
                t,
                lbn,
                sectors,
                positioning,
                seek_x,
                settle,
                seek_y,
                rotation,
                transfer,
                turnaround,
                turnaround_count,
                overhead,
                fault_recovery,
                ..
            } => {
                let b = ServiceBreakdown {
                    positioning,
                    seek_x,
                    settle,
                    seek_y,
                    rotation,
                    transfer,
                    turnaround,
                    turnaround_count,
                    overhead,
                    fault_recovery,
                    background_wait: 0.0,
                };
                services.insert(id, (t, lbn, sectors, b));
                service_order.push(id);
            }
            TraceEvent::Complete {
                id,
                queue,
                service,
                response,
                ..
            } => {
                completes += 1;
                let Some((_, _, _, b)) = services.get(&id) else {
                    eprintln!("FAIL: completion for request {id} with no service event");
                    failures += 1;
                    continue;
                };
                // (1) Per-request phase sums reproduce the reported times.
                if (b.total() - service).abs() > TOL {
                    eprintln!(
                        "FAIL: req {id}: phase sum {} != service {service}",
                        b.total()
                    );
                    failures += 1;
                }
                if (queue + service - response).abs() > TOL {
                    eprintln!("FAIL: req {id}: queue+service != response {response}");
                    failures += 1;
                }
                // (2) X and Y seeks proceed in parallel.
                let resolved = (b.seek_x + b.settle).max(b.seek_y);
                if (b.positioning - resolved).abs() > 1e-12 {
                    eprintln!(
                        "FAIL: req {id}: positioning {} != max(seek_x+settle, seek_y) {resolved}",
                        b.positioning
                    );
                    failures += 1;
                }
            }
            TraceEvent::Pick { .. } | TraceEvent::Fault { .. } => {}
        }
    }
    if completes != report.completed {
        eprintln!(
            "FAIL: {completes} complete events vs {} reported completions",
            report.completed
        );
        failures += 1;
    }

    // (3) Replay the serviced sequence on a fresh device with the seek-time
    // memo table off: every positioning number must come straight out of
    // the closed-form spring-mass solver.
    let mut oracle = MemsDevice::new(params).with_seek_table(false);
    let mut replay_worst = 0.0f64;
    for &id in &service_order {
        let (t, lbn, sectors, recorded) = services[&id];
        let kind = kinds.get(&id).copied().unwrap_or(IoKind::Read);
        let start = SimTime::from_secs(t);
        let req = Request::new(id, start, lbn, sectors, kind);
        let b = oracle.service(&req, start);
        for (phase, traced, direct) in [
            ("positioning", recorded.positioning, b.positioning),
            ("seek_x", recorded.seek_x, b.seek_x),
            ("settle", recorded.settle, b.settle),
            ("seek_y", recorded.seek_y, b.seek_y),
            ("transfer", recorded.transfer, b.transfer),
            ("turnaround", recorded.turnaround, b.turnaround),
            ("overhead", recorded.overhead, b.overhead),
        ] {
            let err = (traced - direct).abs();
            replay_worst = replay_worst.max(err);
            if err > TOL {
                eprintln!("FAIL: req {id} {phase}: traced {traced} vs closed-form {direct}");
                failures += 1;
            }
        }
    }

    // Phase table: where the mean request's time goes.
    let n = report.completed as f64;
    let p = trace.phase_sum();
    let service_total = p.positioning + p.transfer + p.overhead;
    let mut table = Table::new(vec![
        "phase".to_string(),
        "mean (ms/req)".to_string(),
        "share of service (%)".to_string(),
    ]);
    for (name, sum) in [
        ("seek_x", p.seek_x),
        ("settle", p.settle),
        ("seek_y", p.seek_y),
        ("positioning (resolved)", p.positioning),
        ("transfer", p.transfer),
        ("  of which turnaround", p.turnaround),
        ("overhead", p.overhead),
        ("service total", service_total),
    ] {
        table.row(vec![
            name.to_string(),
            format!("{:.4}", 1e3 * sum / n),
            format!("{:.1}", 100.0 * sum / service_total),
        ]);
    }
    println!("{}", table.render());
    write_csv("obs_phase_breakdown.csv", &table.to_csv());

    let stats = driver.device().seek_table_stats();
    let e = trace.energy_sum();
    println!("mean response      {:8.3} ms", report.response.mean_ms());
    println!("mean service       {:8.3} ms", report.mean_service_ms());
    println!(
        "mean queue         {:8.3} ms",
        1e3 * report.queue_time.mean()
    );
    println!(
        "turnarounds        {:8.2} per request",
        f64::from(p.turnaround_count) / n
    );
    println!(
        "energy             {:8.3} mJ/req  (positioning {:.3}, transfer {:.3}, overhead {:.3})",
        1e3 * e.total() / n,
        1e3 * e.positioning_j / n,
        1e3 * e.transfer_j / n,
        1e3 * e.overhead_j / n
    );
    println!(
        "sched picks        {:8} ({:.1} candidates examined per pick, {:.1} mean depth)",
        counters.picks,
        trace.mean_candidates_per_pick(),
        trace.mean_depth_at_pick()
    );
    println!(
        "seek-table         {:8.1} % hit rate ({} hits / {} misses)",
        100.0 * stats.hit_rate(),
        stats.hits,
        stats.misses
    );
    println!("replay worst err   {replay_worst:8.2e} s vs closed-form kinematics");

    // Companion cell: adaptive placement on a skewed bursty stream. Only
    // its migration ledger feeds the summary; the traced cell above stays
    // untouched.
    let mut adaptive = Driver::new(
        ZipfWorkload::new(
            capacity,
            MIGRATION_BLOCK_SECTORS,
            0.99,
            MIGRATION_RATE,
            MIGRATION_REQUESTS,
            MIGRATION_SEED,
        )
        .bursty(MIGRATION_BURST_LEN, MIGRATION_BURST_IDLE),
        SptfScheduler::new(),
        AdaptiveDevice::new(
            surfaced_mems_device(&MemsParams::default()),
            migration_placement(),
        ),
    );
    let adaptive_report = adaptive.run();
    let migration = adaptive.device().migration_stats().clone();
    if migration.swaps == 0 {
        eprintln!("FAIL: companion cell performed no migrations on a skewed bursty stream");
        failures += 1;
    }
    println!(
        "migration cell     {:8} swaps ({} chunk I/Os, {:.3} ms mean chunk, {:.3} ms foreground wait over {} requests)",
        migration.swaps,
        migration.chunk_ios,
        migration.chunk_time.mean() * 1e3,
        migration.foreground_wait_secs * 1e3,
        adaptive_report.completed,
    );

    // Raw exports (untracked; for ad-hoc analysis). The summary carries
    // the device's seek-cache counters so cache effectiveness is visible
    // per run, not only in unit tests, plus the companion cell's
    // migration ledger.
    let _ = std::fs::create_dir_all("target");
    let jsonl = std::path::Path::new("target").join("obs_trace.jsonl");
    let summary = std::path::Path::new("target").join("obs_summary.json");
    if std::fs::write(&jsonl, trace.to_jsonl()).is_ok() {
        println!("wrote {}", jsonl.display());
    }
    let mut summary_trace = trace.clone();
    summary_trace.set_cache_stats(stats.hits, stats.misses);
    let base = summary_trace.summary_json();
    let base = base
        .strip_suffix("\n}\n")
        .expect("ring summary closes with a bare brace");
    let spliced = format!(
        "{base},\n  \"migration\": {}\n}}\n",
        migration.summary_json()
    );
    if std::fs::write(&summary, spliced).is_ok() {
        println!("wrote {}", summary.display());
    }

    if failures > 0 {
        eprintln!("\nobs_report: {failures} check(s) FAILED");
        return ExitCode::FAILURE;
    }
    println!("\nall phase-sum, parallel-seek, and closed-form replay checks passed");
    ExitCode::SUCCESS
}
