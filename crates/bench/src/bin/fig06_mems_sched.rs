//! Figure 6: scheduling algorithms on the MEMS device, random workload.
//!
//! Reproduces both panels: (a) average response time and (b) the squared
//! coefficient of variation (starvation resistance) versus request arrival
//! rate, for FCFS, SSTF_LBN, C-LOOK, and SPTF.
//!
//! Paper shape to check: all algorithms finish in the same order as on
//! disks — SPTF best and FCFS worst on response time, C-LOOK best on
//! σ²/µ²; the FCFS-vs-LBN gap is *larger* than on disk (seek time is a
//! larger fraction of service time), while the C-LOOK-vs-SSTF_LBN gap is
//! smaller (both drive X seeks down to where Y seeks matter, which
//! neither can see).

use mems_bench::{sched_sweep, write_csv, Table};
use mems_device::{MemsDevice, MemsParams};
use mems_os::sched::Algorithm;
use storage_trace::RandomWorkload;

fn main() {
    let requests: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let rates: Vec<f64> = vec![
        100.0, 250.0, 500.0, 750.0, 1000.0, 1250.0, 1500.0, 1750.0, 2000.0, 2250.0, 2500.0,
    ];
    let capacity = MemsParams::default().geometry().total_sectors();

    println!("Figure 6: scheduling algorithms, MEMS device, random workload");
    println!("({requests} requests per point, 500-request warm-up)\n");

    let points = sched_sweep(
        &rates,
        &Algorithm::ALL,
        |rate| RandomWorkload::paper(capacity, rate, requests, 0x5EED_0006),
        || MemsDevice::new(MemsParams::default()),
        500,
    );

    for (panel, metric, unit) in [
        ("(a) average response time", "resp", "ms"),
        ("(b) squared coefficient of variation", "cv2", ""),
    ] {
        println!("{panel}");
        let mut headers = vec![format!("rate (req/s)")];
        headers.extend(Algorithm::ALL.iter().map(|a| {
            if unit.is_empty() {
                a.label().to_string()
            } else {
                format!("{} ({unit})", a.label())
            }
        }));
        let mut table = Table::new(headers);
        for &rate in &rates {
            let mut row = vec![format!("{rate:.0}")];
            for alg in Algorithm::ALL {
                let p = points
                    .iter()
                    .find(|p| p.algorithm == alg.label() && p.rate == rate)
                    .expect("point exists");
                let v = if metric == "resp" {
                    p.mean_response_ms
                } else {
                    p.cv2
                };
                row.push(format!("{v:.3}"));
            }
            table.row(row);
        }
        println!("{}", table.render());
        write_csv(
            &format!(
                "fig06_{}.csv",
                if metric == "resp" {
                    "a_response"
                } else {
                    "b_cv2"
                }
            ),
            &table.to_csv(),
        );
    }
}
