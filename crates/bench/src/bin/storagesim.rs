//! `storagesim` — command-line driver for the memsstore simulation stack.
//!
//! Composes any device (including arrays, caches, and power wrappers),
//! any scheduler, and any workload from the command line and prints the
//! full report.
//!
//! ```text
//! storagesim [--device mems|mems-nosettle|atlas|travelstar|raid0|raid5]
//!            [--scheduler fcfs|sstf|clook|sptf|look|fscan|aged-sptf|vr]
//!            [--workload random|cello|tpcc|streaming]
//!            [--rate REQS_PER_SEC]        (random workload; default 1000)
//!            [--scale FACTOR]             (trace workloads; default 1)
//!            [--requests N]               (default 10000)
//!            [--seed SEED]                (default 42)
//!            [--warmup N]                 (default 500)
//!            [--cache]                    (add a 4 MB readahead buffer)
//!            [--idle-timeout SECONDS]     (add power management)
//! ```

use std::process::exit;

use atlas_disk::{DiskDevice, DiskEnergyModel, DiskParams};
use mems_device::{MemsDevice, MemsEnergyModel, MemsParams};
use mems_os::array::{Raid0Device, Raid5Device};
use mems_os::cache::CachedDevice;
use mems_os::power::{PowerManagedDevice, PowerProfile};
use mems_os::sched::{
    AgedSptfScheduler, ClookScheduler, FscanScheduler, LookScheduler, SptfScheduler, SstfScheduler,
    VrScheduler,
};
use storage_sim::{Driver, DynScheduler, FifoScheduler, SimReport, StorageDevice, Workload};
use storage_trace::{
    cello_for_capacity, generate_streaming, tpcc_for_capacity, RandomWorkload, StreamingParams,
    TraceWorkload,
};

#[derive(Debug)]
struct Args {
    device: String,
    scheduler: String,
    workload: String,
    rate: f64,
    scale: f64,
    requests: u64,
    seed: u64,
    warmup: u64,
    cache: bool,
    idle_timeout: Option<f64>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            device: "mems".into(),
            scheduler: "sptf".into(),
            workload: "random".into(),
            rate: 1000.0,
            scale: 1.0,
            requests: 10_000,
            seed: 42,
            warmup: 500,
            cache: false,
            idle_timeout: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: storagesim [--device mems|mems-nosettle|atlas|travelstar|raid0|raid5]\n\
         \x20                 [--scheduler fcfs|sstf|clook|sptf|look|fscan|aged-sptf|vr]\n\
         \x20                 [--workload random|cello|tpcc|streaming] [--rate R] [--scale S]\n\
         \x20                 [--requests N] [--seed S] [--warmup N]\n\
         \x20                 [--cache] [--idle-timeout SECS]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--device" => args.device = value("--device"),
            "--scheduler" => args.scheduler = value("--scheduler"),
            "--workload" => args.workload = value("--workload"),
            "--rate" => args.rate = value("--rate").parse().unwrap_or_else(|_| usage()),
            "--scale" => args.scale = value("--scale").parse().unwrap_or_else(|_| usage()),
            "--requests" => args.requests = value("--requests").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--warmup" => args.warmup = value("--warmup").parse().unwrap_or_else(|_| usage()),
            "--cache" => args.cache = true,
            "--idle-timeout" => {
                args.idle_timeout =
                    Some(value("--idle-timeout").parse().unwrap_or_else(|_| usage()))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    args
}

fn build_scheduler(name: &str) -> Box<dyn DynScheduler> {
    match name {
        "fcfs" => Box::new(FifoScheduler::new()),
        "sstf" => Box::new(SstfScheduler::new()),
        "clook" => Box::new(ClookScheduler::new()),
        "sptf" => Box::new(SptfScheduler::new()),
        "look" => Box::new(LookScheduler::new()),
        "fscan" => Box::new(FscanScheduler::new()),
        "aged-sptf" => Box::new(AgedSptfScheduler::new(2.0)),
        "vr" => Box::new(VrScheduler::new(0.2, 16_000_000)),
        other => {
            eprintln!("unknown scheduler {other}");
            usage();
        }
    }
}

fn run<D: StorageDevice>(device: D, args: &Args) -> (SimReport, String) {
    let name = device.name().to_string();
    let capacity = device.capacity_lbns();
    let workload: Box<dyn Workload> = match args.workload.as_str() {
        "random" => Box::new(RandomWorkload::paper(
            capacity,
            args.rate,
            args.requests,
            args.seed,
        )),
        "cello" => Box::new(TraceWorkload::new(
            cello_for_capacity(capacity, args.requests, args.seed),
            args.scale,
        )),
        "tpcc" => Box::new(TraceWorkload::new(
            tpcc_for_capacity(capacity, args.requests, args.seed),
            args.scale,
        )),
        "streaming" => Box::new(TraceWorkload::new(
            generate_streaming(
                &StreamingParams {
                    capacity,
                    requests: args.requests,
                    ..StreamingParams::default()
                },
                args.seed,
            ),
            args.scale,
        )),
        other => {
            eprintln!("unknown workload {other}");
            usage();
        }
    };
    struct W(Box<dyn Workload>);
    impl Workload for W {
        fn next_request(&mut self) -> Option<storage_sim::Request> {
            self.0.next_request()
        }
    }
    let mut driver = Driver::new(W(workload), build_scheduler(&args.scheduler), device)
        .warmup_requests(args.warmup)
        .record_completions(true);
    (driver.run(), name)
}

fn dispatch(args: &Args) -> (SimReport, String) {
    // Compose wrappers inside-out: base device, then cache, then power.
    macro_rules! finish {
        ($dev:expr, $profile:expr) => {{
            let dev = $dev;
            match (args.cache, args.idle_timeout) {
                (false, None) => run(dev, args),
                (true, None) => run(CachedDevice::new(dev, 8192, 512, 20e-6), args),
                (false, Some(t)) => run(PowerManagedDevice::new(dev, $profile, t), args),
                (true, Some(t)) => run(
                    PowerManagedDevice::new(CachedDevice::new(dev, 8192, 512, 20e-6), $profile, t),
                    args,
                ),
            }
        }};
    }
    let mems_profile = PowerProfile::mems(&MemsEnergyModel::default(), 1280);
    let atlas_profile = PowerProfile::disk(&DiskEnergyModel::atlas_10k());
    let mobile_profile = PowerProfile::disk(&DiskEnergyModel::travelstar_class());
    match args.device.as_str() {
        "mems" => finish!(MemsDevice::new(MemsParams::default()), mems_profile),
        "mems-nosettle" => finish!(
            MemsDevice::new(MemsParams::default().with_settle_constants(0.0)),
            mems_profile
        ),
        "atlas" => finish!(
            DiskDevice::new(DiskParams::quantum_atlas_10k()),
            atlas_profile
        ),
        "travelstar" => finish!(
            DiskDevice::new(DiskParams::ibm_travelstar_class()),
            mobile_profile
        ),
        "raid0" => finish!(
            Raid0Device::new(
                (0..4)
                    .map(|_| MemsDevice::new(MemsParams::default()))
                    .collect::<Vec<_>>(),
                64,
            ),
            mems_profile
        ),
        "raid5" => finish!(
            Raid5Device::new(
                (0..5)
                    .map(|_| MemsDevice::new(MemsParams::default()))
                    .collect::<Vec<_>>(),
                64,
            ),
            mems_profile
        ),
        other => {
            eprintln!("unknown device {other}");
            usage();
        }
    }
}

fn main() {
    let args = parse_args();
    let (report, device_name) = dispatch(&args);

    println!("device        {device_name}");
    println!("scheduler     {}", args.scheduler);
    println!(
        "workload      {} ({} requests, seed {})",
        args.workload, args.requests, args.seed
    );
    println!();
    println!("completed     {}", report.completed);
    println!("makespan      {:.3} s", report.makespan.as_secs());
    println!(
        "throughput    {:.1} req/s",
        report.completed as f64 / report.makespan.as_secs().max(1e-12)
    );
    println!("utilization   {:.1}%", report.utilization() * 100.0);
    println!();
    println!("response time mean    {:.3} ms", report.response.mean_ms());
    println!(
        "response time sigma2/mu2 {:.3}",
        report.response.sq_coeff_var()
    );
    let mut resp = report.response.clone();
    println!("response time p50     {:.3} ms", resp.percentile(0.5) * 1e3);
    println!(
        "response time p95     {:.3} ms",
        resp.percentile(0.95) * 1e3
    );
    println!(
        "response time p99     {:.3} ms",
        resp.percentile(0.99) * 1e3
    );
    println!("response time max     {:.3} ms", resp.max() * 1e3);
    println!();
    // ASCII response-time histogram over [0, p99].
    let mut resp = report.response.clone();
    let p99 = resp.percentile(0.99).max(1e-6);
    if let Some(completions) = report.completions.as_ref() {
        let mut h = storage_sim::Histogram::new(0.0, p99, 12);
        for c in completions {
            h.push(c.response_time().as_secs());
        }
        println!("response-time histogram (to p99):");
        let peak = (0..h.num_bins())
            .map(|i| h.bin_count(i))
            .max()
            .unwrap_or(1)
            .max(1);
        for i in 0..h.num_bins() {
            let (lo, hi) = h.bin_bounds(i);
            let bar = "#".repeat((h.bin_count(i) * 48 / peak) as usize);
            println!("  {:>8.3}-{:<8.3} ms |{bar}", lo * 1e3, hi * 1e3);
        }
        println!("  (+{} above p99)", h.overflow());
        println!();
    }
    let n = report.completed.max(1) as f64;
    let b = &report.breakdown_sum;
    println!("mean service decomposition:");
    println!("  positioning {:.3} ms", b.positioning / n * 1e3);
    println!("  transfer    {:.3} ms", b.transfer / n * 1e3);
    println!("  overhead    {:.3} ms", b.overhead / n * 1e3);
    println!("  queue       {:.3} ms", report.queue_time.mean() * 1e3);
    println!();
    println!(
        "mean queue depth {:.1}, max {}",
        report.mean_queue_depth, report.max_queue_depth
    );
}
