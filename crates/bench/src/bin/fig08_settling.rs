//! Figure 8: interaction of SPTF and settling time (§4.4).
//!
//! Runs the Figure 6 sweep with the number of settling time constants set
//! to 0 and 2 (the default device uses 1).
//!
//! Paper shape to check: with two settling constants the X seek dominates
//! and SSTF_LBN closely approximates SPTF; with zero settling constants Y
//! seeks matter and SPTF pulls far ahead of all LBN-based algorithms.

use mems_bench::{sched_sweep, write_csv, Table};
use mems_device::{MemsDevice, MemsParams};
use mems_os::sched::Algorithm;
use storage_trace::RandomWorkload;

fn main() {
    let requests: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let capacity = MemsParams::default().geometry().total_sectors();

    for (panel, constants) in [
        ("(a) zero settling time constants", 0.0),
        ("(b) two settling time constants", 2.0),
    ] {
        let rates: Vec<f64> = if constants == 0.0 {
            vec![
                250.0, 500.0, 1000.0, 1500.0, 2000.0, 2500.0, 3000.0, 3500.0, 4000.0,
            ]
        } else {
            vec![
                100.0, 250.0, 500.0, 750.0, 1000.0, 1250.0, 1500.0, 1750.0, 2000.0,
            ]
        };
        println!("Figure 8 {panel}: average response time (ms)");
        println!("({requests} requests per point)\n");
        let points = sched_sweep(
            &rates,
            &Algorithm::ALL,
            |rate| RandomWorkload::paper(capacity, rate, requests, 0x5EED_0008),
            || MemsDevice::new(MemsParams::default().with_settle_constants(constants)),
            500,
        );
        let mut headers = vec!["rate (req/s)".to_string()];
        headers.extend(Algorithm::ALL.iter().map(|a| a.label().to_string()));
        let mut table = Table::new(headers);
        for &rate in &rates {
            let mut row = vec![format!("{rate:.0}")];
            for alg in Algorithm::ALL {
                let p = points
                    .iter()
                    .find(|p| p.algorithm == alg.label() && p.rate == rate)
                    .expect("point exists");
                row.push(format!("{:.3}", p.mean_response_ms));
            }
            table.row(row);
        }
        println!("{}", table.render());
        let name = if constants == 0.0 {
            "fig08_a_zero_settle.csv"
        } else {
            "fig08_b_two_settle.csv"
        };
        write_csv(name, &table.to_csv());

        // The §4.4 headline: SPTF's margin over SSTF_LBN at high load.
        let high = rates[rates.len() - 3];
        let sptf = points
            .iter()
            .find(|p| p.algorithm == "SPTF" && p.rate == high)
            .expect("point");
        let sstf = points
            .iter()
            .find(|p| p.algorithm == "SSTF_LBN" && p.rate == high)
            .expect("point");
        println!(
            "SPTF margin over SSTF_LBN at {high:.0} req/s: {:.1}%\n",
            (sstf.mean_response_ms / sptf.mean_response_ms - 1.0) * 100.0
        );
    }
}
