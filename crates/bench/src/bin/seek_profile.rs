//! Supplementary: the sled seek-time profile (§2.4.4).
//!
//! Disk seek time is a function of distance alone; the MEMS sled's is
//! not — the spring makes it depend on the *start position and
//! direction* too. This harness prints X-seek time versus distance from
//! three start positions (left edge, center, right edge), the settle
//! constant that sits on top, and the Y-seek/turnaround costs, making
//! §2.4.4's "seek-reducing algorithms may not achieve their best
//! performance if they look only at distances" concrete.

use mems_bench::{write_csv, Table};
use mems_device::{MemsParams, SpringSled};

fn main() {
    let p = MemsParams::default();
    let sled = SpringSled::from_spring_factor(p.accel, p.spring_factor, p.half_mobility());
    let half = p.half_mobility();
    let bit = p.bit_width;

    println!("X-dimension seek time (ms) vs distance, by start position");
    println!(
        "(add {:.3} ms settle to every nonzero X seek)\n",
        p.settle_time() * 1e3
    );
    let mut table = Table::new(vec![
        "distance (cylinders)".into(),
        "from left edge, rightward".into(),
        "from center, rightward".into(),
        "from right edge, leftward".into(),
    ]);
    let mut csv = String::from("distance_cyl,from_left_ms,from_center_ms,from_right_ms\n");
    for d_cyl in [1u32, 10, 50, 100, 250, 500, 1000, 1500, 2000, 2400] {
        let d = f64::from(d_cyl) * bit;
        let from_left = sled.rest_seek_time(-half + bit, (-half + bit + d).min(half - bit));
        let from_center = if d / 2.0 < half - bit {
            sled.rest_seek_time(-d / 2.0, d / 2.0)
        } else {
            sled.rest_seek_time(-half + bit, (-half + bit + d).min(half - bit))
        };
        let from_right = sled.rest_seek_time(half - bit, (half - bit - d).max(-half + bit));
        table.row(vec![
            format!("{d_cyl}"),
            format!("{:.4}", from_left * 1e3),
            format!("{:.4}", from_center * 1e3),
            format!("{:.4}", from_right * 1e3),
        ]);
        csv.push_str(&format!(
            "{d_cyl},{:.5},{:.5},{:.5}\n",
            from_left * 1e3,
            from_center * 1e3,
            from_right * 1e3
        ));
    }
    println!("{}", table.render());
    write_csv("seek_profile.csv", &csv);

    println!(
        "Y-dimension costs at access velocity ({:.1} mm/s):\n",
        p.access_velocity() * 1e3
    );
    let v = p.access_velocity();
    let mut t = Table::new(vec!["maneuver".into(), "time (ms)".into()]);
    for (label, time) in [
        ("turnaround at center", sled.turnaround_time(0.0, v)),
        (
            "turnaround at edge, moving outward",
            sled.turnaround_time(half * 0.98, v),
        ),
        (
            "turnaround at edge, moving inward",
            sled.turnaround_time(half * 0.98, -v),
        ),
        (
            "full-travel Y reposition (rest->moving)",
            sled.seek_time(-half + bit, 0.0, half - bit, v),
        ),
        (
            "stop from access velocity at center",
            sled.seek_time(0.0, v, 2.0e-6, 0.0),
        ),
    ] {
        t.row(vec![label.into(), format!("{:.4}", time * 1e3)]);
    }
    println!("{}", t.render());
    println!("paper check: short seeks near the edges take longer than near the");
    println!("center, and turnarounds are direction-dependent (§2.4.4, Table 2).");
}
