//! Fleet-scale experiments: scaling curves, tail latency, and
//! rebuild-under-load on the sharded multi-device engine.
//!
//! Three experiments, each emitting a byte-stable golden CSV:
//!
//! * `fleet_scale.csv` — capacity/throughput scaling from 1 to 1024
//!   striped MEMS devices at constant per-device load;
//! * `fleet_tail.csv` — fleet-wide response-time percentiles (p50–p99.9,
//!   the latter from the log-spaced tail histogram) on a 64-device fleet
//!   across load points;
//! * `fleet_rebuild.csv` — a RAID-10 fleet before/after injected tip
//!   failures, with and without a paced rebuild stream copying the
//!   surviving mirror back.
//!
//! The bin opens with an in-process determinism gate: one fleet cell is
//! rerun at shards=1/4/16 (and across thread counts) and must produce
//! identical digests, and a one-station fleet must reproduce the
//! single-loop [`Driver`] bit for bit — any divergence exits non-zero
//! before a single CSV is written. Pass `--determinism-only` to run just
//! the gate (the CI `fleet-scale determinism` step does). Pass `--long`
//! for the informational 10× horizon: CSVs land under `target/long/`
//! and the byte-gated goldens in `results/` are never touched.

use mems_bench::{surfaced_mems_device, write_csv, Table};
use mems_device::MemsParams;
use mems_fleet::{FleetConfig, FleetEngine, FleetReport, RebuildPlan, VolumeSpec};
use mems_os::fault::DegradedDevice;
use mems_os::sched::SptfScheduler;
use storage_sim::{Driver, FaultClock, Request, SimTime, Workload};
use storage_trace::RandomWorkload;

const MEMS_CAPACITY: u64 = 6_750_000;
const TIPS: u32 = 6400;
const STRIPE_UNIT: u32 = 64;
const WORKLOAD_SEED: u64 = 42;
const FAULT_SEED: u64 = 0x5EED_0077;
/// Per-device arrival rate for the scaling curve: moderate load, well
/// under a single device's saturation point.
const SCALE_RATE_PER_DEV: f64 = 500.0;
const SCALE_REQS_PER_DEV: u64 = 100;

fn collect(mut w: impl Workload) -> Vec<Request> {
    let mut out = Vec::new();
    while let Some(r) = w.next_request() {
        out.push(r);
    }
    out
}

/// Writes a CSV to the byte-gated goldens (`results/`) or, on the
/// informational `--long` horizon, to `target/long/` so the goldens stay
/// untouched.
fn emit_csv(long: bool, name: &str, contents: &str) {
    if !long {
        write_csv(name, contents);
        return;
    }
    let dir = std::path::Path::new("target/long");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Builds and runs a striped fleet of `devices` MEMS stations with
/// `scale ×` the baseline request count.
fn scale_cell(devices: usize, shards: usize, threads: usize, scale: u64) -> FleetReport {
    let params = MemsParams::default();
    let volume = VolumeSpec::flat(devices, STRIPE_UNIT);
    let reqs = SCALE_REQS_PER_DEV * devices as u64 * scale;
    let requests = collect(RandomWorkload::paper(
        volume.capacity(MEMS_CAPACITY),
        SCALE_RATE_PER_DEV * devices as f64,
        reqs,
        WORKLOAD_SEED,
    ));
    FleetEngine::new(
        (0..devices)
            .map(|_| surfaced_mems_device(&params))
            .collect(),
        |_| SptfScheduler::new(),
        &volume,
        &requests,
        FleetConfig {
            shards,
            threads,
            epoch: SimTime::from_ms(10.0),
            warmup_requests: reqs / 20,
            ..FleetConfig::default()
        },
    )
    .run()
}

/// The determinism gate: shard/thread/epoch invariance plus single-loop
/// equivalence. Exits the process non-zero on any divergence.
fn determinism_gate() {
    // One cell, five shard/thread splits: identical digests required.
    let baseline = scale_cell(16, 1, 1, 1);
    for (shards, threads) in [(4, 1), (4, 4), (16, 8)] {
        let run = scale_cell(16, shards, threads, 1);
        if run.digest() != baseline.digest() {
            eprintln!("FAIL: fleet digest diverged at shards={shards} threads={threads}");
            eprintln!("  baseline: {}", baseline.digest());
            eprintln!("  run:      {}", run.digest());
            std::process::exit(1);
        }
    }
    if baseline.station_restructures != 0 {
        eprintln!(
            "FAIL: {} calendar-queue restructures; routed len_hint pre-sizing regressed",
            baseline.station_restructures
        );
        std::process::exit(1);
    }

    // A one-station fleet must reproduce the pre-existing single-loop
    // driver bit for bit.
    let params = MemsParams::default();
    let requests = collect(RandomWorkload::paper(
        MEMS_CAPACITY,
        SCALE_RATE_PER_DEV,
        SCALE_REQS_PER_DEV,
        WORKLOAD_SEED,
    ));
    let solo = Driver::new(
        storage_sim::VecWorkload::new(requests.clone()),
        SptfScheduler::new(),
        surfaced_mems_device(&params),
    )
    .record_completions(true)
    .run();
    let fleet = FleetEngine::new(
        vec![surfaced_mems_device(&params)],
        |_| SptfScheduler::new(),
        &VolumeSpec::leaf(0),
        &requests,
        FleetConfig::default(),
    )
    .run();
    let station = &fleet.stations[0];
    let identical = station.completed == solo.completed
        && station.makespan == solo.makespan
        && station.response.mean().to_bits() == solo.response.mean().to_bits()
        && station.busy_secs.to_bits() == solo.busy_secs.to_bits();
    let completions_match = {
        let (a, b) = (
            station.completions.as_ref().unwrap(),
            solo.completions.as_ref().unwrap(),
        );
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                x.request.id == y.request.id
                    && x.start_service == y.start_service
                    && x.completion == y.completion
            })
    };
    if !(identical && completions_match) {
        eprintln!("FAIL: one-station fleet diverged from the single-loop driver");
        eprintln!(
            "  driver: completed {} makespan {:?} mean {}",
            solo.completed,
            solo.makespan,
            solo.response.mean()
        );
        eprintln!(
            "  fleet:  completed {} makespan {:?} mean {}",
            station.completed,
            station.makespan,
            station.response.mean()
        );
        std::process::exit(1);
    }
    println!("determinism gate: shards 1/4/16, threads 1/4/8 identical; shards=1 == Driver::run\n");
}

fn scaling_experiment(t: &mut Vec<String>, scale: u64, long: bool) {
    let mut table = Table::new(vec![
        "devices".into(),
        "requests".into(),
        "throughput (req/s)".into(),
        "mean resp (ms)".into(),
        "p99.9 (ms)".into(),
        "utilization".into(),
    ]);
    let mut csv = String::from(
        "devices,requests,capacity_lbns,throughput_rps,mean_response_ms,p99_ms,p999_ms,\
         utilization,max_queue_depth\n",
    );
    for devices in [1usize, 4, 16, 64, 256, 1024] {
        let shards = devices.min(16);
        let threads = shards.min(8);
        let r = scale_cell(devices, shards, threads, scale);
        assert_eq!(r.station_restructures, 0, "pre-sizing must hold at scale");
        let capacity = VolumeSpec::flat(devices, STRIPE_UNIT).capacity(MEMS_CAPACITY);
        table.row(vec![
            format!("{devices}"),
            format!("{}", r.completed),
            format!("{:.0}", r.throughput()),
            format!("{:.3}", r.response.mean() * 1e3),
            format!("{:.3}", r.tail_quantile(0.999) * 1e3),
            format!("{:.3}", r.utilization()),
        ]);
        csv.push_str(&format!(
            "{devices},{completed},{capacity},{tput:.3},{mean:.6},{p99:.6},{p999:.6},\
             {util:.6},{depth}\n",
            completed = r.completed,
            tput = r.throughput(),
            mean = r.response.mean() * 1e3,
            p99 = r.tail_quantile(0.99) * 1e3,
            p999 = r.tail_quantile(0.999) * 1e3,
            util = r.utilization(),
            depth = r.max_station_queue_depth,
        ));
    }
    println!(
        "fleet scaling (constant per-device load):\n{}",
        table.render()
    );
    emit_csv(long, "fleet_scale.csv", &csv);
    t.push("fleet_scale.csv".into());
}

fn tail_experiment(t: &mut Vec<String>, scale: u64, long: bool) {
    const DEVICES: usize = 64;
    let reqs: u64 = 200 * DEVICES as u64 * scale;
    let params = MemsParams::default();
    let volume = VolumeSpec::flat(DEVICES, STRIPE_UNIT);
    let mut table = Table::new(vec![
        "rate/dev (req/s)".into(),
        "p50 (ms)".into(),
        "p95 (ms)".into(),
        "p99 (ms)".into(),
        "p99.9 (ms)".into(),
        "max (ms)".into(),
    ]);
    let mut csv = String::from(
        "rate_per_dev,completed,mean_ms,p50_ms,p95_ms,p99_ms,p999_ms,max_ms,utilization\n",
    );
    for rate_per_dev in [400.0f64, 800.0, 1200.0] {
        let requests = collect(RandomWorkload::paper(
            volume.capacity(MEMS_CAPACITY),
            rate_per_dev * DEVICES as f64,
            reqs,
            WORKLOAD_SEED,
        ));
        let mut r = FleetEngine::new(
            (0..DEVICES)
                .map(|_| surfaced_mems_device(&params))
                .collect(),
            |_| SptfScheduler::new(),
            &volume,
            &requests,
            FleetConfig {
                shards: 16,
                threads: 8,
                epoch: SimTime::from_ms(10.0),
                warmup_requests: reqs / 20,
                ..FleetConfig::default()
            },
        )
        .run();
        let (p50, p95) = (r.response.percentile(0.50), r.response.percentile(0.95));
        table.row(vec![
            format!("{rate_per_dev:.0}"),
            format!("{:.3}", p50 * 1e3),
            format!("{:.3}", p95 * 1e3),
            format!("{:.3}", r.tail_quantile(0.99) * 1e3),
            format!("{:.3}", r.tail_quantile(0.999) * 1e3),
            format!("{:.3}", r.response.max() * 1e3),
        ]);
        csv.push_str(&format!(
            "{rate_per_dev:.0},{completed},{mean:.6},{p50:.6},{p95:.6},{p99:.6},{p999:.6},\
             {max:.6},{util:.6}\n",
            completed = r.completed,
            mean = r.response.mean() * 1e3,
            p50 = p50 * 1e3,
            p95 = p95 * 1e3,
            p99 = r.tail_quantile(0.99) * 1e3,
            p999 = r.tail_quantile(0.999) * 1e3,
            max = r.response.max() * 1e3,
            util = r.utilization(),
        ));
    }
    println!("fleet tail latency (64 devices):\n{}", table.render());
    emit_csv(long, "fleet_tail.csv", &csv);
    t.push("fleet_tail.csv".into());
}

fn rebuild_experiment(t: &mut Vec<String>, scale: u64, long: bool) {
    // RAID-10: a stripe of four mirror pairs over eight degraded-capable
    // MEMS devices. Station 0 loses tips at t = 0.5 s; the rebuild
    // stream copies its mirror peer (station 1) back, paced at 2 ms.
    const PAIRS: usize = 4;
    let reqs: u64 = 4000 * scale;
    const RATE: f64 = 2000.0;
    let params = MemsParams::default();
    let pair =
        |a: usize, b: usize| VolumeSpec::mirror(vec![VolumeSpec::leaf(a), VolumeSpec::leaf(b)]);
    let volume = VolumeSpec::stripe(
        (0..PAIRS).map(|p| pair(2 * p, 2 * p + 1)).collect(),
        STRIPE_UNIT,
    );
    let requests = collect(RandomWorkload::paper(
        volume.capacity(MEMS_CAPACITY),
        RATE,
        reqs,
        WORKLOAD_SEED,
    ));
    let build = || {
        FleetEngine::new(
            (0..2 * PAIRS)
                .map(|i| {
                    DegradedDevice::mems(surfaced_mems_device(&params), FAULT_SEED + i as u64)
                        .with_spare_tips(8)
                })
                .collect(),
            |_| SptfScheduler::new(),
            &volume,
            &requests,
            FleetConfig {
                shards: 4,
                threads: 4,
                epoch: SimTime::from_ms(10.0),
                warmup_requests: reqs / 20,
                ..FleetConfig::default()
            },
        )
    };
    let fault_clock = || FaultClock::tip_failures(FAULT_SEED, 64, TIPS, SimTime::from_secs(0.5));
    let rebuild = RebuildPlan {
        source: 1,
        target: 0,
        start: SimTime::from_secs(0.5),
        pace: SimTime::from_ms(2.0),
        span_lbns: 512 * 1024,
        chunk_sectors: 512,
    };

    let baseline = build().run();
    let mut faulted_engine = build();
    faulted_engine.set_station_faults(0, fault_clock());
    let faulted = faulted_engine.run();
    let mut rebuilding_engine = build();
    rebuilding_engine.set_station_faults(0, fault_clock());
    rebuild.inject(&mut rebuilding_engine);
    let rebuilding = rebuilding_engine.run();

    let mut table = Table::new(vec![
        "scenario".into(),
        "mean resp (ms)".into(),
        "p99 (ms)".into(),
        "p99.9 (ms)".into(),
        "faults".into(),
        "rebuild I/Os".into(),
    ]);
    let mut csv = String::from(
        "scenario,completed,background_completed,fault_events,mean_response_ms,p99_ms,p999_ms,\
         bg_mean_ms,makespan_s,utilization\n",
    );
    for (scenario, r) in [
        ("baseline", &baseline),
        ("tip_failures", &faulted),
        ("rebuild_under_load", &rebuilding),
    ] {
        table.row(vec![
            scenario.into(),
            format!("{:.3}", r.response.mean() * 1e3),
            format!("{:.3}", r.tail_quantile(0.99) * 1e3),
            format!("{:.3}", r.tail_quantile(0.999) * 1e3),
            format!("{}", r.fault_events),
            format!("{}", r.background_completed),
        ]);
        csv.push_str(&format!(
            "{scenario},{completed},{bg},{faults},{mean:.6},{p99:.6},{p999:.6},{bg_mean:.6},\
             {mk:.6},{util:.6}\n",
            completed = r.completed,
            bg = r.background_completed,
            faults = r.fault_events,
            mean = r.response.mean() * 1e3,
            p99 = r.tail_quantile(0.99) * 1e3,
            p999 = r.tail_quantile(0.999) * 1e3,
            bg_mean = r.background_response.mean() * 1e3,
            mk = r.makespan.as_secs(),
            util = r.utilization(),
        ));
    }
    assert!(faulted.fault_events > 0, "fault clock must deliver");
    assert_eq!(
        rebuilding.background_completed,
        2 * (512 * 1024 / 512),
        "every rebuild chunk must complete"
    );
    println!(
        "rebuild under load (RAID-10, 8 devices):\n{}",
        table.render()
    );
    emit_csv(long, "fleet_rebuild.csv", &csv);
    t.push("fleet_rebuild.csv".into());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let determinism_only = args.iter().any(|a| a == "--determinism-only");
    let long = args.iter().any(|a| a == "--long");
    determinism_gate();
    if determinism_only {
        return;
    }
    let scale = if long { 10 } else { 1 };
    let mut written = Vec::new();
    scaling_experiment(&mut written, scale, long);
    tail_experiment(&mut written, scale, long);
    rebuild_experiment(&mut written, scale, long);
    println!("wrote {}", written.join(", "));
}
