//! Ablation: simultaneously active tips (power/heat budget).
//!
//! §2.2 fixes the default at 1280 of 6400 tips for power and heat; §7
//! notes the OS can trade bandwidth for power by bounding active tips.
//! This sweep shows what the budget buys: streaming bandwidth and
//! transfer parallelism scale with it, small-access latency barely moves
//! (one row pass is one row pass), and streaming power scales linearly.

use mems_bench::{write_csv, Table};
use mems_device::{MemsDevice, MemsEnergyModel, MemsParams, SledState};
use storage_sim::{IoKind, Request, SimTime};

fn main() {
    println!("Ablation: simultaneously active tips (paper default 1280)\n");
    let energy = MemsEnergyModel::default();
    let mut table = Table::new(vec![
        "active tips".into(),
        "tracks/cyl".into(),
        "sectors/row".into(),
        "bandwidth (MB/s)".into(),
        "4KB svc (ms)".into(),
        "256KB svc (ms)".into(),
        "streaming power (W)".into(),
    ]);
    let mut csv = String::from("active_tips,bandwidth_mbs,svc4k_ms,svc256k_ms,power_w\n");
    for active in [320u32, 640, 1280, 3200, 6400] {
        let params = MemsParams {
            active_tips: active,
            ..MemsParams::default()
        };
        let geom = params.geometry();
        let dev = MemsDevice::new(params.clone());
        let center = SledState::CENTERED;
        // 4 KB at a center-cylinder LBN of this geometry.
        let lbn4k = u64::from(geom.cylinders / 2)
            * u64::from(geom.tracks_per_cylinder)
            * u64::from(geom.sectors_per_track);
        let req4k = Request::new(0, SimTime::ZERO, lbn4k, 8, IoKind::Read);
        let (b4, _) = dev.service_from(center, &req4k);
        let req256k = Request::new(1, SimTime::ZERO, lbn4k, 512, IoKind::Read);
        let (b256, _) = dev.service_from(center, &req256k);
        let bw = params.streaming_bandwidth() / 1e6;
        let p = energy.streaming_power(active);
        table.row(vec![
            format!("{active}"),
            format!("{}", geom.tracks_per_cylinder),
            format!("{}", geom.sectors_per_row),
            format!("{bw:.1}"),
            format!("{:.3}", b4.total() * 1e3),
            format!("{:.3}", b256.total() * 1e3),
            format!("{p:.2}"),
        ]);
        csv.push_str(&format!(
            "{active},{bw:.2},{:.4},{:.4},{p:.3}\n",
            b4.total() * 1e3,
            b256.total() * 1e3
        ));
    }
    println!("{}", table.render());
    write_csv("ablation_active_tips.csv", &csv);
    println!("reading the table: bandwidth and power scale with the tip budget;");
    println!("small random accesses don't (their time is positioning + one row");
    println!("pass) — so a power-constrained OS should shrink the budget for");
    println!("random workloads and spend it on streaming ones (§7).");
}
