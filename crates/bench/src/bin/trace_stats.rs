//! `trace_stats` — characterize a workload.
//!
//! With no arguments, prints the summaries of the three built-in
//! workloads (random / Cello-like / TPC-C-like) side by side, against
//! the published characteristics each generator was calibrated to.
//! With a file argument, parses the trace-format file and summarizes it.
//!
//! The built-in summaries are computed with [`TraceSummary::from_stream`]
//! in one pass over the generator stream — no `Vec<TraceRecord>` is ever
//! built, so `--requests 10000000` characterizes a 10⁷-record trace in
//! constant memory.
//!
//! ```text
//! trace_stats [FILE] [--capacity SECTORS] [--requests N]
//! ```

use mems_device::MemsParams;
use storage_sim::Workload;
use storage_trace::{
    parse_trace, CelloParams, CelloWorkload, RandomWorkload, TpccParams, TpccWorkload, TraceRecord,
    TraceSummary,
};

/// Adapts any [`Workload`] into the record stream
/// [`TraceSummary::from_stream`] consumes, one request at a time.
struct RecordStream<W>(W);

impl<W: Workload> Iterator for RecordStream<W> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        self.0.next_request().map(|r| TraceRecord {
            arrival: r.arrival.as_secs(),
            lbn: r.lbn,
            sectors: r.sectors,
            kind: r.kind,
        })
    }
}

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let capacity = flag(&args, "--capacity")
        .unwrap_or_else(|| MemsParams::default().geometry().total_sectors());
    let n = flag(&args, "--requests").unwrap_or(10_000);

    if let Some(path) = args.first().filter(|a| !a.starts_with("--")) {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        let records = parse_trace(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(1);
        });
        println!("{path} ({} records):\n", records.len());
        println!("{}", TraceSummary::compute(&records, capacity).render());
        return;
    }

    let summaries: [(&str, TraceSummary, &str); 3] = [
        (
            "random (the paper's synthetic workload, §3)",
            TraceSummary::from_stream(
                RecordStream(RandomWorkload::paper(capacity, 500.0, n, 7)),
                capacity,
            ),
            "Poisson arrivals (cv²≈1), 67% reads, ~8.5-sector mean, uniform",
        ),
        (
            "Cello-like (substituting the 1992 HP trace, §4.3)",
            TraceSummary::from_stream(
                CelloWorkload::new(
                    &CelloParams {
                        capacity,
                        requests: n,
                        ..CelloParams::default()
                    },
                    7,
                ),
                capacity,
            ),
            "bursty (cv²≫1), write-majority, hot regions, sequential runs",
        ),
        (
            "TPC-C-like (substituting the OLTP trace, §4.3)",
            TraceSummary::from_stream(
                TpccWorkload::new(
                    &TpccParams {
                        capacity,
                        requests: n,
                        database_sectors: capacity * 3 / 10,
                        ..TpccParams::default()
                    },
                    7,
                ),
                capacity,
            ),
            "8 KB pages, hot extents (high top-decile), partial footprint",
        ),
    ];
    for (name, summary, expectation) in summaries {
        println!("== {name} ==");
        println!("   expected: {expectation}\n");
        println!("{}\n", summary.render());
    }
}
