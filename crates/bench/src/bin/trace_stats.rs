//! `trace_stats` — characterize a workload.
//!
//! With no arguments, prints the summaries of the three built-in
//! workloads (random / Cello-like / TPC-C-like) side by side, against
//! the published characteristics each generator was calibrated to.
//! With a file argument, parses the trace-format file and summarizes it.
//!
//! ```text
//! trace_stats [FILE] [--capacity SECTORS]
//! ```

use mems_device::MemsParams;
use storage_sim::Workload;
use storage_trace::{
    cello_for_capacity, parse_trace, tpcc_for_capacity, RandomWorkload, TraceRecord, TraceSummary,
};

fn random_records(capacity: u64, n: u64) -> Vec<TraceRecord> {
    let mut w = RandomWorkload::paper(capacity, 500.0, n, 7);
    let mut out = Vec::new();
    while let Some(r) = w.next_request() {
        out.push(TraceRecord {
            arrival: r.arrival.as_secs(),
            lbn: r.lbn,
            sectors: r.sectors,
            kind: r.kind,
        });
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let capacity = args
        .iter()
        .position(|a| a == "--capacity")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| MemsParams::default().geometry().total_sectors());

    if let Some(path) = args.first().filter(|a| !a.starts_with("--")) {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        let records = parse_trace(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(1);
        });
        println!("{path} ({} records):\n", records.len());
        println!("{}", TraceSummary::compute(&records, capacity).render());
        return;
    }

    let n = 10_000u64;
    for (name, records, expectation) in [
        (
            "random (the paper's synthetic workload, §3)",
            random_records(capacity, n),
            "Poisson arrivals (cv²≈1), 67% reads, ~8.5-sector mean, uniform",
        ),
        (
            "Cello-like (substituting the 1992 HP trace, §4.3)",
            cello_for_capacity(capacity, n, 7),
            "bursty (cv²≫1), write-majority, hot regions, sequential runs",
        ),
        (
            "TPC-C-like (substituting the OLTP trace, §4.3)",
            tpcc_for_capacity(capacity, n, 7),
            "8 KB pages, hot extents (high top-decile), partial footprint",
        ),
    ] {
        println!("== {name} ==");
        println!("   expected: {expectation}\n");
        println!("{}\n", TraceSummary::compute(&records, capacity).render());
    }
}
