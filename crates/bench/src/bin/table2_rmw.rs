//! Table 2: read-modify-write times for 4 KB (8-sector) and track-length
//! (334-sector) transfers on the Atlas 10K and the MEMS device (§6.2).
//!
//! The disk must wait most of a platter rotation to return to the
//! just-read sectors; the MEMS device only turns the sled around. The
//! table also reports the turnaround-time distribution from the caption
//! (0.036–1.11 ms in the paper; position- and direction-dependent here).

use atlas_disk::{DiskDevice, DiskParams};
use mems_bench::{write_csv, Table};
use mems_device::{MemsDevice, MemsParams, SpringSled};
use mems_os::fault::read_modify_write;

fn main() {
    // Mid-sled locations so the MEMS numbers reflect Table 2's nominal
    // (center) turnaround; see EXPERIMENTS.md for the positional spread.
    let mems_4k_lbn = ((1250 * 5 * 27) + 13) * 20;
    let mems_track_lbn = ((1250 * 5 * 27) + 5) * 20;

    println!("Table 2: read-modify-write times (ms)\n");
    let mut t = Table::new(vec![
        "".into(),
        "Atlas 10K, 8".into(),
        "Atlas 10K, 334".into(),
        "MEMS, 8".into(),
        "MEMS, 334".into(),
    ]);

    // Zero controller overhead, matching Table 2's idealized in-place
    // cycle (with overhead the platter drifts past the ideal full-track
    // alignment and the 334-sector reposition is no longer zero).
    let ideal_disk = || {
        let mut p = DiskParams::quantum_atlas_10k();
        p.overhead = 0.0;
        DiskDevice::new(p)
    };
    let mut disk8 = ideal_disk();
    let mut disk334 = ideal_disk();
    let mut mems8 = MemsDevice::new(MemsParams::default());
    let mut mems334 = MemsDevice::new(MemsParams::default());
    let results = [
        read_modify_write(&mut disk8, 0, 8),
        read_modify_write(&mut disk334, 0, 334),
        read_modify_write(&mut mems8, mems_4k_lbn, 8),
        read_modify_write(&mut mems334, mems_track_lbn, 334),
    ];

    let mut csv = String::from("row,atlas_8,atlas_334,mems_8,mems_334\n");
    for (label, f) in [
        (
            "read",
            Box::new(|r: &mems_os::fault::RmwBreakdown| r.read) as Box<dyn Fn(_) -> f64>,
        ),
        (
            "reposition",
            Box::new(|r: &mems_os::fault::RmwBreakdown| r.reposition),
        ),
        (
            "write",
            Box::new(|r: &mems_os::fault::RmwBreakdown| r.write),
        ),
        (
            "total",
            Box::new(|r: &mems_os::fault::RmwBreakdown| r.total()),
        ),
    ] {
        let cells: Vec<String> = results
            .iter()
            .map(|r| format!("{:.2}", f(r) * 1e3))
            .collect();
        csv.push_str(&format!("{label},{}\n", cells.join(",")));
        let mut row = vec![label.to_string()];
        row.extend(cells);
        t.row(row);
    }
    println!("{}", t.render());
    write_csv("table2_rmw.csv", &csv);

    println!("paper: Atlas 6.26 / 12.00 ms; MEMS 0.33 / 4.45 ms (8 / 334 sectors)\n");

    // Caption: turnaround time distribution over sled position/direction.
    let p = MemsParams::default();
    let sled = SpringSled::from_spring_factor(p.accel, p.spring_factor, p.half_mobility());
    let v = p.access_velocity();
    let (mut min, mut max, mut sum, mut n) = (f64::INFINITY, 0.0f64, 0.0, 0u32);
    for i in 0..=200 {
        let pos = (i as f64 / 200.0 - 0.5) * p.mobility * 0.98;
        for dir in [v, -v] {
            let t = sled.turnaround_time(pos, dir);
            min = min.min(t);
            max = max.max(t);
            sum += t;
            n += 1;
        }
    }
    println!(
        "turnaround time over position/direction: min {:.3} ms, mean {:.3} ms, max {:.3} ms",
        min * 1e3,
        sum / f64::from(n) * 1e3,
        max * 1e3
    );
    println!("paper caption: 0.036 ms - 1.11 ms, average 0.063 ms");
}
