//! Model validation: closed-form kinematics vs direct numerical
//! integration.
//!
//! The scheduling and layout results all rest on the sled seek model, so
//! this harness sweeps a grid of seeks across the whole travel range and
//! reports the disagreement between the O(1) phase-plane closed forms
//! the simulator uses and a brute-force time-stepped integration of the
//! same equations of motion. It also checks the physical sanity
//! identities the model must satisfy.

use mems_bench::{write_csv, Table};
use mems_device::{MemsParams, SpringSled};

fn main() {
    let p = MemsParams::default();
    let sled = SpringSled::from_spring_factor(p.accel, p.spring_factor, p.half_mobility());
    let half = p.half_mobility();

    println!("closed-form vs numeric rest-to-rest seeks (dt = 10 ns)\n");
    let grid = 13;
    let mut max_rel: f64 = 0.0;
    let mut sum_rel = 0.0;
    let mut count = 0u32;
    let mut worst = (0.0f64, 0.0f64);
    let mut csv = String::from("p0_um,p1_um,closed_us,numeric_us,rel_err\n");
    for i in 0..grid {
        for j in 0..grid {
            if i == j {
                continue;
            }
            let p0 = (i as f64 / (grid - 1) as f64 - 0.5) * 2.0 * half * 0.98;
            let p1 = (j as f64 / (grid - 1) as f64 - 0.5) * 2.0 * half * 0.98;
            let closed = sled.rest_seek_time(p0, p1);
            let numeric = sled.rest_seek_time_numeric(p0, p1, 1e-8);
            let rel = (closed - numeric).abs() / numeric;
            if rel > max_rel {
                max_rel = rel;
                worst = (p0, p1);
            }
            sum_rel += rel;
            count += 1;
            csv.push_str(&format!(
                "{:.1},{:.1},{:.3},{:.3},{:.6}\n",
                p0 * 1e6,
                p1 * 1e6,
                closed * 1e6,
                numeric * 1e6,
                rel
            ));
        }
    }
    println!("seeks compared       {count}");
    println!(
        "mean relative error  {:.4}%",
        sum_rel / f64::from(count) * 100.0
    );
    println!(
        "max relative error   {:.4}%  (at {:.1} um -> {:.1} um)",
        max_rel * 100.0,
        worst.0 * 1e6,
        worst.1 * 1e6
    );
    write_csv("validate_kinematics.csv", &csv);

    println!("\nphysical sanity identities:\n");
    let mut t = Table::new(vec!["identity".into(), "status".into()]);
    let check = |name: &str, ok: bool| -> Vec<String> {
        vec![
            name.into(),
            if ok { "ok".into() } else { "VIOLATED".into() },
        ]
    };
    // Symmetry and mirror symmetry.
    let sym =
        (sled.rest_seek_time(-30e-6, 40e-6) - sled.rest_seek_time(40e-6, -30e-6)).abs() < 1e-12;
    t.row(check("t(a->b) = t(b->a) for rest seeks", sym));
    let mirror =
        (sled.rest_seek_time(-30e-6, 40e-6) - sled.rest_seek_time(30e-6, -40e-6)).abs() < 1e-12;
    t.row(check("t(a->b) = t(-a->-b)", mirror));
    // Monotonicity in distance from center.
    let mut mono = true;
    let mut last = 0.0;
    for d in 1..=48 {
        let tt = sled.rest_seek_time(0.0, d as f64 * 1e-6);
        if tt <= last {
            mono = false;
        }
        last = tt;
    }
    t.row(check("seek time grows with distance (from center)", mono));
    // Triangle inequality on a coarse grid.
    let mut triangle = true;
    for a in [-40e-6, 0.0, 35e-6] {
        for b in [-20e-6, 10e-6, 45e-6] {
            for c in [-45e-6, 5e-6, 30e-6] {
                let direct = sled.rest_seek_time(a, c);
                let via = sled.rest_seek_time(a, b) + sled.rest_seek_time(b, c);
                if direct > via + 1e-12 {
                    triangle = false;
                }
            }
        }
    }
    t.row(check("direct seek <= any stop-at-waypoint seek", triangle));
    // Turnaround direction-dependence (§2.4.4).
    let v = p.access_velocity();
    let dir_dep = sled.turnaround_time(45e-6, v) < sled.turnaround_time(45e-6, -v);
    t.row(check("edge turnarounds are direction-dependent", dir_dep));
    println!("{}", t.render());
}
