//! Degraded-mode sweep: what does operating through failures *cost*?
//!
//! Runs SPTF on the MEMS device under the paper's random workload while a
//! seeded [`FaultClock`] fails a growing fraction of probe tips (0–10%)
//! mid-run, plus one retry-storm cell with a high transient-seek-error
//! arrival rate. Reports mean response time, the σ²/µ² starvation metric,
//! and the recovery-time bill per request. The zero-fault cell is gated:
//! it must reproduce the bare (unwrapped) device bit for bit, or the bin
//! exits non-zero — the same contract the CI `figures` job enforces on
//! the emitted `results/fault_sweep.csv` golden.

use mems_bench::{write_csv, Table};
use mems_device::{MemsDevice, MemsParams};
use mems_os::fault::{DegradedCounters, DegradedDevice};
use mems_os::sched::SptfScheduler;
use storage_sim::{Driver, FaultClock, SimReport, SimTime};
use storage_trace::RandomWorkload;

const CAPACITY: u64 = 6_750_000;
const TIPS: u32 = 6400;
const RATE: f64 = 1000.0;
const REQUESTS: u64 = 2000;
const WARMUP: u64 = 200;
const WORKLOAD_SEED: u64 = 42;
const FAULT_SEED: u64 = 0x5EED_0063;
/// Tip failures land in the first half-second, so ~75% of the 2 s run
/// operates degraded.
const FAIL_WINDOW_S: f64 = 0.5;

fn workload() -> RandomWorkload {
    RandomWorkload::paper(CAPACITY, RATE, REQUESTS, WORKLOAD_SEED)
}

/// One simulation cell: SPTF on a degraded MEMS device under `clock`.
fn run_cell(clock: FaultClock) -> (SimReport, DegradedCounters) {
    let device =
        DegradedDevice::mems(MemsDevice::new(MemsParams::default()), FAULT_SEED).with_spare_tips(8);
    let mut driver = Driver::new(workload(), SptfScheduler::new(), device)
        .with_faults(clock)
        .warmup_requests(WARMUP);
    let report = driver.run();
    let counters = driver.device().counters();
    (report, counters)
}

fn main() {
    // Gate: the zero-fault wrapped run must be bit-identical to the bare
    // device (the tentpole's transparency contract).
    let bare = Driver::new(
        workload(),
        SptfScheduler::new(),
        MemsDevice::new(MemsParams::default()),
    )
    .warmup_requests(WARMUP)
    .run();
    let (zero, _) = run_cell(FaultClock::empty());
    let identical = bare.response.mean() == zero.response.mean()
        && bare.makespan == zero.makespan
        && bare.busy_secs == zero.busy_secs
        && bare.breakdown_sum.fault_recovery == 0.0
        && zero.breakdown_sum.fault_recovery == 0.0;
    if !identical {
        eprintln!("FAIL: zero-fault DegradedDevice diverged from the bare device");
        eprintln!(
            "  bare: mean {} makespan {:?} busy {}",
            bare.response.mean(),
            bare.makespan,
            bare.busy_secs
        );
        eprintln!(
            "  wrapped: mean {} makespan {:?} busy {} recovery {}",
            zero.response.mean(),
            zero.makespan,
            zero.busy_secs,
            zero.breakdown_sum.fault_recovery
        );
        std::process::exit(1);
    }
    println!("zero-fault gate: wrapped run bit-identical to bare device\n");

    let mut t = Table::new(vec![
        "scenario".into(),
        "failed".into(),
        "mean resp (ms)".into(),
        "sigma^2/mu^2".into(),
        "spare remaps".into(),
        "reconstructions".into(),
        "retries".into(),
        "recovery us/req".into(),
    ]);
    let mut csv = String::from(
        "scenario,failed_frac,failed_tips,mean_response_ms,cv2,\
         spare_remaps,reconstructions,retries,recovery_us_per_req\n",
    );

    let mut emit = |scenario: &str, frac: f64, report: &SimReport, c: &DegradedCounters| {
        let mean_ms = report.response.mean_ms();
        let cv2 = report.response.sq_coeff_var();
        // breakdown_sum accumulates over every serviced request (warm-up
        // included), so normalize by the full request count.
        let recovery_us = report.breakdown_sum.fault_recovery * 1e6 / REQUESTS as f64;
        t.row(vec![
            scenario.into(),
            format!("{:.0}%", frac * 100.0),
            format!("{mean_ms:.3}"),
            format!("{cv2:.3}"),
            format!("{}", c.spare_remaps),
            format!("{}", c.reconstructions),
            format!("{}", c.retry_attempts),
            format!("{recovery_us:.2}"),
        ]);
        csv.push_str(&format!(
            "{scenario},{frac:.2},{failed},{mean_ms:.6},{cv2:.6},{spare},{recon},{retries},{recovery_us:.4}\n",
            failed = c.tip_failures,
            spare = c.spare_remaps,
            recon = c.reconstructions,
            retries = c.retry_attempts,
        ));
    };

    // Tip-failure axis: 0–10% of all tips fail in the first half second.
    for &frac in &[0.0, 0.01, 0.02, 0.04, 0.06, 0.08, 0.10] {
        let n = (frac * f64::from(TIPS)).round() as usize;
        let clock =
            FaultClock::tip_failures(FAULT_SEED, n, TIPS, SimTime::from_secs(FAIL_WINDOW_S));
        let (report, counters) = run_cell(clock);
        emit("tip_failures", frac, &report, &counters);
    }

    // Retry storm: no tip damage, but transient seek errors arrive at
    // 200/s for the whole run — the device spends its time re-seeking.
    let horizon = SimTime::from_secs(REQUESTS as f64 / RATE);
    let storm = FaultClock::poisson(FAULT_SEED, horizon, 0.0, 200.0, 0.0, TIPS, 27);
    let (report, counters) = run_cell(storm);
    emit("retry_storm", 0.0, &report, &counters);

    println!("{}", t.render());
    write_csv("fault_sweep.csv", &csv);
}
