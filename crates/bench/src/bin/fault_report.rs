//! §6 quantitative report: internal faults, ECC recoverability, remapping
//! policies, seek errors, RAID-5 small writes, and crash recovery.

use atlas_disk::{DiskDevice, DiskParams};
use mems_bench::{write_csv, Table};
use mems_device::Mapper;
use mems_device::{MemsDevice, MemsParams};
use mems_os::fault::{
    array_ready_time, disk_seek_error_penalty, mems_seek_error_penalty, read_modify_write,
    sync_write_burst_mean, FaultState, Raid5Array, RemapPolicy, RemappedDevice, StripeCodec,
};
use storage_sim::rng;
use storage_sim::{IoKind, Request, SimTime, StorageDevice};

fn main() {
    let params = MemsParams::default();
    let mapper = Mapper::new(&params);

    // --- §6.1.1: tip failures vs ECC parity ------------------------------
    println!("== §6.1.1 tip/media failures vs striping + ECC ==\n");
    println!("fraction of logical sectors unrecoverable after N random tip");
    println!("failures + N/2 grown media defects, by horizontal parity width:\n");
    let mut t = Table::new(vec![
        "failed tips".into(),
        "parity 0 (disk-like)".into(),
        "parity 2".into(),
        "parity 4".into(),
        "parity 8".into(),
    ]);
    let mut csv = String::from("failed_tips,parity0,parity2,parity4,parity8\n");
    for &n in &[1usize, 5, 10, 20, 50, 100, 200, 400] {
        let mut faults = FaultState::new(&params);
        let mut r = rng::seeded(0x5EED_0061 + n as u64);
        faults.inject_random_tip_failures(n, &mut r);
        faults.inject_random_defects(n / 2, &mut r);
        let mut row = vec![format!("{n}")];
        let mut line = format!("{n}");
        for parity in [0usize, 2, 4, 8] {
            let frac = faults.unrecoverable_fraction(&mapper, parity);
            row.push(format!("{:.4}%", frac * 100.0));
            line.push_str(&format!(",{:.6}", frac));
        }
        t.row(row);
        csv.push_str(&line);
        csv.push('\n');
    }
    println!("{}", t.render());
    write_csv("fault_tip_failures.csv", &csv);

    // --- §6.1.2: end-to-end stripe codec ---------------------------------
    println!("== §6.1.2 horizontal + vertical ECC (512 B sector over 64+8 tips) ==\n");
    let codec = StripeCodec::new(8);
    let mut r = rng::seeded(0x5EED_0062);
    let mut t = Table::new(vec![
        "corrupted tip sectors".into(),
        "trials".into(),
        "recovered".into(),
    ]);
    for erasures in [0usize, 1, 4, 8, 9, 12] {
        let trials = 200;
        let mut recovered = 0;
        for _ in 0..trials {
            let mut sector = [0u8; 512];
            for b in sector.iter_mut() {
                *b = rng::uniform_u64(&mut r, 256) as u8;
            }
            let mut stripe = codec.encode(&sector);
            // Corrupt `erasures` distinct tips.
            let mut hit = std::collections::HashSet::new();
            while hit.len() < erasures {
                hit.insert(rng::uniform_u64(&mut r, 72) as usize);
            }
            for &i in &hit {
                stripe[i].data[rng::uniform_u64(&mut r, 8) as usize] ^= 0xa5;
            }
            if codec.decode(&stripe) == Some(sector) {
                recovered += 1;
            }
        }
        t.row(vec![
            format!("{erasures}"),
            format!("{trials}"),
            format!("{recovered}"),
        ]);
    }
    println!("{}", t.render());
    println!("(8 parity tips: everything up to 8 lost tip sectors recovers; 9+ does not)\n");

    // --- §6.1.1: remapping policies --------------------------------------
    println!("== §6.1.1 defective-sector remapping policies ==\n");
    println!("a sequential 4 KB read stream crosses one remapped sector:");
    println!("spare-tip remapping keeps streaming (the spare reads in the");
    println!("same sled pass); disk-style far remapping breaks sequentiality");
    println!("with an out-and-back excursion to the spare region:\n");
    let capacity = MemsDevice::new(params.clone()).capacity_lbns();
    let stream_start = 1250u64 * 2700; // a center cylinder
    let measure = |policy: RemapPolicy| -> f64 {
        let mut dev = RemappedDevice::new(
            MemsDevice::new(params.clone()),
            policy,
            capacity - 2700, // last cylinder holds the spares
        );
        // The 25th 4 KB block of the stream is defective.
        dev.remap(stream_start + 24 * 8);
        let mut t = SimTime::ZERO;
        let mut total = 0.0;
        for i in 0..50u64 {
            let req = Request::new(i, t, stream_start + i * 8, 8, IoKind::Read);
            let b = dev.service(&req, t);
            total += b.total();
            t += SimTime::from_secs(b.total());
        }
        total
    };
    let spare = measure(RemapPolicy::SpareTip);
    let far = measure(RemapPolicy::FarSpare);
    println!(
        "  total stream time, spare-tip remap: {:.3} ms",
        spare * 1e3
    );
    println!("  total stream time, far remap:       {:.3} ms", far * 1e3);
    println!(
        "  sequentiality penalty avoided:      {:.1}%\n",
        (far / spare - 1.0) * 100.0
    );

    // --- §6.1.3: seek errors ----------------------------------------------
    println!("== §6.1.3 seek-error recovery penalty ==\n");
    let d = disk_seek_error_penalty(&DiskParams::quantum_atlas_10k(), 1.5e-3);
    let m = mems_seek_error_penalty(&params);
    let mut t = Table::new(vec![
        "device".into(),
        "min (ms)".into(),
        "mean (ms)".into(),
        "max (ms)".into(),
    ]);
    t.row(vec![
        "Atlas 10K".into(),
        format!("{:.3}", d.min * 1e3),
        format!("{:.3}", d.mean * 1e3),
        format!("{:.3}", d.max * 1e3),
    ]);
    t.row(vec![
        "MEMS".into(),
        format!("{:.3}", m.min * 1e3),
        format!("{:.3}", m.mean * 1e3),
        format!("{:.3}", m.max * 1e3),
    ]);
    println!("{}", t.render());

    // --- §6.2: RAID-5 small writes ----------------------------------------
    println!("== §6.2 RAID-5 small-write (read-modify-write) latency ==\n");
    let mems_devices: Vec<MemsDevice> = (0..5).map(|_| MemsDevice::new(params.clone())).collect();
    let mut mems_array = Raid5Array::new(mems_devices, 8);
    let disk_devices: Vec<DiskDevice> = (0..5)
        .map(|_| DiskDevice::new(DiskParams::quantum_atlas_10k()))
        .collect();
    let mut disk_array = Raid5Array::new(disk_devices, 8);
    let mut mems_sum = 0.0;
    let mut disk_sum = 0.0;
    let strips = 50;
    for s in 0..strips {
        // Spread strips around mid-device.
        let strip = 100_000 + s * 37;
        mems_sum += mems_array.small_write_time(strip, 8);
        disk_sum += disk_array.small_write_time(strip, 8);
    }
    let mems_avg = mems_sum / strips as f64;
    let disk_avg = disk_sum / strips as f64;
    println!("5-device array, 4 KB small writes, mean over {strips} strips:");
    println!("  MEMS array:  {:.3} ms", mems_avg * 1e3);
    println!("  Atlas array: {:.3} ms", disk_avg * 1e3);
    println!("  speedup:     {:.1}x\n", disk_avg / mems_avg);

    // Single-device RMW reference (Table 2 check).
    let mut mems = MemsDevice::new(params.clone());
    let rmw = read_modify_write(&mut mems, ((1250 * 5 * 27) + 13) * 20, 8);
    println!(
        "single-device 4 KB RMW on MEMS: {:.2} ms (Table 2: 0.33 ms)\n",
        rmw.total() * 1e3
    );

    // --- §6.3: crash recovery ----------------------------------------------
    println!("== §6.3 crash recovery and startup ==\n");
    let mut t = Table::new(vec!["scenario".into(), "ready time".into()]);
    t.row(vec![
        "1 Atlas 10K spin-up".into(),
        format!("{:.1} s", array_ready_time(1, 25.0, true)),
    ]);
    t.row(vec![
        "8-disk array, serialized spin-up".into(),
        format!("{:.1} s", array_ready_time(8, 25.0, true)),
    ]);
    t.row(vec![
        "1 MEMS device init".into(),
        format!("{:.1} ms", array_ready_time(1, 0.5e-3, false) * 1e3),
    ]);
    t.row(vec![
        "8-MEMS array, concurrent init".into(),
        format!("{:.1} ms", array_ready_time(8, 0.5e-3, false) * 1e3),
    ]);
    println!("{}", t.render());

    let mut mems = MemsDevice::new(params.clone());
    let mut disk = DiskDevice::new(DiskParams::quantum_atlas_10k());
    let m = sync_write_burst_mean(&mut mems, 500, 2);
    let d = sync_write_burst_mean(&mut disk, 500, 2);
    println!("synchronous 1 KB metadata writes (mean of 500, random locations):");
    println!("  MEMS:  {:.3} ms", m * 1e3);
    println!("  Atlas: {:.3} ms", d * 1e3);
    println!("  penalty reduction: {:.1}x", d / m);
}
