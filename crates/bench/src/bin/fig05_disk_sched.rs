//! Figure 5: scheduling algorithms on the Quantum Atlas 10K, random
//! workload — the disk reference point for Figure 6.
//!
//! Paper shape to check: FCFS saturates well before the others;
//! SSTF_LBN outperforms C-LOOK; SPTF outperforms everything (it sees
//! rotational latency); C-LOOK has the best starvation resistance.

use atlas_disk::{DiskDevice, DiskParams};
use mems_bench::{sched_sweep, write_csv, Table};
use mems_os::sched::Algorithm;
use storage_trace::RandomWorkload;

fn main() {
    let requests: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let rates: Vec<f64> = vec![
        20.0, 40.0, 60.0, 80.0, 100.0, 120.0, 140.0, 160.0, 180.0, 200.0, 220.0,
    ];
    let capacity = DiskParams::quantum_atlas_10k().total_sectors();

    println!("Figure 5: scheduling algorithms, Atlas 10K disk, random workload");
    println!("({requests} requests per point, 500-request warm-up)\n");

    let points = sched_sweep(
        &rates,
        &Algorithm::ALL,
        |rate| RandomWorkload::paper(capacity, rate, requests, 0x5EED_0005),
        || DiskDevice::new(DiskParams::quantum_atlas_10k()),
        500,
    );

    for (panel, metric) in [
        ("(a) average response time (ms)", "resp"),
        ("(b) squared coefficient of variation", "cv2"),
    ] {
        println!("{panel}");
        let mut headers = vec!["rate (req/s)".to_string()];
        headers.extend(Algorithm::ALL.iter().map(|a| a.label().to_string()));
        let mut table = Table::new(headers);
        for &rate in &rates {
            let mut row = vec![format!("{rate:.0}")];
            for alg in Algorithm::ALL {
                let p = points
                    .iter()
                    .find(|p| p.algorithm == alg.label() && p.rate == rate)
                    .expect("point exists");
                let v = if metric == "resp" {
                    p.mean_response_ms
                } else {
                    p.cv2
                };
                row.push(format!("{v:.3}"));
            }
            table.row(row);
        }
        println!("{}", table.render());
        write_csv(
            &format!(
                "fig05_{}.csv",
                if metric == "resp" {
                    "a_response"
                } else {
                    "b_cv2"
                }
            ),
            &table.to_csv(),
        );
    }
}
