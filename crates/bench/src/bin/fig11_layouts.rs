//! Figure 11: layout schemes compared (§5.3).
//!
//! Runs the bipartite read workload (10,000 requests; 89% 4 KB small,
//! 11% 400 KB large) against each placement scheme on three devices: the
//! default MEMS device, the MEMS device with zero settle time
//! ("MEMS-nosettle"), and the Atlas 10K (simple and organ pipe only —
//! the subregioned and columnar schemes are MEMS-geometry-specific).
//!
//! Paper shape to check: on MEMS all three non-simple layouts beat simple
//! by 13–20%; subregioned and columnar beat organ pipe; with zero settle
//! the subregioned layout (which bounds both X and Y) wins by a further
//! margin; on the disk, organ pipe gains ~13% over simple.

use atlas_disk::{DiskDevice, DiskParams};
use mems_bench::{write_csv, Table};
use mems_device::{MemsDevice, MemsParams};
use mems_os::layout::{
    BipartiteWorkload, ColumnarLayout, Layout, OrganPipeLayout, SimpleLayout, SubregionedLayout,
};
use storage_sim::{Driver, FifoScheduler, StorageDevice, Workload};

/// Mean service time (ms) of the paper's bipartite workload on a device
/// under a layout. Arrivals are spaced out so no queueing occurs; Fig. 11
/// reports pure access times.
fn measure<D: StorageDevice>(layout: &dyn Layout, device: D, requests: u64) -> f64 {
    struct W(BipartiteWorkload);
    impl Workload for W {
        fn next_request(&mut self) -> Option<storage_sim::Request> {
            self.0.next_request()
        }
    }
    let w = BipartiteWorkload::paper(layout, requests, 0x5EED_0011);
    let mut driver = Driver::new(W(w), FifoScheduler::new(), device);
    let report = driver.run();
    report.mean_service_ms()
}

fn main() {
    let requests: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);

    let geom = MemsParams::default().geometry();
    let mems_capacity = geom.total_sectors();
    let disk_capacity = DiskParams::quantum_atlas_10k().total_sectors();

    let simple = SimpleLayout::new(mems_capacity);
    let organ = OrganPipeLayout::paper(mems_capacity);
    let subregioned = SubregionedLayout::new(&geom);
    let columnar = ColumnarLayout::new(&geom);
    let mems_layouts: Vec<&dyn Layout> = vec![&simple, &organ, &subregioned, &columnar];

    let disk_simple = SimpleLayout::new(disk_capacity);
    let disk_organ = OrganPipeLayout::paper(disk_capacity);
    let disk_layouts: Vec<&dyn Layout> = vec![&disk_simple, &disk_organ];

    println!("Figure 11: mean access time (ms) per layout scheme");
    println!("({requests} bipartite read requests: 89% 4 KB small, 11% 400 KB large)\n");

    let mut table = Table::new(vec![
        "device".into(),
        "simple".into(),
        "organ pipe".into(),
        "subregioned".into(),
        "columnar".into(),
    ]);
    let mut csv = String::from("device,layout,mean_ms,gain_vs_simple\n");

    for (device_name, settle) in [("MEMS (default)", 1.0), ("MEMS-nosettle", 0.0)] {
        let mut cells = vec![device_name.to_string()];
        let mut base = 0.0;
        for (i, layout) in mems_layouts.iter().enumerate() {
            let dev = MemsDevice::new(MemsParams::default().with_settle_constants(settle));
            let ms = measure(*layout, dev, requests);
            if i == 0 {
                base = ms;
            }
            let gain = (1.0 - ms / base) * 100.0;
            cells.push(format!("{ms:.3} ({gain:+.1}%)"));
            csv.push_str(&format!(
                "{device_name},{},{ms:.4},{gain:.2}\n",
                layout.name()
            ));
        }
        table.row(cells);
    }
    {
        let mut cells = vec!["Atlas 10K".to_string()];
        let mut base = 0.0;
        for (i, layout) in disk_layouts.iter().enumerate() {
            let dev = DiskDevice::new(DiskParams::quantum_atlas_10k());
            let ms = measure(*layout, dev, requests);
            if i == 0 {
                base = ms;
            }
            let gain = (1.0 - ms / base) * 100.0;
            cells.push(format!("{ms:.3} ({gain:+.1}%)"));
            csv.push_str(&format!("Atlas 10K,{},{ms:.4},{gain:.2}\n", layout.name()));
        }
        cells.push("n/a".into());
        cells.push("n/a".into());
        table.row(cells);
    }

    println!("{}", table.render());
    write_csv("fig11_layouts.csv", &csv);
    println!(
        "paper check: MEMS organ/subregioned/columnar beat simple by 13-20%;\n\
         subregioned wins outright in the no-settle case; organ pipe gains ~13% on the disk"
    );
}
