//! Table 1: device parameters and every derived quantity the paper
//! quotes for them.

use mems_bench::{write_csv, Table};
use mems_device::{MemsEnergyModel, MemsParams};

fn main() {
    let p = MemsParams::default();
    let g = p.geometry();
    let e = MemsEnergyModel::default();

    println!("Table 1: device parameters used in the experiments\n");
    let mut t = Table::new(vec!["parameter".into(), "value".into()]);
    let rows: Vec<(&str, String)> = vec![
        (
            "sled mobility in X and Y",
            format!("{:.0} um", p.mobility * 1e6),
        ),
        (
            "bit cell width (area)",
            format!(
                "{:.0} nm ({:.4} um^2)",
                p.bit_width * 1e9,
                p.bit_width * p.bit_width * 1e12
            ),
        ),
        ("number of tips", format!("{}", p.tips)),
        ("simultaneously active tips", format!("{}", p.active_tips)),
        (
            "tip sector length",
            format!(
                "{} bits ({} data bytes)",
                p.tip_sector_data_bits, p.tip_sector_data_bytes
            ),
        ),
        (
            "servo overhead",
            format!("{} bits per tip sector", p.tip_sector_servo_bits),
        ),
        (
            "device capacity (per sled)",
            format!("{:.2} GB", g.capacity_bytes() as f64 / 1e9),
        ),
        (
            "per-tip data rate",
            format!("{:.0} Kbit/s", p.per_tip_rate / 1e3),
        ),
        ("sled acceleration", format!("{} m/s^2", p.accel)),
        ("settling time constants", format!("{}", p.settle_constants)),
        (
            "sled resonant frequency",
            format!("{:.0} Hz", p.resonant_freq),
        ),
        ("spring factor", format!("{:.0}%", p.spring_factor * 100.0)),
    ];
    for (k, v) in &rows {
        t.row(vec![(*k).into(), v.clone()]);
    }
    println!("{}", t.render());

    println!("derived quantities (values the paper quotes in the text):\n");
    let mut d = Table::new(vec!["quantity".into(), "value".into(), "paper".into()]);
    let derived: Vec<(&str, String, &str)> = vec![
        ("cylinders", format!("{}", g.cylinders), "N = 2500"),
        (
            "tracks per cylinder",
            format!("{}", g.tracks_per_cylinder),
            "5",
        ),
        (
            "tip-sector rows per track",
            format!("{}", g.rows_per_track),
            "27",
        ),
        (
            "logical sectors per track",
            format!("{}", g.sectors_per_track),
            "540",
        ),
        (
            "tips per logical sector",
            format!("{}", g.stripe_width),
            "64",
        ),
        (
            "access velocity",
            format!("{:.1} mm/s", p.access_velocity() * 1e3),
            "28 mm/s",
        ),
        (
            "tip-sector row time",
            format!("{:.1} us", p.row_time() * 1e6),
            "128.6 us",
        ),
        (
            "streaming bandwidth",
            format!("{:.1} MB/s", p.streaming_bandwidth() / 1e6),
            "79.6 MB/s",
        ),
        (
            "settling time constant",
            format!("{:.3} ms", p.settle_time_constant() * 1e3),
            "~0.2 ms",
        ),
        (
            "startup / restart time",
            format!("{:.1} ms", e.startup_time * 1e3),
            "0.5 ms",
        ),
        (
            "sensing share of streaming power",
            format!("{:.0}%", e.sensing_fraction(p.active_tips) * 100.0),
            "~90%",
        ),
    ];
    let mut csv = String::from("quantity,value,paper\n");
    for (k, v, paper) in &derived {
        d.row(vec![(*k).into(), v.clone(), (*paper).into()]);
        csv.push_str(&format!("{k},{v},{paper}\n"));
    }
    println!("{}", d.render());
    write_csv("table1_params.csv", &csv);
}
