//! Performance smoke test: before/after numbers for the positioning fast
//! path, written to `BENCH_sched.json` so the perf trajectory is tracked
//! in-repo from PR to PR.
//!
//! Five sections:
//!
//! 1. **seek_table** — `position_time` cost from an on-grid sled state,
//!    direct solve vs memo table (the SPTF oracle's unit of work);
//! 2. **seek_surface** — the fully materialized immutable surface: build
//!    cost, footprint, and ns/query against both the direct solver and
//!    the memo table;
//! 3. **sptf_pick** — draining a deep queue, naive full scan vs pruned
//!    bucket scan (same picks, different work);
//! 4. **devirt_pick** — the same pruned drain through the type-erased
//!    `DynScheduler` box vs the monomorphized static path;
//! 5. **fig6_sptf** — the acceptance measurement: the Fig. 6 SPTF cell at
//!    the highest arrival rate over several seeds, naive scan + direct
//!    solves + serial seed loop vs pruned pick + seek table + parallel
//!    sweep vs the shared-surface devices. All three configurations must
//!    report identical mean response times (the fast paths are
//!    pick-equivalent); only the wall clock moves.
//! 6. **events_per_sec** — the engine-throughput headline: per-component
//!    ns/op for the calendar event queue (vs the binary-heap reference)
//!    and the request slab, then two whole cells measured serially on one
//!    thread so the number is per-core by construction — the Fig. 6 SPTF
//!    cell on the shared surface, and a high-rate FCFS cell that stresses
//!    the raw event engine. Both report `simulated requests per core
//!    second` (the gated CI metric) and confirm the pre-sized event queue
//!    never restructured mid-run.
//! 7. **streaming_scale** — the constant-memory headline: a 10⁷-request
//!    open-loop FIFO cell pulled incrementally from the generator
//!    (arrival look-ahead + log-histogram stats, nothing materialized)
//!    and a 10⁶-request 64-station streaming fleet cell, both reporting
//!    requests per core-second and the peak-RSS delta over the
//!    post-surface baseline (the shared seek surface is excluded by
//!    construction). An in-process gate first proves the streamed paths
//!    digest-identical to the materialized ones; CI greps
//!    `"streamed_identical": true` and holds the RSS delta under a fixed
//!    ceiling.
//!
//! Run from the workspace root: `cargo run --release -p mems-bench --bin
//! perf_smoke` (pass a request count to override the default 4000; pass
//! `--streaming-requests N` to resize the streaming cells — the weekly
//! long-horizon job passes 100000000).

use std::fmt::Write as _;
use std::time::Instant;

use mems_bench::{replicated_point, shared_seek_surface, surfaced_mems_device};
use mems_device::{MemsDevice, MemsParams};
use mems_fleet::{FleetConfig, FleetEngine, VolumeSpec};
use mems_os::sched::{Algorithm, NaiveSptfScheduler, SptfScheduler};
use storage_sim::{
    BinaryHeapEventQueue, Driver, DynScheduler, EventQueue, FifoScheduler, IoKind, PositionOracle,
    Request, Scheduler, SimQueue, SimReport, SimTime, Slab, StorageDevice, VecWorkload, Workload,
};
use storage_trace::RandomWorkload;

const CAPACITY: u64 = 6_750_000;
/// The highest arrival rate of the Fig. 6 sweep.
const RATE: f64 = 2500.0;
const SEEDS: [u64; 6] = [1, 2, 3, 4, 5, 6];
const WARMUP: u64 = 500;

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Best-of-`reps` wall clock for a deterministic measurement: every
/// repetition computes the identical result (the simulator is
/// deterministic), so the minimum is the least-noisy estimate of the real
/// cost on a shared host.
fn timed_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    let (mut best_r, mut best_secs) = timed(&mut f);
    for _ in 1..reps {
        let (r, secs) = timed(&mut f);
        if secs < best_secs {
            best_secs = secs;
            best_r = r;
        }
    }
    (best_r, best_secs)
}

/// Parks a device on-grid (one request serviced), as in steady state.
fn park(mut d: MemsDevice) -> MemsDevice {
    let r = Request::new(0, SimTime::ZERO, 1_000_000, 8, IoKind::Read);
    let _ = d.service(&r, SimTime::ZERO);
    d
}

/// A parked device with or without the memoizing seek table.
fn parked(table: bool) -> MemsDevice {
    park(MemsDevice::new(MemsParams::default()).with_seek_table(table))
}

fn lcg(x: &mut u64) -> u64 {
    *x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
    *x
}

/// ns per `position_time` query over a deterministic LBN stream.
fn time_queries(dev: &MemsDevice, n: u64) -> f64 {
    let mut x = 7u64;
    let mut sink = 0.0;
    let (_, secs) = timed(|| {
        for _ in 0..n {
            let lbn = lcg(&mut x) % (CAPACITY - 8);
            let req = Request::new(0, SimTime::ZERO, lbn, 8, IoKind::Read);
            sink += dev.position_time(&req, SimTime::ZERO);
        }
    });
    assert!(sink > 0.0);
    secs * 1e9 / n as f64
}

/// µs per pick draining a `depth`-deep queue with scheduler `make()`.
fn time_drain<S: Scheduler>(make: impl Fn() -> S, dev: &MemsDevice, depth: usize) -> f64 {
    let reqs: Vec<Request> = (0..depth as u64)
        .map(|i| {
            let lbn = (i * 2_654_435_761) % CAPACITY;
            Request::new(i, SimTime::ZERO, lbn, 8, IoKind::Read)
        })
        .collect();
    let rounds = 5;
    let (_, secs) = timed(|| {
        for _ in 0..rounds {
            let mut s = make();
            for r in &reqs {
                s.enqueue(*r);
            }
            while let Some(r) = s.pick(dev, SimTime::ZERO) {
                std::hint::black_box(r);
            }
        }
    });
    secs * 1e6 / (rounds * depth) as f64
}

/// ns per push+pop pair at a steady pending population: the queue holds
/// `pending` events, each iteration pushes one at the tail and pops the
/// head — the steady-state shape of a running simulation.
fn time_queue_pair<Q: SimQueue<u64>>(pending: usize, n: u64) -> f64 {
    let mut q: Q = SimQueue::with_capacity(pending + 1);
    let mut t = 0.0f64;
    let mut x = 0x9E37_79B9u64;
    for i in 0..pending as u64 {
        t += 1e-4;
        q.push(SimTime::from_secs(t), i);
    }
    let (_, secs) = timed(|| {
        for i in 0..n {
            t += 1e-4 + (lcg(&mut x) >> 60) as f64 * 1e-5;
            q.push(SimTime::from_secs(t), i);
            std::hint::black_box(q.pop());
        }
    });
    secs * 1e9 / n as f64
}

/// ns per slab insert+take pair at driver-like occupancy (one resident
/// request plus the churning one).
fn time_slab_pair(n: u64) -> f64 {
    let mut slab: Slab<Request> = Slab::with_capacity(4);
    let r = Request::new(0, SimTime::ZERO, 0, 8, IoKind::Read);
    let _resident = slab.insert(r);
    let (_, secs) = timed(|| {
        for _ in 0..n {
            let h = slab.insert(r);
            std::hint::black_box(slab.take(h));
        }
    });
    secs * 1e9 / n as f64
}

/// One serially-measured whole-cell throughput sample.
struct CellThroughput {
    requests: u64,
    events: u64,
    wall_secs: f64,
    requests_per_core_sec: f64,
    events_per_core_sec: f64,
    restructures: u64,
}

/// Runs `seeds` simulation cells serially on the calling thread and
/// reports simulated requests (and events) per core-second. Serial
/// single-threaded measurement makes the number per-core by construction
/// — no division by a parallel speedup that varies with the host.
fn time_cell<S: Scheduler>(
    seeds: &[u64],
    rate: f64,
    requests: u64,
    warmup: u64,
    make_sched: impl Fn() -> S,
) -> CellThroughput {
    let (reports, wall_secs) = timed_best(3, || {
        seeds
            .iter()
            .map(|&seed| {
                Driver::new(
                    RandomWorkload::paper(CAPACITY, rate, requests, seed),
                    make_sched(),
                    surfaced_mems_device(&MemsParams::default()),
                )
                .warmup_requests(warmup)
                .run()
            })
            .collect::<Vec<_>>()
    });
    let completed: u64 = reports.iter().map(|r| r.completed).sum();
    let restructures: u64 = reports.iter().map(|r| r.event_queue_restructures).sum();
    // Every request is one arrival event plus one completion event.
    let events = 2 * completed;
    CellThroughput {
        requests: completed,
        events,
        wall_secs,
        requests_per_core_sec: completed as f64 / wall_secs,
        events_per_core_sec: events as f64 / wall_secs,
        restructures,
    }
}

/// Peak resident-set size (`VmHWM`) of this process in kB, from
/// `/proc/self/status`. `None` off Linux — the streaming section then
/// reports throughput only.
fn peak_rss_kb() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = text.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Bit-exact digest of a driver run: every Welford-derived aggregate as
/// raw f64 bits plus the explicit overload billing, so a streamed run can
/// be asserted identical to its materialized twin.
fn sim_digest(r: &SimReport) -> String {
    format!(
        "n={} shed={} to={} mk={:016x} rn={} rm={:016x} rsd={:016x} rmax={:016x} \
         qm={:016x} sm={:016x} busy={:016x} depth={} restr={}",
        r.completed,
        r.shed,
        r.timed_out,
        r.makespan.as_secs().to_bits(),
        r.response.count(),
        r.response.mean().to_bits(),
        r.response.std_dev().to_bits(),
        r.response.max().to_bits(),
        r.queue_time.mean().to_bits(),
        r.service_time.mean().to_bits(),
        r.busy_secs.to_bits(),
        r.max_queue_depth,
        r.event_queue_restructures,
    )
}

fn collect_requests(mut w: impl Workload) -> Vec<Request> {
    let mut out = Vec::new();
    while let Some(r) = w.next_request() {
        out.push(r);
    }
    out
}

/// The streamed-vs-materialized identity gate, run in-process before the
/// big streaming cells: a buffered-arrival constant-memory driver run and
/// a streaming fleet run must both be digest-identical to their fully
/// materialized twins. CI greps the resulting `"streamed_identical"`.
fn streaming_identity_gate() -> bool {
    let params = MemsParams::default();
    const N: u64 = 50_000;
    let materialized = Driver::new(
        VecWorkload::new(collect_requests(RandomWorkload::paper(
            CAPACITY, 500.0, N, 11,
        ))),
        FifoScheduler::new(),
        surfaced_mems_device(&params),
    )
    .warmup_requests(WARMUP)
    .run();
    let streamed = Driver::new(
        RandomWorkload::paper(CAPACITY, 500.0, N, 11),
        FifoScheduler::new(),
        surfaced_mems_device(&params),
    )
    .with_arrival_lookahead(4096)
    .streaming_stats(true)
    .warmup_requests(WARMUP)
    .run();
    let driver_ok = sim_digest(&materialized) == sim_digest(&streamed);
    if !driver_ok {
        eprintln!("warning: streamed driver diverged from materialized run");
        eprintln!("  materialized: {}", sim_digest(&materialized));
        eprintln!("  streamed:     {}", sim_digest(&streamed));
    }

    let stations = 16;
    let volume = VolumeSpec::flat(stations, 64);
    let fleet_n = 20_000u64;
    let rate = 500.0 * stations as f64;
    let cfg = FleetConfig {
        shards: stations,
        warmup_requests: WARMUP,
        keep_station_completions: false,
        ..FleetConfig::default()
    };
    let fleet_requests = collect_requests(RandomWorkload::paper(
        volume.capacity(CAPACITY),
        rate,
        fleet_n,
        12,
    ));
    let fleet_materialized = FleetEngine::new(
        (0..stations)
            .map(|_| surfaced_mems_device(&params))
            .collect(),
        |_| SptfScheduler::new(),
        &volume,
        &fleet_requests,
        cfg,
    )
    .run();
    let fleet_streamed = FleetEngine::streaming(
        (0..stations)
            .map(|_| surfaced_mems_device(&params))
            .collect(),
        |_| SptfScheduler::new(),
        volume.clone(),
        RandomWorkload::paper(volume.capacity(CAPACITY), rate, fleet_n, 12),
        FleetConfig {
            streaming_stats: true,
            ..cfg
        },
    )
    .run();
    let fleet_ok = fleet_materialized.digest() == fleet_streamed.digest();
    if !fleet_ok {
        eprintln!("warning: streaming fleet diverged from materialized fleet");
        eprintln!("  materialized: {}", fleet_materialized.digest());
        eprintln!("  streamed:     {}", fleet_streamed.digest());
    }
    driver_ok && fleet_ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let requests: u64 = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(4000);
    let stream_requests: u64 = args
        .iter()
        .position(|a| a == "--streaming-requests")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000_000);
    // Keep some measured requests even for tiny runs, or the reported
    // means are silently computed over zero completions.
    let warmup = WARMUP.min(requests / 2);
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    println!("perf_smoke: positioning fast path, before/after\n");

    // 1. Seek-table micro.
    let direct_dev = parked(false);
    let memo_dev = parked(true);
    let n_queries = 200_000u64;
    let direct_ns = time_queries(&direct_dev, n_queries);
    let memo_ns = time_queries(&memo_dev, n_queries);
    let stats = memo_dev.seek_table_stats();
    println!("seek_table:  direct {direct_ns:8.1} ns/query   memo {memo_ns:8.1} ns/query   ({:.1}x, hit rate {:.3})",
        direct_ns / memo_ns, stats.hit_rate());

    // 2. Seek-surface micro: the fully materialized immutable surface,
    // built once and shared process-wide through the sweep registry.
    let (surface, build_secs) = timed(|| {
        shared_seek_surface(&MemsParams::default()).expect("paper surface within size guard")
    });
    let surface_bytes = surface.bytes();
    let surface_dev = park(surfaced_mems_device(&MemsParams::default()));
    let surface_ns = time_queries(&surface_dev, n_queries);
    println!(
        "seek_surface: built in {build_secs:.2} s ({:.1} MB)   surface {surface_ns:6.1} ns/query  ({:.1}x vs direct, {:.1}x vs memo)",
        surface_bytes as f64 / (1 << 20) as f64,
        direct_ns / surface_ns,
        memo_ns / surface_ns
    );

    // 3. Pick micro.
    let depth = 1024;
    let naive_us = time_drain(NaiveSptfScheduler::new, &direct_dev, depth);
    let pruned_us = time_drain(SptfScheduler::new, &memo_dev, depth);
    println!(
        "sptf_pick:   naive {naive_us:9.2} us/pick    pruned {pruned_us:7.2} us/pick    ({:.1}x at depth {depth})",
        naive_us / pruned_us
    );

    // 4. Devirtualization micro: the identical pruned drain, dispatched
    // through the type-erased box (one virtual pick_dyn hop plus a dyn
    // positioning oracle) vs the fully monomorphized path.
    let dyn_us = time_drain(
        || -> Box<dyn DynScheduler> { Box::new(SptfScheduler::new()) },
        &memo_dev,
        depth,
    );
    let static_us = time_drain(SptfScheduler::new, &memo_dev, depth);
    println!(
        "devirt_pick: dyn {dyn_us:11.2} us/pick    static {static_us:7.2} us/pick    ({:.2}x at depth {depth})",
        dyn_us / static_us
    );

    // 5. Fig. 6 SPTF cell at the highest rate: serial+naive+direct vs
    // parallel+pruned+table vs parallel+pruned+shared-surface.
    let (baseline_means, baseline_secs) = timed(|| {
        SEEDS
            .iter()
            .map(|&seed| {
                Driver::new(
                    RandomWorkload::paper(CAPACITY, RATE, requests, seed),
                    NaiveSptfScheduler::new(),
                    MemsDevice::new(MemsParams::default()).with_seek_table(false),
                )
                .warmup_requests(warmup)
                .run()
                .response
                .mean_ms()
            })
            .collect::<Vec<f64>>()
    });
    let baseline_mean = baseline_means.iter().sum::<f64>() / SEEDS.len() as f64;

    let (fast_point, fast_secs) = timed_best(3, || {
        replicated_point(
            RATE,
            Algorithm::Sptf,
            &SEEDS,
            |rate, seed| RandomWorkload::paper(CAPACITY, rate, requests, seed),
            || MemsDevice::new(MemsParams::default()),
            warmup,
        )
    });
    let (surface_point, surface_secs) = timed_best(3, || {
        replicated_point(
            RATE,
            Algorithm::Sptf,
            &SEEDS,
            |rate, seed| RandomWorkload::paper(CAPACITY, rate, requests, seed),
            || surfaced_mems_device(&MemsParams::default()),
            warmup,
        )
    });
    let speedup = baseline_secs / fast_secs;
    let surface_speedup = baseline_secs / surface_secs;
    let means_match =
        baseline_mean == fast_point.mean_ms && fast_point.mean_ms == surface_point.mean_ms;
    println!(
        "fig6_sptf:   baseline {baseline_secs:6.2} s      fast {fast_secs:6.2} s      surface {surface_secs:6.2} s  ({speedup:.1}x / {surface_speedup:.1}x, {} seeds x {requests} reqs @ {RATE} req/s, {threads} threads)",
        SEEDS.len()
    );
    println!(
        "             mean response {baseline_mean:.4} ms vs {:.4} ms vs {:.4} ms  (identical: {means_match})",
        fast_point.mean_ms, surface_point.mean_ms
    );
    if !means_match {
        eprintln!("warning: fast path changed the simulation result — pick equivalence broken");
    }

    // 6. events/sec: per-component ns/op, then whole cells measured
    // serially on this thread so the requests/sec figure is per-core.
    let n_ops = 2_000_000u64;
    let cal_sparse_ns = time_queue_pair::<EventQueue<u64>>(2, n_ops);
    let heap_sparse_ns = time_queue_pair::<BinaryHeapEventQueue<u64>>(2, n_ops);
    let cal_deep_ns = time_queue_pair::<EventQueue<u64>>(4096, n_ops);
    let heap_deep_ns = time_queue_pair::<BinaryHeapEventQueue<u64>>(4096, n_ops);
    let slab_ns = time_slab_pair(n_ops);
    println!(
        "events/sec:  queue pair sparse {cal_sparse_ns:5.1} ns (heap {heap_sparse_ns:5.1})   deep {cal_deep_ns:5.1} ns (heap {heap_deep_ns:5.1})   slab pair {slab_ns:5.1} ns"
    );

    // The gated headline: the Fig. 6 SPTF cell on the shared surface.
    let fig6_cell = time_cell(&SEEDS, RATE, requests, warmup, SptfScheduler::new);
    // A high-rate open-loop cell with an O(1) scheduler: deep queues and
    // dense event traffic with the pick cost out of the picture, so the
    // number tracks the raw event engine.
    const HIGH_RATE: f64 = 10_000.0;
    let high_cell = time_cell(
        &SEEDS,
        HIGH_RATE,
        requests.saturating_mul(2),
        warmup,
        FifoScheduler::new,
    );
    let realloc_free = fig6_cell.restructures == 0 && high_cell.restructures == 0;
    println!(
        "             fig6 cell {:9.0} req/core-s ({:.0} events/core-s, {:.3} s wall)",
        fig6_cell.requests_per_core_sec, fig6_cell.events_per_core_sec, fig6_cell.wall_secs
    );
    println!(
        "             high-rate cell {:9.0} req/core-s ({:.0} events/core-s, {:.3} s wall)   realloc-free: {realloc_free}",
        high_cell.requests_per_core_sec, high_cell.events_per_core_sec, high_cell.wall_secs
    );
    if !realloc_free {
        eprintln!(
            "warning: event queue restructured mid-run (fig6 {}, high-rate {}) — pre-sizing failed",
            fig6_cell.restructures, high_cell.restructures
        );
    }

    // 7. streaming_scale: the constant-memory headline. Identity gate
    // first, then the two big cells, measuring wall clock and the
    // peak-RSS growth over the post-surface baseline.
    let streamed_identical = streaming_identity_gate();
    let baseline_rss_kb = peak_rss_kb();
    let rss_supported = baseline_rss_kb.is_some();
    let baseline_kb = baseline_rss_kb.unwrap_or(0);

    const STREAM_RATE: f64 = 500.0;
    const STREAM_LOOKAHEAD: usize = 4096;
    let (open_loop, open_loop_secs) = timed(|| {
        Driver::new(
            RandomWorkload::paper(CAPACITY, STREAM_RATE, stream_requests, 21),
            FifoScheduler::new(),
            surfaced_mems_device(&MemsParams::default()),
        )
        .with_arrival_lookahead(STREAM_LOOKAHEAD)
        .streaming_stats(true)
        .warmup_requests(warmup)
        .run()
    });
    let open_loop_rps = open_loop.completed as f64 / open_loop_secs;
    let open_loop_rss_kb = peak_rss_kb().unwrap_or(0).saturating_sub(baseline_kb);
    println!(
        "streaming:   identity gate {}   open-loop {} reqs  {:9.0} req/core-s ({:.3} s wall, ΔRSS {} kB, restructures {})",
        if streamed_identical { "ok" } else { "FAILED" },
        stream_requests,
        open_loop_rps,
        open_loop_secs,
        open_loop_rss_kb,
        open_loop.event_queue_restructures
    );

    const FLEET_STATIONS: usize = 64;
    let fleet_requests = (stream_requests / 10).max(1);
    let fleet_volume = VolumeSpec::flat(FLEET_STATIONS, 64);
    let fleet_rate = STREAM_RATE * FLEET_STATIONS as f64;
    let (fleet_report, fleet_secs) = timed(|| {
        FleetEngine::streaming(
            (0..FLEET_STATIONS)
                .map(|_| surfaced_mems_device(&MemsParams::default()))
                .collect(),
            |_| SptfScheduler::new(),
            fleet_volume.clone(),
            RandomWorkload::paper(
                fleet_volume.capacity(CAPACITY),
                fleet_rate,
                fleet_requests,
                22,
            ),
            FleetConfig {
                shards: FLEET_STATIONS,
                threads: 1,
                warmup_requests: warmup,
                keep_station_completions: false,
                streaming_stats: true,
                ..FleetConfig::default()
            },
        )
        .run()
    });
    let fleet_rps = fleet_report.completed as f64 / fleet_secs;
    let fleet_rss_kb = peak_rss_kb().unwrap_or(0).saturating_sub(baseline_kb);
    println!(
        "             fleet {} reqs x {FLEET_STATIONS} stations  {:9.0} req/core-s ({:.3} s wall, ΔRSS {} kB, restructures {})",
        fleet_requests,
        fleet_rps,
        fleet_secs,
        fleet_rss_kb,
        fleet_report.station_restructures
    );
    if !streamed_identical {
        eprintln!("warning: streaming paths diverged from materialized runs — identity broken");
    }

    let mut json = String::new();
    let _ = write!(
        json,
        concat!(
            "{{\n",
            "  \"host_threads\": {},\n",
            "  \"seek_table\": {{\n",
            "    \"queries\": {},\n",
            "    \"direct_ns_per_query\": {:.2},\n",
            "    \"memo_ns_per_query\": {:.2},\n",
            "    \"speedup\": {:.2},\n",
            "    \"hit_rate\": {:.4}\n",
            "  }},\n",
            "  \"seek_surface\": {{\n",
            "    \"build_secs\": {:.3},\n",
            "    \"bytes\": {},\n",
            "    \"surface_ns_per_query\": {:.2},\n",
            "    \"speedup_vs_direct\": {:.2},\n",
            "    \"speedup_vs_memo\": {:.2}\n",
            "  }},\n",
            "  \"sptf_pick\": {{\n",
            "    \"queue_depth\": {},\n",
            "    \"naive_us_per_pick\": {:.3},\n",
            "    \"pruned_us_per_pick\": {:.3},\n",
            "    \"speedup\": {:.2}\n",
            "  }},\n",
            "  \"devirt_pick\": {{\n",
            "    \"queue_depth\": {},\n",
            "    \"dyn_us_per_pick\": {:.3},\n",
            "    \"static_us_per_pick\": {:.3},\n",
            "    \"speedup\": {:.2}\n",
            "  }},\n",
            "  \"fig6_sptf\": {{\n",
            "    \"rate_req_per_s\": {},\n",
            "    \"requests_per_seed\": {},\n",
            "    \"warmup\": {},\n",
            "    \"seeds\": {},\n",
            "    \"baseline_naive_serial_secs\": {:.3},\n",
            "    \"fast_pruned_parallel_secs\": {:.3},\n",
            "    \"surface_shared_secs\": {:.3},\n",
            "    \"speedup\": {:.2},\n",
            "    \"surface_speedup\": {:.2},\n",
            "    \"baseline_mean_response_ms\": {:.6},\n",
            "    \"fast_mean_response_ms\": {:.6},\n",
            "    \"surface_mean_response_ms\": {:.6},\n",
            "    \"means_identical\": {}\n",
            "  }},\n",
            "  \"events_per_sec\": {{\n",
            "    \"queue_pair_ops\": {},\n",
            "    \"calendar_sparse_ns_per_pair\": {:.2},\n",
            "    \"heap_sparse_ns_per_pair\": {:.2},\n",
            "    \"calendar_deep_ns_per_pair\": {:.2},\n",
            "    \"heap_deep_ns_per_pair\": {:.2},\n",
            "    \"slab_ns_per_pair\": {:.2},\n",
            "    \"realloc_free\": {},\n",
            "    \"fig6_cell\": {{\n",
            "      \"seeds\": {},\n",
            "      \"requests\": {},\n",
            "      \"events\": {},\n",
            "      \"wall_secs\": {:.4},\n",
            "      \"requests_per_core_sec\": {:.1},\n",
            "      \"events_per_core_sec\": {:.1},\n",
            "      \"queue_restructures\": {}\n",
            "    }},\n",
            "    \"high_rate_cell\": {{\n",
            "      \"rate_req_per_s\": {},\n",
            "      \"seeds\": {},\n",
            "      \"requests\": {},\n",
            "      \"events\": {},\n",
            "      \"wall_secs\": {:.4},\n",
            "      \"requests_per_core_sec\": {:.1},\n",
            "      \"events_per_core_sec\": {:.1},\n",
            "      \"queue_restructures\": {}\n",
            "    }}\n",
            "  }},\n",
            "  \"streaming_scale\": {{\n",
            "    \"streamed_identical\": {},\n",
            "    \"rss_supported\": {},\n",
            "    \"baseline_rss_kb\": {},\n",
            "    \"open_loop_fifo\": {{\n",
            "      \"requests\": {},\n",
            "      \"rate_req_per_s\": {},\n",
            "      \"arrival_lookahead\": {},\n",
            "      \"completed\": {},\n",
            "      \"wall_secs\": {:.4},\n",
            "      \"requests_per_core_sec\": {:.1},\n",
            "      \"queue_restructures\": {},\n",
            "      \"peak_rss_delta_kb\": {}\n",
            "    }},\n",
            "    \"fleet_streaming\": {{\n",
            "      \"stations\": {},\n",
            "      \"requests\": {},\n",
            "      \"rate_req_per_s\": {},\n",
            "      \"completed\": {},\n",
            "      \"wall_secs\": {:.4},\n",
            "      \"requests_per_core_sec\": {:.1},\n",
            "      \"station_restructures\": {},\n",
            "      \"peak_rss_delta_kb\": {}\n",
            "    }}\n",
            "  }}\n",
            "}}\n"
        ),
        threads,
        n_queries,
        direct_ns,
        memo_ns,
        direct_ns / memo_ns,
        stats.hit_rate(),
        build_secs,
        surface_bytes,
        surface_ns,
        direct_ns / surface_ns,
        memo_ns / surface_ns,
        depth,
        naive_us,
        pruned_us,
        naive_us / pruned_us,
        depth,
        dyn_us,
        static_us,
        dyn_us / static_us,
        RATE,
        requests,
        warmup,
        SEEDS.len(),
        baseline_secs,
        fast_secs,
        surface_secs,
        speedup,
        surface_speedup,
        baseline_mean,
        fast_point.mean_ms,
        surface_point.mean_ms,
        means_match,
        n_ops,
        cal_sparse_ns,
        heap_sparse_ns,
        cal_deep_ns,
        heap_deep_ns,
        slab_ns,
        realloc_free,
        SEEDS.len(),
        fig6_cell.requests,
        fig6_cell.events,
        fig6_cell.wall_secs,
        fig6_cell.requests_per_core_sec,
        fig6_cell.events_per_core_sec,
        fig6_cell.restructures,
        HIGH_RATE,
        SEEDS.len(),
        high_cell.requests,
        high_cell.events,
        high_cell.wall_secs,
        high_cell.requests_per_core_sec,
        high_cell.events_per_core_sec,
        high_cell.restructures,
        streamed_identical,
        rss_supported,
        baseline_kb,
        stream_requests,
        STREAM_RATE,
        STREAM_LOOKAHEAD,
        open_loop.completed,
        open_loop_secs,
        open_loop_rps,
        open_loop.event_queue_restructures,
        open_loop_rss_kb,
        FLEET_STATIONS,
        fleet_requests,
        fleet_rate,
        fleet_report.completed,
        fleet_secs,
        fleet_rps,
        fleet_report.station_restructures,
        fleet_rss_kb,
    );
    match std::fs::write("BENCH_sched.json", &json) {
        Ok(()) => println!("\n[wrote BENCH_sched.json]"),
        Err(e) => eprintln!("warning: cannot write BENCH_sched.json: {e}"),
    }
    // The wall-clock timestamp lives in a separate, untracked stamp file so
    // regenerating the committed JSON never churns its diff.
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let stamp = format!("{{\"generated_unix\": {unix}}}\n");
    if let Err(e) = std::fs::write("BENCH_sched.stamp", stamp) {
        eprintln!("warning: cannot write BENCH_sched.stamp: {e}");
    }
}
