//! Figure 10: service time of large (256 KB) requests vs X seek distance
//! (§5.2).
//!
//! A 256 KB read streams for ~26 tip-sector rows, so even a full-device
//! X seek adds little: the paper reports only a ~12% penalty at 1000
//! cylinders. For contrast, the same sweep is run on the Atlas 10K,
//! where a long seek more than doubles the 256 KB service time.

use atlas_disk::{DiskDevice, DiskParams};
use mems_bench::{write_csv, Table};
use mems_device::{MemsDevice, MemsParams, SledState};
use storage_sim::{IoKind, Request, SimTime, StorageDevice};

fn main() {
    let sectors = 512u32; // 256 KB
    let distances: Vec<u32> = vec![0, 50, 100, 200, 400, 600, 800, 1000, 1400, 1800, 2200, 2400];

    println!("Figure 10: 256 KB read service time vs X seek distance\n");

    let mems = MemsDevice::new(MemsParams::default());
    let mapper = mems.mapper();
    let start_cyl = 20u32;
    let parked = SledState {
        x: mapper.x_of_cylinder(start_cyl),
        y: 0.0,
        vy: 0.0,
    };

    let mut table = Table::new(vec![
        "distance (cyl)".into(),
        "MEMS (ms)".into(),
        "MEMS penalty".into(),
        "Atlas 10K (ms)".into(),
        "Atlas penalty".into(),
    ]);
    let mut mems_base = 0.0;
    let mut disk_base = 0.0;
    let mut csv = String::from("distance_cyl,mems_ms,disk_ms\n");
    for &d in &distances {
        // MEMS: request begins at the start of the target cylinder.
        let target_cyl = start_cyl + d;
        let lbn = u64::from(target_cyl) * 2700;
        let req = Request::new(0, SimTime::ZERO, lbn, sectors, IoKind::Read);
        let (b, _) = mems.service_from(parked, &req);
        let mems_ms = b.total() * 1e3;

        // Disk: park the arm at a reference cylinder, then read at a
        // cylinder `d` away (the paper's x-axis is cylinders of each
        // device). Average over rotational phases so the rotational
        // latency contributes its mean of half a revolution.
        let spc: u64 = 334 * 6; // sectors per cylinder in the outer zone
        let target = u64::from(d) * spc;
        let rev_ms = DiskParams::quantum_atlas_10k().revolution_time() * 1e3;
        let phases = 24;
        let mut disk_sum = 0.0;
        for k in 0..phases {
            let mut disk = DiskDevice::new(DiskParams::quantum_atlas_10k());
            let _ = disk.service(
                &Request::new(0, SimTime::ZERO, 0, 1, IoKind::Read),
                SimTime::ZERO,
            );
            let at = SimTime::from_ms(50.0 + rev_ms * f64::from(k) / f64::from(phases));
            let breq = Request::new(1, at, target, sectors, IoKind::Read);
            disk_sum += disk.service(&breq, at).total() * 1e3;
        }
        let disk_ms = disk_sum / f64::from(phases);

        if d == 0 {
            mems_base = mems_ms;
            disk_base = disk_ms;
        }
        table.row(vec![
            format!("{d}"),
            format!("{mems_ms:.3}"),
            format!("{:+.1}%", (mems_ms / mems_base - 1.0) * 100.0),
            format!("{disk_ms:.3}"),
            format!("{:+.1}%", (disk_ms / disk_base - 1.0) * 100.0),
        ]);
        csv.push_str(&format!("{d},{mems_ms:.4},{disk_ms:.4}\n"));
    }
    println!("{}", table.render());
    write_csv("fig10_large_transfers.csv", &csv);
    println!(
        "paper check: MEMS penalty at 1000 cylinders ~10-12%; disk long seeks \
         add milliseconds to a ~15 ms transfer"
    );
}
