//! Fleet-scale observability: deterministic fleet timelines, per-station
//! health, straggler detection, rebuild progress, pooled media heat, and
//! the engine's own wall-clock profile.
//!
//! Cells:
//!
//! * `fleet16` — 16 striped MEMS stations where station 5 loses tips
//!   early with **zero** spares, so it keeps paying Reed–Solomon
//!   reconstruction for the whole run: the windowed straggler detector
//!   must flag exactly that station. Per-station [`Telemetry`] merges
//!   into a [`FleetTimeline`] that reconciles integer-exactly with the
//!   [`mems_fleet::FleetReport`], per-station health rows quantify the
//!   utilization/tail skew, and the per-station completion streams pool
//!   into one fleet [`MediaHeatmap`] via the exact grid merge.
//! * `rebuild8` — the RAID-10 rebuild-under-load scenario with telemetry
//!   attached: the timeline shows the rebuild window, and a
//!   [`ProgressSeries`] over station 0's background writes tracks copied
//!   sectors per window (total must equal the rebuild span exactly).
//! * `adaptive4` — a 4-station fleet of adaptive-placement wrappers on a
//!   skewed bursty stream: per-station migration ledgers pool by exact
//!   accumulation into one fleet migration summary.
//!
//! Two in-process gates run first and exit non-zero on failure:
//!
//! 1. **Observer identity**: a telemetry-attached fleet run must produce
//!    a [`mems_fleet::FleetReport`] digest bit-identical to the untraced
//!    run, at shards/threads = (1,1), (4,4), and (16,8) — tracers
//!    observe, they never steer, under every engine configuration.
//! 2. **Straggler detection**: the detector must flag station 5 and only
//!    station 5 in `fleet16`.
//!
//! Outputs: byte-stable goldens `results/fleet_obs_timeline.csv`,
//! `fleet_obs_health.csv`, `fleet_obs_rebuild.csv`, and
//! `fleet_obs_heatmap.csv` (all sim-time derived; CI diffs them), plus
//! `target/fleet_obs_summary.json`, which also carries the wall-clock
//! [`mems_fleet::FleetProfile`] (barrier wait, merge time, shard
//! imbalance) from a profiled rerun and is therefore untracked. Pass
//! `--long` for the informational 10× horizon (CSVs under
//! `target/long/`), `--identity-only` to run just the identity gate.
//!
//! The pooled heatmap is built from recorded completion streams, which
//! carry no energy numbers — its `energy_j` column is structurally zero
//! (per-station energy lives in the timeline's `energy_w` series).

use mems_bench::{surfaced_mems_device, write_csv};
use mems_device::{MediaHeatmap, MemsParams};
use mems_fleet::{
    detect_stragglers, tail_skew, utilization_skew, FleetConfig, FleetEngine, FleetTimeline,
    ProgressSeries, RebuildPlan, StationHealth, StragglerPolicy, VolumeSpec,
};
use mems_os::fault::DegradedDevice;
use mems_os::placement::{AdaptiveDevice, MigrationStats, PlacementConfig};
use mems_os::sched::SptfScheduler;
use storage_sim::{
    FaultClock, IoKind, Profiler, Request, SimReport, SimTime, Telemetry, TracerPair, Workload,
};
use storage_trace::{RandomWorkload, ZipfWorkload};

const MEMS_CAPACITY: u64 = 6_750_000;
const TIPS: u32 = 6400;
const STRIPE_UNIT: u32 = 64;
const WORKLOAD_SEED: u64 = 42;
const FAULT_SEED: u64 = 0x5EED_0077;
const RATE_PER_DEV: f64 = 500.0;
/// Telemetry windows: 100 ms buckets, coarsening past 256 windows.
const WINDOW_S: f64 = 0.1;
const MAX_WINDOWS: usize = 256;
/// MEMS region grid for the pooled heatmap (matches `telemetry_report`).
const GRID_X: usize = 10;
const GRID_Y: usize = 9;

/// The straggler cell: 16 stations, station 5 degraded.
const FLEET16_DEVICES: usize = 16;
const FLEET16_REQS_PER_DEV: u64 = 2_000;
const STRAGGLER_STATION: usize = 5;
/// Tips station 5 loses in the first 0.2 s. With zero spares every
/// access over a lost tip pays reconstruction for the rest of the run;
/// the parity budget covers the worst stripe, so the damage is always
/// reconstructable (never an unrecoverable far-remap) and the penalty is
/// pure service time.
const STRAGGLER_FAILED_TIPS: usize = 640;

/// The adaptive cell: Zipf(0.99) over 512 KB placement blocks in ON/OFF
/// bursts (same tuning as `placement_sweep`). The stripe unit equals the
/// block size, so each hot fleet block lands whole on one station and
/// stays hot in that station's local LBN space.
const ADAPTIVE_DEVICES: usize = 4;
const ADAPTIVE_REQUESTS: u64 = 20_000;
const ADAPTIVE_BLOCK_SECTORS: u32 = 1024;
/// Fleet-level bursts: `50 × stations` requests per ON phase, so each
/// station sees the same ~50-request bursts and ~60 ms idle gaps the
/// single-device placement sweep tunes its idle-window migration for.
const ADAPTIVE_BURST_LEN: u64 = 50 * ADAPTIVE_DEVICES as u64;
const ADAPTIVE_BURST_IDLE: f64 = 0.060;

fn collect(mut w: impl Workload) -> Vec<Request> {
    let mut out = Vec::new();
    while let Some(r) = w.next_request() {
        out.push(r);
    }
    out
}

/// Writes a CSV to the byte-gated goldens (`results/`) or, on the
/// informational `--long` horizon, to `target/long/`.
fn emit_csv(long: bool, name: &str, contents: &str) {
    if !long {
        write_csv(name, contents);
        return;
    }
    let dir = std::path::Path::new("target/long");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

fn telemetry() -> Telemetry {
    Telemetry::new(WINDOW_S, MAX_WINDOWS)
}

/// Builds the `fleet16` engine: a striped fleet of degraded-capable MEMS
/// stations with tip failures (and no spares) on the straggler station.
fn fleet16_engine(
    scale: u64,
    shards: usize,
    threads: usize,
) -> FleetEngine<SptfScheduler, DegradedDevice<mems_device::MemsDevice>> {
    let params = MemsParams::default();
    let volume = VolumeSpec::flat(FLEET16_DEVICES, STRIPE_UNIT);
    let reqs = FLEET16_REQS_PER_DEV * FLEET16_DEVICES as u64 * scale;
    let requests = collect(RandomWorkload::paper(
        volume.capacity(MEMS_CAPACITY),
        RATE_PER_DEV * FLEET16_DEVICES as f64,
        reqs,
        WORKLOAD_SEED,
    ));
    let mut engine = FleetEngine::new(
        (0..FLEET16_DEVICES)
            .map(|i| {
                DegradedDevice::mems(surfaced_mems_device(&params), FAULT_SEED + i as u64)
                    .with_spare_tips(0)
                    .with_parity(TIPS as usize)
            })
            .collect(),
        |_| SptfScheduler::new(),
        &volume,
        &requests,
        FleetConfig {
            shards,
            threads,
            epoch: SimTime::from_ms(10.0),
            warmup_requests: 0,
            ..FleetConfig::default()
        },
    );
    engine.set_station_faults(
        STRAGGLER_STATION,
        FaultClock::tip_failures(
            FAULT_SEED,
            STRAGGLER_FAILED_TIPS,
            TIPS,
            SimTime::from_secs(0.2),
        ),
    );
    engine
}

/// Gate 1: an instrumented run's report digest must be bit-identical to
/// the untraced run's, under every shard/thread split.
fn identity_gate() {
    let baseline = fleet16_engine(1, 1, 1).run().digest();
    for (shards, threads) in [(1, 1), (4, 4), (16, 8)] {
        let untraced = fleet16_engine(1, shards, threads).run();
        let traced = fleet16_engine(1, shards, threads)
            .with_station_tracers(|_| telemetry())
            .run_instrumented();
        if untraced.digest() != baseline {
            eprintln!("FAIL: untraced fleet digest diverged at shards={shards} threads={threads}");
            std::process::exit(1);
        }
        if traced.report.digest() != baseline {
            eprintln!(
                "FAIL: telemetry-attached fleet digest diverged at shards={shards} \
                 threads={threads}"
            );
            eprintln!("  untraced: {baseline}");
            eprintln!("  traced:   {}", traced.report.digest());
            std::process::exit(1);
        }
    }
    println!(
        "identity gate: telemetry-attached runs bit-identical to untraced at \
         shards/threads (1,1), (4,4), (16,8)\n"
    );
}

/// Builds the pooled fleet heatmap: one per-station map from each
/// recorded completion stream, merged by the exact grid merge. Completion
/// streams carry no energy, so energy pools as zero by construction.
fn pooled_heatmap(params: &MemsParams, stations: &[SimReport]) -> MediaHeatmap {
    let mut fleet_map: Option<MediaHeatmap> = None;
    for s in stations {
        let completions = s.completions.as_ref().expect("fleet records completions");
        let map = MediaHeatmap::from_services(
            params,
            GRID_X,
            GRID_Y,
            completions
                .iter()
                .map(|c| (c.request.lbn, c.request.sectors, 0.0)),
        );
        match &mut fleet_map {
            Some(m) => m.merge(&map),
            None => fleet_map = Some(map),
        }
    }
    fleet_map.expect("fleet has stations")
}

struct StragglerSummary {
    window_secs: f64,
    enter_window: usize,
    utilization_skew: f64,
    tail_skew: f64,
}

/// The `fleet16` cell: timeline + health + straggler gate + pooled heat.
fn straggler_cell(
    scale: u64,
    timeline_csv: &mut String,
    health_csv: &mut String,
    heatmap_csv: &mut String,
) -> StragglerSummary {
    let run = fleet16_engine(scale, 4, 4)
        .with_station_tracers(|_| telemetry())
        .run_instrumented();
    let report = &run.report;

    let timeline = FleetTimeline::merge(&run.tracers);
    if let Err(e) = timeline.reconcile(report) {
        eprintln!("FAIL: fleet16 timeline does not reconcile: {e}");
        std::process::exit(1);
    }
    timeline_csv.push_str(&timeline.csv_rows("fleet16"));

    let health = StationHealth::from_report(report);
    for h in &health {
        health_csv.push_str(&h.csv_row("fleet16"));
    }
    let uskew = utilization_skew(&health);
    let tskew = tail_skew(&health);

    // Gate 2: exactly station 5 is a straggler, and it stays flagged —
    // zero spares means the slowdown never heals.
    let stragglers = detect_stragglers(&run.tracers, &StragglerPolicy::default());
    if stragglers.stragglers() != vec![STRAGGLER_STATION] {
        eprintln!(
            "FAIL: straggler detector flagged {:?}, expected [{STRAGGLER_STATION}]",
            stragglers.stragglers()
        );
        eprintln!("  events: {:?}", stragglers.events);
        std::process::exit(1);
    }
    let spurious = stragglers
        .events
        .iter()
        .any(|e| e.station != STRAGGLER_STATION);
    if spurious {
        eprintln!(
            "FAIL: straggler transitions on healthy stations: {:?}",
            stragglers.events
        );
        std::process::exit(1);
    }
    let enter_window = stragglers
        .events
        .iter()
        .find(|e| e.entered)
        .map(|e| e.window)
        .expect("an enter event exists for the flagged station");

    let map = pooled_heatmap(&MemsParams::default(), &report.stations);
    if map.requests() != report.subs_completed {
        eprintln!(
            "FAIL: pooled heatmap requests {} != fleet sub-I/Os {}",
            map.requests(),
            report.subs_completed
        );
        std::process::exit(1);
    }
    if map.region_access_total() != map.total_stripes()
        || map.tip_sector_total() != map.total_sectors()
    {
        eprintln!("FAIL: pooled heatmap does not reconcile with its own totals");
        std::process::exit(1);
    }
    heatmap_csv.push_str(&map.csv_rows("fleet16"));

    println!(
        "fleet16:  {} sub-I/Os, {} windows at {:.1} ms; station {STRAGGLER_STATION} \
         flagged at window {enter_window} ({} faults); util skew {uskew:.3}, tail skew {tskew:.3}",
        report.subs_completed,
        timeline.windows().len(),
        timeline.window_secs() * 1e3,
        report.fault_events,
    );
    StragglerSummary {
        window_secs: stragglers.window_secs,
        enter_window,
        utilization_skew: uskew,
        tail_skew: tskew,
    }
}

/// The `rebuild8` cell: RAID-10 rebuild under load with telemetry; the
/// progress series over station 0's background writes must account for
/// every copied sector.
fn rebuild_cell(
    scale: u64,
    timeline_csv: &mut String,
    health_csv: &mut String,
    rebuild_csv: &mut String,
) {
    const PAIRS: usize = 4;
    let reqs: u64 = 4000 * scale;
    const RATE: f64 = 2000.0;
    const SPAN_LBNS: u64 = 512 * 1024;
    const CHUNK_SECTORS: u32 = 512;
    let params = MemsParams::default();
    let pair =
        |a: usize, b: usize| VolumeSpec::mirror(vec![VolumeSpec::leaf(a), VolumeSpec::leaf(b)]);
    let volume = VolumeSpec::stripe(
        (0..PAIRS).map(|p| pair(2 * p, 2 * p + 1)).collect(),
        STRIPE_UNIT,
    );
    let requests = collect(RandomWorkload::paper(
        volume.capacity(MEMS_CAPACITY),
        RATE,
        reqs,
        WORKLOAD_SEED,
    ));
    let mut engine = FleetEngine::new(
        (0..2 * PAIRS)
            .map(|i| {
                DegradedDevice::mems(surfaced_mems_device(&params), FAULT_SEED + i as u64)
                    .with_spare_tips(8)
            })
            .collect(),
        |_| SptfScheduler::new(),
        &volume,
        &requests,
        FleetConfig {
            shards: 4,
            threads: 4,
            epoch: SimTime::from_ms(10.0),
            warmup_requests: 0,
            ..FleetConfig::default()
        },
    );
    engine.set_station_faults(
        0,
        FaultClock::tip_failures(FAULT_SEED, 64, TIPS, SimTime::from_secs(0.5)),
    );
    RebuildPlan {
        source: 1,
        target: 0,
        start: SimTime::from_secs(0.5),
        pace: SimTime::from_ms(2.0),
        span_lbns: SPAN_LBNS,
        chunk_sectors: CHUNK_SECTORS,
    }
    .inject(&mut engine);
    let run = engine
        .with_station_tracers(|_| telemetry())
        .run_instrumented();
    let report = &run.report;

    let timeline = FleetTimeline::merge(&run.tracers);
    if let Err(e) = timeline.reconcile(report) {
        eprintln!("FAIL: rebuild8 timeline does not reconcile: {e}");
        std::process::exit(1);
    }
    timeline_csv.push_str(&timeline.csv_rows("rebuild8"));
    for h in &StationHealth::from_report(report) {
        health_csv.push_str(&h.csv_row("rebuild8"));
    }

    // Rebuild progress: background writes landing on the rebuild target.
    // Background ids follow the dense foreground block, so `reqs` is the
    // exact id floor.
    let target_completions = report.stations[0]
        .completions
        .as_ref()
        .expect("fleet records completions");
    let progress =
        ProgressSeries::from_completions(target_completions, reqs, Some(IoKind::Write), WINDOW_S);
    if progress.total() != SPAN_LBNS {
        eprintln!(
            "FAIL: rebuild progress accounts for {} sectors, span is {SPAN_LBNS}",
            progress.total()
        );
        std::process::exit(1);
    }
    rebuild_csv.push_str(&progress.csv_rows("rebuild8"));
    println!(
        "rebuild8: {} rebuild chunks over {} windows; {} copied sectors reconcile with the span",
        report.background_completed,
        progress.sectors.len(),
        progress.total(),
    );
}

/// The `adaptive4` cell: pooled migration ledger across a fleet of
/// adaptive-placement stations.
fn adaptive_cell(scale: u64) -> MigrationStats {
    let params = MemsParams::default();
    let volume = VolumeSpec::flat(ADAPTIVE_DEVICES, ADAPTIVE_BLOCK_SECTORS);
    let requests = collect(
        ZipfWorkload::new(
            volume.capacity(MEMS_CAPACITY),
            ADAPTIVE_BLOCK_SECTORS,
            0.99,
            RATE_PER_DEV * ADAPTIVE_DEVICES as f64,
            ADAPTIVE_REQUESTS * scale,
            WORKLOAD_SEED,
        )
        .bursty(ADAPTIVE_BURST_LEN, ADAPTIVE_BURST_IDLE),
    );
    let placement = PlacementConfig {
        block_sectors: ADAPTIVE_BLOCK_SECTORS,
        half_life: 1.0,
        idle_window: 4e-3,
        max_swaps_per_window: 4,
        hysteresis: 1.5,
        min_rank_gain: 64,
        min_heat: 4.0,
        migrate: true,
    };
    let run = FleetEngine::new(
        (0..ADAPTIVE_DEVICES)
            .map(|_| AdaptiveDevice::new(surfaced_mems_device(&params), placement))
            .collect(),
        |_| SptfScheduler::new(),
        &volume,
        &requests,
        FleetConfig {
            shards: ADAPTIVE_DEVICES,
            threads: ADAPTIVE_DEVICES,
            epoch: SimTime::from_ms(10.0),
            warmup_requests: 0,
            ..FleetConfig::default()
        },
    )
    .run_instrumented();

    let mut pooled = MigrationStats::default();
    let mut migrating_stations = 0usize;
    for device in &run.devices {
        let stats = device.migration_stats();
        if stats.swaps > 0 {
            migrating_stations += 1;
        }
        pooled.accumulate(stats);
    }
    if pooled.swaps == 0 {
        eprintln!("FAIL: no station migrated on a skewed bursty fleet stream");
        std::process::exit(1);
    }
    println!(
        "adaptive4: {} swaps pooled over {migrating_stations}/{ADAPTIVE_DEVICES} migrating \
         stations ({} chunk I/Os, {:.3} ms mean chunk)",
        pooled.swaps,
        pooled.chunk_ios,
        pooled.chunk_time.mean() * 1e3,
    );
    pooled
}

/// Profiled rerun of `fleet16`: the report must stay bit-identical while
/// the engine self-profiles (barrier wait, merge time, shard imbalance).
fn profiled_rerun(reference_digest: &str) -> String {
    let run = fleet16_engine(1, 4, 4)
        .with_station_tracers(|_| TracerPair::new(telemetry(), Profiler::new()))
        .run_instrumented();
    if run.report.digest() != reference_digest {
        eprintln!("FAIL: profiled fleet rerun diverged from the telemetry run");
        std::process::exit(1);
    }
    println!(
        "profile:  {} barriers, shard imbalance {:.3} (wall-clock, informational)",
        run.profile.barriers,
        run.profile.imbalance(),
    );
    run.profile.summary_json()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let identity_only = args.iter().any(|a| a == "--identity-only");
    let long = args.iter().any(|a| a == "--long");

    identity_gate();
    if identity_only {
        return;
    }
    let scale = if long { 10 } else { 1 };

    let mut timeline_csv = String::from(FleetTimeline::csv_header());
    timeline_csv.push('\n');
    let mut health_csv = String::from(StationHealth::csv_header());
    health_csv.push('\n');
    let mut rebuild_csv = String::from(ProgressSeries::csv_header());
    rebuild_csv.push('\n');
    let mut heatmap_csv = String::from("cell,kind,i,j,accesses,sectors,dwell_s,energy_j\n");

    let straggler = straggler_cell(scale, &mut timeline_csv, &mut health_csv, &mut heatmap_csv);
    rebuild_cell(scale, &mut timeline_csv, &mut health_csv, &mut rebuild_csv);
    let migration = adaptive_cell(scale);

    emit_csv(long, "fleet_obs_timeline.csv", &timeline_csv);
    emit_csv(long, "fleet_obs_health.csv", &health_csv);
    emit_csv(long, "fleet_obs_rebuild.csv", &rebuild_csv);
    emit_csv(long, "fleet_obs_heatmap.csv", &heatmap_csv);

    // The profiled rerun compares against the same-scale traced run; on
    // the long horizon the gate already ran at scale 1 inside
    // identity_gate, so profile the base cell either way.
    let reference = fleet16_engine(1, 4, 4)
        .with_station_tracers(|_| telemetry())
        .run_instrumented()
        .report
        .digest();
    let profile_json = profiled_rerun(&reference);

    let summary = format!(
        "{{\n  \"fleet16\": {{\n    \"straggler_station\": {STRAGGLER_STATION},\n    \
         \"straggler_window\": {},\n    \"detector_window_s\": {:.3},\n    \
         \"utilization_skew\": {:.4},\n    \"tail_skew\": {:.4}\n  }},\n  \
         \"migration\": {},\n  \"engine_profile\": {}\n}}\n",
        straggler.enter_window,
        straggler.window_secs,
        straggler.utilization_skew,
        straggler.tail_skew,
        migration.summary_json(),
        profile_json,
    );
    let _ = std::fs::create_dir_all("target");
    let path = std::path::Path::new("target").join("fleet_obs_summary.json");
    if std::fs::write(&path, &summary).is_ok() {
        println!("wrote {}", path.display());
    }
    println!("\nall fleet observability gates passed");
}
