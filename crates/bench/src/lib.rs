//! Shared machinery for the experiment harnesses.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper; this library holds what they share: the scheduling-sweep runner,
//! aligned-table printing, and CSV emission into `results/`.

#![warn(missing_docs)]

pub mod report;
pub mod sweep;

pub use report::{write_csv, Table};
pub use sweep::{
    replicated_point, run_one, sched_sweep, shared_seek_surface, surfaced_mems_device,
    ReplicatedPoint, SweepPoint,
};
