//! Output formatting: aligned console tables and CSV files.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use mems_bench::Table;
///
/// let mut t = Table::new(vec!["x".into(), "y".into()]);
/// t.row(vec!["1".into(), "2.5".into()]);
/// let s = t.render();
/// assert!(s.contains("x"));
/// assert!(s.contains("2.5"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}", cell, width = widths[i]);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Writes `contents` to `results/<name>` (relative to the workspace root
/// or the current directory), creating the directory if needed. Prints
/// where the file landed. Errors are reported, not fatal — the console
/// table is the primary output.
pub fn write_csv(name: &str, contents: &str) {
    let dir = if Path::new("results").exists() || Path::new("Cargo.toml").exists() {
        Path::new("results").to_path_buf()
    } else {
        Path::new("../results").to_path_buf()
    };
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match fs::write(&path, contents) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "123456".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines are the same width.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
        assert!(lines[3].contains("long-name"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_row_rejected() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
