//! Regression: the PR's two fast paths — the shared immutable seek
//! surface and the devirtualized scheduler dispatch — change performance
//! only. Full simulations run through them must produce byte-identical
//! [`SimReport`]s (every statistic, every recorded completion) to the
//! paths they replace.
//!
//! Reports are compared through their `Debug` rendering: Rust prints
//! `f64` as the shortest string that round-trips, so two reports render
//! identically iff every float in them is bitwise equal.

use atlas_disk::{DiskDevice, DiskParams};
use mems_bench::surfaced_mems_device;
use mems_device::{MemsDevice, MemsParams};
use mems_os::sched::SptfScheduler;
use storage_sim::{Driver, DynScheduler, SimReport, StorageDevice};
use storage_trace::RandomWorkload;

const REQUESTS: u64 = 1200;
const WARMUP: u64 = 100;

fn run_static<D: StorageDevice>(device: D, rate: f64, seed: u64) -> SimReport {
    let capacity = device.capacity_lbns();
    Driver::new(
        RandomWorkload::paper(capacity, rate, REQUESTS, seed),
        SptfScheduler::new(),
        device,
    )
    .warmup_requests(WARMUP)
    .record_completions(true)
    .run()
}

fn run_dyn<D: StorageDevice>(device: D, rate: f64, seed: u64) -> SimReport {
    let capacity = device.capacity_lbns();
    let scheduler: Box<dyn DynScheduler> = Box::new(SptfScheduler::new());
    Driver::new(
        RandomWorkload::paper(capacity, rate, REQUESTS, seed),
        scheduler,
        device,
    )
    .warmup_requests(WARMUP)
    .record_completions(true)
    .run()
}

fn assert_reports_identical(a: &SimReport, b: &SimReport, what: &str) {
    assert!(
        a.completions.as_ref().is_some_and(|c| !c.is_empty()),
        "regression run must record completions"
    );
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "{what}");
}

#[test]
fn surface_backed_mems_sim_matches_memo_backed_byte_for_byte() {
    let memo = run_static(
        MemsDevice::new(MemsParams::default()).with_seek_table(true),
        2000.0,
        9,
    );
    let surfaced = run_static(surfaced_mems_device(&MemsParams::default()), 2000.0, 9);
    assert_reports_identical(&memo, &surfaced, "seek surface changed simulation results");
}

#[test]
fn dyn_dispatch_matches_static_dispatch_on_mems() {
    let device = || surfaced_mems_device(&MemsParams::default());
    let fixed = run_static(device(), 1500.0, 4);
    let boxed = run_dyn(device(), 1500.0, 4);
    assert_reports_identical(&fixed, &boxed, "DynScheduler shim changed MEMS results");
}

#[test]
fn dyn_dispatch_matches_static_dispatch_on_disk() {
    let device = || DiskDevice::new(DiskParams::quantum_atlas_10k());
    let fixed = run_static(device(), 200.0, 11);
    let boxed = run_dyn(device(), 200.0, 11);
    assert_reports_identical(&fixed, &boxed, "DynScheduler shim changed disk results");
}
