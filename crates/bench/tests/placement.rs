//! Placement-layer integration tests.
//!
//! 1. **Billing conservation**: every I/O the adaptive wrapper issues —
//!    foreground or migration — reaches the wrapped device exactly once
//!    and is billed exactly once. A counting recorder between the
//!    wrapper and the MEMS device must reconcile with the driver's
//!    foreground report plus the wrapper's [`MigrationStats`], and a
//!    [`MediaHeatmap`] fed from the recorded stream must account for
//!    every sector.
//! 2. **Zero-migration identity**: with migrations disabled at the
//!    identity placement, the wrapper is a pure pass-through — full runs
//!    must produce byte-identical reports to the bare device, on MEMS
//!    and on the disk baseline (the same gate CI runs in-process via
//!    `placement_sweep --identity-only`).

use atlas_disk::{DiskDevice, DiskParams};
use mems_bench::surfaced_mems_device;
use mems_device::{MediaHeatmap, MemsDevice, MemsParams};
use mems_os::placement::{AdaptiveDevice, MigrationStats, PlacementConfig};
use mems_os::sched::SptfScheduler;
use storage_sim::{
    Driver, FaultKind, PhaseEnergy, PositionOracle, Request, ServiceBreakdown, SimReport, SimTime,
    StorageDevice, VecWorkload, Workload,
};
use storage_trace::{RandomWorkload, ShiftingHotspotWorkload};

const MEMS_CAPACITY: u64 = 6_750_000;

/// Pass-through device that logs every service call it sees.
#[derive(Debug, Clone)]
struct Recorder<D> {
    inner: D,
    ios: u64,
    sectors: u64,
    busy_secs: f64,
    log: Vec<(u64, u32)>,
}

impl<D> Recorder<D> {
    fn new(inner: D) -> Self {
        Recorder {
            inner,
            ios: 0,
            sectors: 0,
            busy_secs: 0.0,
            log: Vec::new(),
        }
    }
}

impl<D: StorageDevice> PositionOracle for Recorder<D> {
    fn position_time(&self, req: &Request, now: SimTime) -> f64 {
        self.inner.position_time(req, now)
    }
    fn position_bucket(&self, req: &Request) -> u64 {
        self.inner.position_bucket(req)
    }
    fn current_bucket(&self) -> u64 {
        self.inner.current_bucket()
    }
    fn min_position_time_at_bucket_distance(&self, distance: u64) -> f64 {
        self.inner.min_position_time_at_bucket_distance(distance)
    }
    fn bucket_position_time_floor(&self, bucket: u64) -> f64 {
        self.inner.bucket_position_time_floor(bucket)
    }
    fn rest_key(&self, now: SimTime) -> Option<[u64; 3]> {
        self.inner.rest_key(now)
    }
}

impl<D: StorageDevice> StorageDevice for Recorder<D> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn capacity_lbns(&self) -> u64 {
        self.inner.capacity_lbns()
    }
    fn service(&mut self, req: &Request, now: SimTime) -> ServiceBreakdown {
        let b = self.inner.service(req, now);
        self.ios += 1;
        self.sectors += u64::from(req.sectors);
        self.busy_secs += b.total();
        self.log.push((req.lbn, req.sectors));
        b
    }
    fn reset(&mut self) {
        self.inner.reset();
    }
    fn phase_energy(&self, breakdown: &ServiceBreakdown) -> PhaseEnergy {
        self.inner.phase_energy(breakdown)
    }
    fn on_fault(&mut self, fault: &FaultKind, now: SimTime) {
        self.inner.on_fault(fault, now);
    }
}

fn migrating_config() -> PlacementConfig {
    PlacementConfig {
        block_sectors: 1024,
        half_life: 1.0,
        idle_window: 4e-3,
        max_swaps_per_window: 4,
        hysteresis: 1.5,
        min_rank_gain: 64,
        min_heat: 4.0,
        migrate: true,
    }
}

#[test]
fn migration_billing_conserves_totals() {
    let workload = ShiftingHotspotWorkload::new(
        MEMS_CAPACITY,
        MEMS_CAPACITY / 200,
        15.0,
        0.9,
        500.0,
        30_000,
        42,
    )
    .bursty(50, 0.060);
    let mut requests = Vec::new();
    let mut w = workload;
    while let Some(r) = w.next_request() {
        requests.push(r);
    }
    let foreground_sectors: u64 = requests.iter().map(|r| u64::from(r.sectors)).sum();

    let recorder = Recorder::new(MemsDevice::new(MemsParams::default()));
    let dev = AdaptiveDevice::new(recorder, migrating_config());
    let mut driver = Driver::new(
        VecWorkload::new(requests.clone()),
        SptfScheduler::new(),
        dev,
    );
    let report = driver.run();
    let dev = driver.device();
    let stats: &MigrationStats = dev.migration_stats();
    let recorder = dev.inner();

    assert_eq!(
        report.completed,
        requests.len() as u64,
        "all foreground done"
    );
    assert!(stats.swaps > 0, "this workload must trigger migration");
    assert!(stats.windows > 0, "swaps only run inside idle windows");
    assert!(
        stats.chunk_ios >= 4 * stats.swaps && stats.chunk_ios <= 4 * stats.swaps + 3,
        "4 chunk I/Os per committed swap plus at most one in-flight swap: {} vs {}",
        stats.chunk_ios,
        stats.swaps
    );

    // Every I/O reaching the device is either a foreground request or an
    // accounted migration chunk — nothing double-billed, nothing hidden.
    assert_eq!(
        recorder.ios,
        requests.len() as u64 + stats.chunk_ios,
        "I/O count conservation"
    );
    assert_eq!(
        recorder.sectors,
        foreground_sectors + stats.sectors,
        "sector conservation"
    );

    // Busy-time conservation: the report's busy time includes the
    // background_wait the wrapper bills on top of real device time, so
    // real inner busy = foreground busy - waits + migration busy.
    let expect_busy = report.busy_secs - report.breakdown_sum.background_wait + stats.busy_secs;
    assert!(
        (recorder.busy_secs - expect_busy).abs() < 1e-6,
        "busy-time conservation: inner {} vs foreground+migration {}",
        recorder.busy_secs,
        expect_busy
    );
    // The wrapper's wait ledger is the same sum the driver saw.
    assert!(
        (stats.foreground_wait_secs - report.breakdown_sum.background_wait).abs() < 1e-9,
        "wait ledger mismatch"
    );

    // A heatmap fed from the recorded stream accounts for every sector,
    // foreground and migration alike.
    let mut map = MediaHeatmap::new(&MemsParams::default(), 10, 9);
    for &(lbn, sectors) in &recorder.log {
        map.record(lbn, sectors, 0.0);
    }
    assert_eq!(
        map.total_sectors(),
        foreground_sectors + stats.sectors,
        "heatmap sector reconciliation"
    );
}

fn run_cell<D: StorageDevice>(device: D) -> SimReport {
    let capacity = device.capacity_lbns();
    Driver::new(
        RandomWorkload::paper(capacity, 500.0, 4_000, 7),
        SptfScheduler::new(),
        device,
    )
    .warmup_requests(200)
    .record_completions(true)
    .run()
}

fn assert_identity<D: StorageDevice + Clone>(device: D, label: &str) {
    let bare = run_cell(device.clone());
    let cfg = PlacementConfig {
        migrate: false,
        ..migrating_config()
    };
    let wrapped = run_cell(AdaptiveDevice::new(device, cfg));
    assert!(
        bare.completions.as_ref().is_some_and(|c| !c.is_empty()),
        "identity runs must record completions"
    );
    // Debug renders every f64 as its shortest round-trip string, so equal
    // renderings mean bitwise-equal reports, completions included.
    assert_eq!(
        format!("{bare:?}"),
        format!("{wrapped:?}"),
        "{label}: migrations-off wrap must be bit-identical to the bare device"
    );
}

#[test]
fn zero_migration_wrap_is_bit_identical_on_mems() {
    assert_identity(surfaced_mems_device(&MemsParams::default()), "mems");
}

#[test]
fn zero_migration_wrap_is_bit_identical_on_disk() {
    assert_identity(DiskDevice::new(DiskParams::quantum_atlas_10k()), "disk");
}
