//! Tracer-equivalence and phase-accounting integration tests.
//!
//! The observability layer's core contract is that it is *free when off
//! and honest when on*: attaching a [`RingTracer`] must not perturb the
//! simulation in any way (bit-identical [`SimReport`]s), and the per-phase
//! numbers it records must account exactly for the response times the
//! report aggregates.

use atlas_disk::{DiskDevice, DiskParams};
use mems_device::{MemsDevice, MemsParams};
use mems_os::sched::{ClookScheduler, SptfScheduler};
use storage_sim::{Driver, RingTracer, Scheduler, SimReport, StorageDevice, TraceEvent, Workload};
use storage_trace::RandomWorkload;

/// Field-by-field exact (`==`, not approximate) comparison of two reports.
fn assert_reports_bit_identical(untraced: &SimReport, traced: &SimReport) {
    assert_eq!(untraced.completed, traced.completed);
    assert_eq!(untraced.makespan, traced.makespan);
    assert_eq!(untraced.response.count(), traced.response.count());
    assert_eq!(untraced.response.mean(), traced.response.mean());
    assert_eq!(
        untraced.response.sq_coeff_var(),
        traced.response.sq_coeff_var()
    );
    assert_eq!(untraced.response.max(), traced.response.max());
    assert_eq!(untraced.queue_time.mean(), traced.queue_time.mean());
    assert_eq!(untraced.service_time.mean(), traced.service_time.mean());
    assert_eq!(untraced.breakdown_sum, traced.breakdown_sum);
    assert_eq!(untraced.busy_secs, traced.busy_secs);
    assert_eq!(untraced.mean_queue_depth, traced.mean_queue_depth);
    assert_eq!(untraced.max_queue_depth, traced.max_queue_depth);
}

/// Runs the same (workload, scheduler, device) cell untraced and traced
/// and asserts the reports agree exactly; returns the traced driver's
/// tracer counters for further checks.
fn run_both<W, S, D>(
    make_workload: impl Fn() -> W,
    make_scheduler: impl Fn() -> S,
    make_device: impl Fn() -> D,
    requests: u64,
) -> (SimReport, RingTracer)
where
    W: Workload,
    S: Scheduler,
    D: StorageDevice,
{
    let untraced = Driver::new(make_workload(), make_scheduler(), make_device())
        .warmup_requests(100)
        .run();
    let ring = usize::try_from(requests).unwrap() * 4 + 64;
    let mut driver = Driver::new(make_workload(), make_scheduler(), make_device())
        .warmup_requests(100)
        .with_tracer(RingTracer::new(ring));
    let traced = driver.run();
    assert_reports_bit_identical(&untraced, &traced);
    (traced, driver.tracer().clone())
}

#[test]
fn mems_traced_runs_are_bit_identical_across_seeds() {
    let capacity = MemsParams::default().geometry().total_sectors();
    for seed in [1u64, 7, 0x5EED_0006] {
        let requests = 1_000;
        let (report, trace) = run_both(
            || RandomWorkload::paper(capacity, 1800.0, requests, seed),
            SptfScheduler::new,
            || MemsDevice::new(MemsParams::default()),
            requests,
        );
        // The tracer saw every request, warm-up included.
        let c = trace.counters();
        assert_eq!(c.arrivals, requests);
        assert_eq!(c.picks, requests);
        assert_eq!(c.completions, requests);
        assert_eq!(c.dropped_events, 0);
        assert!(
            c.candidates_examined >= c.picks,
            "SPTF scores >= 1 per pick"
        );
        assert!(report.completed > 0);
    }
}

#[test]
fn disk_traced_runs_are_bit_identical_across_seeds() {
    let capacity = DiskParams::quantum_atlas_10k().total_sectors();
    for seed in [2u64, 9, 0x5EED_0005] {
        let requests = 600;
        let (_, trace) = run_both(
            || RandomWorkload::paper(capacity, 100.0, requests, seed),
            ClookScheduler::new,
            || DiskDevice::new(DiskParams::quantum_atlas_10k()),
            requests,
        );
        let c = trace.counters();
        assert_eq!(c.arrivals, requests);
        assert_eq!(c.completions, requests);
        assert_eq!(c.dropped_events, 0);
    }
}

/// For every completed request the traced phases must account for the
/// reported times: positioning + transfer + overhead == service and
/// queue + service == response, to <= 1e-9 s.
fn assert_phases_account_for_responses(trace: &RingTracer, parallel_seeks: bool) {
    let mut services = std::collections::HashMap::new();
    let mut checked = 0u64;
    for ev in trace.events() {
        match *ev {
            TraceEvent::Service {
                id,
                positioning,
                seek_x,
                settle,
                seek_y,
                transfer,
                overhead,
                ..
            } => {
                services.insert(
                    id,
                    (positioning, seek_x, settle, seek_y, transfer, overhead),
                );
            }
            TraceEvent::Complete {
                id,
                queue,
                service,
                response,
                ..
            } => {
                let (positioning, seek_x, settle, seek_y, transfer, overhead) = services[&id];
                assert!(
                    (positioning + transfer + overhead - service).abs() <= 1e-9,
                    "req {id}: phases sum to {} but service is {service}",
                    positioning + transfer + overhead
                );
                assert!(
                    (queue + service - response).abs() <= 1e-9,
                    "req {id}: queue {queue} + service {service} != response {response}"
                );
                if parallel_seeks {
                    // MEMS X and Y seeks overlap (§2.4.1).
                    let resolved = (seek_x + settle).max(seek_y);
                    assert!(
                        (positioning - resolved).abs() <= 1e-12,
                        "req {id}: positioning {positioning} vs resolved {resolved}"
                    );
                }
                checked += 1;
            }
            _ => {}
        }
    }
    assert!(checked > 0, "no completions traced");
}

#[test]
fn mems_phase_times_sum_to_response_times() {
    let capacity = MemsParams::default().geometry().total_sectors();
    let requests = 800;
    let mut driver = Driver::new(
        RandomWorkload::paper(capacity, 2200.0, requests, 13),
        SptfScheduler::new(),
        MemsDevice::new(MemsParams::default()),
    )
    .with_tracer(RingTracer::new(usize::try_from(requests).unwrap() * 4 + 64));
    driver.run();
    assert_phases_account_for_responses(driver.tracer(), true);
    // The device attributes energy to every phase; the sums must be
    // positive and dominated by positioning + transfer.
    let e = driver.tracer().energy_sum();
    assert!(e.positioning_j > 0.0);
    assert!(e.transfer_j > 0.0);
    assert!(e.total() > e.overhead_j);
}

#[test]
fn disk_phase_times_sum_to_response_times() {
    let capacity = DiskParams::quantum_atlas_10k().total_sectors();
    let requests = 500;
    let mut driver = Driver::new(
        RandomWorkload::paper(capacity, 90.0, requests, 21),
        ClookScheduler::new(),
        DiskDevice::new(DiskParams::quantum_atlas_10k()),
    )
    .with_tracer(RingTracer::new(usize::try_from(requests).unwrap() * 4 + 64));
    driver.run();
    assert_phases_account_for_responses(driver.tracer(), false);
    let e = driver.tracer().energy_sum();
    assert!(
        e.positioning_j > 0.0,
        "disk energy model attributes seek+rotation energy"
    );
}
