//! Telemetry-layer integration tests: the windowed/heatmap/profiling
//! observability added on top of the PR 2 tracer keeps the same core
//! contract — *free when off, honest when on*.
//!
//! - Attaching [`Telemetry`] (alone, paired with a [`RingTracer`], or a
//!   wall-clock [`Profiler`]) must leave the simulated report bit-identical
//!   to the untraced run, on both the MEMS device and the disk baseline.
//! - The JSONL export must round-trip: parsing it back yields per-kind
//!   event counts equal to the tracer's monotonic counters.
//! - Heatmaps rebuilt from the trace must reconcile exactly with the
//!   request stream: Σ region accesses == Σ stripes touched and
//!   Σ tip-group sectors == Σ request sectors.

use atlas_disk::{DiskDevice, DiskParams, ZoneHeatmap};
use mems_device::{Mapper, MediaHeatmap, MemsDevice, MemsParams, Segment};
use mems_os::sched::{ClookScheduler, SptfScheduler};
use storage_sim::{
    Driver, Profiler, RingTracer, Scheduler, SimReport, StorageDevice, Telemetry, TraceEvent,
    Tracer, TracerPair, Workload,
};
use storage_trace::RandomWorkload;

fn assert_reports_bit_identical(untraced: &SimReport, traced: &SimReport, label: &str) {
    assert_eq!(untraced.completed, traced.completed, "{label}: completed");
    assert_eq!(untraced.makespan, traced.makespan, "{label}: makespan");
    assert_eq!(
        untraced.response.mean(),
        traced.response.mean(),
        "{label}: mean response"
    );
    assert_eq!(
        untraced.response.sq_coeff_var(),
        traced.response.sq_coeff_var(),
        "{label}: cv2"
    );
    assert_eq!(
        untraced.breakdown_sum, traced.breakdown_sum,
        "{label}: breakdown"
    );
    assert_eq!(untraced.busy_secs, traced.busy_secs, "{label}: busy");
    assert_eq!(
        untraced.mean_queue_depth, traced.mean_queue_depth,
        "{label}: mean depth"
    );
    assert_eq!(
        untraced.max_queue_depth, traced.max_queue_depth,
        "{label}: max depth"
    );
}

/// Runs one cell untraced, then once per supplied tracer, asserting every
/// variant reproduces the untraced report exactly.
fn assert_tracer_free<W, S, D, T>(
    make_workload: impl Fn() -> W,
    make_scheduler: impl Fn() -> S,
    make_device: impl Fn() -> D,
    tracer: T,
    label: &str,
) -> SimReport
where
    W: Workload,
    S: Scheduler,
    D: StorageDevice,
    T: Tracer,
{
    let untraced = Driver::new(make_workload(), make_scheduler(), make_device()).run();
    let traced = Driver::new(make_workload(), make_scheduler(), make_device())
        .with_tracer(tracer)
        .run();
    assert_reports_bit_identical(&untraced, &traced, label);
    untraced
}

#[test]
fn telemetry_and_profiler_do_not_perturb_mems_runs() {
    let capacity = MemsParams::default().geometry().total_sectors();
    for seed in [1u64, 0x5EED_0006] {
        let wl = || RandomWorkload::paper(capacity, 1800.0, 1_000, seed);
        let dev = || MemsDevice::new(MemsParams::default());
        assert_tracer_free(
            wl,
            SptfScheduler::new,
            dev,
            Telemetry::new(0.1, 64),
            "mems telemetry",
        );
        assert_tracer_free(
            wl,
            SptfScheduler::new,
            dev,
            TracerPair::new(RingTracer::new(4096), Telemetry::new(0.1, 64)),
            "mems pair",
        );
        // Wall-clock probes read the host clock but must never feed back.
        assert_tracer_free(
            wl,
            SptfScheduler::new,
            dev,
            Profiler::new(),
            "mems profiler",
        );
    }
}

#[test]
fn telemetry_and_profiler_do_not_perturb_disk_runs() {
    let capacity = DiskParams::quantum_atlas_10k().total_sectors();
    for seed in [2u64, 0x5EED_0005] {
        let wl = || RandomWorkload::paper(capacity, 100.0, 600, seed);
        let dev = || DiskDevice::new(DiskParams::quantum_atlas_10k());
        assert_tracer_free(
            wl,
            ClookScheduler::new,
            dev,
            Telemetry::new(0.1, 64),
            "disk telemetry",
        );
        assert_tracer_free(
            wl,
            ClookScheduler::new,
            dev,
            Profiler::new(),
            "disk profiler",
        );
    }
}

#[test]
fn telemetry_windows_reconcile_with_the_report() {
    let capacity = MemsParams::default().geometry().total_sectors();
    let mut driver = Driver::new(
        RandomWorkload::paper(capacity, 1500.0, 1_200, 99),
        SptfScheduler::new(),
        MemsDevice::new(MemsParams::default()),
    )
    // A deliberately tiny window budget forces coarsening mid-run.
    .with_tracer(Telemetry::new(0.01, 8));
    let report = driver.run();
    let tel = driver.tracer();
    assert!(tel.windows().len() <= 8);
    assert!(
        tel.coarsenings() > 0,
        "the budget must have forced coarsening"
    );
    let completions: u64 = tel.windows().iter().map(|w| w.completions).sum();
    let arrivals: u64 = tel.windows().iter().map(|w| w.arrivals).sum();
    assert_eq!(completions, report.completed);
    assert_eq!(arrivals, report.completed);
    let busy: f64 = tel.windows().iter().map(|w| w.phase.total()).sum();
    assert!((busy - report.busy_secs).abs() < 1e-9);
    // Mean response survives coarsening exactly (sums are merged, not
    // re-binned).
    let (sum, n): (f64, u64) = tel.windows().iter().fold((0.0, 0), |(s, n), w| {
        (s + w.responses.sum(), n + w.responses.count())
    });
    assert_eq!(n, report.completed);
    assert!((sum / n as f64 - report.response.mean()).abs() < 1e-12);
}

/// Minimal JSONL field extraction (the export uses no nesting in the
/// fields we read and no string escapes).
fn json_str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = start + line[start..].find('"')?;
    Some(&line[start..end])
}

fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

#[test]
fn jsonl_round_trips_to_the_monotonic_counters() {
    let capacity = MemsParams::default().geometry().total_sectors();
    let requests = 500u64;
    let mut driver = Driver::new(
        RandomWorkload::paper(capacity, 1800.0, requests, 7),
        SptfScheduler::new(),
        MemsDevice::new(MemsParams::default()),
    )
    .with_tracer(RingTracer::new(usize::try_from(requests).unwrap() * 4 + 64));
    driver.run();
    let trace = driver.tracer();
    let c = trace.counters();
    assert_eq!(c.dropped_events, 0, "ring must hold the full run");

    let jsonl = trace.to_jsonl();
    let (mut arrivals, mut picks, mut services, mut completes, mut faults) = (0u64, 0, 0, 0, 0);
    let mut sectors_by_service = 0u64;
    for line in jsonl.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "malformed: {line}"
        );
        match json_str_field(line, "ev").expect("every event has an ev field") {
            "arrival" => {
                arrivals += 1;
                assert!(json_u64_field(line, "id").is_some());
                assert!(json_u64_field(line, "queue_depth").is_some());
            }
            "pick" => picks += 1,
            "service" => {
                services += 1;
                sectors_by_service += json_u64_field(line, "sectors").expect("sectors field");
            }
            "complete" => completes += 1,
            "fault" => faults += 1,
            other => panic!("unknown event kind {other:?}"),
        }
    }
    assert_eq!(arrivals, c.arrivals, "arrival lines vs counter");
    assert_eq!(picks, c.picks, "pick lines vs counter");
    assert_eq!(services, c.picks, "one service event per pick");
    assert_eq!(completes, c.completions, "complete lines vs counter");
    assert_eq!(faults, c.faults, "fault lines vs counter");
    assert!(sectors_by_service > 0);
}

#[test]
fn mems_heatmap_reconciles_with_the_request_stream() {
    let params = MemsParams::default();
    let capacity = params.geometry().total_sectors();
    let requests = 800u64;
    let mut driver = Driver::new(
        RandomWorkload::paper(capacity, 2000.0, requests, 0x5EED_0006),
        SptfScheduler::new(),
        MemsDevice::new(params.clone()),
    )
    .with_tracer(RingTracer::new(usize::try_from(requests).unwrap() * 4 + 64));
    let report = driver.run();

    let mapper = Mapper::new(&params);
    let services: Vec<(u64, u32, f64)> = driver
        .tracer()
        .events()
        .filter_map(|ev| match *ev {
            TraceEvent::Service { lbn, sectors, .. } => Some((lbn, sectors, 0.0)),
            _ => None,
        })
        .collect();
    assert_eq!(services.len() as u64, report.completed);

    let map = MediaHeatmap::from_services(&params, 10, 9, services.iter().copied());

    // The acceptance invariant: sum of per-region accesses equals serviced
    // requests × stripes touched, where stripes are counted independently
    // through the geometry mapper.
    let independent_stripes: u64 = services
        .iter()
        .map(|&(lbn, sectors, _)| {
            mapper
                .segments(lbn, sectors)
                .iter()
                .map(|s: &Segment| u64::from(s.rows()))
                .sum::<u64>()
        })
        .sum();
    assert_eq!(map.region_access_total(), independent_stripes);
    assert_eq!(map.total_stripes(), independent_stripes);
    assert_eq!(map.requests(), report.completed);

    // Sector conservation through the tip groups.
    let request_sectors: u64 = services.iter().map(|&(_, s, _)| u64::from(s)).sum();
    assert_eq!(map.tip_sector_total(), request_sectors);
    assert_eq!(map.total_sectors(), request_sectors);

    // Region sector counts conserve too (each sector lands in one cell).
    let region_sectors: u64 = (0..10)
        .flat_map(|x| (0..9).map(move |y| (x, y)))
        .map(|(x, y)| map.region_sectors(x, y))
        .sum();
    assert_eq!(region_sectors, request_sectors);
}

#[test]
fn disk_zone_heatmap_reconciles_with_the_request_stream() {
    let params = DiskParams::quantum_atlas_10k();
    let requests = 400u64;
    let mut driver = Driver::new(
        RandomWorkload::paper(params.total_sectors(), 100.0, requests, 11),
        ClookScheduler::new(),
        DiskDevice::new(params.clone()),
    )
    .with_tracer(RingTracer::new(usize::try_from(requests).unwrap() * 4 + 64));
    let report = driver.run();

    let mut zones = ZoneHeatmap::new(&params);
    let mut request_sectors = 0u64;
    for ev in driver.tracer().events() {
        if let TraceEvent::Service { lbn, sectors, .. } = *ev {
            zones.record(lbn, sectors);
            request_sectors += u64::from(sectors);
        }
    }
    assert_eq!(zones.requests(), report.completed);
    assert_eq!(zones.zone_sector_total(), request_sectors);
    assert_eq!(zones.total_sectors(), request_sectors);
}
