//! Simulation-engine primitives: event queue throughput, LBN mapping,
//! and end-to-end simulated requests per second.

use atlas_disk::{DiskMapper, DiskParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mems_device::{Mapper, MemsDevice, MemsParams};
use mems_os::sched::Algorithm;
use std::hint::black_box;
use storage_sim::{BinaryHeapEventQueue, Driver, EventQueue, SimQueue, SimTime};
use storage_trace::RandomWorkload;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut x = 1u64;
            for i in 0..10_000u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                q.push(SimTime::from_us((x >> 32) as f64), i);
            }
            while let Some(e) = q.pop() {
                black_box(e.payload);
            }
        })
    });
    group.finish();
}

/// Uniform interarrivals: LCG-jittered timestamps spread evenly over the
/// run, the shape of an open-loop arrival process.
fn uniform_times(n: usize) -> Vec<SimTime> {
    let mut x = 0x5EED_0006u64;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            // Mean interarrival 1 µs, total span ~n µs.
            SimTime::from_us((x >> 40) as f64 * n as f64 / (1u64 << 24) as f64)
        })
        .collect()
}

/// Bursty interarrivals: clusters of 64 events sharing one timestamp with
/// millisecond-scale gaps between clusters — the worst case for calendar
/// bucket occupancy and the seq tie-break.
fn bursty_times(n: usize) -> Vec<SimTime> {
    let mut x = 0xB0B5_1EADu64;
    let mut base = 0.0f64;
    (0..n)
        .map(|i| {
            if i % 64 == 0 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                base += 1e-3 + (x >> 50) as f64 * 1e-6;
            }
            SimTime::from_secs(base)
        })
        .collect()
}

fn fill_drain<Q: SimQueue<u64>>(times: &[SimTime]) -> u64 {
    let mut q = Q::with_capacity(times.len());
    for (i, &t) in times.iter().enumerate() {
        q.push(t, i as u64);
    }
    let mut last = 0u64;
    while let Some(e) = q.pop() {
        last = e.payload;
    }
    last
}

/// The calendar-vs-heap ladder: both queue implementations across three
/// orders of magnitude of pending-event population, under uniform and
/// bursty interarrivals. The heap pays O(log n) per operation and cache
/// misses across the whole array; the calendar stays O(1) amortized.
fn bench_event_queue_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_ladder");
    for &n in &[1_000usize, 100_000, 10_000_000] {
        group.throughput(Throughput::Elements(n as u64));
        // Big populations take seconds per fill+drain; keep samples small.
        group.sample_size(if n >= 10_000_000 { 10 } else { 20 });
        for (pattern, times) in [("uniform", uniform_times(n)), ("bursty", bursty_times(n))] {
            group.bench_with_input(
                BenchmarkId::new(format!("calendar_{pattern}"), n),
                &times,
                |b, times| b.iter(|| black_box(fill_drain::<EventQueue<u64>>(times))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("heap_{pattern}"), n),
                &times,
                |b, times| b.iter(|| black_box(fill_drain::<BinaryHeapEventQueue<u64>>(times))),
            );
        }
    }
    group.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let mems = Mapper::new(&MemsParams::default());
    c.bench_function("mems_lbn_decompose", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(mems.decompose(x % 6_750_000))
        })
    });
    c.bench_function("mems_segments_256kb", |b| {
        b.iter(|| black_box(mems.segments(black_box(1_000_000), 512)))
    });
    let disk = DiskMapper::new(DiskParams::quantum_atlas_10k());
    c.bench_function("disk_lbn_decompose", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(disk.decompose(x % 16_000_000))
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_simulation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2_000));
    for alg in [Algorithm::Fcfs, Algorithm::Sptf] {
        group.bench_function(format!("mems_random_2k_requests_{}", alg.label()), |b| {
            b.iter(|| {
                let workload = RandomWorkload::paper(6_750_000, 1000.0, 2_000, 7);
                let mut driver = Driver::new(
                    workload,
                    alg.build(),
                    MemsDevice::new(MemsParams::default()),
                );
                black_box(driver.run().completed)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_event_queue_ladder,
    bench_mapping,
    bench_end_to_end
);
criterion_main!(benches);
