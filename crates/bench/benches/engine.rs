//! Simulation-engine primitives: event queue throughput, LBN mapping,
//! and end-to-end simulated requests per second.

use atlas_disk::{DiskMapper, DiskParams};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mems_device::{Mapper, MemsDevice, MemsParams};
use mems_os::sched::Algorithm;
use std::hint::black_box;
use storage_sim::{Driver, EventQueue, SimTime};
use storage_trace::RandomWorkload;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut x = 1u64;
            for i in 0..10_000u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                q.push(SimTime::from_us((x >> 32) as f64), i);
            }
            while let Some(e) = q.pop() {
                black_box(e.payload);
            }
        })
    });
    group.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let mems = Mapper::new(&MemsParams::default());
    c.bench_function("mems_lbn_decompose", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(mems.decompose(x % 6_750_000))
        })
    });
    c.bench_function("mems_segments_256kb", |b| {
        b.iter(|| black_box(mems.segments(black_box(1_000_000), 512)))
    });
    let disk = DiskMapper::new(DiskParams::quantum_atlas_10k());
    c.bench_function("disk_lbn_decompose", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(disk.decompose(x % 16_000_000))
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_simulation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2_000));
    for alg in [Algorithm::Fcfs, Algorithm::Sptf] {
        group.bench_function(format!("mems_random_2k_requests_{}", alg.label()), |b| {
            b.iter(|| {
                let workload = RandomWorkload::paper(6_750_000, 1000.0, 2_000, 7);
                let mut driver = Driver::new(
                    workload,
                    alg.build(),
                    MemsDevice::new(MemsParams::default()),
                );
                black_box(driver.run().completed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_mapping, bench_end_to_end);
criterion_main!(benches);
