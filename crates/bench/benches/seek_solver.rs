//! Micro-benchmarks of the closed-form kinematics — the hot path of SPTF
//! scheduling, which calls the bang-bang solver for every pending request
//! on every dispatch decision.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mems_bench::surfaced_mems_device;
use mems_device::{MemsDevice, MemsParams, SledState, SpringSled};
use std::hint::black_box;
use storage_sim::{IoKind, PositionOracle, Request, SimTime, StorageDevice};

fn bench_kinematics(c: &mut Criterion) {
    let sled = SpringSled::from_spring_factor(803.6, 0.75, 50e-6);
    c.bench_function("rest_seek_time", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let p0 = ((x >> 16) % 1000) as f64 * 1e-7 - 50e-6;
            let p1 = ((x >> 40) % 1000) as f64 * 1e-7 - 50e-6;
            black_box(sled.rest_seek_time(black_box(p0), black_box(p1)))
        })
    });
    c.bench_function("turnaround_time", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let p = ((x >> 16) % 1000) as f64 * 1e-7 - 50e-6;
            black_box(sled.turnaround_time(black_box(p), 0.028))
        })
    });
    c.bench_function("moving_state_seek", |b| {
        let mut x = 2u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let p0 = ((x >> 16) % 1000) as f64 * 1e-7 - 50e-6;
            let p1 = ((x >> 40) % 1000) as f64 * 1e-7 - 50e-6;
            black_box(sled.seek_time(p0, 0.028, p1, -0.028))
        })
    });
}

fn bench_device_service(c: &mut Criterion) {
    let dev = MemsDevice::new(MemsParams::default());
    c.bench_function("position_time_4kb", |b| {
        let mut x = 3u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let lbn = x % (dev.capacity_lbns() - 8);
            let req = Request::new(0, SimTime::ZERO, lbn, 8, IoKind::Read);
            black_box(dev.positioning_only(SledState::CENTERED, &req))
        })
    });
    c.bench_function("service_4kb", |b| {
        let mut x = 4u64;
        b.iter_batched(
            || {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                Request::new(
                    0,
                    SimTime::ZERO,
                    x % (dev.capacity_lbns() - 8),
                    8,
                    IoKind::Read,
                )
            },
            |req| black_box(dev.service_from(SledState::CENTERED, &req)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("service_256kb", |b| {
        let req = Request::new(0, SimTime::ZERO, 1_000_000, 512, IoKind::Read);
        b.iter(|| black_box(dev.service_from(SledState::CENTERED, &req)))
    });
}

fn bench_seek_table(c: &mut Criterion) {
    // Park each device on-grid (sled exactly on a cylinder center / row
    // boundary, the post-service steady state) so the memoized device can
    // actually hit its table; the direct device always re-solves.
    let park = |table: bool| {
        let mut d = MemsDevice::new(MemsParams::default()).with_seek_table(table);
        let r = Request::new(0, SimTime::ZERO, 1_000_000, 8, IoKind::Read);
        let _ = d.service(&r, SimTime::ZERO);
        d
    };
    let direct = park(false);
    let memo = park(true);
    // The shared immutable surface: every on-grid query is a bounds-checked
    // array read, no memoization or solving at query time.
    let surface = {
        let mut d = surfaced_mems_device(&MemsParams::default());
        let r = Request::new(0, SimTime::ZERO, 1_000_000, 8, IoKind::Read);
        let _ = d.service(&r, SimTime::ZERO);
        d
    };
    for (name, dev) in [
        ("position_time_direct_solve", &direct),
        ("position_time_seek_table", &memo),
        ("position_time_seek_surface", &surface),
    ] {
        c.bench_function(name, |b| {
            let mut x = 5u64;
            b.iter(|| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let lbn = x % (dev.capacity_lbns() - 8);
                let req = Request::new(0, SimTime::ZERO, lbn, 8, IoKind::Read);
                black_box(dev.position_time(&req, SimTime::ZERO))
            })
        });
    }
}

criterion_group!(
    benches,
    bench_kinematics,
    bench_device_service,
    bench_seek_table
);
criterion_main!(benches);
