//! ECC throughput: the striping codec must keep up with the device's
//! 79.6 MB/s streaming rate if the horizontal code runs on every access.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mems_os::fault::{ReedSolomon, StripeCodec};
use std::hint::black_box;

fn bench_rs(c: &mut Criterion) {
    let rs = ReedSolomon::new(64, 8);
    let data: Vec<u8> = (0..64).map(|i| (i * 37) as u8).collect();
    c.bench_function("rs_encode_64_8", |b| {
        b.iter(|| black_box(rs.encode(black_box(&data))))
    });

    let encoded = rs.encode(&data);
    let mut clean: Vec<Option<u8>> = encoded.iter().copied().map(Some).collect();
    c.bench_function("rs_decode_clean", |b| {
        b.iter(|| black_box(rs.decode(black_box(&clean))))
    });
    for i in [1usize, 10, 20, 33, 47, 55, 60, 63] {
        clean[i] = None;
    }
    c.bench_function("rs_decode_8_erasures", |b| {
        b.iter(|| black_box(rs.decode(black_box(&clean))))
    });
}

fn bench_stripe(c: &mut Criterion) {
    let codec = StripeCodec::new(8);
    let mut sector = [0u8; 512];
    for (i, b) in sector.iter_mut().enumerate() {
        *b = (i % 253) as u8;
    }
    let mut group = c.benchmark_group("stripe_codec");
    group.throughput(Throughput::Bytes(512));
    group.bench_function("encode_sector", |b| {
        b.iter(|| black_box(codec.encode(black_box(&sector))))
    });
    let stripe = codec.encode(&sector);
    group.bench_function("decode_clean_sector", |b| {
        b.iter(|| black_box(codec.decode(black_box(&stripe))))
    });
    let mut damaged = stripe.clone();
    for t in [5usize, 20, 40, 70] {
        damaged[t].data = [0; 8];
    }
    group.bench_function("decode_4_lost_tips", |b| {
        b.iter(|| black_box(codec.decode(black_box(&damaged))))
    });
    group.finish();
}

criterion_group!(benches, bench_rs, bench_stripe);
criterion_main!(benches);
