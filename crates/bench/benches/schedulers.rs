//! Scheduler decision cost versus queue depth.
//!
//! SPTF pays O(queue) positioning-time queries per dispatch; the
//! LBN-based algorithms dispatch from ordered maps. This bench quantifies
//! the §4 trade-off the paper alludes to: SPTF's gains come "with the
//! overhead of calculating the exact positioning times for each
//! outstanding request".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mems_device::{MemsDevice, MemsParams};
use mems_os::sched::{
    Algorithm, ClookScheduler, NaiveSptfScheduler, RescanSptfScheduler, SptfScheduler,
    SstfScheduler,
};
use std::hint::black_box;
use storage_sim::{IoKind, Request, Scheduler, SimTime};

fn requests(n: usize) -> Vec<Request> {
    (0..n as u64)
        .map(|i| {
            let lbn = (i * 2_654_435_761) % 6_000_000;
            Request::new(i, SimTime::ZERO, lbn, 8, IoKind::Read)
        })
        .collect()
}

fn bench_pick(c: &mut Criterion) {
    let dev = MemsDevice::new(MemsParams::default());
    let mut group = c.benchmark_group("enqueue_all_then_drain");
    for depth in [16usize, 128, 1024] {
        let reqs = requests(depth);
        group.bench_with_input(BenchmarkId::new("SPTF", depth), &reqs, |b, reqs| {
            b.iter(|| {
                let mut s = SptfScheduler::new();
                for r in reqs {
                    s.enqueue(*r);
                }
                while let Some(r) = s.pick(&dev, SimTime::ZERO) {
                    black_box(r);
                }
            })
        });
        // The pre-optimization reference: full O(queue) scan per pick.
        group.bench_with_input(BenchmarkId::new("SPTF-naive", depth), &reqs, |b, reqs| {
            b.iter(|| {
                let mut s = NaiveSptfScheduler::new();
                for r in reqs {
                    s.enqueue(*r);
                }
                while let Some(r) = s.pick(&dev, SimTime::ZERO) {
                    black_box(r);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("SSTF_LBN", depth), &reqs, |b, reqs| {
            b.iter(|| {
                let mut s = SstfScheduler::new();
                for r in reqs {
                    s.enqueue(*r);
                }
                while let Some(r) = s.pick(&dev, SimTime::ZERO) {
                    black_box(r);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("C-LOOK", depth), &reqs, |b, reqs| {
            b.iter(|| {
                let mut s = ClookScheduler::new();
                for r in reqs {
                    s.enqueue(*r);
                }
                while let Some(r) = s.pick(&dev, SimTime::ZERO) {
                    black_box(r);
                }
            })
        });
    }
    group.finish();

    // The devirtualization ladder: one SPTF drain, four dispatch tiers.
    // "naive" re-scans the whole queue per pick, "rescan" is the pruned
    // B-tree bucket scan re-scored on every pick, "pruned" is the
    // incremental flat-index scan with the per-bucket winner cache (the
    // drain never services the device, so the rest state is fixed and the
    // cache fires — the scenario the incremental maintenance targets), and
    // "dyn" is the same incremental scan behind the type-erased
    // `DynScheduler` box (one virtual hop per pick plus a
    // `&dyn PositionOracle` oracle).
    let mut group = c.benchmark_group("sptf_dispatch");
    for depth in [64usize, 256, 1024] {
        let reqs = requests(depth);
        group.bench_with_input(BenchmarkId::new("naive", depth), &reqs, |b, reqs| {
            b.iter(|| {
                let mut s = NaiveSptfScheduler::new();
                for r in reqs {
                    s.enqueue(*r);
                }
                while let Some(r) = s.pick(&dev, SimTime::ZERO) {
                    black_box(r);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("rescan", depth), &reqs, |b, reqs| {
            b.iter(|| {
                let mut s = RescanSptfScheduler::new();
                for r in reqs {
                    s.enqueue(*r);
                }
                while let Some(r) = s.pick(&dev, SimTime::ZERO) {
                    black_box(r);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("pruned", depth), &reqs, |b, reqs| {
            b.iter(|| {
                let mut s = SptfScheduler::new();
                for r in reqs {
                    s.enqueue(*r);
                }
                while let Some(r) = s.pick(&dev, SimTime::ZERO) {
                    black_box(r);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("dyn", depth), &reqs, |b, reqs| {
            b.iter(|| {
                let mut s: Box<dyn storage_sim::DynScheduler> = Box::new(SptfScheduler::new());
                for r in reqs {
                    s.enqueue(*r);
                }
                while let Some(r) = s.pick(&dev, SimTime::ZERO) {
                    black_box(r);
                }
            })
        });
    }
    group.finish();

    // Single-dispatch cost at a fixed depth, per algorithm.
    let mut group = c.benchmark_group("single_pick_depth_256");
    for alg in Algorithm::ALL {
        group.bench_function(alg.label(), |b| {
            b.iter_batched(
                || {
                    let mut s = alg.build();
                    for r in requests(256) {
                        s.enqueue(r);
                    }
                    s
                },
                |mut s| black_box(s.pick(&dev, SimTime::ZERO)),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pick);
criterion_main!(benches);
