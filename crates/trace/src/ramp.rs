//! Arrival-rate ramp generator for open-loop overload experiments.
//!
//! ROADMAP item 4 asks for overload-and-recovery runs: drive an open-loop
//! arrival process past the device's saturation rate and watch the queue
//! grow, then bring the rate back down and watch it drain. [`RampWorkload`]
//! produces exactly that profile — a trapezoidal rate ramp
//! `low → high → low` — with the §3 request envelope (uniform locations,
//! 67% reads, exponential sizes), so overload cells differ from the
//! steady-state random cells only in their arrival intensity.
//!
//! Arrivals approximate an inhomogeneous Poisson process: each gap is
//! exponential with the mean set by the instantaneous rate at the current
//! clock — the standard discretization when the rate changes slowly
//! relative to the interarrival time, which a multi-second ramp over
//! millisecond gaps satisfies.

use rand::rngs::SmallRng;
use storage_sim::rng;
use storage_sim::{Request, SimTime, Workload};

use crate::zipf::kind_and_sectors;

/// Open-loop workload whose arrival rate ramps `low → high → low`.
///
/// The profile is trapezoidal in time: hold at `rate_low` for
/// `hold_secs`, ramp linearly to `rate_high` over `ramp_secs`, hold at
/// `rate_high` for `hold_secs`, ramp back down over `ramp_secs`, then
/// stay at `rate_low` until the request budget is exhausted. Constant
/// memory, exact `len_hint`.
///
/// # Examples
///
/// ```
/// use storage_sim::Workload;
/// use storage_trace::RampWorkload;
///
/// let mut w = RampWorkload::new(1_000_000, 100.0, 2_000.0, 5.0, 5.0, 1_000, 42);
/// assert_eq!(w.len_hint(), Some(1_000));
/// assert!(w.rate_at(0.0) == 100.0 && w.rate_at(7.5) == 1_050.0);
/// assert!(w.next_request().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct RampWorkload {
    capacity: u64,
    rate_low: f64,
    rate_high: f64,
    ramp_secs: f64,
    hold_secs: f64,
    rng: SmallRng,
    remaining: u64,
    clock: f64,
    next_id: u64,
}

impl RampWorkload {
    /// Creates a ramp workload addressing `capacity` sectors.
    ///
    /// # Panics
    ///
    /// Panics if rates or durations are not positive, `rate_high <
    /// rate_low`, `requests == 0`, or the capacity cannot hold the
    /// largest envelope request (128 sectors).
    pub fn new(
        capacity: u64,
        rate_low: f64,
        rate_high: f64,
        ramp_secs: f64,
        hold_secs: f64,
        requests: u64,
        seed: u64,
    ) -> Self {
        assert!(rate_low > 0.0 && rate_high >= rate_low, "need a ramp up");
        assert!(ramp_secs > 0.0 && hold_secs > 0.0, "phases must have span");
        assert!(requests > 0, "need at least one request");
        assert!(capacity > 128, "capacity must hold the largest request");
        RampWorkload {
            capacity,
            rate_low,
            rate_high,
            ramp_secs,
            hold_secs,
            rng: rng::seeded(seed),
            remaining: requests,
            clock: 0.0,
            next_id: 0,
        }
    }

    /// The instantaneous arrival rate (requests/second) at time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        let mut t = t;
        if t < self.hold_secs {
            return self.rate_low;
        }
        t -= self.hold_secs;
        if t < self.ramp_secs {
            return self.rate_low + (self.rate_high - self.rate_low) * t / self.ramp_secs;
        }
        t -= self.ramp_secs;
        if t < self.hold_secs {
            return self.rate_high;
        }
        t -= self.hold_secs;
        if t < self.ramp_secs {
            return self.rate_high - (self.rate_high - self.rate_low) * t / self.ramp_secs;
        }
        self.rate_low
    }

    /// Sim-time at which the rate has returned to `rate_low` (end of the
    /// down-ramp) — the point after which a stable queue should drain.
    pub fn ramp_end_secs(&self) -> f64 {
        2.0 * (self.hold_secs + self.ramp_secs)
    }
}

impl Workload for RampWorkload {
    fn next_request(&mut self) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let mean_gap = 1.0 / self.rate_at(self.clock);
        self.clock += rng::exponential(&mut self.rng, mean_gap);
        let (kind, sectors) = kind_and_sectors(&mut self.rng);
        let lbn = rng::uniform_u64(&mut self.rng, self.capacity - u64::from(sectors));
        let req = Request::new(
            self.next_id,
            SimTime::from_secs(self.clock),
            lbn,
            sectors,
            kind,
        );
        self.next_id += 1;
        Some(req)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_is_trapezoidal() {
        let w = RampWorkload::new(1 << 20, 100.0, 1_100.0, 10.0, 20.0, 10, 1);
        assert_eq!(w.rate_at(0.0), 100.0);
        assert_eq!(w.rate_at(25.0), 600.0); // halfway up the ramp
        assert_eq!(w.rate_at(35.0), 1_100.0); // high hold
        assert_eq!(w.rate_at(55.0), 600.0); // halfway down
        assert_eq!(w.rate_at(70.0), 100.0); // back at low
        assert_eq!(w.ramp_end_secs(), 60.0);
    }

    #[test]
    fn arrivals_are_ordered_and_rate_tracks_profile() {
        let mut w = RampWorkload::new(1 << 22, 50.0, 2_000.0, 5.0, 5.0, 20_000, 7);
        let mut last = SimTime::ZERO;
        let mut in_high_hold = 0u64;
        let mut span_high = 0.0f64;
        let mut prev_t = 0.0f64;
        while let Some(req) = w.next_request() {
            assert!(req.arrival >= last);
            last = req.arrival;
            let t = req.arrival.as_secs();
            // Count arrivals inside the high hold [10, 15).
            if (10.0..15.0).contains(&t) {
                if in_high_hold == 0 {
                    prev_t = t;
                }
                in_high_hold += 1;
                span_high = t - prev_t;
            }
        }
        assert!(span_high > 1.0, "high hold must be sampled");
        let rate = in_high_hold as f64 / span_high;
        assert!(
            (rate - 2_000.0).abs() / 2_000.0 < 0.15,
            "high-hold rate {rate}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let collect = |seed| {
            let mut w = RampWorkload::new(1 << 20, 100.0, 500.0, 2.0, 2.0, 500, seed);
            let mut v = Vec::new();
            while let Some(r) = w.next_request() {
                v.push(r);
            }
            v
        };
        assert_eq!(collect(9), collect(9));
    }
}
