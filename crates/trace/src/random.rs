//! The paper's *random* synthetic workload (§3).
//!
//! Request interarrival times are exponential (the mean sweeps the load
//! axis of Figs. 5, 6 and 8); 67% of requests are reads; sizes are
//! exponential with a 4 KB mean (rounded up to whole sectors); start
//! locations are uniform over the device.

use rand::rngs::SmallRng;
use storage_sim::rng;
use storage_sim::{IoKind, Request, SimTime, Workload};

/// Generator for the random workload.
///
/// # Examples
///
/// ```
/// use storage_trace::RandomWorkload;
/// use storage_sim::Workload;
///
/// // 1000 requests at 500 requests/second against a 6.75M-sector device.
/// let mut w = RandomWorkload::paper(6_750_000, 500.0, 1000, 42);
/// let first = w.next_request().unwrap();
/// assert!(first.sectors >= 1);
/// ```
#[derive(Debug)]
pub struct RandomWorkload {
    capacity: u64,
    mean_interarrival: f64,
    read_fraction: f64,
    mean_sectors: f64,
    max_sectors: u32,
    remaining: u64,
    clock: f64,
    next_id: u64,
    rng: SmallRng,
}

impl RandomWorkload {
    /// The paper's parameters: 67% reads, exponential 4 KB (8-sector)
    /// sizes, uniform locations, `rate` requests per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive or `capacity` is too small.
    pub fn paper(capacity: u64, rate: f64, requests: u64, seed: u64) -> Self {
        assert!(rate > 0.0, "arrival rate must be positive");
        Self::new(capacity, 1.0 / rate, 0.67, 8.0, requests, seed)
    }

    /// Fully parameterized constructor; `mean_sectors` is the exponential
    /// mean request size in sectors.
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters or a capacity too small for the
    /// largest request.
    pub fn new(
        capacity: u64,
        mean_interarrival: f64,
        read_fraction: f64,
        mean_sectors: f64,
        requests: u64,
        seed: u64,
    ) -> Self {
        assert!(mean_interarrival > 0.0 && mean_sectors >= 1.0);
        assert!((0.0..=1.0).contains(&read_fraction));
        // Cap sizes at 16x the mean so the uniform-location math can
        // always place a request (the tail above 16x has mass e^-16).
        let max_sectors = (mean_sectors * 16.0).ceil() as u32;
        assert!(capacity > u64::from(max_sectors), "device too small");
        RandomWorkload {
            capacity,
            mean_interarrival,
            read_fraction,
            mean_sectors,
            max_sectors,
            remaining: requests,
            clock: 0.0,
            next_id: 0,
            rng: rng::seeded(seed),
        }
    }
}

impl Workload for RandomWorkload {
    fn next_request(&mut self) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.clock += rng::exponential(&mut self.rng, self.mean_interarrival);
        let kind = if rng::bernoulli(&mut self.rng, self.read_fraction) {
            IoKind::Read
        } else {
            IoKind::Write
        };
        let sectors = (rng::exponential(&mut self.rng, self.mean_sectors).ceil() as u32)
            .clamp(1, self.max_sectors);
        let lbn = rng::uniform_u64(&mut self.rng, self.capacity - u64::from(sectors));
        let req = Request::new(
            self.next_id,
            SimTime::from_secs(self.clock),
            lbn,
            sectors,
            kind,
        );
        self.next_id += 1;
        Some(req)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut w: RandomWorkload) -> Vec<Request> {
        std::iter::from_fn(move || w.next_request()).collect()
    }

    #[test]
    fn produces_requested_count_in_time_order() {
        let reqs = drain(RandomWorkload::paper(1_000_000, 100.0, 500, 1));
        assert_eq!(reqs.len(), 500);
        for pair in reqs.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
    }

    #[test]
    fn read_fraction_converges_to_67_percent() {
        let reqs = drain(RandomWorkload::paper(1_000_000, 100.0, 20_000, 2));
        let reads = reqs.iter().filter(|r| r.kind.is_read()).count();
        let frac = reads as f64 / reqs.len() as f64;
        assert!((frac - 0.67).abs() < 0.02, "read fraction {frac}");
    }

    #[test]
    fn mean_size_converges_to_4_kb() {
        let reqs = drain(RandomWorkload::paper(1_000_000, 100.0, 20_000, 3));
        let mean = reqs.iter().map(|r| f64::from(r.sectors)).sum::<f64>() / reqs.len() as f64;
        // Ceil-rounding adds ~0.5 sector to the 8-sector exponential mean.
        assert!((8.0..9.2).contains(&mean), "mean sectors {mean}");
    }

    #[test]
    fn arrival_rate_converges() {
        let reqs = drain(RandomWorkload::paper(1_000_000, 1000.0, 20_000, 4));
        let span = (reqs.last().unwrap().arrival - reqs[0].arrival).as_secs();
        let rate = (reqs.len() - 1) as f64 / span;
        assert!((rate - 1000.0).abs() / 1000.0 < 0.05, "rate {rate}");
    }

    #[test]
    fn locations_cover_the_device_uniformly() {
        let reqs = drain(RandomWorkload::paper(1_000_000, 100.0, 20_000, 5));
        let below_half = reqs.iter().filter(|r| r.lbn < 500_000).count();
        let frac = below_half as f64 / reqs.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "lower-half fraction {frac}");
        assert!(reqs.iter().all(|r| r.end_lbn() <= 1_000_000));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = drain(RandomWorkload::paper(1_000_000, 100.0, 100, 9));
        let b = drain(RandomWorkload::paper(1_000_000, 100.0, 100, 9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn zero_rate_rejected() {
        let _ = RandomWorkload::paper(1_000_000, 0.0, 10, 1);
    }
}
