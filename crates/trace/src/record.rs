//! Trace records: a plain-text format, replay, and arrival-rate scaling.
//!
//! The format is one request per line, whitespace-separated:
//!
//! ```text
//! # arrival_seconds  lbn  sectors  R|W
//! 0.001250 123456 8 R
//! 0.001980 8192 16 W
//! ```
//!
//! Replay follows the paper's §4.3 methodology for driving faster devices
//! with old traces: a *scale factor* divides the traced interarrival
//! times (scale 2 doubles the average arrival rate).

use std::fmt::Write as _;
use std::str::FromStr;

use storage_sim::{IoKind, Request, SimTime, Workload};

/// One traced request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Arrival time in seconds from trace start.
    pub arrival: f64,
    /// Start LBN.
    pub lbn: u64,
    /// Sectors transferred.
    pub sectors: u32,
    /// Read or write.
    pub kind: IoKind,
}

impl TraceRecord {
    /// Formats the record as one trace line (no newline).
    pub fn to_line(&self) -> String {
        let mut s = String::new();
        let k = if self.kind.is_read() { 'R' } else { 'W' };
        write!(s, "{:.6} {} {} {}", self.arrival, self.lbn, self.sectors, k)
            .expect("writing to String cannot fail");
        s
    }
}

impl FromStr for TraceRecord {
    type Err = String;

    fn from_str(line: &str) -> Result<Self, Self::Err> {
        let mut parts = line.split_whitespace();
        let arrival: f64 = parts
            .next()
            .ok_or("missing arrival time")?
            .parse()
            .map_err(|e| format!("bad arrival time: {e}"))?;
        let lbn: u64 = parts
            .next()
            .ok_or("missing lbn")?
            .parse()
            .map_err(|e| format!("bad lbn: {e}"))?;
        let sectors: u32 = parts
            .next()
            .ok_or("missing sector count")?
            .parse()
            .map_err(|e| format!("bad sector count: {e}"))?;
        let kind = match parts.next().ok_or("missing R|W flag")? {
            "R" | "r" => IoKind::Read,
            "W" | "w" => IoKind::Write,
            other => return Err(format!("bad R|W flag: {other:?}")),
        };
        if parts.next().is_some() {
            return Err("trailing fields".to_string());
        }
        if sectors == 0 {
            return Err("zero-sector request".to_string());
        }
        if !arrival.is_finite() || arrival < 0.0 {
            return Err("arrival time must be finite and non-negative".to_string());
        }
        Ok(TraceRecord {
            arrival,
            lbn,
            sectors,
            kind,
        })
    }
}

/// Parses a whole trace (one record per line; `#` comments and blank
/// lines ignored).
///
/// # Examples
///
/// ```
/// use storage_trace::parse_trace;
///
/// let text = "# demo\n0.0 100 8 R\n0.5 200 16 W\n";
/// let records = parse_trace(text).unwrap();
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[1].sectors, 16);
/// ```
pub fn parse_trace(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let rec: TraceRecord = trimmed
            .parse()
            .map_err(|e| format!("line {}: {e}", i + 1))?;
        records.push(rec);
    }
    Ok(records)
}

/// Serializes records to the text format.
pub fn format_trace(records: &[TraceRecord]) -> String {
    let mut out = String::from("# arrival_seconds lbn sectors R|W\n");
    for r in records {
        out.push_str(&r.to_line());
        out.push('\n');
    }
    out
}

/// Replays a recorded trace as a workload, dividing interarrival times by
/// `scale` (§4.3: scale 1 = as traced, scale 2 = twice the arrival rate).
#[derive(Debug)]
pub struct TraceWorkload {
    records: std::vec::IntoIter<TraceRecord>,
    scale: f64,
    next_id: u64,
}

impl TraceWorkload {
    /// Creates a replay of `records` at the given scale factor.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive or the records are not sorted by
    /// arrival time.
    pub fn new(records: Vec<TraceRecord>, scale: f64) -> Self {
        assert!(scale > 0.0, "scale factor must be positive");
        for pair in records.windows(2) {
            assert!(
                pair[0].arrival <= pair[1].arrival,
                "trace must be sorted by arrival time"
            );
        }
        TraceWorkload {
            records: records.into_iter(),
            scale,
            next_id: 0,
        }
    }
}

impl Workload for TraceWorkload {
    fn next_request(&mut self) -> Option<Request> {
        let rec = self.records.next()?;
        let req = Request::new(
            self.next_id,
            SimTime::from_secs(rec.arrival / self.scale),
            rec.lbn,
            rec.sectors,
            rec.kind,
        );
        self.next_id += 1;
        Some(req)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.records.len() as u64)
    }
}

/// Replays any stream of [`TraceRecord`]s as a workload without
/// materializing them — the streaming counterpart of [`TraceWorkload`].
///
/// The source is an ordinary `Iterator` (every generator in this crate —
/// [`crate::CelloWorkload`], [`crate::TpccWorkload`],
/// [`crate::StreamingWorkload`] — yields its records this way), and the
/// `ExactSizeIterator` bound keeps `len_hint` exact so the driver's event
/// queue pre-sizing holds at any trace length. Interarrival times are
/// divided by `scale`, exactly as [`TraceWorkload`] does (§4.3).
///
/// # Examples
///
/// ```
/// use storage_sim::Workload;
/// use storage_trace::{CelloParams, CelloWorkload, Replay};
///
/// let source = CelloWorkload::new(&CelloParams::default(), 7);
/// let mut workload = Replay::new(source, 2.0);
/// assert_eq!(workload.len_hint(), Some(10_000));
/// assert!(workload.next_request().is_some());
/// ```
#[derive(Debug)]
pub struct Replay<I> {
    records: I,
    scale: f64,
    next_id: u64,
    last_arrival: f64,
}

impl<I> Replay<I>
where
    I: Iterator<Item = TraceRecord> + ExactSizeIterator,
{
    /// Creates a streaming replay of `records` at the given scale factor.
    /// Arrival-time ordering is asserted as records stream through.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn new(records: I, scale: f64) -> Self {
        assert!(scale > 0.0, "scale factor must be positive");
        Replay {
            records,
            scale,
            next_id: 0,
            last_arrival: 0.0,
        }
    }
}

impl<I> Workload for Replay<I>
where
    I: Iterator<Item = TraceRecord> + ExactSizeIterator,
{
    fn next_request(&mut self) -> Option<Request> {
        let rec = self.records.next()?;
        assert!(
            rec.arrival >= self.last_arrival,
            "trace must be sorted by arrival time"
        );
        self.last_arrival = rec.arrival;
        let req = Request::new(
            self.next_id,
            SimTime::from_secs(rec.arrival / self.scale),
            rec.lbn,
            rec.sectors,
            rec.kind,
        );
        self.next_id += 1;
        Some(req)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.records.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_through_text() {
        let r = TraceRecord {
            arrival: 1.25,
            lbn: 424242,
            sectors: 7,
            kind: IoKind::Write,
        };
        let parsed: TraceRecord = r.to_line().parse().unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn trace_round_trips_through_text() {
        let records = vec![
            TraceRecord {
                arrival: 0.0,
                lbn: 1,
                sectors: 8,
                kind: IoKind::Read,
            },
            TraceRecord {
                arrival: 0.5,
                lbn: 100,
                sectors: 2,
                kind: IoKind::Write,
            },
        ];
        let text = format_trace(&records);
        assert_eq!(parse_trace(&text).unwrap(), records);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_trace("nonsense").is_err());
        assert!(parse_trace("0.0 1 8").is_err());
        assert!(parse_trace("0.0 1 8 X").is_err());
        assert!(parse_trace("0.0 1 0 R").is_err());
        assert!(parse_trace("-1.0 1 8 R").is_err());
        assert!(parse_trace("0.0 1 8 R extra").is_err());
    }

    #[test]
    fn parser_skips_comments_and_blanks() {
        let text = "\n# header\n\n0.0 5 8 R\n  \n";
        assert_eq!(parse_trace(text).unwrap().len(), 1);
    }

    #[test]
    fn scaling_divides_arrival_times() {
        let records = vec![
            TraceRecord {
                arrival: 0.0,
                lbn: 0,
                sectors: 1,
                kind: IoKind::Read,
            },
            TraceRecord {
                arrival: 2.0,
                lbn: 0,
                sectors: 1,
                kind: IoKind::Read,
            },
        ];
        let mut w = TraceWorkload::new(records, 2.0);
        assert_eq!(w.next_request().unwrap().arrival, SimTime::ZERO);
        assert_eq!(w.next_request().unwrap().arrival, SimTime::from_secs(1.0));
        assert!(w.next_request().is_none());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_trace_rejected() {
        let records = vec![
            TraceRecord {
                arrival: 2.0,
                lbn: 0,
                sectors: 1,
                kind: IoKind::Read,
            },
            TraceRecord {
                arrival: 1.0,
                lbn: 0,
                sectors: 1,
                kind: IoKind::Read,
            },
        ];
        let _ = TraceWorkload::new(records, 1.0);
    }
}
