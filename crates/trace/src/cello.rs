//! Cello-like synthetic trace generator.
//!
//! The paper's Cello workload is a week of disk activity from an HP Labs
//! server (program development, simulation, mail, news) traced in 1992
//! \[RW93]. The original trace is not redistributable, so this generator
//! reproduces the characteristics \[RW93] reports that matter for
//! scheduling studies:
//!
//! * bursty arrivals — think-time gaps separating bursts of closely
//!   spaced requests;
//! * a write-majority mix (metadata updates and the news feed dominate);
//! * strong spatial locality: a few hot regions (file-system metadata,
//!   swap, news spool) absorb most accesses, with occasional sequential
//!   runs from program and file reads;
//! * small requests — mostly one file-system block (4 KB or 8 KB).
//!
//! The paper's own finding for Cello (Fig. 7a) is that the scheduling
//! algorithms behave as they do under the random workload; the burstiness
//! and locality here preserve exactly that comparison.

use rand::rngs::SmallRng;
use storage_sim::rng;
use storage_sim::{IoKind, Request, SimTime, Workload};

use crate::record::TraceRecord;

/// Parameters of the Cello-like generator.
#[derive(Debug, Clone, PartialEq)]
pub struct CelloParams {
    /// Device capacity the trace addresses, in sectors.
    pub capacity: u64,
    /// Number of requests to generate.
    pub requests: u64,
    /// Fraction of requests that are reads (≈0.45: Cello is
    /// write-majority).
    pub read_fraction: f64,
    /// Mean requests per burst.
    pub burst_mean: f64,
    /// Mean interarrival within a burst, seconds.
    pub intra_burst_gap: f64,
    /// Mean gap between bursts, seconds.
    pub inter_burst_gap: f64,
    /// Number of hot regions (metadata/swap/news-spool analogues).
    pub hot_regions: u32,
    /// Fraction of accesses that hit a hot region.
    pub hot_fraction: f64,
    /// Probability that a request continues a sequential run.
    pub sequential_fraction: f64,
}

impl Default for CelloParams {
    fn default() -> Self {
        CelloParams {
            capacity: 6_750_000,
            requests: 10_000,
            read_fraction: 0.45,
            burst_mean: 8.0,
            intra_burst_gap: 3e-3,
            inter_burst_gap: 0.25,
            hot_regions: 6,
            hot_fraction: 0.6,
            sequential_fraction: 0.25,
        }
    }
}

/// Constant-memory streaming Cello-like generator.
///
/// Produces exactly the same record sequence per `(params, seed)` as
/// [`generate_cello`] — that function is now a thin `collect()` over this
/// type — but holds only O(hot regions) state, so a 10⁷-request trace
/// streams through the driver without ever existing as a vector.
///
/// Use it directly as a [`Workload`] (requests get dense ids from 0 and
/// as-traced arrival times), as an `Iterator` of [`TraceRecord`]s, or
/// behind [`crate::Replay`] to scale the arrival rate. `len_hint` is
/// exact, so the driver's event-queue pre-sizing stays restructure-free.
///
/// # Examples
///
/// ```
/// use storage_sim::Workload;
/// use storage_trace::{CelloParams, CelloWorkload};
///
/// let mut w = CelloWorkload::new(&CelloParams::default(), 7);
/// assert_eq!(w.len_hint(), Some(10_000));
/// let first = w.next_request().unwrap();
/// assert_eq!(first.id, 0);
/// ```
#[derive(Debug, Clone)]
pub struct CelloWorkload {
    params: CelloParams,
    region_len: u64,
    hot_starts: Vec<u64>,
    rng: SmallRng,
    remaining: u64,
    clock: f64,
    burst_left: u64,
    seq_lbn: u64,
    next_id: u64,
}

impl CelloWorkload {
    /// Creates the generator. Draws the hot-region placement eagerly so
    /// the record stream is a pure function of `(params, seed)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters (capacity ≤ 1024, zero requests,
    /// fractions outside `[0, 1]`).
    pub fn new(params: &CelloParams, seed: u64) -> Self {
        assert!(params.capacity > 1024 && params.requests > 0);
        assert!((0.0..=1.0).contains(&params.read_fraction));
        assert!((0.0..=1.0).contains(&params.hot_fraction));
        assert!((0.0..=1.0).contains(&params.sequential_fraction));
        let mut r = rng::seeded(seed);
        // Hot regions: small slices scattered over the device (metadata at
        // the front, swap in the middle, spool wherever the allocator put
        // it). Each is 0.5% of the device.
        let region_len = params.capacity / 200;
        let hot_starts: Vec<u64> = (0..params.hot_regions)
            .map(|_| rng::uniform_u64(&mut r, params.capacity - region_len))
            .collect();
        CelloWorkload {
            params: params.clone(),
            region_len,
            hot_starts,
            rng: r,
            remaining: params.requests,
            clock: 0.0,
            burst_left: 0,
            seq_lbn: 0,
            next_id: 0,
        }
    }
}

impl Iterator for CelloWorkload {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let params = &self.params;
        let r = &mut self.rng;
        if self.burst_left == 0 {
            self.clock += rng::exponential(r, params.inter_burst_gap);
            self.burst_left = 1 + rng::exponential(r, params.burst_mean) as u64;
        } else {
            self.clock += rng::exponential(r, params.intra_burst_gap);
        }
        self.burst_left -= 1;

        let sectors = match rng::uniform_u64(r, 10) {
            0..=6 => 8u32,                                 // 4 KB fs block
            7..=8 => 16,                                   // 8 KB block
            _ => 32 * (1 + rng::uniform_u64(r, 4) as u32), // occasional big I/O
        };
        let lbn = if rng::bernoulli(r, params.sequential_fraction) && self.seq_lbn != 0 {
            // Continue the current sequential run.
            self.seq_lbn
        } else if rng::bernoulli(r, params.hot_fraction) {
            // Hot-region access, Zipf-skewed across the regions.
            let region = rng::zipf(r, u64::from(params.hot_regions), 0.7) as usize;
            self.hot_starts[region] + rng::uniform_u64(r, self.region_len)
        } else {
            // Cold uniform access.
            rng::uniform_u64(r, params.capacity - 256)
        };
        let lbn = lbn.min(params.capacity - u64::from(sectors));
        self.seq_lbn = lbn + u64::from(sectors);
        if self.seq_lbn + 256 >= params.capacity {
            self.seq_lbn = 0; // run hit the end of the device
        }
        let kind = if rng::bernoulli(r, params.read_fraction) {
            IoKind::Read
        } else {
            IoKind::Write
        };
        Some(TraceRecord {
            arrival: self.clock,
            lbn,
            sectors,
            kind,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for CelloWorkload {}

impl Workload for CelloWorkload {
    fn next_request(&mut self) -> Option<Request> {
        let rec = Iterator::next(self)?;
        let req = Request::new(
            self.next_id,
            SimTime::from_secs(rec.arrival),
            rec.lbn,
            rec.sectors,
            rec.kind,
        );
        self.next_id += 1;
        Some(req)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.remaining)
    }
}

/// Generates a Cello-like trace (sorted by arrival time) by collecting
/// [`CelloWorkload`]'s stream — byte-identical to the streaming path.
///
/// # Examples
///
/// ```
/// use storage_trace::{generate_cello, CelloParams};
///
/// let trace = generate_cello(&CelloParams::default(), 7);
/// assert_eq!(trace.len(), 10_000);
/// assert!(trace.windows(2).all(|p| p[0].arrival <= p[1].arrival));
/// ```
pub fn generate_cello(params: &CelloParams, seed: u64) -> Vec<TraceRecord> {
    CelloWorkload::new(params, seed).collect()
}

/// Convenience: the default Cello-like trace for a device capacity.
pub fn cello_for_capacity(capacity: u64, requests: u64, seed: u64) -> Vec<TraceRecord> {
    generate_cello(
        &CelloParams {
            capacity,
            requests,
            ..CelloParams::default()
        },
        seed,
    )
}

/// Exposes the generator's RNG-free burstiness measure for tests: the
/// squared coefficient of variation of interarrival times (1 for Poisson,
/// larger for bursty processes).
pub fn interarrival_cv2(records: &[TraceRecord]) -> f64 {
    let gaps: Vec<f64> = records
        .windows(2)
        .map(|p| p[1].arrival - p[0].arrival)
        .collect();
    if gaps.is_empty() {
        return 0.0;
    }
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
    var / (mean * mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<TraceRecord> {
        generate_cello(&CelloParams::default(), 1)
    }

    #[test]
    fn arrivals_are_sorted_and_bursty() {
        let t = trace();
        assert!(t.windows(2).all(|p| p[0].arrival <= p[1].arrival));
        // Burstiness: interarrival CV² well above Poisson's 1.
        let cv2 = interarrival_cv2(&t);
        assert!(cv2 > 2.0, "cv² {cv2} not bursty");
    }

    #[test]
    fn mix_is_write_majority() {
        let t = trace();
        let reads = t.iter().filter(|r| r.kind == IoKind::Read).count();
        let frac = reads as f64 / t.len() as f64;
        assert!((0.40..0.50).contains(&frac), "read fraction {frac}");
    }

    #[test]
    fn accesses_concentrate_in_hot_regions() {
        let p = CelloParams::default();
        let t = generate_cello(&p, 2);
        // Count accesses landing in the busiest 3% of the device (by
        // 0.5%-sized buckets).
        let bucket = p.capacity / 200;
        let mut counts = std::collections::HashMap::new();
        for r in &t {
            *counts.entry(r.lbn / bucket).or_insert(0u64) += 1;
        }
        let mut per_bucket: Vec<u64> = counts.values().copied().collect();
        per_bucket.sort_unstable_by(|a, b| b.cmp(a));
        let top6: u64 = per_bucket.iter().take(6).sum();
        let frac = top6 as f64 / t.len() as f64;
        assert!(frac > 0.4, "top-6 bucket mass {frac} lacks locality");
    }

    #[test]
    fn sequential_runs_exist() {
        let t = trace();
        let seq = t
            .windows(2)
            .filter(|p| p[1].lbn == p[0].lbn + u64::from(p[0].sectors))
            .count();
        let frac = seq as f64 / t.len() as f64;
        assert!(frac > 0.1, "sequential fraction {frac}");
    }

    #[test]
    fn requests_stay_in_bounds() {
        let p = CelloParams::default();
        for r in generate_cello(&p, 3) {
            assert!(r.lbn + u64::from(r.sectors) <= p.capacity);
            assert!(r.sectors >= 1);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            generate_cello(&CelloParams::default(), 5),
            generate_cello(&CelloParams::default(), 5)
        );
    }

    #[test]
    fn streaming_workload_matches_materialized_replay() {
        use crate::record::TraceWorkload;
        let p = CelloParams::default();
        for seed in [1u64, 9, 0x5EED] {
            let mut streamed = CelloWorkload::new(&p, seed);
            assert_eq!(streamed.len_hint(), Some(p.requests));
            let mut replayed = TraceWorkload::new(generate_cello(&p, seed), 1.0);
            let mut n = 0u64;
            while let Some(want) = replayed.next_request() {
                assert_eq!(streamed.next_request(), Some(want), "seed {seed} req {n}");
                n += 1;
            }
            assert_eq!(streamed.next_request(), None);
            assert_eq!(n, p.requests);
        }
    }
}
