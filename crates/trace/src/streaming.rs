//! Media-server-like streaming trace generator.
//!
//! The workload class the paper's bipartite layout (§5.3) serves on its
//! "large" side: several concurrent sequential streams (video/audio
//! delivery, backup, scientific scans) each issuing large reads at a
//! steady consumption rate, plus a trickle of small metadata accesses.
//! Useful for exercising layouts, readahead, and striped arrays under
//! bandwidth-bound conditions.

use storage_sim::rng;
use storage_sim::IoKind;

use crate::record::TraceRecord;

/// Parameters of the streaming generator.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingParams {
    /// Device capacity in sectors.
    pub capacity: u64,
    /// Number of requests to generate.
    pub requests: u64,
    /// Number of concurrent streams.
    pub streams: u32,
    /// Sectors per streaming read (e.g. 512 = 256 KB).
    pub chunk_sectors: u32,
    /// Per-stream consumption rate in chunks/second (a 4 Mbit/s video
    /// stream consuming 256 KB chunks reads ~2 chunks/s).
    pub chunks_per_second: f64,
    /// Fraction of requests that are small metadata accesses.
    pub metadata_fraction: f64,
}

impl Default for StreamingParams {
    fn default() -> Self {
        StreamingParams {
            capacity: 6_750_000,
            requests: 10_000,
            streams: 8,
            chunk_sectors: 512,
            chunks_per_second: 2.0,
            metadata_fraction: 0.1,
        }
    }
}

/// Generates a streaming trace (sorted by arrival time).
///
/// Each stream starts at a random extent and reads forward; when it
/// reaches the end of its extent it seeks to a new random location (a
/// new file). Streams progress concurrently, so the interleaved request
/// sequence alternates between them — the pattern that defeats naive
/// single-stream readahead but rewards per-stream detection.
///
/// # Examples
///
/// ```
/// use storage_trace::{generate_streaming, StreamingParams};
///
/// let t = generate_streaming(&StreamingParams::default(), 3);
/// assert_eq!(t.len(), 10_000);
/// // Dominated by large sequential chunks.
/// assert!(t.iter().filter(|r| r.sectors == 512).count() > 8_000);
/// ```
pub fn generate_streaming(params: &StreamingParams, seed: u64) -> Vec<TraceRecord> {
    assert!(params.streams > 0 && params.requests > 0);
    assert!(params.chunks_per_second > 0.0);
    assert!((0.0..1.0).contains(&params.metadata_fraction));
    let chunk = u64::from(params.chunk_sectors);
    assert!(
        params.capacity > chunk * 100,
        "device too small for streaming"
    );
    let mut r = rng::seeded(seed);
    // Per-stream state: (next arrival time, current position, chunks
    // left in the current file).
    let file_chunks = 200u64; // ~50 MB files at 256 KB chunks
    let mut streams: Vec<(f64, u64, u64)> = (0..params.streams)
        .map(|i| {
            let pos = rng::uniform_u64(&mut r, params.capacity - chunk * file_chunks);
            (
                f64::from(i) / (params.chunks_per_second * f64::from(params.streams)),
                pos,
                file_chunks,
            )
        })
        .collect();

    let mut records = Vec::with_capacity(params.requests as usize);
    while records.len() < params.requests as usize {
        // The next event is the stream with the earliest deadline.
        let (idx, _) = streams
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("times are finite"))
            .expect("streams is non-empty");
        let (t, pos, left) = streams[idx];
        if rng::bernoulli(&mut r, params.metadata_fraction) {
            // Metadata access near the front of the device.
            let lbn = rng::uniform_u64(&mut r, params.capacity / 100);
            records.push(TraceRecord {
                arrival: t,
                lbn,
                sectors: 8,
                kind: IoKind::Read,
            });
        }
        records.push(TraceRecord {
            arrival: t,
            lbn: pos,
            sectors: params.chunk_sectors,
            kind: IoKind::Read,
        });
        // Advance the stream.
        let (new_pos, new_left) = if left > 1 {
            (pos + chunk, left - 1)
        } else {
            (
                rng::uniform_u64(&mut r, params.capacity - chunk * file_chunks),
                file_chunks,
            )
        };
        // Slight jitter around the consumption period.
        let period = 1.0 / params.chunks_per_second;
        let jitter = rng::exponential(&mut r, period * 0.05);
        streams[idx] = (t + period + jitter - period * 0.05, new_pos, new_left);
    }
    records.truncate(params.requests as usize);
    records.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).expect("finite"));
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<TraceRecord> {
        generate_streaming(&StreamingParams::default(), 1)
    }

    #[test]
    fn arrivals_are_sorted() {
        let t = trace();
        assert!(t.windows(2).all(|p| p[0].arrival <= p[1].arrival));
        assert_eq!(t.len(), 10_000);
    }

    #[test]
    fn streams_are_individually_sequential() {
        // Group chunk reads by stream (recoverable by position chains):
        // each chunk should usually be followed eventually by pos+512.
        let t = trace();
        let chunks: Vec<&TraceRecord> = t.iter().filter(|r| r.sectors == 512).collect();
        let continuations = chunks
            .iter()
            .filter(|c| {
                chunks
                    .iter()
                    .any(|d| d.lbn == c.lbn + 512 && d.arrival > c.arrival)
            })
            .count();
        assert!(
            continuations as f64 / chunks.len() as f64 > 0.8,
            "most chunks should have a sequential continuation"
        );
    }

    #[test]
    fn mix_is_mostly_large_reads() {
        let t = trace();
        let large = t.iter().filter(|r| r.sectors == 512).count();
        assert!(large as f64 / t.len() as f64 > 0.85);
        assert!(t.iter().all(|r| r.kind == IoKind::Read));
    }

    #[test]
    fn aggregate_rate_matches_streams_times_consumption() {
        let p = StreamingParams::default();
        let t = generate_streaming(&p, 2);
        let chunks: Vec<&TraceRecord> = t.iter().filter(|r| r.sectors == 512).collect();
        let span = chunks.last().unwrap().arrival - chunks[0].arrival;
        let rate = (chunks.len() - 1) as f64 / span;
        let expected = f64::from(p.streams) * p.chunks_per_second;
        assert!(
            (rate - expected).abs() / expected < 0.1,
            "rate {rate} vs expected {expected}"
        );
    }

    #[test]
    fn requests_stay_in_bounds() {
        let p = StreamingParams::default();
        for r in generate_streaming(&p, 3) {
            assert!(r.lbn + u64::from(r.sectors) <= p.capacity);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            generate_streaming(&StreamingParams::default(), 7),
            generate_streaming(&StreamingParams::default(), 7)
        );
    }
}
