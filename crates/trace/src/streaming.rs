//! Media-server-like streaming trace generator.
//!
//! The workload class the paper's bipartite layout (§5.3) serves on its
//! "large" side: several concurrent sequential streams (video/audio
//! delivery, backup, scientific scans) each issuing large reads at a
//! steady consumption rate, plus a trickle of small metadata accesses.
//! Useful for exercising layouts, readahead, and striped arrays under
//! bandwidth-bound conditions.

use rand::rngs::SmallRng;
use storage_sim::rng;
use storage_sim::{IoKind, Request, SimTime, Workload};

use crate::record::TraceRecord;

/// Parameters of the streaming generator.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingParams {
    /// Device capacity in sectors.
    pub capacity: u64,
    /// Number of requests to generate.
    pub requests: u64,
    /// Number of concurrent streams.
    pub streams: u32,
    /// Sectors per streaming read (e.g. 512 = 256 KB).
    pub chunk_sectors: u32,
    /// Per-stream consumption rate in chunks/second (a 4 Mbit/s video
    /// stream consuming 256 KB chunks reads ~2 chunks/s).
    pub chunks_per_second: f64,
    /// Fraction of requests that are small metadata accesses.
    pub metadata_fraction: f64,
}

impl Default for StreamingParams {
    fn default() -> Self {
        StreamingParams {
            capacity: 6_750_000,
            requests: 10_000,
            streams: 8,
            chunk_sectors: 512,
            chunks_per_second: 2.0,
            metadata_fraction: 0.1,
        }
    }
}

/// ~50 MB files at 256 KB chunks.
const FILE_CHUNKS: u64 = 200;

/// Constant-memory streaming generator for the media-server workload.
///
/// Each stream starts at a random extent and reads forward; when it
/// reaches the end of its extent it seeks to a new random location (a
/// new file). Streams progress concurrently, so the interleaved request
/// sequence alternates between them — the pattern that defeats naive
/// single-stream readahead but rewards per-stream detection.
///
/// State is O(streams): the earliest-deadline scan that the materialized
/// generator ran per iteration happens per pull instead, and the optional
/// metadata record that precedes a chunk is held in a one-record pending
/// slot. The emitted sequence per `(params, seed)` is byte-identical to
/// [`generate_streaming`] (now a `collect()` over this type): deadlines
/// only move forward, so emission order is already sorted and the
/// materialized path's trailing sort is a stable no-op. `len_hint` is
/// exact — the request budget cuts the stream off exactly where
/// `truncate` did.
///
/// # Examples
///
/// ```
/// use storage_sim::Workload;
/// use storage_trace::{StreamingParams, StreamingWorkload};
///
/// let mut w = StreamingWorkload::new(&StreamingParams::default(), 3);
/// assert_eq!(w.len_hint(), Some(10_000));
/// assert!(w.next_request().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct StreamingWorkload {
    params: StreamingParams,
    rng: SmallRng,
    /// Per-stream state: (next arrival time, current position, chunks
    /// left in the current file).
    streams: Vec<(f64, u64, u64)>,
    /// Chunk record deferred behind a same-arrival metadata record.
    pending: Option<TraceRecord>,
    remaining: u64,
    next_id: u64,
}

impl StreamingWorkload {
    /// Creates the generator; the initial per-stream positions are drawn
    /// eagerly so the stream is a pure function of `(params, seed)`.
    ///
    /// # Panics
    ///
    /// Panics on zero streams/requests, a non-positive consumption rate,
    /// a metadata fraction outside `[0, 1)`, or a device smaller than 100
    /// chunks.
    pub fn new(params: &StreamingParams, seed: u64) -> Self {
        assert!(params.streams > 0 && params.requests > 0);
        assert!(params.chunks_per_second > 0.0);
        assert!((0.0..1.0).contains(&params.metadata_fraction));
        let chunk = u64::from(params.chunk_sectors);
        assert!(
            params.capacity > chunk * 100,
            "device too small for streaming"
        );
        let mut r = rng::seeded(seed);
        let streams: Vec<(f64, u64, u64)> = (0..params.streams)
            .map(|i| {
                let pos = rng::uniform_u64(&mut r, params.capacity - chunk * FILE_CHUNKS);
                (
                    f64::from(i) / (params.chunks_per_second * f64::from(params.streams)),
                    pos,
                    FILE_CHUNKS,
                )
            })
            .collect();
        StreamingWorkload {
            params: params.clone(),
            rng: r,
            streams,
            pending: None,
            remaining: params.requests,
            next_id: 0,
        }
    }
}

impl Iterator for StreamingWorkload {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if let Some(rec) = self.pending.take() {
            return Some(rec);
        }
        let params = &self.params;
        let r = &mut self.rng;
        let chunk = u64::from(params.chunk_sectors);
        // The next event is the stream with the earliest deadline.
        let (idx, _) = self
            .streams
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("times are finite"))
            .expect("streams is non-empty");
        let (t, pos, left) = self.streams[idx];
        let metadata = if rng::bernoulli(r, params.metadata_fraction) {
            // Metadata access near the front of the device.
            let lbn = rng::uniform_u64(r, params.capacity / 100);
            Some(TraceRecord {
                arrival: t,
                lbn,
                sectors: 8,
                kind: IoKind::Read,
            })
        } else {
            None
        };
        let chunk_rec = TraceRecord {
            arrival: t,
            lbn: pos,
            sectors: params.chunk_sectors,
            kind: IoKind::Read,
        };
        // Advance the stream.
        let (new_pos, new_left) = if left > 1 {
            (pos + chunk, left - 1)
        } else {
            (
                rng::uniform_u64(r, params.capacity - chunk * FILE_CHUNKS),
                FILE_CHUNKS,
            )
        };
        // Slight jitter around the consumption period.
        let period = 1.0 / params.chunks_per_second;
        let jitter = rng::exponential(r, period * 0.05);
        self.streams[idx] = (t + period + jitter - period * 0.05, new_pos, new_left);
        match metadata {
            Some(meta) => {
                // Metadata precedes the chunk at the same arrival; the
                // chunk waits in the pending slot (and is dropped at the
                // request budget, exactly like the materialized truncate).
                self.pending = Some(chunk_rec);
                Some(meta)
            }
            None => Some(chunk_rec),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for StreamingWorkload {}

impl Workload for StreamingWorkload {
    fn next_request(&mut self) -> Option<Request> {
        let rec = Iterator::next(self)?;
        let req = Request::new(
            self.next_id,
            SimTime::from_secs(rec.arrival),
            rec.lbn,
            rec.sectors,
            rec.kind,
        );
        self.next_id += 1;
        Some(req)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.remaining)
    }
}

/// Generates a streaming trace (sorted by arrival time) by collecting
/// [`StreamingWorkload`]'s stream — byte-identical to the streaming path
/// (the trailing sort is retained for belt and braces but deadlines only
/// move forward, so it is a stable no-op).
///
/// # Examples
///
/// ```
/// use storage_trace::{generate_streaming, StreamingParams};
///
/// let t = generate_streaming(&StreamingParams::default(), 3);
/// assert_eq!(t.len(), 10_000);
/// // Dominated by large sequential chunks.
/// assert!(t.iter().filter(|r| r.sectors == 512).count() > 8_000);
/// ```
pub fn generate_streaming(params: &StreamingParams, seed: u64) -> Vec<TraceRecord> {
    let mut records: Vec<TraceRecord> = StreamingWorkload::new(params, seed).collect();
    records.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).expect("finite"));
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<TraceRecord> {
        generate_streaming(&StreamingParams::default(), 1)
    }

    #[test]
    fn arrivals_are_sorted() {
        let t = trace();
        assert!(t.windows(2).all(|p| p[0].arrival <= p[1].arrival));
        assert_eq!(t.len(), 10_000);
    }

    #[test]
    fn streams_are_individually_sequential() {
        // Group chunk reads by stream (recoverable by position chains):
        // each chunk should usually be followed eventually by pos+512.
        let t = trace();
        let chunks: Vec<&TraceRecord> = t.iter().filter(|r| r.sectors == 512).collect();
        let continuations = chunks
            .iter()
            .filter(|c| {
                chunks
                    .iter()
                    .any(|d| d.lbn == c.lbn + 512 && d.arrival > c.arrival)
            })
            .count();
        assert!(
            continuations as f64 / chunks.len() as f64 > 0.8,
            "most chunks should have a sequential continuation"
        );
    }

    #[test]
    fn mix_is_mostly_large_reads() {
        let t = trace();
        let large = t.iter().filter(|r| r.sectors == 512).count();
        assert!(large as f64 / t.len() as f64 > 0.85);
        assert!(t.iter().all(|r| r.kind == IoKind::Read));
    }

    #[test]
    fn aggregate_rate_matches_streams_times_consumption() {
        let p = StreamingParams::default();
        let t = generate_streaming(&p, 2);
        let chunks: Vec<&TraceRecord> = t.iter().filter(|r| r.sectors == 512).collect();
        let span = chunks.last().unwrap().arrival - chunks[0].arrival;
        let rate = (chunks.len() - 1) as f64 / span;
        let expected = f64::from(p.streams) * p.chunks_per_second;
        assert!(
            (rate - expected).abs() / expected < 0.1,
            "rate {rate} vs expected {expected}"
        );
    }

    #[test]
    fn requests_stay_in_bounds() {
        let p = StreamingParams::default();
        for r in generate_streaming(&p, 3) {
            assert!(r.lbn + u64::from(r.sectors) <= p.capacity);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            generate_streaming(&StreamingParams::default(), 7),
            generate_streaming(&StreamingParams::default(), 7)
        );
    }

    #[test]
    fn streaming_workload_matches_materialized_replay() {
        use crate::record::TraceWorkload;
        use storage_sim::Workload;
        let p = StreamingParams::default();
        for seed in [1u64, 3, 0x57E4] {
            let mut streamed = StreamingWorkload::new(&p, seed);
            assert_eq!(streamed.len_hint(), Some(p.requests));
            // The materialized path sorts after collecting; equality here
            // proves the emission order was already sorted (stable no-op)
            // and the request budget reproduces the truncate cut.
            let mut replayed = TraceWorkload::new(generate_streaming(&p, seed), 1.0);
            while let Some(want) = replayed.next_request() {
                assert_eq!(streamed.next_request(), Some(want), "seed {seed}");
            }
            assert_eq!(streamed.next_request(), None);
        }
    }
}
