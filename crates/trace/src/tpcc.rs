//! TPC-C-like synthetic OLTP trace generator.
//!
//! The paper's TPC-C trace captures one hour of disk activity from a
//! Microsoft SQL Server TPC-C testbed with a 1 GB database \[RFGN00]. The
//! trace itself is unavailable, so this generator reproduces the two
//! properties the paper explicitly credits for SPTF's larger win on
//! TPC-C (§4.3):
//!
//! * **many concurrently-pending requests** — OLTP issues I/O from many
//!   transactions at once, so arrivals come in dense Poisson bursts; and
//! * **very small inter-LBN distances between pending requests** — the
//!   hot tables and indices of a 1 GB database concentrate accesses, so
//!   LBN-based schedulers constantly face ties they cannot break, while
//!   SPTF sees the real (Y-dominated) positioning differences.
//!
//! Structure: a small database region of hot table/index extents accessed
//! with Zipf skew in 8 KB pages (2:1 read/write), plus an append-only log
//! region receiving sequential 2–16 KB writes.

use rand::rngs::SmallRng;
use storage_sim::rng;
use storage_sim::{IoKind, Request, SimTime, Workload};

use crate::record::TraceRecord;

/// Parameters of the TPC-C-like generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TpccParams {
    /// Device capacity in sectors.
    pub capacity: u64,
    /// Number of requests to generate.
    pub requests: u64,
    /// Database size in sectors (1 GB → ~2M sectors on the traced
    /// system; scaled to the simulated device).
    pub database_sectors: u64,
    /// Number of hot extents (tables/indices).
    pub hot_extents: u32,
    /// Mean interarrival time, seconds.
    pub mean_interarrival: f64,
    /// Fraction of page accesses that are reads (≈0.65).
    pub read_fraction: f64,
    /// Fraction of requests that are log appends.
    pub log_fraction: f64,
}

impl Default for TpccParams {
    fn default() -> Self {
        TpccParams {
            capacity: 6_750_000,
            requests: 10_000,
            database_sectors: 2_000_000,
            hot_extents: 16,
            mean_interarrival: 5e-3,
            read_fraction: 0.65,
            log_fraction: 0.12,
        }
    }
}

/// Constant-memory streaming TPC-C-like generator.
///
/// Produces exactly the record sequence of [`generate_tpcc`] per
/// `(params, seed)` — that function is now a `collect()` over this type —
/// while holding O(1) state (clock, log head, RNG). Usable directly as a
/// [`Workload`] (dense ids from 0, as-traced arrivals), as an `Iterator`
/// of [`TraceRecord`]s, or behind [`crate::Replay`] for rate scaling;
/// `len_hint` is exact.
///
/// # Examples
///
/// ```
/// use storage_sim::Workload;
/// use storage_trace::{TpccParams, TpccWorkload};
///
/// let mut w = TpccWorkload::new(&TpccParams::default(), 11);
/// assert_eq!(w.len_hint(), Some(10_000));
/// assert!(w.next_request().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct TpccWorkload {
    params: TpccParams,
    extent_len: u64,
    log_start: u64,
    log_len: u64,
    rng: SmallRng,
    remaining: u64,
    clock: f64,
    log_head: u64,
    next_id: u64,
}

impl TpccWorkload {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if the database (plus the 2% log region) does not fit the
    /// capacity, or on zero requests / non-positive interarrival.
    pub fn new(params: &TpccParams, seed: u64) -> Self {
        assert!(params.database_sectors < params.capacity);
        assert!(params.requests > 0 && params.mean_interarrival > 0.0);
        let r = rng::seeded(seed);
        // The database occupies a contiguous region at the front of the
        // device (as a striped SQL Server data file would); the log lives
        // right after it.
        let extent_len = params.database_sectors / u64::from(params.hot_extents);
        let log_start = params.database_sectors;
        let log_len = params.capacity / 50; // 2% of the device for the log
        assert!(log_start + log_len < params.capacity);
        TpccWorkload {
            params: params.clone(),
            extent_len,
            log_start,
            log_len,
            rng: r,
            remaining: params.requests,
            clock: 0.0,
            log_head: log_start,
            next_id: 0,
        }
    }
}

impl Iterator for TpccWorkload {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let params = &self.params;
        let r = &mut self.rng;
        let db_start = 0u64;
        self.clock += rng::exponential(r, params.mean_interarrival);
        let rec = if rng::bernoulli(r, params.log_fraction) {
            // Sequential log append: 2–16 KB.
            let sectors = 4 * (1 + rng::uniform_u64(r, 8)) as u32;
            if self.log_head + u64::from(sectors) >= self.log_start + self.log_len {
                self.log_head = self.log_start; // circular log
            }
            let rec = TraceRecord {
                arrival: self.clock,
                lbn: self.log_head,
                sectors,
                kind: IoKind::Write,
            };
            self.log_head += u64::from(sectors);
            rec
        } else {
            // 8 KB page access to a Zipf-hot extent, Zipf-skewed within
            // the extent as well (B-tree roots and hot rows).
            let extent = rng::zipf(r, u64::from(params.hot_extents), 0.75);
            let offset = rng::zipf(r, self.extent_len - 16, 0.65);
            let lbn = db_start + extent * self.extent_len + offset;
            let kind = if rng::bernoulli(r, params.read_fraction) {
                IoKind::Read
            } else {
                IoKind::Write
            };
            TraceRecord {
                arrival: self.clock,
                lbn,
                sectors: 16,
                kind,
            }
        };
        Some(rec)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for TpccWorkload {}

impl Workload for TpccWorkload {
    fn next_request(&mut self) -> Option<Request> {
        let rec = Iterator::next(self)?;
        let req = Request::new(
            self.next_id,
            SimTime::from_secs(rec.arrival),
            rec.lbn,
            rec.sectors,
            rec.kind,
        );
        self.next_id += 1;
        Some(req)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.remaining)
    }
}

/// Generates a TPC-C-like trace (sorted by arrival time) by collecting
/// [`TpccWorkload`]'s stream — byte-identical to the streaming path.
///
/// # Examples
///
/// ```
/// use storage_trace::{generate_tpcc, TpccParams};
///
/// let trace = generate_tpcc(&TpccParams::default(), 11);
/// assert_eq!(trace.len(), 10_000);
/// // OLTP pages are 8 KB.
/// assert!(trace.iter().filter(|r| r.sectors == 16).count() > 7_000);
/// ```
pub fn generate_tpcc(params: &TpccParams, seed: u64) -> Vec<TraceRecord> {
    TpccWorkload::new(params, seed).collect()
}

/// Convenience: the default TPC-C-like trace for a device capacity, with
/// the database scaled to ~30% of the device.
pub fn tpcc_for_capacity(capacity: u64, requests: u64, seed: u64) -> Vec<TraceRecord> {
    generate_tpcc(
        &TpccParams {
            capacity,
            requests,
            database_sectors: capacity * 3 / 10,
            ..TpccParams::default()
        },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<TraceRecord> {
        generate_tpcc(&TpccParams::default(), 1)
    }

    #[test]
    fn arrivals_sorted_and_rate_matches() {
        let t = trace();
        assert!(t.windows(2).all(|p| p[0].arrival <= p[1].arrival));
        let span = t.last().unwrap().arrival - t[0].arrival;
        let rate = (t.len() - 1) as f64 / span;
        assert!((rate - 200.0).abs() / 200.0 < 0.05, "rate {rate}");
    }

    #[test]
    fn inter_lbn_distances_are_small() {
        // The property the paper credits for SPTF's big TPC-C win: pending
        // requests cluster at tiny LBN distances. Median nearest-distance
        // among a window of concurrent requests must be far below the
        // uniform-workload expectation.
        let t = trace();
        let mut nearest = Vec::new();
        for w in t.windows(20) {
            let base = w[0].lbn;
            let d = w[1..]
                .iter()
                .map(|r| r.lbn.abs_diff(base))
                .min()
                .expect("window non-empty");
            nearest.push(d);
        }
        nearest.sort_unstable();
        let median = nearest[nearest.len() / 2];
        // Uniform over 6.75M sectors would give ≈ capacity/20 ≈ 340k.
        assert!(
            median < 60_000,
            "median nearest inter-LBN distance {median}"
        );
    }

    #[test]
    fn pages_dominate_and_log_is_sequential_writes() {
        let t = trace();
        let pages = t.iter().filter(|r| r.sectors == 16).count();
        assert!(pages as f64 / t.len() as f64 > 0.8);
        // All log-region requests are writes.
        let p = TpccParams::default();
        for r in t.iter().filter(|r| r.lbn >= p.database_sectors) {
            assert_eq!(r.kind, IoKind::Write, "log append must be a write");
        }
    }

    #[test]
    fn read_fraction_reflects_oltp_mix() {
        let t = trace();
        let reads = t.iter().filter(|r| r.kind == IoKind::Read).count();
        let frac = reads as f64 / t.len() as f64;
        // 65% of the 88% page traffic: ≈0.57 overall.
        assert!((0.5..0.65).contains(&frac), "read fraction {frac}");
    }

    #[test]
    fn requests_stay_in_bounds() {
        let p = TpccParams::default();
        for r in generate_tpcc(&p, 2) {
            assert!(r.lbn + u64::from(r.sectors) <= p.capacity);
        }
    }

    #[test]
    fn hot_extents_receive_skewed_traffic() {
        let p = TpccParams::default();
        let t = generate_tpcc(&p, 3);
        let extent_len = p.database_sectors / u64::from(p.hot_extents);
        let mut counts = vec![0u64; p.hot_extents as usize];
        for r in t.iter().filter(|r| r.lbn < p.database_sectors) {
            counts[(r.lbn / extent_len).min(u64::from(p.hot_extents) - 1) as usize] += 1;
        }
        let total: u64 = counts.iter().sum();
        assert!(
            counts[0] as f64 / total as f64 > 0.25,
            "hottest extent should absorb >25%: {counts:?}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            generate_tpcc(&TpccParams::default(), 9),
            generate_tpcc(&TpccParams::default(), 9)
        );
    }

    #[test]
    fn streaming_workload_matches_materialized_replay() {
        use crate::record::TraceWorkload;
        let p = TpccParams::default();
        for seed in [2u64, 11, 0x7CC] {
            let mut streamed = TpccWorkload::new(&p, seed);
            assert_eq!(streamed.len_hint(), Some(p.requests));
            let mut replayed = TraceWorkload::new(generate_tpcc(&p, seed), 1.0);
            while let Some(want) = replayed.next_request() {
                assert_eq!(streamed.next_request(), Some(want), "seed {seed}");
            }
            assert_eq!(streamed.next_request(), None);
        }
    }
}
