//! Trace characterization.
//!
//! [`TraceSummary`] computes the aggregate properties storage papers
//! report about their workloads — arrival rate and burstiness, size
//! distribution, read/write mix, sequentiality, and spatial locality —
//! so synthetic generators can be validated against published trace
//! descriptions (that is exactly how the Cello-like and TPC-C-like
//! generators in this crate were calibrated).

use storage_sim::IoKind;

use crate::record::TraceRecord;

/// Aggregate characteristics of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Number of requests.
    pub requests: u64,
    /// Trace duration (first to last arrival), seconds.
    pub duration: f64,
    /// Mean arrival rate, requests/second.
    pub arrival_rate: f64,
    /// Squared coefficient of variation of interarrival times (1 ≈
    /// Poisson; larger = bursty).
    pub interarrival_cv2: f64,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Mean request size, sectors.
    pub mean_sectors: f64,
    /// Largest request, sectors.
    pub max_sectors: u32,
    /// Fraction of requests that start exactly where the previous one
    /// ended (strict sequentiality).
    pub sequential_fraction: f64,
    /// Fraction of accessed bytes that land in the busiest 10% of the
    /// address space (by 1%-of-capacity buckets); 0.1 = uniform.
    pub top_decile_mass: f64,
    /// Footprint: fraction of 1%-capacity buckets touched at all.
    pub footprint: f64,
}

impl TraceSummary {
    /// Computes the summary of `records` against a device of `capacity`
    /// sectors.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or `capacity` is zero.
    pub fn compute(records: &[TraceRecord], capacity: u64) -> Self {
        assert!(!records.is_empty(), "empty trace");
        assert!(capacity > 0);
        let requests = records.len() as u64;
        let duration = records.last().expect("non-empty").arrival - records[0].arrival;

        // Interarrival statistics.
        let gaps: Vec<f64> = records
            .windows(2)
            .map(|p| p[1].arrival - p[0].arrival)
            .collect();
        let (cv2, rate) = if gaps.is_empty() || duration <= 0.0 {
            (0.0, 0.0)
        } else {
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            (var / (mean * mean), (requests - 1) as f64 / duration)
        };

        let reads = records.iter().filter(|r| r.kind == IoKind::Read).count();
        let total_sectors: u64 = records.iter().map(|r| u64::from(r.sectors)).sum();
        let max_sectors = records.iter().map(|r| r.sectors).max().expect("non-empty");

        let sequential = records
            .windows(2)
            .filter(|p| p[1].lbn == p[0].lbn + u64::from(p[0].sectors))
            .count();

        // Locality over 100 equal buckets.
        let buckets = 100u64;
        let bucket_size = capacity.div_ceil(buckets);
        let mut mass = vec![0u64; buckets as usize];
        for r in records {
            let b = (r.lbn / bucket_size).min(buckets - 1) as usize;
            mass[b] += u64::from(r.sectors);
        }
        let mut sorted = mass.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: u64 = sorted.iter().take(10).sum();
        let touched = mass.iter().filter(|&&m| m > 0).count();

        TraceSummary {
            requests,
            duration,
            arrival_rate: rate,
            interarrival_cv2: cv2,
            read_fraction: reads as f64 / requests as f64,
            mean_sectors: total_sectors as f64 / requests as f64,
            max_sectors,
            sequential_fraction: if records.len() > 1 {
                sequential as f64 / (records.len() - 1) as f64
            } else {
                0.0
            },
            top_decile_mass: if total_sectors > 0 {
                top_decile as f64 / total_sectors as f64
            } else {
                0.0
            },
            footprint: touched as f64 / buckets as f64,
        }
    }

    /// Renders the summary as an aligned report.
    pub fn render(&self) -> String {
        format!(
            "requests            {}\n\
             duration            {:.1} s\n\
             arrival rate        {:.1} req/s\n\
             interarrival cv^2   {:.2}\n\
             read fraction       {:.1}%\n\
             mean request size   {:.1} sectors ({:.1} KB)\n\
             max request size    {} sectors\n\
             sequential fraction {:.1}%\n\
             top-decile mass     {:.1}%\n\
             footprint           {:.1}% of device",
            self.requests,
            self.duration,
            self.arrival_rate,
            self.interarrival_cv2,
            self.read_fraction * 100.0,
            self.mean_sectors,
            self.mean_sectors / 2.0,
            self.max_sectors,
            self.sequential_fraction * 100.0,
            self.top_decile_mass * 100.0,
            self.footprint * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cello::{generate_cello, CelloParams};
    use crate::tpcc::{generate_tpcc, TpccParams};

    fn uniform_trace(n: u64, capacity: u64) -> Vec<TraceRecord> {
        let mut lbn = 13u64;
        (0..n)
            .map(|i| {
                lbn = (lbn.wrapping_mul(6364136223846793005).wrapping_add(11)) % (capacity - 8);
                TraceRecord {
                    arrival: i as f64 * 0.01,
                    lbn,
                    sectors: 8,
                    kind: IoKind::Read,
                }
            })
            .collect()
    }

    #[test]
    fn uniform_trace_summary_is_uniform() {
        let t = uniform_trace(20_000, 1_000_000);
        let s = TraceSummary::compute(&t, 1_000_000);
        assert_eq!(s.requests, 20_000);
        assert!((s.arrival_rate - 100.0).abs() < 1.0);
        assert!(s.interarrival_cv2 < 0.01, "constant arrivals");
        assert_eq!(s.read_fraction, 1.0);
        assert!((s.mean_sectors - 8.0).abs() < 1e-9);
        // Uniform: busiest 10% of buckets hold ≈10-13% of mass.
        assert!(s.top_decile_mass < 0.15, "mass {}", s.top_decile_mass);
        assert!(s.footprint > 0.99);
    }

    #[test]
    fn cello_like_summary_matches_published_characteristics() {
        let p = CelloParams::default();
        let t = generate_cello(&p, 3);
        let s = TraceSummary::compute(&t, p.capacity);
        assert!(
            s.interarrival_cv2 > 2.0,
            "bursty: cv2 {}",
            s.interarrival_cv2
        );
        assert!((0.40..0.50).contains(&s.read_fraction), "write-majority");
        assert!(s.sequential_fraction > 0.1, "sequential runs exist");
        assert!(s.top_decile_mass > 0.4, "hot regions dominate");
    }

    #[test]
    fn tpcc_like_summary_matches_published_characteristics() {
        let p = TpccParams::default();
        let t = generate_tpcc(&p, 3);
        let s = TraceSummary::compute(&t, p.capacity);
        assert!(
            (15.0..17.0).contains(&s.mean_sectors),
            "8 KB pages dominate"
        );
        assert!(s.top_decile_mass > 0.5, "hot tables dominate");
        assert!(s.footprint < 0.5, "database confined to part of the device");
    }

    #[test]
    fn render_contains_key_lines() {
        let t = uniform_trace(100, 10_000);
        let text = TraceSummary::compute(&t, 10_000).render();
        assert!(text.contains("arrival rate"));
        assert!(text.contains("sequential fraction"));
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_rejected() {
        let _ = TraceSummary::compute(&[], 100);
    }
}
