//! Trace characterization.
//!
//! [`TraceSummary`] computes the aggregate properties storage papers
//! report about their workloads — arrival rate and burstiness, size
//! distribution, read/write mix, sequentiality, and spatial locality —
//! so synthetic generators can be validated against published trace
//! descriptions (that is exactly how the Cello-like and TPC-C-like
//! generators in this crate were calibrated).
//!
//! The computation is a single streaming pass ([`TraceSummary::from_stream`])
//! over O(1) state — a Welford accumulator for interarrival moments, a
//! log-spaced histogram for interarrival tails, and a fixed 100-bucket
//! locality map — so a 10⁷-request generator stream can be characterized
//! without ever materializing a `Vec<TraceRecord>`.
//! [`TraceSummary::compute`] is the slice convenience over the same pass.

use storage_sim::{IoKind, LogHistogram, Welford};

use crate::record::TraceRecord;

/// Aggregate characteristics of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Number of requests.
    pub requests: u64,
    /// Trace duration (first to last arrival), seconds.
    pub duration: f64,
    /// Mean arrival rate, requests/second.
    pub arrival_rate: f64,
    /// Squared coefficient of variation of interarrival times (1 ≈
    /// Poisson; larger = bursty).
    pub interarrival_cv2: f64,
    /// 99th-percentile interarrival gap, seconds (log-histogram estimate,
    /// within ~12%): the think-time tail that separates bursts.
    pub interarrival_p99: f64,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Mean request size, sectors.
    pub mean_sectors: f64,
    /// Largest request, sectors.
    pub max_sectors: u32,
    /// Fraction of requests that start exactly where the previous one
    /// ended (strict sequentiality).
    pub sequential_fraction: f64,
    /// Fraction of accessed bytes that land in the busiest 10% of the
    /// address space (by 1%-of-capacity buckets); 0.1 = uniform.
    pub top_decile_mass: f64,
    /// Footprint: fraction of 1%-capacity buckets touched at all.
    pub footprint: f64,
}

impl TraceSummary {
    /// Computes the summary of `records` against a device of `capacity`
    /// sectors. Convenience over [`TraceSummary::from_stream`].
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or `capacity` is zero.
    pub fn compute(records: &[TraceRecord], capacity: u64) -> Self {
        Self::from_stream(records.iter().copied(), capacity)
    }

    /// Computes the summary in one streaming pass over any record
    /// iterator — every generator in this crate yields its records this
    /// way, so arbitrarily long traces summarize in O(1) memory.
    ///
    /// # Panics
    ///
    /// Panics if the stream is empty or `capacity` is zero.
    pub fn from_stream<I: IntoIterator<Item = TraceRecord>>(records: I, capacity: u64) -> Self {
        assert!(capacity > 0);

        // Locality over 100 equal buckets.
        let buckets = 100u64;
        let bucket_size = capacity.div_ceil(buckets);
        let mut mass = vec![0u64; buckets as usize];

        // Interarrival gaps: Welford for mean/cv², a 1 µs-origin
        // log-spaced histogram for the tail.
        let mut gaps = Welford::new();
        let mut gap_hist = LogHistogram::new(1e-6, 20);

        let mut requests = 0u64;
        let mut reads = 0u64;
        let mut total_sectors = 0u64;
        let mut max_sectors = 0u32;
        let mut sequential = 0u64;
        let mut first_arrival = 0.0f64;
        let mut prev: Option<TraceRecord> = None;
        for r in records.into_iter() {
            match &prev {
                Some(p) => {
                    let gap = r.arrival - p.arrival;
                    gaps.push(gap);
                    gap_hist.push(gap);
                    if r.lbn == p.lbn + u64::from(p.sectors) {
                        sequential += 1;
                    }
                }
                None => first_arrival = r.arrival,
            }
            requests += 1;
            if r.kind == IoKind::Read {
                reads += 1;
            }
            total_sectors += u64::from(r.sectors);
            max_sectors = max_sectors.max(r.sectors);
            let b = (r.lbn / bucket_size).min(buckets - 1) as usize;
            mass[b] += u64::from(r.sectors);
            prev = Some(r);
        }
        assert!(requests > 0, "empty trace");
        let duration = prev.expect("non-empty").arrival - first_arrival;

        let (cv2, rate, p99) = if requests < 2 || duration <= 0.0 {
            (0.0, 0.0, 0.0)
        } else {
            (
                gaps.sq_coeff_var(),
                (requests - 1) as f64 / duration,
                gap_hist.quantile(0.99),
            )
        };

        let mut sorted = mass.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: u64 = sorted.iter().take(10).sum();
        let touched = mass.iter().filter(|&&m| m > 0).count();

        TraceSummary {
            requests,
            duration,
            arrival_rate: rate,
            interarrival_cv2: cv2,
            interarrival_p99: p99,
            read_fraction: reads as f64 / requests as f64,
            mean_sectors: total_sectors as f64 / requests as f64,
            max_sectors,
            sequential_fraction: if requests > 1 {
                sequential as f64 / (requests - 1) as f64
            } else {
                0.0
            },
            top_decile_mass: if total_sectors > 0 {
                top_decile as f64 / total_sectors as f64
            } else {
                0.0
            },
            footprint: touched as f64 / buckets as f64,
        }
    }

    /// Renders the summary as an aligned report.
    pub fn render(&self) -> String {
        format!(
            "requests            {}\n\
             duration            {:.1} s\n\
             arrival rate        {:.1} req/s\n\
             interarrival cv^2   {:.2}\n\
             interarrival p99    {:.1} ms\n\
             read fraction       {:.1}%\n\
             mean request size   {:.1} sectors ({:.1} KB)\n\
             max request size    {} sectors\n\
             sequential fraction {:.1}%\n\
             top-decile mass     {:.1}%\n\
             footprint           {:.1}% of device",
            self.requests,
            self.duration,
            self.arrival_rate,
            self.interarrival_cv2,
            self.interarrival_p99 * 1e3,
            self.read_fraction * 100.0,
            self.mean_sectors,
            self.mean_sectors / 2.0,
            self.max_sectors,
            self.sequential_fraction * 100.0,
            self.top_decile_mass * 100.0,
            self.footprint * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cello::{generate_cello, CelloParams, CelloWorkload};
    use crate::tpcc::{generate_tpcc, TpccParams};

    fn uniform_trace(n: u64, capacity: u64) -> Vec<TraceRecord> {
        let mut lbn = 13u64;
        (0..n)
            .map(|i| {
                lbn = (lbn.wrapping_mul(6364136223846793005).wrapping_add(11)) % (capacity - 8);
                TraceRecord {
                    arrival: i as f64 * 0.01,
                    lbn,
                    sectors: 8,
                    kind: IoKind::Read,
                }
            })
            .collect()
    }

    #[test]
    fn uniform_trace_summary_is_uniform() {
        let t = uniform_trace(20_000, 1_000_000);
        let s = TraceSummary::compute(&t, 1_000_000);
        assert_eq!(s.requests, 20_000);
        assert!((s.arrival_rate - 100.0).abs() < 1.0);
        assert!(s.interarrival_cv2 < 0.01, "constant arrivals");
        assert_eq!(s.read_fraction, 1.0);
        assert!((s.mean_sectors - 8.0).abs() < 1e-9);
        // Uniform: busiest 10% of buckets hold ≈10-13% of mass.
        assert!(s.top_decile_mass < 0.15, "mass {}", s.top_decile_mass);
        assert!(s.footprint > 0.99);
        // Constant 10 ms gaps: the p99 estimate sits within one bin.
        assert!((9e-3..11.5e-3).contains(&s.interarrival_p99));
    }

    #[test]
    fn cello_like_summary_matches_published_characteristics() {
        let p = CelloParams::default();
        let t = generate_cello(&p, 3);
        let s = TraceSummary::compute(&t, p.capacity);
        assert!(
            s.interarrival_cv2 > 2.0,
            "bursty: cv2 {}",
            s.interarrival_cv2
        );
        assert!((0.40..0.50).contains(&s.read_fraction), "write-majority");
        assert!(s.sequential_fraction > 0.1, "sequential runs exist");
        assert!(s.top_decile_mass > 0.4, "hot regions dominate");
        // Bursty arrivals: the p99 gap dwarfs the mean gap.
        assert!(s.interarrival_p99 > 3.0 / s.arrival_rate);
    }

    #[test]
    fn tpcc_like_summary_matches_published_characteristics() {
        let p = TpccParams::default();
        let t = generate_tpcc(&p, 3);
        let s = TraceSummary::compute(&t, p.capacity);
        assert!(
            (15.0..17.0).contains(&s.mean_sectors),
            "8 KB pages dominate"
        );
        assert!(s.top_decile_mass > 0.5, "hot tables dominate");
        assert!(s.footprint < 0.5, "database confined to part of the device");
    }

    #[test]
    fn streamed_summary_equals_slice_summary() {
        // One pass over the generator stream, no Vec<TraceRecord> — must
        // equal the slice path field for field (same single-pass core).
        let p = CelloParams::default();
        let streamed = TraceSummary::from_stream(CelloWorkload::new(&p, 5), p.capacity);
        let sliced = TraceSummary::compute(&generate_cello(&p, 5), p.capacity);
        assert_eq!(streamed, sliced);
    }

    #[test]
    fn render_contains_key_lines() {
        let t = uniform_trace(100, 10_000);
        let text = TraceSummary::compute(&t, 10_000).render();
        assert!(text.contains("arrival rate"));
        assert!(text.contains("interarrival p99"));
        assert!(text.contains("sequential fraction"));
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_rejected() {
        let _ = TraceSummary::compute(&[], 100);
    }
}
