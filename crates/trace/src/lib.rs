//! Workload generators and trace replay for the memsstore experiments.
//!
//! Provides the three workloads of the paper's evaluation:
//!
//! * [`RandomWorkload`] — the §3 *random* workload: Poisson arrivals, 67%
//!   reads, exponential 4 KB sizes, uniform locations;
//! * [`generate_cello`] — a Cello-like bursty file-server trace (the
//!   1992 HP trace is not redistributable; see the crate docs of
//!   [`cello`] for the substitution rationale);
//! * [`generate_tpcc`] — a TPC-C-like OLTP trace with the high
//!   concurrency and tiny inter-LBN distances §4.3 credits for SPTF's
//!   outsized win.
//!
//! Plus a plain-text trace format ([`TraceRecord`], [`parse_trace`],
//! [`format_trace`]) and scaled replay ([`TraceWorkload`]) implementing
//! the paper's arrival-rate scaling methodology, and two skewed
//! workloads for the adaptive-placement experiments: [`ZipfWorkload`]
//! (classical Zipf(0.99) block popularity, spatially scattered) and
//! [`ShiftingHotspotWorkload`] (a contiguous hot span that relocates
//! every epoch).
//!
//! Every generator is a **constant-memory stream**: the trace types
//! ([`CelloWorkload`], [`TpccWorkload`], [`StreamingWorkload`]) are
//! `Iterator<Item = TraceRecord>`s and `Workload`s at once, the
//! `generate_*` functions are thin `collect()` wrappers over them, and
//! [`Replay`] applies §4.3 arrival-rate scaling to any record stream
//! without materializing it. [`RampWorkload`] adds the open-loop
//! arrival-rate ramp used by the overload experiments.

#![warn(missing_docs)]

pub mod cello;
pub mod ramp;
pub mod random;
pub mod record;
pub mod streaming;
pub mod summary;
pub mod tpcc;
pub mod zipf;

pub use cello::{cello_for_capacity, generate_cello, CelloParams, CelloWorkload};
pub use ramp::RampWorkload;
pub use random::RandomWorkload;
pub use record::{format_trace, parse_trace, Replay, TraceRecord, TraceWorkload};
pub use streaming::{generate_streaming, StreamingParams, StreamingWorkload};
pub use summary::TraceSummary;
pub use tpcc::{generate_tpcc, tpcc_for_capacity, TpccParams, TpccWorkload};
pub use zipf::{ShiftingHotspotWorkload, ZipfWorkload, FRAGMENTS};
