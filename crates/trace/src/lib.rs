//! Workload generators and trace replay for the memsstore experiments.
//!
//! Provides the three workloads of the paper's evaluation:
//!
//! * [`RandomWorkload`] — the §3 *random* workload: Poisson arrivals, 67%
//!   reads, exponential 4 KB sizes, uniform locations;
//! * [`generate_cello`] — a Cello-like bursty file-server trace (the
//!   1992 HP trace is not redistributable; see the crate docs of
//!   [`cello`] for the substitution rationale);
//! * [`generate_tpcc`] — a TPC-C-like OLTP trace with the high
//!   concurrency and tiny inter-LBN distances §4.3 credits for SPTF's
//!   outsized win.
//!
//! Plus a plain-text trace format ([`TraceRecord`], [`parse_trace`],
//! [`format_trace`]) and scaled replay ([`TraceWorkload`]) implementing
//! the paper's arrival-rate scaling methodology, and two skewed
//! workloads for the adaptive-placement experiments: [`ZipfWorkload`]
//! (classical Zipf(0.99) block popularity, spatially scattered) and
//! [`ShiftingHotspotWorkload`] (a contiguous hot span that relocates
//! every epoch).

#![warn(missing_docs)]

pub mod cello;
pub mod random;
pub mod record;
pub mod streaming;
pub mod summary;
pub mod tpcc;
pub mod zipf;

pub use cello::{cello_for_capacity, generate_cello, CelloParams};
pub use random::RandomWorkload;
pub use record::{format_trace, parse_trace, TraceRecord, TraceWorkload};
pub use streaming::{generate_streaming, StreamingParams};
pub use summary::TraceSummary;
pub use tpcc::{generate_tpcc, tpcc_for_capacity, TpccParams};
pub use zipf::{ShiftingHotspotWorkload, ZipfWorkload, FRAGMENTS};
