//! Skewed synthetic workloads for placement experiments.
//!
//! Two generators exercise the adaptive-placement layer:
//!
//! * [`ZipfWorkload`] — classical Zipf-distributed block popularity
//!   (rank `k` drawn with probability `∝ 1/k^theta`, the database/
//!   key-value standard at `theta = 0.99`), with ranks scattered over
//!   the device by a seeded permutation so popularity is *spatially
//!   uncorrelated* — the worst case for static layouts built without a
//!   frequency census.
//! * [`ShiftingHotspotWorkload`] — a contiguous hot span absorbing most
//!   accesses that relocates every epoch, modeling working sets that
//!   drift (new table, new tenant, log rollover). Static placement can
//!   only be right for one epoch; an adaptive policy can chase the
//!   hotspot.
//!
//! Both share the §3 random-workload envelope: Poisson arrivals, 67%
//! reads, exponential 4 KB sizes. Either can be switched to an ON/OFF
//! bursty arrival process ([`ZipfWorkload::bursty`],
//! [`ShiftingHotspotWorkload::bursty`]) that preserves the long-run
//! rate while opening real idle periods between bursts — the regime
//! idle-window migration policies are designed for (pure Poisson gaps
//! are memoryless, so an idle detector can never predict a long gap).

use rand::rngs::SmallRng;
use storage_sim::rng;
use storage_sim::{IoKind, Request, SimTime, Workload};

/// Draws kind and size with the §3 envelope (67% reads, exponential
/// 4 KB sizes capped at 16× the mean). Shared with the ramp generator so
/// overload cells differ from the steady-state cells only in arrival rate.
pub(crate) fn kind_and_sectors(rng: &mut SmallRng) -> (IoKind, u32) {
    let kind = if rng::bernoulli(rng, 0.67) {
        IoKind::Read
    } else {
        IoKind::Write
    };
    let sectors = (rng::exponential(rng, 8.0).ceil() as u32).clamp(1, 128);
    (kind, sectors)
}

/// Arrival clock shared by the skewed generators: pure Poisson at the
/// requested rate by default, or ON/OFF bursts of `burst_len` requests
/// separated by exponential idle gaps. Bursty mode keeps the long-run
/// rate by compressing the intra-burst interarrival so one mean cycle
/// (burst + idle gap) spans the same time `burst_len` Poisson arrivals
/// would.
#[derive(Debug)]
struct ArrivalClock {
    mean_interarrival: f64,
    /// Requests per burst; 0 selects pure Poisson arrivals.
    burst_len: u64,
    /// Mean intra-burst interarrival, seconds (ON period).
    on_interarrival: f64,
    /// Mean idle gap between bursts, seconds (OFF period).
    idle_mean: f64,
    emitted: u64,
    clock: f64,
}

impl ArrivalClock {
    fn poisson(rate: f64) -> Self {
        assert!(rate > 0.0, "arrival rate must be positive");
        ArrivalClock {
            mean_interarrival: 1.0 / rate,
            burst_len: 0,
            on_interarrival: 0.0,
            idle_mean: 0.0,
            emitted: 0,
            clock: 0.0,
        }
    }

    fn make_bursty(&mut self, burst_len: u64, idle_mean: f64) {
        assert!(burst_len > 0, "burst length must be positive");
        assert!(idle_mean > 0.0, "idle gap must be positive");
        let cycle = burst_len as f64 * self.mean_interarrival;
        assert!(
            idle_mean < cycle,
            "idle gap {idle_mean}s must leave ON time in the {cycle}s cycle"
        );
        self.burst_len = burst_len;
        self.idle_mean = idle_mean;
        self.on_interarrival = (cycle - idle_mean) / burst_len as f64;
    }

    /// Advances past the next arrival and returns its time.
    fn advance(&mut self, rng: &mut SmallRng) -> f64 {
        let mean = if self.burst_len == 0 {
            self.mean_interarrival
        } else if self.emitted > 0 && self.emitted.is_multiple_of(self.burst_len) {
            // Burst boundary: the idle gap opens the next burst.
            self.idle_mean
        } else {
            self.on_interarrival
        };
        self.emitted += 1;
        self.clock += rng::exponential(rng, mean);
        self.clock
    }
}

/// Classical Zipf block-popularity workload.
///
/// The device is carved into `block_sectors`-sized blocks; block
/// popularity follows Zipf(`theta`) over a seeded random rank→block
/// permutation; the accessed sector offset is uniform within the block.
///
/// # Examples
///
/// ```
/// use storage_trace::ZipfWorkload;
/// use storage_sim::Workload;
///
/// let mut w = ZipfWorkload::new(6_750_000, 512, 0.99, 500.0, 1000, 42);
/// let first = w.next_request().unwrap();
/// assert!(first.sectors >= 1);
/// ```
#[derive(Debug)]
pub struct ZipfWorkload {
    /// Cumulative Zipf distribution over ranks; `cdf[k]` = P(rank ≤ k).
    cdf: Vec<f64>,
    /// Rank → block permutation (scatters popularity over the device).
    block_of_rank: Vec<u32>,
    block_sectors: u32,
    capacity: u64,
    arrivals: ArrivalClock,
    remaining: u64,
    next_id: u64,
    rng: SmallRng,
}

impl ZipfWorkload {
    /// Creates the workload: `theta` is the Zipf exponent (0.99 is the
    /// customary strong skew), `rate` the Poisson arrival rate in
    /// requests per second.
    ///
    /// # Panics
    ///
    /// Panics if `block_sectors` is zero, the device holds no whole
    /// block, `theta` is not positive, or `rate` is not positive.
    pub fn new(
        capacity: u64,
        block_sectors: u32,
        theta: f64,
        rate: f64,
        requests: u64,
        seed: u64,
    ) -> Self {
        assert!(block_sectors > 0, "block size must be positive");
        assert!(theta > 0.0, "Zipf exponent must be positive");
        let n_blocks =
            usize::try_from(capacity / u64::from(block_sectors)).expect("block count fits usize");
        assert!(n_blocks > 0, "device smaller than one block");
        // Harmonic CDF: P(rank = k) ∝ 1/(k+1)^theta.
        let mut cdf = Vec::with_capacity(n_blocks);
        let mut acc = 0.0;
        for k in 0..n_blocks {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let norm = acc;
        for c in &mut cdf {
            *c /= norm;
        }
        let mut rng = rng::seeded(seed);
        // Seeded Fisher–Yates: rank k lives at a uniform random block.
        let mut block_of_rank: Vec<u32> = (0..n_blocks as u32).collect();
        for i in (1..n_blocks).rev() {
            let j = rng::uniform_u64(&mut rng, i as u64 + 1) as usize;
            block_of_rank.swap(i, j);
        }
        ZipfWorkload {
            cdf,
            block_of_rank,
            block_sectors,
            capacity,
            arrivals: ArrivalClock::poisson(rate),
            remaining: requests,
            next_id: 0,
            rng,
        }
    }

    /// Switches arrivals to ON/OFF bursts of `burst_len` requests with
    /// exponential idle gaps of mean `idle_mean` seconds between them,
    /// preserving the long-run rate.
    ///
    /// # Panics
    ///
    /// Panics if `burst_len` is zero or `idle_mean` does not leave ON
    /// time in the mean cycle (`idle_mean ≥ burst_len / rate`).
    pub fn bursty(mut self, burst_len: u64, idle_mean: f64) -> Self {
        self.arrivals.make_bursty(burst_len, idle_mean);
        self
    }
}

impl Workload for ZipfWorkload {
    fn next_request(&mut self) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let clock = self.arrivals.advance(&mut self.rng);
        let (kind, sectors) = kind_and_sectors(&mut self.rng);
        // Inverse-CDF sample: binary search the harmonic CDF.
        let u = rng::uniform_u64(&mut self.rng, u64::MAX) as f64 / u64::MAX as f64;
        let rank = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
        let block = u64::from(self.block_of_rank[rank]);
        let bs = u64::from(self.block_sectors);
        let offset = rng::uniform_u64(&mut self.rng, bs);
        let lbn = (block * bs + offset).min(self.capacity - u64::from(sectors));
        let req = Request::new(self.next_id, SimTime::from_secs(clock), lbn, sectors, kind);
        self.next_id += 1;
        Some(req)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.remaining)
    }
}

/// A drifting working set: `hot_sectors` of hot data, scattered across
/// the device as [`FRAGMENTS`] equal extents (think files or tables
/// spread by the allocator), absorb most accesses — and the whole set
/// relocates every `epoch_secs`.
///
/// The scatter is the point: hot-to-hot transitions seek between
/// far-apart fragments on a native layout, so a placement layer that
/// gathers the *live* working set at the device center wins on the
/// bulk of the traffic. A static frequency-census layout can only
/// gather the union of every epoch's fragments, which is
/// epochs-times larger than the live set.
///
/// Fragment positions are drawn per `(epoch, fragment)` from the seed
/// alone, so replaying the workload is deterministic and two instances
/// with the same seed shift identically.
///
/// # Examples
///
/// ```
/// use storage_trace::ShiftingHotspotWorkload;
/// use storage_sim::Workload;
///
/// let mut w = ShiftingHotspotWorkload::new(6_750_000, 67_500, 30.0, 0.9, 500.0, 1000, 42);
/// let first = w.next_request().unwrap();
/// assert!(first.sectors >= 1);
/// ```
#[derive(Debug)]
pub struct ShiftingHotspotWorkload {
    capacity: u64,
    epoch_secs: f64,
    hot_fraction: f64,
    arrivals: ArrivalClock,
    remaining: u64,
    next_id: u64,
    rng: SmallRng,
    /// Seed for the per-epoch fragment-position stream.
    epoch_seed: u64,
    current_epoch: u64,
    /// Sectors per fragment (`hot_sectors / FRAGMENTS`).
    frag_len: u64,
    /// Start sector of each fragment in the current epoch.
    hot_starts: Vec<u64>,
}

/// Fragments the hot working set is scattered into.
pub const FRAGMENTS: usize = 64;

impl ShiftingHotspotWorkload {
    /// Creates the workload: `hot_sectors` is the total working-set
    /// size (scattered as [`FRAGMENTS`] equal extents), `epoch_secs`
    /// how long the set stays hot before relocating, and `hot_fraction`
    /// the probability an access lands in the set (fragment uniform,
    /// offset uniform inside it; the remainder is uniform over the
    /// whole device).
    ///
    /// # Panics
    ///
    /// Panics if the hot span is smaller than one sector per fragment
    /// or does not fit the device, the epoch is not positive,
    /// `hot_fraction` is outside `[0, 1]`, or `rate` is not positive.
    pub fn new(
        capacity: u64,
        hot_sectors: u64,
        epoch_secs: f64,
        hot_fraction: f64,
        rate: f64,
        requests: u64,
        seed: u64,
    ) -> Self {
        assert!(
            hot_sectors >= FRAGMENTS as u64 && hot_sectors < capacity,
            "hot span must fit the device and hold one sector per fragment"
        );
        assert!(epoch_secs > 0.0, "epoch must be positive");
        assert!((0.0..=1.0).contains(&hot_fraction), "fraction in [0, 1]");
        let mut w = ShiftingHotspotWorkload {
            capacity,
            epoch_secs,
            hot_fraction,
            arrivals: ArrivalClock::poisson(rate),
            remaining: requests,
            next_id: 0,
            rng: rng::seeded(seed),
            epoch_seed: seed ^ 0x9e37_79b9_7f4a_7c15,
            current_epoch: u64::MAX,
            frag_len: hot_sectors / FRAGMENTS as u64,
            hot_starts: Vec::new(),
        };
        w.enter_epoch(0);
        w
    }

    /// Switches arrivals to ON/OFF bursts of `burst_len` requests with
    /// exponential idle gaps of mean `idle_mean` seconds between them,
    /// preserving the long-run rate.
    ///
    /// # Panics
    ///
    /// Panics if `burst_len` is zero or `idle_mean` does not leave ON
    /// time in the mean cycle (`idle_mean ≥ burst_len / rate`).
    pub fn bursty(mut self, burst_len: u64, idle_mean: f64) -> Self {
        self.arrivals.make_bursty(burst_len, idle_mean);
        self
    }

    /// The fragment layout active during `epoch`, derived from the seed
    /// alone: `(start, len)` per fragment.
    pub fn fragments_of_epoch(&self, epoch: u64) -> Vec<(u64, u64)> {
        (0..FRAGMENTS as u64)
            .map(|f| {
                // One-shot seeded draw keyed by (epoch, fragment):
                // deterministic regardless of how many requests earlier
                // epochs produced.
                let key = self
                    .epoch_seed
                    .wrapping_add(epoch.wrapping_mul(0xa076_1d64_78bd_642f))
                    .wrapping_add(f.wrapping_mul(0x2545_f491_4f6c_dd1d));
                let mut r = rng::seeded(key);
                let start = rng::uniform_u64(&mut r, self.capacity - self.frag_len);
                (start, self.frag_len)
            })
            .collect()
    }

    fn enter_epoch(&mut self, epoch: u64) {
        self.current_epoch = epoch;
        self.hot_starts = self
            .fragments_of_epoch(epoch)
            .into_iter()
            .map(|(s, _)| s)
            .collect();
    }
}

impl Workload for ShiftingHotspotWorkload {
    fn next_request(&mut self) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let clock = self.arrivals.advance(&mut self.rng);
        let epoch = (clock / self.epoch_secs) as u64;
        if epoch != self.current_epoch {
            self.enter_epoch(epoch);
        }
        let (kind, sectors) = kind_and_sectors(&mut self.rng);
        let lbn = if rng::bernoulli(&mut self.rng, self.hot_fraction) {
            let f = rng::uniform_u64(&mut self.rng, FRAGMENTS as u64) as usize;
            self.hot_starts[f] + rng::uniform_u64(&mut self.rng, self.frag_len)
        } else {
            rng::uniform_u64(&mut self.rng, self.capacity)
        }
        .min(self.capacity - u64::from(sectors));
        let req = Request::new(self.next_id, SimTime::from_secs(clock), lbn, sectors, kind);
        self.next_id += 1;
        Some(req)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<W: Workload>(mut w: W) -> Vec<Request> {
        std::iter::from_fn(move || w.next_request()).collect()
    }

    #[test]
    fn zipf_is_deterministic_and_in_bounds() {
        let a = drain(ZipfWorkload::new(1_000_000, 512, 0.99, 100.0, 500, 7));
        let b = drain(ZipfWorkload::new(1_000_000, 512, 0.99, 100.0, 500, 7));
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert!(a.iter().all(|r| r.end_lbn() <= 1_000_000));
        for pair in a.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
    }

    #[test]
    fn zipf_concentrates_mass_on_few_blocks() {
        let reqs = drain(ZipfWorkload::new(1_000_000, 512, 0.99, 100.0, 20_000, 8));
        let mut counts = std::collections::HashMap::new();
        for r in &reqs {
            *counts.entry(r.lbn / 512).or_insert(0u64) += 1;
        }
        let mut by_count: Vec<u64> = counts.values().copied().collect();
        by_count.sort_unstable_by(|a, b| b.cmp(a));
        let top20: u64 = by_count.iter().take(20).sum();
        let frac = top20 as f64 / reqs.len() as f64;
        // Zipf(0.99) over ~1953 blocks puts roughly a third of all
        // accesses on the 20 hottest blocks.
        assert!(frac > 0.25, "top-20 block mass {frac}");
        // ...but the popular blocks are scattered, not clustered: the
        // hottest block is a random permutation target, not block 0.
        let hottest = *counts
            .iter()
            .max_by_key(|&(block, &c)| (c, *block))
            .unwrap()
            .0;
        assert!(hottest < 1_000_000 / 512);
    }

    #[test]
    fn zipf_rate_and_mix_follow_the_envelope() {
        let reqs = drain(ZipfWorkload::new(1_000_000, 512, 0.99, 1000.0, 20_000, 9));
        let span = (reqs.last().unwrap().arrival - reqs[0].arrival).as_secs();
        let rate = (reqs.len() - 1) as f64 / span;
        assert!((rate - 1000.0).abs() / 1000.0 < 0.05, "rate {rate}");
        let reads = reqs.iter().filter(|r| r.kind.is_read()).count() as f64;
        assert!((reads / reqs.len() as f64 - 0.67).abs() < 0.02);
    }

    #[test]
    fn hotspot_concentrates_and_shifts() {
        let hot = 50_000u64;
        let w = ShiftingHotspotWorkload::new(1_000_000, hot, 5.0, 0.9, 1000.0, 40_000, 11);
        let frags0 = w.fragments_of_epoch(0);
        let frags1 = w.fragments_of_epoch(1);
        assert_eq!(frags0.len(), FRAGMENTS);
        assert_ne!(frags0, frags1, "the working set must move between epochs");
        let in_set =
            |frags: &[(u64, u64)], lbn: u64| frags.iter().any(|&(s, l)| lbn >= s && lbn < s + l);
        let reqs = drain(w);
        // Epoch 0 requests: ~90% inside the epoch-0 fragment set.
        let e0: Vec<_> = reqs.iter().filter(|r| r.arrival.as_secs() < 5.0).collect();
        let inside = e0.iter().filter(|r| in_set(&frags0, r.lbn)).count() as f64;
        let frac = inside / e0.len() as f64;
        assert!(frac > 0.87, "epoch-0 hot fraction {frac}");
        // The fragments scatter: they span far more of the device than
        // one contiguous run of `hot` sectors.
        let lo = frags0.iter().map(|&(s, _)| s).min().unwrap();
        let hi = frags0.iter().map(|&(s, l)| s + l).max().unwrap();
        assert!(hi - lo > 4 * hot, "fragments not scattered: {lo}..{hi}");
        // Epoch 1 requests concentrate on the *new* fragment set.
        let e1: Vec<_> = reqs
            .iter()
            .filter(|r| (5.0..10.0).contains(&r.arrival.as_secs()))
            .collect();
        assert!(!e1.is_empty());
        let inside1 = e1.iter().filter(|r| in_set(&frags1, r.lbn)).count() as f64;
        assert!(inside1 / e1.len() as f64 > 0.8);
    }

    #[test]
    fn hotspot_is_deterministic() {
        let a = drain(ShiftingHotspotWorkload::new(
            1_000_000, 10_000, 1.0, 0.9, 500.0, 1000, 3,
        ));
        let b = drain(ShiftingHotspotWorkload::new(
            1_000_000, 10_000, 1.0, 0.9, 500.0, 1000, 3,
        ));
        assert_eq!(a, b);
        assert!(a.iter().all(|r| r.end_lbn() <= 1_000_000));
    }

    #[test]
    fn bursty_mode_preserves_rate_and_opens_idle_gaps() {
        let rate = 500.0;
        let reqs = drain(
            ShiftingHotspotWorkload::new(1_000_000, 10_000, 10.0, 0.9, rate, 20_000, 13)
                .bursty(50, 0.060),
        );
        let span = (reqs.last().unwrap().arrival - reqs[0].arrival).as_secs();
        let observed = (reqs.len() - 1) as f64 / span;
        assert!(
            (observed - rate).abs() / rate < 0.1,
            "long-run rate {observed} vs {rate}"
        );
        // Real idle periods exist: roughly one ≥ 20 ms gap per burst.
        let long_gaps = reqs
            .windows(2)
            .filter(|p| (p[1].arrival - p[0].arrival).as_secs() > 0.020)
            .count();
        let bursts = reqs.len() / 50;
        assert!(
            long_gaps as f64 > 0.6 * bursts as f64,
            "{long_gaps} long gaps over {bursts} bursts"
        );
        // Determinism holds in bursty mode too.
        let again = drain(
            ShiftingHotspotWorkload::new(1_000_000, 10_000, 10.0, 0.9, rate, 20_000, 13)
                .bursty(50, 0.060),
        );
        assert_eq!(reqs, again);
    }

    #[test]
    #[should_panic(expected = "ON time")]
    fn bursty_idle_gap_must_leave_on_time() {
        // 50 requests at 500/s is a 100 ms cycle; a 100 ms idle gap
        // leaves nothing for the burst itself.
        let _ = ZipfWorkload::new(1_000_000, 512, 0.99, 500.0, 100, 1).bursty(50, 0.100);
    }

    #[test]
    #[should_panic(expected = "hot span")]
    fn oversized_hotspot_rejected() {
        let _ = ShiftingHotspotWorkload::new(1000, 1000, 1.0, 0.9, 100.0, 10, 1);
    }
}
