//! End-to-end sector striping with horizontal + vertical ECC (§6.1.2).
//!
//! A 512-byte logical sector is striped as 64 tip sectors of 8 bytes; `m`
//! additional ECC tips carry horizontal Reed–Solomon parity. Byte `j` of
//! every tip sector forms one RS codeword across the stripe, so the
//! horizontal code corrects whole-tip-sector erasures; each tip sector
//! carries the vertical check that converts unknown-position errors into
//! erasures. Together they survive the paper's §6.1.1 fault menagerie:
//! localized media defects, broken tips, and per-tip read errors.

use super::rs::ReedSolomon;
use super::vertical::TipSector;

/// Codec striping one logical sector across `64 + m` tips.
///
/// # Examples
///
/// ```
/// use mems_os::fault::StripeCodec;
///
/// let codec = StripeCodec::new(8); // 64 data + 8 ECC tips
/// let sector = [0xabu8; 512];
/// let mut stripe = codec.encode(&sector);
/// // A media defect wipes three tips; a fourth returns garbage.
/// stripe[3].data = [0; 8];
/// stripe[17].data = [0xff; 8];
/// stripe[40].data[0] ^= 0x40;
/// stripe[70].data[5] ^= 0x01;
/// assert_eq!(codec.decode(&stripe).unwrap(), sector);
/// ```
#[derive(Debug, Clone)]
pub struct StripeCodec {
    rs: ReedSolomon,
}

/// Number of data tips per logical sector (512 B / 8 B).
pub const DATA_TIPS: usize = 64;

/// Bytes each tip stores for one logical sector.
pub const TIP_BYTES: usize = 8;

impl StripeCodec {
    /// Creates a codec with `parity_tips` horizontal ECC tips.
    ///
    /// # Panics
    ///
    /// Panics if `parity_tips` is zero or the total exceeds GF(256)'s
    /// shard limit.
    pub fn new(parity_tips: usize) -> Self {
        StripeCodec {
            rs: ReedSolomon::new(DATA_TIPS, parity_tips),
        }
    }

    /// Total tips per stripe (data + parity).
    pub fn stripe_tips(&self) -> usize {
        self.rs.total_shards()
    }

    /// Parity tips per stripe.
    pub fn parity_tips(&self) -> usize {
        self.rs.parity_shards()
    }

    /// Encodes a 512-byte logical sector into `stripe_tips()` checked tip
    /// sectors.
    ///
    /// # Panics
    ///
    /// Panics if `sector` is not exactly 512 bytes.
    pub fn encode(&self, sector: &[u8; 512]) -> Vec<TipSector> {
        let n = self.stripe_tips();
        let mut tips = vec![[0u8; TIP_BYTES]; n];
        // Byte j of every tip forms one RS codeword across the stripe.
        for j in 0..TIP_BYTES {
            let data: Vec<u8> = (0..DATA_TIPS).map(|t| sector[t * TIP_BYTES + j]).collect();
            let encoded = self.rs.encode(&data);
            for (t, tip) in tips.iter_mut().enumerate() {
                tip[j] = encoded[t];
            }
        }
        tips.into_iter().map(TipSector::encode).collect()
    }

    /// Decodes a stripe back into the logical sector.
    ///
    /// Tip sectors failing their vertical check are treated as erasures
    /// and repaired by the horizontal code. Returns `None` when more tip
    /// sectors are lost than the parity can cover.
    ///
    /// # Panics
    ///
    /// Panics if `stripe.len() != stripe_tips()`.
    pub fn decode(&self, stripe: &[TipSector]) -> Option<[u8; 512]> {
        assert_eq!(stripe.len(), self.stripe_tips(), "wrong stripe width");
        let readable: Vec<Option<[u8; TIP_BYTES]>> = stripe.iter().map(TipSector::read).collect();
        let mut sector = [0u8; 512];
        for j in 0..TIP_BYTES {
            let shards: Vec<Option<u8>> = readable.iter().map(|t| t.map(|d| d[j])).collect();
            let data = self.rs.decode(&shards)?;
            for (t, &byte) in data.iter().enumerate() {
                sector[t * TIP_BYTES + j] = byte;
            }
        }
        Some(sector)
    }

    /// Counts the tip sectors of a stripe that fail their vertical check
    /// (the erasure load handed to the horizontal code).
    pub fn erasures(&self, stripe: &[TipSector]) -> usize {
        stripe.iter().filter(|t| !t.verify()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sector(seed: u8) -> [u8; 512] {
        let mut s = [0u8; 512];
        for (i, b) in s.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(31).wrapping_add(seed);
        }
        s
    }

    #[test]
    fn clean_round_trip() {
        let codec = StripeCodec::new(8);
        let s = sector(1);
        let stripe = codec.encode(&s);
        assert_eq!(stripe.len(), 72);
        assert_eq!(codec.erasures(&stripe), 0);
        assert_eq!(codec.decode(&stripe).unwrap(), s);
    }

    #[test]
    fn survives_parity_many_tip_losses() {
        let codec = StripeCodec::new(8);
        let s = sector(2);
        let mut stripe = codec.encode(&s);
        // Corrupt exactly 8 tip sectors (mix of data and parity tips).
        for &t in &[0usize, 7, 15, 31, 47, 63, 65, 71] {
            stripe[t].data = [0xde; 8];
        }
        assert_eq!(codec.erasures(&stripe), 8);
        assert_eq!(codec.decode(&stripe).unwrap(), s);
    }

    #[test]
    fn one_loss_too_many_fails_cleanly() {
        let codec = StripeCodec::new(4);
        let s = sector(3);
        let mut stripe = codec.encode(&s);
        for tip in stripe.iter_mut().take(5) {
            tip.data = [0; 8];
        }
        assert_eq!(codec.decode(&stripe), None);
    }

    #[test]
    fn single_bit_error_in_one_tip_is_healed() {
        let codec = StripeCodec::new(2);
        let s = sector(4);
        let mut stripe = codec.encode(&s);
        stripe[20].data[3] ^= 0x08;
        assert_eq!(codec.decode(&stripe).unwrap(), s);
    }

    #[test]
    fn stripe_width_matches_paper_example() {
        // §6.1.2: "each 512 B sector is striped across 64 tips"; with 8
        // ECC tips the stripe needs 72 of the 1280 concurrently active
        // tips per sector slot.
        let codec = StripeCodec::new(8);
        assert_eq!(codec.stripe_tips(), 72);
        assert_eq!(codec.parity_tips(), 8);
    }
}
