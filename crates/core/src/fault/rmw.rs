//! Read-modify-write timing and the RAID-5 small-write engine (§6.2).
//!
//! Returning to a just-accessed sector costs a disk most of a platter
//! revolution (the platter spins on regardless), but costs a MEMS device
//! only a sled turnaround — Table 2's 19× gap for 4 KB transfers. That
//! gap is what makes code-based redundancy (RAID-5's
//! read-old/read-parity/write-new/write-parity cycle) so much cheaper on
//! MEMS arrays, obviating the parity-logging style optimizations the
//! paper cites [MC93, SGH93, Men95].

use storage_sim::{IoKind, Request, SimTime, StorageDevice};

/// Timing breakdown of one read-modify-write cycle, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmwBreakdown {
    /// Reading the old data (including initial positioning).
    pub read: f64,
    /// Repositioning back to the start of the same sectors.
    pub reposition: f64,
    /// Writing the new data.
    pub write: f64,
}

impl RmwBreakdown {
    /// Total cycle time.
    pub fn total(&self) -> f64 {
        self.read + self.reposition + self.write
    }
}

/// Measures a read-modify-write cycle of `sectors` sectors at `lbn` on
/// any device, starting from the device's current state at time zero with
/// the initial positioning excluded from the read figure (Table 2 reports
/// the in-place cycle).
///
/// The turnaround cost depends on where the sectors sit in the sled's
/// travel (Table 2's caption: 0.036–1.11 ms depending on position and
/// spring factor), so mid-device sectors reproduce the table's headline
/// numbers while edge rows pay more.
///
/// # Examples
///
/// ```
/// use mems_device::{MemsDevice, MemsParams};
/// use mems_os::fault::read_modify_write;
///
/// let mut dev = MemsDevice::new(MemsParams::default());
/// // A 4 KB RMW on a mid-sled row of a center cylinder.
/// let lbn = ((1250 * 5 * 27) + 13) * 20;
/// let rmw = read_modify_write(&mut dev, lbn, 8);
/// // Table 2: ≈0.13 read + ≈0.07 reposition + ≈0.13 write ≈ 0.33 ms.
/// assert!(rmw.total() < 0.45e-3);
/// ```
pub fn read_modify_write<D: StorageDevice>(device: &mut D, lbn: u64, sectors: u32) -> RmwBreakdown {
    // The read: its initial positioning is excluded, matching Table 2,
    // which reports the in-place cycle (read / reposition / write).
    let read_req = Request::new(0, SimTime::ZERO, lbn, sectors, IoKind::Read);
    let read = device.service(&read_req, SimTime::ZERO);
    let t1 = SimTime::from_secs(read.total());

    let write_req = Request::new(1, t1, lbn, sectors, IoKind::Write);
    let write = device.service(&write_req, t1);

    RmwBreakdown {
        read: read.transfer,
        reposition: write.positioning,
        write: write.transfer,
    }
}

/// A RAID-5 array of identical devices with block-interleaved parity.
///
/// The array exposes the §6.2 small-write cost: a partial-stripe write
/// performs a read-modify-write on the data device and another on the
/// parity device; the two proceed in parallel, so the array's small-write
/// time is their maximum.
#[derive(Debug)]
pub struct Raid5Array<D> {
    devices: Vec<D>,
    stripe_unit: u32,
}

impl<D: StorageDevice> Raid5Array<D> {
    /// Creates an array over `devices` with `stripe_unit` sectors per
    /// strip.
    ///
    /// # Panics
    ///
    /// Panics with fewer than three devices (RAID-5 needs data + data +
    /// parity) or a zero stripe unit.
    pub fn new(devices: Vec<D>, stripe_unit: u32) -> Self {
        assert!(devices.len() >= 3, "RAID-5 needs at least three devices");
        assert!(stripe_unit > 0);
        Raid5Array {
            devices,
            stripe_unit,
        }
    }

    /// Number of member devices.
    pub fn width(&self) -> usize {
        self.devices.len()
    }

    /// Maps an array-logical strip number to (data device, parity device,
    /// device-local LBN) with left-symmetric parity rotation.
    pub fn locate(&self, strip: u64) -> (usize, usize, u64) {
        let n = self.devices.len() as u64;
        let stripe = strip / (n - 1);
        let within = strip % (n - 1);
        let parity = (n - 1 - (stripe % n)) as usize;
        let mut data = within as usize;
        if data >= parity {
            data += 1;
        }
        let lbn = stripe * u64::from(self.stripe_unit);
        (data, parity, lbn)
    }

    /// Time of a small (partial-strip) write of `sectors` sectors within
    /// strip `strip`: parallel read-modify-write cycles on the data and
    /// parity devices.
    ///
    /// # Panics
    ///
    /// Panics if `sectors` exceeds the stripe unit.
    pub fn small_write_time(&mut self, strip: u64, sectors: u32) -> f64 {
        assert!(sectors <= self.stripe_unit, "not a small write");
        let (data, parity, lbn) = self.locate(strip);
        let d = read_modify_write(&mut self.devices[data], lbn, sectors);
        let p = read_modify_write(&mut self.devices[parity], lbn, sectors);
        d.total().max(p.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_disk::{DiskDevice, DiskParams};
    use mems_device::{MemsDevice, MemsParams};

    /// Mid-sled 4 KB location: cylinder 1250, track 0, row 13, slot 0.
    const CENTER_4K: u64 = ((1250 * 5 * 27) + 13) * 20;
    /// Mid-sled track-length location: row 5, so 17 rows fit in the track.
    const CENTER_TRACK: u64 = ((1250 * 5 * 27) + 5) * 20;

    #[test]
    fn mems_rmw_4kb_matches_table_2() {
        let mut dev = MemsDevice::new(MemsParams::default());
        let rmw = read_modify_write(&mut dev, CENTER_4K, 8);
        // Table 2 MEMS column: 0.13 / 0.07 / 0.13, total 0.33 ms.
        assert!((rmw.read - 0.13e-3).abs() < 0.01e-3, "read {}", rmw.read);
        assert!(
            (rmw.reposition - 0.07e-3).abs() < 0.02e-3,
            "reposition {}",
            rmw.reposition
        );
        assert!((rmw.write - 0.13e-3).abs() < 0.01e-3);
        assert!(
            (rmw.total() - 0.33e-3).abs() < 0.04e-3,
            "total {}",
            rmw.total()
        );
    }

    #[test]
    fn mems_rmw_track_length_matches_table_2() {
        let mut dev = MemsDevice::new(MemsParams::default());
        let rmw = read_modify_write(&mut dev, CENTER_TRACK, 334);
        // Table 2: 2.19 / 0.07 / 2.19, total 4.45 ms.
        assert!((rmw.read - 2.19e-3).abs() < 0.03e-3, "read {}", rmw.read);
        assert!(
            (rmw.total() - 4.45e-3).abs() < 0.1e-3,
            "total {}",
            rmw.total()
        );
    }

    #[test]
    fn disk_rmw_4kb_costs_a_rotation() {
        let mut dev = DiskDevice::new(DiskParams::quantum_atlas_10k());
        let rmw = read_modify_write(&mut dev, 0, 8);
        // Table 2 Atlas column: 0.14 / 5.98 / 0.14, total ≈6.26 ms.
        assert!((rmw.read - 0.14e-3).abs() < 0.01e-3, "read {}", rmw.read);
        assert!(
            rmw.reposition > 5.0e-3,
            "reposition {} must be most of a revolution",
            rmw.reposition
        );
        assert!(
            (5.5e-3..7.0e-3).contains(&rmw.total()),
            "total {}",
            rmw.total()
        );
    }

    #[test]
    fn mems_beats_disk_by_an_order_of_magnitude_at_4kb() {
        let mut mems = MemsDevice::new(MemsParams::default());
        let mut disk = DiskDevice::new(DiskParams::quantum_atlas_10k());
        let m = read_modify_write(&mut mems, CENTER_4K, 8).total();
        let d = read_modify_write(&mut disk, 0, 8).total();
        assert!(d / m > 10.0, "ratio {} should be ≈19x (Table 2)", d / m);
    }

    #[test]
    fn raid5_parity_rotates_and_avoids_data_device() {
        let devices: Vec<MemsDevice> = (0..5)
            .map(|_| MemsDevice::new(MemsParams::default()))
            .collect();
        let array = Raid5Array::new(devices, 8);
        let mut parities = std::collections::HashSet::new();
        for strip in 0..40 {
            let (data, parity, _) = array.locate(strip);
            assert_ne!(data, parity, "strip {strip}");
            assert!(data < 5 && parity < 5);
            parities.insert(parity);
        }
        assert_eq!(parities.len(), 5, "parity must rotate over all devices");
    }

    #[test]
    fn raid5_small_write_on_mems_is_sub_millisecond() {
        let devices: Vec<MemsDevice> = (0..4)
            .map(|_| MemsDevice::new(MemsParams::default()))
            .collect();
        let mut array = Raid5Array::new(devices, 8);
        let t = array.small_write_time(3, 8);
        assert!(t < 1.0e-3, "MEMS RAID-5 small write {t}");
    }

    #[test]
    #[should_panic(expected = "three devices")]
    fn tiny_array_rejected() {
        let devices: Vec<MemsDevice> = (0..2)
            .map(|_| MemsDevice::new(MemsParams::default()))
            .collect();
        let _ = Raid5Array::new(devices, 8);
    }
}
