//! Seek-error penalty models (§6.1.3).
//!
//! A disk that mis-seeks pays a short re-seek (1–2 ms) plus up to a full
//! rotation before the sector comes back under the head. A MEMS device
//! verifies servo information at every involved tip and recovers with at
//! most two Y turnarounds plus short X/Y re-seeks — orders of magnitude
//! cheaper.

use atlas_disk::DiskParams;
use mems_device::{MemsParams, SpringSled};
use rand::rngs::SmallRng;
use storage_sim::rng;

/// Seek-error penalty statistics, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeekErrorPenalty {
    /// Best-case recovery time.
    pub min: f64,
    /// Average recovery time.
    pub mean: f64,
    /// Worst-case recovery time.
    pub max: f64,
}

/// Disk seek-error penalty: a short re-seek plus rotational re-latency.
///
/// The re-seek costs `reseek` (1–2 ms for short re-seeks); the rotational
/// penalty ranges from zero to a full revolution, averaging half.
///
/// # Examples
///
/// ```
/// use atlas_disk::DiskParams;
/// use mems_os::fault::disk_seek_error_penalty;
///
/// let p = disk_seek_error_penalty(&DiskParams::quantum_atlas_10k(), 1.5e-3);
/// // Up to ~1.5 ms re-seek + ~6 ms rotation (§6.1.3).
/// assert!(p.max > 7e-3);
/// ```
pub fn disk_seek_error_penalty(params: &DiskParams, reseek: f64) -> SeekErrorPenalty {
    let rev = params.revolution_time();
    SeekErrorPenalty {
        min: reseek,
        mean: reseek + rev / 2.0,
        max: reseek + rev,
    }
}

/// MEMS seek-error penalty: up to two turnarounds in Y plus short
/// re-seeks in X and Y (§6.1.3).
///
/// Turnaround times are sampled over the sled's travel at access
/// velocity; the short re-seek is a one-cylinder X seek plus settle.
pub fn mems_seek_error_penalty(params: &MemsParams) -> SeekErrorPenalty {
    let sled =
        SpringSled::from_spring_factor(params.accel, params.spring_factor, params.half_mobility());
    let v = params.access_velocity();
    let samples = 101;
    let mut min = f64::INFINITY;
    let mut max: f64 = 0.0;
    let mut sum = 0.0;
    for i in 0..samples {
        let frac = i as f64 / (samples - 1) as f64;
        let p = (frac - 0.5) * params.mobility * 0.98;
        for dir in [v, -v] {
            let t = sled.turnaround_time(p, dir);
            min = min.min(t);
            max = max.max(t);
            sum += t;
        }
    }
    let mean_turn = sum / (2 * samples) as f64;
    let reseek = sled.rest_seek_time(0.0, params.bit_width) + params.settle_time();
    SeekErrorPenalty {
        // Best case: one spring-assisted turnaround, no X movement.
        min,
        // Average: between one and two turnarounds plus the short re-seek.
        mean: 1.5 * mean_turn + reseek,
        // Worst case: two slow turnarounds plus the short re-seek.
        max: 2.0 * max + reseek,
    }
}

/// Bounded-exponential-backoff retry policy for transient seek errors.
///
/// Attempt `i` (1-based) pays the device's per-attempt recovery penalty
/// plus a backoff of `base_backoff · multiplier^(i-1)`, capped at
/// `max_backoff`; after `max_retries` failed attempts the error is
/// surfaced as unrecoverable rather than silently swallowed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum number of retry attempts before giving up.
    pub max_retries: u32,
    /// Backoff before the first retry, seconds.
    pub base_backoff: f64,
    /// Geometric growth factor per subsequent retry.
    pub multiplier: f64,
    /// Upper bound on any single backoff, seconds.
    pub max_backoff: f64,
}

impl Default for RetryPolicy {
    /// Four attempts, 50 µs initial backoff doubling to at most 1 ms —
    /// sized so a typical recovery costs well under one revolution-scale
    /// penalty even on the disk model.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff: 50e-6,
            multiplier: 2.0,
            max_backoff: 1e-3,
        }
    }
}

impl RetryPolicy {
    /// Backoff delay before 1-based retry `attempt`, seconds.
    pub fn backoff(&self, attempt: u32) -> f64 {
        debug_assert!(attempt >= 1);
        let raw = self.base_backoff * self.multiplier.powi(attempt as i32 - 1);
        raw.min(self.max_backoff)
    }
}

/// The result of driving a transient seek error through a [`RetryPolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetryOutcome {
    /// A retry succeeded; `delay` is the total recovery time billed.
    Recovered {
        /// Attempts made, including the successful one.
        attempts: u32,
        /// Total penalty + backoff time spent, seconds.
        delay: f64,
    },
    /// All retries failed; the error must surface to the fault layer
    /// (reconstruction or reported loss), never as silent success.
    Exhausted {
        /// Attempts made (equals the policy's `max_retries`).
        attempts: u32,
        /// Total penalty + backoff time spent before giving up, seconds.
        delay: f64,
    },
}

impl RetryOutcome {
    /// Total recovery time billed, regardless of outcome.
    pub fn delay(&self) -> f64 {
        match *self {
            RetryOutcome::Recovered { delay, .. } | RetryOutcome::Exhausted { delay, .. } => delay,
        }
    }

    /// Whether the retry sequence recovered the request.
    pub fn recovered(&self) -> bool {
        matches!(self, RetryOutcome::Recovered { .. })
    }
}

/// Resolves one transient seek error: each attempt pays
/// `penalty_per_attempt` plus the policy's backoff, then succeeds with
/// probability `recover_prob` (drawn from `rng_state`, so the decision is
/// deterministic per seed). Exhaustion is an explicit outcome.
pub fn resolve_transient(
    policy: &RetryPolicy,
    penalty_per_attempt: f64,
    recover_prob: f64,
    rng_state: &mut SmallRng,
) -> RetryOutcome {
    let mut delay = 0.0;
    for attempt in 1..=policy.max_retries.max(1) {
        delay += penalty_per_attempt + policy.backoff(attempt);
        if rng::bernoulli(rng_state, recover_prob) {
            return RetryOutcome::Recovered {
                attempts: attempt,
                delay,
            };
        }
    }
    RetryOutcome::Exhausted {
        attempts: policy.max_retries.max(1),
        delay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_penalty_matches_paper_envelope() {
        // §6.1.3: 1–2 ms re-seek plus up to 6 ms rotation for 10K RPM.
        let p = disk_seek_error_penalty(&DiskParams::quantum_atlas_10k(), 1.5e-3);
        assert!((p.min - 1.5e-3).abs() < 1e-9);
        assert!((p.max - (1.5e-3 + 5.985e-3)).abs() < 1e-5);
        assert!(p.min <= p.mean && p.mean <= p.max);
    }

    #[test]
    fn mems_penalty_matches_paper_envelope() {
        // §6.1.3: "up to two turnarounds in the Y direction (0.04–1.11 ms
        // each) and short seeks in possibly both the X and Y directions."
        let p = mems_seek_error_penalty(&MemsParams::default());
        assert!(p.min > 0.02e-3 && p.min < 0.06e-3, "min {}", p.min);
        assert!(p.max < 1.5e-3, "max {}", p.max);
        assert!(p.min <= p.mean && p.mean <= p.max);
    }

    #[test]
    fn mems_recovers_much_faster_than_disk_on_average() {
        let d = disk_seek_error_penalty(&DiskParams::quantum_atlas_10k(), 1.5e-3);
        let m = mems_seek_error_penalty(&MemsParams::default());
        assert!(d.mean / m.mean > 5.0, "disk {} vs mems {}", d.mean, m.mean);
    }

    #[test]
    fn backoff_grows_geometrically_and_caps() {
        let p = RetryPolicy::default();
        assert!((p.backoff(1) - 50e-6).abs() < 1e-15);
        assert!((p.backoff(2) - 100e-6).abs() < 1e-15);
        assert!((p.backoff(3) - 200e-6).abs() < 1e-15);
        assert_eq!(p.backoff(20), p.max_backoff, "cap binds eventually");
    }

    #[test]
    fn certain_recovery_takes_one_attempt() {
        let p = RetryPolicy::default();
        let mut r = rng::seeded(1);
        let out = resolve_transient(&p, 1e-3, 1.0, &mut r);
        assert_eq!(
            out,
            RetryOutcome::Recovered {
                attempts: 1,
                delay: 1e-3 + p.backoff(1)
            }
        );
    }

    #[test]
    fn impossible_recovery_exhausts_with_full_bill() {
        let p = RetryPolicy::default();
        let mut r = rng::seeded(1);
        let out = resolve_transient(&p, 1e-3, 0.0, &mut r);
        let expected: f64 = (1..=p.max_retries).map(|a| 1e-3 + p.backoff(a)).sum();
        match out {
            RetryOutcome::Exhausted { attempts, delay } => {
                assert_eq!(attempts, p.max_retries);
                assert!((delay - expected).abs() < 1e-15);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        assert!(!out.recovered());
        assert!(out.delay() > 0.0);
    }
}
