//! Seek-error penalty models (§6.1.3).
//!
//! A disk that mis-seeks pays a short re-seek (1–2 ms) plus up to a full
//! rotation before the sector comes back under the head. A MEMS device
//! verifies servo information at every involved tip and recovers with at
//! most two Y turnarounds plus short X/Y re-seeks — orders of magnitude
//! cheaper.

use atlas_disk::DiskParams;
use mems_device::{MemsParams, SpringSled};

/// Seek-error penalty statistics, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeekErrorPenalty {
    /// Best-case recovery time.
    pub min: f64,
    /// Average recovery time.
    pub mean: f64,
    /// Worst-case recovery time.
    pub max: f64,
}

/// Disk seek-error penalty: a short re-seek plus rotational re-latency.
///
/// The re-seek costs `reseek` (1–2 ms for short re-seeks); the rotational
/// penalty ranges from zero to a full revolution, averaging half.
///
/// # Examples
///
/// ```
/// use atlas_disk::DiskParams;
/// use mems_os::fault::disk_seek_error_penalty;
///
/// let p = disk_seek_error_penalty(&DiskParams::quantum_atlas_10k(), 1.5e-3);
/// // Up to ~1.5 ms re-seek + ~6 ms rotation (§6.1.3).
/// assert!(p.max > 7e-3);
/// ```
pub fn disk_seek_error_penalty(params: &DiskParams, reseek: f64) -> SeekErrorPenalty {
    let rev = params.revolution_time();
    SeekErrorPenalty {
        min: reseek,
        mean: reseek + rev / 2.0,
        max: reseek + rev,
    }
}

/// MEMS seek-error penalty: up to two turnarounds in Y plus short
/// re-seeks in X and Y (§6.1.3).
///
/// Turnaround times are sampled over the sled's travel at access
/// velocity; the short re-seek is a one-cylinder X seek plus settle.
pub fn mems_seek_error_penalty(params: &MemsParams) -> SeekErrorPenalty {
    let sled =
        SpringSled::from_spring_factor(params.accel, params.spring_factor, params.half_mobility());
    let v = params.access_velocity();
    let samples = 101;
    let mut min = f64::INFINITY;
    let mut max: f64 = 0.0;
    let mut sum = 0.0;
    for i in 0..samples {
        let frac = i as f64 / (samples - 1) as f64;
        let p = (frac - 0.5) * params.mobility * 0.98;
        for dir in [v, -v] {
            let t = sled.turnaround_time(p, dir);
            min = min.min(t);
            max = max.max(t);
            sum += t;
        }
    }
    let mean_turn = sum / (2 * samples) as f64;
    let reseek = sled.rest_seek_time(0.0, params.bit_width) + params.settle_time();
    SeekErrorPenalty {
        // Best case: one spring-assisted turnaround, no X movement.
        min,
        // Average: between one and two turnarounds plus the short re-seek.
        mean: 1.5 * mean_turn + reseek,
        // Worst case: two slow turnarounds plus the short re-seek.
        max: 2.0 * max + reseek,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_penalty_matches_paper_envelope() {
        // §6.1.3: 1–2 ms re-seek plus up to 6 ms rotation for 10K RPM.
        let p = disk_seek_error_penalty(&DiskParams::quantum_atlas_10k(), 1.5e-3);
        assert!((p.min - 1.5e-3).abs() < 1e-9);
        assert!((p.max - (1.5e-3 + 5.985e-3)).abs() < 1e-5);
        assert!(p.min <= p.mean && p.mean <= p.max);
    }

    #[test]
    fn mems_penalty_matches_paper_envelope() {
        // §6.1.3: "up to two turnarounds in the Y direction (0.04–1.11 ms
        // each) and short seeks in possibly both the X and Y directions."
        let p = mems_seek_error_penalty(&MemsParams::default());
        assert!(p.min > 0.02e-3 && p.min < 0.06e-3, "min {}", p.min);
        assert!(p.max < 1.5e-3, "max {}", p.max);
        assert!(p.min <= p.mean && p.mean <= p.max);
    }

    #[test]
    fn mems_recovers_much_faster_than_disk_on_average() {
        let d = disk_seek_error_penalty(&DiskParams::quantum_atlas_10k(), 1.5e-3);
        let m = mems_seek_error_penalty(&MemsParams::default());
        assert!(d.mean / m.mean > 5.0, "disk {} vs mems {}", d.mean, m.mean);
    }
}
