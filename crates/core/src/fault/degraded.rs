//! Online degraded-mode operation: the live composition of §6's fault
//! machinery.
//!
//! [`DegradedDevice`] wraps any [`StorageDevice`] and reacts to the
//! simulator's scheduled [`FaultKind`] events while the run is in flight,
//! the way a RAID controller operates a degraded array:
//!
//! * **Transient seek errors** arm on the device and hit the next serviced
//!   request, which retries under a bounded-exponential-backoff
//!   [`RetryPolicy`]; every attempt's penalty and backoff is billed as
//!   real service time in [`ServiceBreakdown::fault_recovery`]. Exhausted
//!   retries surface in the counters, never as silent success.
//! * **Persistent tip failures** consume a spare tip while
//!   [`SpareTipPolicy`] has one (a one-time remap charge, zero ongoing
//!   cost — §6.1.1's headline result); once spares run out the tip's
//!   region operates degraded and intersecting reads pay Reed–Solomon
//!   reconstruction time across the surviving stripe.
//! * **Grown media defects** accumulate in [`FaultState`]; sectors whose
//!   stripes exceed the parity budget are counted unrecoverable and
//!   (optionally) far-remapped to a spare region, after which their
//!   physical timing changes — the memo-table regression case.
//!
//! A zero-fault wrapped run is bit-identical to the bare device: every
//! delegation passes the request through [`RemapTable::effective`], which
//! is the identity while the table is empty, and the per-request fault
//! scan short-circuits on [`FaultState::is_clean`].

use atlas_disk::DiskDevice;
use mems_device::{Mapper, MemsDevice};
use rand::rngs::SmallRng;
use storage_sim::rng;
use storage_sim::{
    FaultKind, PhaseEnergy, PositionOracle, Request, ServiceBreakdown, SimTime, StorageDevice,
};

use super::inject::{FaultState, MediaDefect};
use super::remap::{RemapPolicy, RemapTable, SpareTipPolicy};
use super::seek_error::{
    disk_seek_error_penalty, mems_seek_error_penalty, resolve_transient, RetryOutcome, RetryPolicy,
};

/// Cost and policy knobs for online failure handling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradedConfig {
    /// Retry policy for transient seek errors.
    pub retry: RetryPolicy,
    /// Per-attempt recovery penalty for a transient seek error, seconds
    /// (typically the device's mean seek-error penalty, §6.1.3).
    pub retry_penalty: f64,
    /// Per-attempt probability that a retry recovers the request.
    pub recover_prob: f64,
    /// One-time charge for installing a remap (spare-tip activation or
    /// far-spare table update), seconds.
    pub remap_penalty: f64,
    /// Extra positioning time to start a reconstruction read (the sled or
    /// arm revisits the stripe), seconds per affected request.
    pub reconstruction_seek: f64,
    /// Extra transfer time per damaged sector reconstructed (one more row
    /// pass over the surviving tips plus decode), seconds.
    pub reconstruction_row: f64,
    /// Far-remap sectors whose stripes exceed the parity budget, so later
    /// accesses go to the spare region instead of re-failing.
    pub remap_unrecoverable: bool,
}

/// Event and cost counters accumulated by a [`DegradedDevice`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradedCounters {
    /// Tip-failure events delivered.
    pub tip_failures: u64,
    /// Tip failures absorbed by a spare (zero ongoing cost).
    pub spare_remaps: u64,
    /// Tip failures operating degraded (no spare left).
    pub degraded_tips: u64,
    /// Media-defect events recorded.
    pub media_defects: u64,
    /// Transient seek errors delivered.
    pub transients: u64,
    /// Total retry attempts made.
    pub retry_attempts: u64,
    /// Transients that exhausted every retry.
    pub retries_exhausted: u64,
    /// Requests that performed reconstruction reads.
    pub reconstructions: u64,
    /// Sectors whose stripes exceeded the parity budget.
    pub unrecoverable: u64,
    /// LBNs far-remapped to the spare region.
    pub far_remaps: u64,
}

/// MEMS-geometry fault tracking: which stripes are damaged and how the
/// spare-tip budget stands.
#[derive(Debug, Clone)]
struct MemsFaultModel {
    mapper: Mapper,
    faults: FaultState,
    spares: SpareTipPolicy,
    /// Parity tips per 64-data-tip stripe (erasures beyond this are data
    /// loss).
    parity: usize,
    rows_per_track: u32,
    tips: u32,
}

/// A [`StorageDevice`] wrapper that operates the wrapped device through
/// mid-run faults: retrying transient seek errors, consuming spare tips,
/// and billing Reed–Solomon reconstruction reads — all as real service
/// time in [`ServiceBreakdown::fault_recovery`].
///
/// # Examples
///
/// ```
/// use mems_device::{MemsDevice, MemsParams};
/// use mems_os::fault::DegradedDevice;
/// use storage_sim::{FaultKind, IoKind, Request, SimTime, StorageDevice};
///
/// let mut dev = DegradedDevice::mems(MemsDevice::new(MemsParams::default()), 42)
///     .with_spare_tips(2);
/// // A tip fails mid-run; the first spare absorbs it.
/// dev.on_fault(&FaultKind::TipFailure { tip: 7 }, SimTime::ZERO);
/// let req = Request::new(0, SimTime::ZERO, 0, 8, IoKind::Read);
/// let b = dev.service(&req, SimTime::ZERO);
/// // The one-time spare-remap charge is billed to this request.
/// assert!(b.fault_recovery > 0.0);
/// assert_eq!(dev.counters().spare_remaps, 1);
/// ```
#[derive(Debug, Clone)]
pub struct DegradedDevice<D> {
    inner: D,
    name: String,
    config: DegradedConfig,
    remap: RemapTable,
    mems: Option<MemsFaultModel>,
    /// Transient seek errors armed but not yet charged to a request.
    armed_transients: u32,
    /// One-time charges (remap installs) awaiting the next request.
    pending_penalty: f64,
    rng: SmallRng,
    counters: DegradedCounters,
}

impl DegradedDevice<MemsDevice> {
    /// Wraps a MEMS device with paper-calibrated recovery costs: the mean
    /// §6.1.3 seek-error penalty per retry attempt, a settle + one-row
    /// remap charge, and reconstruction priced at a short re-seek plus one
    /// extra row pass per damaged sector. Starts with zero spare tips
    /// (every tip failure degrades) — see
    /// [`DegradedDevice::with_spare_tips`].
    pub fn mems(inner: MemsDevice, seed: u64) -> Self {
        let params = inner.params().clone();
        let penalty = mems_seek_error_penalty(&params);
        let geom = params.geometry();
        let capacity = inner.capacity_lbns();
        let sectors_per_cylinder =
            u64::from(geom.tracks_per_cylinder) * u64::from(geom.sectors_per_track);
        let config = DegradedConfig {
            retry: RetryPolicy::default(),
            retry_penalty: penalty.mean,
            recover_prob: 0.75,
            remap_penalty: params.settle_time() + params.row_time(),
            reconstruction_seek: params.settle_time(),
            reconstruction_row: params.row_time(),
            remap_unrecoverable: true,
        };
        let mapper = *inner.mapper();
        let name = format!("degraded({})", inner.name());
        DegradedDevice {
            inner,
            name,
            config,
            // Far remaps land in the last cylinder, like the defect tests.
            remap: RemapTable::new(RemapPolicy::FarSpare, capacity - sectors_per_cylinder),
            mems: Some(MemsFaultModel {
                mapper,
                faults: FaultState::new(&params),
                spares: SpareTipPolicy::new(0),
                parity: 8,
                rows_per_track: geom.rows_per_track,
                tips: params.tips,
            }),
            armed_transients: 0,
            pending_penalty: 0.0,
            rng: rng::seeded(seed),
            counters: DegradedCounters::default(),
        }
    }

    /// Provisions `n` spare tips per stripe group (§6.1.1's trade-off).
    pub fn with_spare_tips(mut self, n: u32) -> Self {
        if let Some(m) = self.mems.as_mut() {
            m.spares = SpareTipPolicy::new(n);
        }
        self
    }

    /// Sets the stripe parity budget (erasures beyond it are data loss).
    pub fn with_parity(mut self, parity: usize) -> Self {
        if let Some(m) = self.mems.as_mut() {
            m.parity = parity;
        }
        self
    }

    /// A snapshot of the accumulated MEMS fault state, e.g. to drive a
    /// byte-accurate [`super::ReliableStore`] through the same damage.
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.mems.as_ref().map(|m| &m.faults)
    }
}

impl DegradedDevice<DiskDevice> {
    /// Wraps a disk with §6.1.3 recovery costs: mean re-seek + half
    /// rotation per retry attempt and far-spare remapping. Tip and media
    /// faults have no disk geometry to land on and only bump counters.
    pub fn disk(inner: DiskDevice, seed: u64) -> Self {
        let penalty = disk_seek_error_penalty(inner.params(), 1.5e-3);
        let capacity = inner.capacity_lbns();
        let config = DegradedConfig {
            retry: RetryPolicy::default(),
            retry_penalty: penalty.mean,
            recover_prob: 0.75,
            remap_penalty: penalty.min,
            reconstruction_seek: 0.0,
            reconstruction_row: 0.0,
            remap_unrecoverable: false,
        };
        let name = format!("degraded({})", inner.name());
        DegradedDevice {
            inner,
            name,
            config,
            remap: RemapTable::new(RemapPolicy::FarSpare, capacity.saturating_sub(1024)),
            mems: None,
            armed_transients: 0,
            pending_penalty: 0.0,
            rng: rng::seeded(seed),
            counters: DegradedCounters::default(),
        }
    }
}

impl<D: StorageDevice> DegradedDevice<D> {
    /// Wraps an arbitrary device with explicit costs and remap table.
    /// Geometry-dependent handling (spare tips, reconstruction) is off;
    /// transients and remap charges still apply.
    pub fn with_config(inner: D, config: DegradedConfig, remap: RemapTable, seed: u64) -> Self {
        let name = format!("degraded({})", inner.name());
        DegradedDevice {
            inner,
            name,
            config,
            remap,
            mems: None,
            armed_transients: 0,
            pending_penalty: 0.0,
            rng: rng::seeded(seed),
            counters: DegradedCounters::default(),
        }
    }

    /// Overrides the per-attempt recovery probability.
    pub fn with_recover_prob(mut self, p: f64) -> Self {
        self.config.recover_prob = p;
        self
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.config.retry = retry;
        self
    }

    /// The accumulated event counters.
    pub fn counters(&self) -> DegradedCounters {
        self.counters
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The far-remap table (empty until faults force redirects).
    pub fn remap_table(&self) -> &RemapTable {
        &self.remap
    }

    /// Charges armed transients against this request's recovery bill.
    fn charge_transients(&mut self) -> f64 {
        let mut recovery = 0.0;
        while self.armed_transients > 0 {
            self.armed_transients -= 1;
            let out = resolve_transient(
                &self.config.retry,
                self.config.retry_penalty,
                self.config.recover_prob,
                &mut self.rng,
            );
            recovery += out.delay();
            match out {
                RetryOutcome::Recovered { attempts, .. } => {
                    self.counters.retry_attempts += u64::from(attempts);
                }
                RetryOutcome::Exhausted { attempts, .. } => {
                    self.counters.retry_attempts += u64::from(attempts);
                    self.counters.retries_exhausted += 1;
                    // Escalation: fall back to a full recalibration pass,
                    // billed at the worst-case single-attempt cost.
                    recovery += self.config.retry_penalty + self.config.retry.max_backoff;
                }
            }
        }
        recovery
    }

    /// Bills reconstruction reads for damaged sectors the request spans
    /// and (optionally) far-remaps unrecoverable ones.
    fn charge_reconstruction(&mut self, req: &Request) -> f64 {
        let Some(model) = self.mems.as_mut() else {
            return 0.0;
        };
        if model.faults.is_clean() {
            return 0.0;
        }
        let capacity = self.inner.capacity_lbns();
        let mut damaged = 0u64;
        let mut lost = 0u64;
        for lbn in req.lbn..(req.lbn + u64::from(req.sectors)).min(capacity) {
            let erasures = model.faults.stripe_erasures_for_lbn(&model.mapper, lbn);
            if erasures == 0 {
                continue;
            }
            if erasures <= model.parity {
                damaged += 1;
            } else {
                lost += 1;
                self.counters.unrecoverable += 1;
                if self.config.remap_unrecoverable {
                    self.remap.remap(lbn);
                    self.counters.far_remaps += 1;
                }
            }
        }
        let mut recovery = 0.0;
        if damaged > 0 {
            self.counters.reconstructions += 1;
            recovery +=
                self.config.reconstruction_seek + damaged as f64 * self.config.reconstruction_row;
        }
        if lost > 0 && self.config.remap_unrecoverable {
            recovery += lost as f64 * self.config.remap_penalty;
        }
        recovery
    }
}

impl<D: StorageDevice> PositionOracle for DegradedDevice<D> {
    fn position_time(&self, req: &Request, now: SimTime) -> f64 {
        self.inner.position_time(&self.remap.effective(req), now)
    }

    fn position_bucket(&self, req: &Request) -> u64 {
        self.inner.position_bucket(&self.remap.effective(req))
    }

    fn current_bucket(&self) -> u64 {
        self.inner.current_bucket()
    }

    fn min_position_time_at_bucket_distance(&self, distance: u64) -> f64 {
        self.inner.min_position_time_at_bucket_distance(distance)
    }

    fn bucket_position_time_floor(&self, bucket: u64) -> f64 {
        self.inner.bucket_position_time_floor(bucket)
    }
}

impl<D: StorageDevice> StorageDevice for DegradedDevice<D> {
    fn name(&self) -> &str {
        &self.name
    }

    fn capacity_lbns(&self) -> u64 {
        self.inner.capacity_lbns()
    }

    fn service(&mut self, req: &Request, now: SimTime) -> ServiceBreakdown {
        // Reconstruction decisions use the *logical* request (damage is
        // tracked per original stripe); the physical access goes to the
        // effective (possibly far-remapped) location.
        let recovery_setup = self.pending_penalty + self.charge_reconstruction(req);
        self.pending_penalty = 0.0;
        let eff = self.remap.effective(req);
        let mut b = self.inner.service(&eff, now);
        b.fault_recovery += recovery_setup + self.charge_transients();
        b
    }

    fn reset(&mut self) {
        // Mechanical reset only: accumulated faults are physical damage
        // and survive, like a real device power cycle.
        self.inner.reset();
    }

    fn phase_energy(&self, breakdown: &ServiceBreakdown) -> PhaseEnergy {
        self.inner.phase_energy(breakdown)
    }

    fn on_fault(&mut self, fault: &FaultKind, _now: SimTime) {
        match *fault {
            FaultKind::TipFailure { tip } => {
                self.counters.tip_failures += 1;
                if let Some(model) = self.mems.as_mut() {
                    let tip = tip % model.tips;
                    if model.spares.absorb_failure() {
                        // §6.1.1: the spare covers the region with zero
                        // ongoing cost; only the remap install is billed.
                        self.counters.spare_remaps += 1;
                        self.pending_penalty += self.config.remap_penalty;
                    } else {
                        model.faults.fail_tip(tip);
                        self.counters.degraded_tips += 1;
                    }
                }
            }
            FaultKind::TransientSeekError => {
                self.counters.transients += 1;
                self.armed_transients += 1;
            }
            FaultKind::MediaDefect {
                tip,
                row_start,
                row_end,
            } => {
                self.counters.media_defects += 1;
                if let Some(model) = self.mems.as_mut() {
                    let tip = tip % model.tips;
                    let last = model.rows_per_track - 1;
                    model.faults.add_defect(MediaDefect {
                        tip,
                        row_start: row_start.min(last),
                        row_end: row_end.min(last).max(row_start.min(last)),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_device::MemsParams;
    use storage_sim::IoKind;

    fn mems() -> MemsDevice {
        MemsDevice::new(MemsParams::default())
    }

    fn req(id: u64, lbn: u64) -> Request {
        Request::new(id, SimTime::ZERO, lbn, 8, IoKind::Read)
    }

    #[test]
    fn healthy_wrapper_is_bitwise_transparent() {
        let mut bare = mems();
        let mut wrapped = DegradedDevice::mems(mems(), 1);
        for lbn in [0u64, 999, 123_456, 6_000_000] {
            let a = bare.service(&req(lbn, lbn), SimTime::ZERO);
            let b = wrapped.service(&req(lbn, lbn), SimTime::ZERO);
            assert_eq!(a, b, "lbn {lbn}");
            assert_eq!(b.fault_recovery, 0.0);
        }
        assert_eq!(
            bare.position_time(&req(9, 42), SimTime::ZERO),
            wrapped.position_time(&req(9, 42), SimTime::ZERO)
        );
    }

    #[test]
    fn spare_absorbs_then_degrades() {
        let mut d = DegradedDevice::mems(mems(), 7).with_spare_tips(1);
        d.on_fault(&FaultKind::TipFailure { tip: 0 }, SimTime::ZERO);
        assert_eq!(d.counters().spare_remaps, 1);
        let b = d.service(&req(0, 0), SimTime::ZERO);
        assert!(b.fault_recovery > 0.0, "remap install billed once");
        let b2 = d.service(&req(1, 0), SimTime::ZERO);
        assert_eq!(b2.fault_recovery, 0.0, "spare remap has no ongoing cost");

        // Second failure on the same stripe: no spare left -> degraded.
        d.on_fault(&FaultKind::TipFailure { tip: 1 }, SimTime::ZERO);
        assert_eq!(d.counters().degraded_tips, 1);
        let b3 = d.service(&req(2, 0), SimTime::ZERO);
        assert!(
            b3.fault_recovery > 0.0,
            "reads over the degraded stripe pay reconstruction"
        );
        assert_eq!(d.counters().reconstructions, 1);
        // LBN 1 lives on a different 64-tip group: unaffected.
        let b4 = d.service(&req(3, 1), SimTime::ZERO);
        assert_eq!(b4.fault_recovery, 0.0);
    }

    #[test]
    fn transient_bills_retry_time_deterministically() {
        let run = |seed| {
            let mut d = DegradedDevice::mems(mems(), seed);
            d.on_fault(&FaultKind::TransientSeekError, SimTime::ZERO);
            d.service(&req(0, 500), SimTime::ZERO).fault_recovery
        };
        let a = run(3);
        assert!(a > 0.0);
        assert_eq!(a, run(3), "same seed, same retry bill");
    }

    #[test]
    fn beyond_parity_counts_unrecoverable_and_far_remaps() {
        let mut d = DegradedDevice::mems(mems(), 11);
        for tip in 0..9 {
            d.on_fault(&FaultKind::TipFailure { tip }, SimTime::ZERO);
        }
        assert_eq!(d.counters().degraded_tips, 9);
        let _ = d.service(&req(0, 0), SimTime::ZERO);
        assert_eq!(d.counters().unrecoverable, 1);
        assert_eq!(d.counters().far_remaps, 1);
        assert_eq!(d.remap_table().len(), 1);
        // The remapped access now physically lands in the spare cylinder.
        let eff = d.remap_table().effective(&req(1, 0));
        assert!(eff.lbn >= d.capacity_lbns() - 2700);
    }

    #[test]
    fn media_defect_rows_are_clamped_to_geometry() {
        let mut d = DegradedDevice::mems(mems(), 5);
        d.on_fault(
            &FaultKind::MediaDefect {
                tip: 3,
                row_start: 1_000_000,
                row_end: 2_000_000,
            },
            SimTime::ZERO,
        );
        assert_eq!(d.counters().media_defects, 1);
        let f = d.fault_state().unwrap();
        assert!(!f.is_clean());
    }
}
