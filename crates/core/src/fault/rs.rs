//! Systematic Reed–Solomon erasure coding across probe tips.
//!
//! This is the paper's *horizontal* ECC (§6.1.2): each logical sector is
//! striped across `k` data tip sectors, and `m` additional ECC tips are
//! switched on during the access. Any `m` missing tip sectors — from media
//! defects, broken tips, or per-tip read errors converted to erasures by
//! the vertical code — are recoverable.
//!
//! The code is a systematic RS over GF(2⁸): a Vandermonde matrix reduced
//! so its top `k` rows are the identity; parity rows retain the MDS
//! property that *any* `k` rows of the generator are invertible.

use super::gf256::Gf256;

/// A systematic `(k + m, k)` Reed–Solomon erasure code.
///
/// # Examples
///
/// ```
/// use mems_os::fault::ReedSolomon;
///
/// // The paper's geometry: 64 data tips + 8 ECC tips per logical sector.
/// let rs = ReedSolomon::new(64, 8);
/// let data: Vec<u8> = (0..64).collect();
/// let mut shards: Vec<Option<u8>> = rs.encode(&data).into_iter().map(Some).collect();
/// // Lose any 8 shards...
/// for i in [0, 5, 13, 21, 34, 55, 64, 71] { shards[i] = None; }
/// // ...and recover the data exactly.
/// assert_eq!(rs.decode(&shards).unwrap(), data);
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    gf: Gf256,
    k: usize,
    m: usize,
    /// `(k + m) × k` generator matrix, systematic (top k rows = identity).
    gen: Vec<Vec<u8>>,
}

impl ReedSolomon {
    /// Builds a code with `k` data shards and `m` parity shards.
    ///
    /// # Panics
    ///
    /// Panics unless `k ≥ 1`, `m ≥ 1`, and `k + m ≤ 255`.
    pub fn new(k: usize, m: usize) -> Self {
        assert!(k >= 1 && m >= 1, "need at least one data and parity shard");
        assert!(k + m <= 255, "GF(256) supports at most 255 shards");
        let gf = Gf256::new();
        // Vandermonde rows v_i = [1, a_i, a_i², ...] with distinct a_i,
        // then column-reduce so the top k rows become the identity. Column
        // operations preserve the any-k-rows-invertible property.
        let n = k + m;
        let mut mat: Vec<Vec<u8>> = (0..n)
            .map(|r| (0..k).map(|c| gf.pow(2, (r as u32) * (c as u32))).collect())
            .collect();
        // Gauss-Jordan on the top k rows using column operations.
        for col in 0..k {
            // Find a pivot column with nonzero entry in row `col`.
            if mat[col][col] == 0 {
                let swap = (col + 1..k)
                    .find(|&c| mat[col][c] != 0)
                    .expect("Vandermonde top rows are invertible");
                for row in mat.iter_mut() {
                    row.swap(col, swap);
                }
            }
            let inv = gf.inv(mat[col][col]);
            for row in mat.iter_mut() {
                row[col] = gf.mul(row[col], inv);
            }
            for other in 0..k {
                if other == col || mat[col][other] == 0 {
                    continue;
                }
                let factor = mat[col][other];
                for row in mat.iter_mut() {
                    let sub = gf.mul(row[col], factor);
                    row[other] = gf.add(row[other], sub);
                }
            }
        }
        ReedSolomon { gf, k, m, gen: mat }
    }

    /// Data shards per codeword.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Parity shards per codeword.
    pub fn parity_shards(&self) -> usize {
        self.m
    }

    /// Total shards per codeword.
    pub fn total_shards(&self) -> usize {
        self.k + self.m
    }

    /// Encodes `k` data bytes into `k + m` shards (data first, then
    /// parity).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k`.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), self.k, "expected {} data bytes", self.k);
        (0..self.total_shards())
            .map(|r| {
                let mut acc = 0u8;
                for (c, &d) in data.iter().enumerate() {
                    acc = self.gf.add(acc, self.gf.mul(self.gen[r][c], d));
                }
                acc
            })
            .collect()
    }

    /// Recovers the `k` data bytes from shards with erasures (`None`).
    ///
    /// Returns `None` if fewer than `k` shards survive.
    ///
    /// # Panics
    ///
    /// Panics if `shards.len() != k + m`.
    pub fn decode(&self, shards: &[Option<u8>]) -> Option<Vec<u8>> {
        assert_eq!(
            shards.len(),
            self.total_shards(),
            "expected {} shards",
            self.total_shards()
        );
        // Fast path: all data shards intact.
        if shards[..self.k].iter().all(Option::is_some) {
            return Some(
                shards[..self.k]
                    .iter()
                    .map(|s| s.expect("checked"))
                    .collect(),
            );
        }
        let surviving: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|_| i))
            .collect();
        if surviving.len() < self.k {
            return None;
        }
        // Build the k×k system from the first k surviving rows and invert.
        let rows = &surviving[..self.k];
        let mut a: Vec<Vec<u8>> = rows.iter().map(|&r| self.gen[r].clone()).collect();
        let mut b: Vec<u8> = rows
            .iter()
            .map(|&r| shards[r].expect("surviving shard"))
            .collect();
        // Gaussian elimination with partial pivoting (any nonzero pivot);
        // matrix index loops are the clearest notation here.
        #[allow(clippy::needless_range_loop)]
        for col in 0..self.k {
            let pivot = (col..self.k).find(|&r| a[r][col] != 0)?;
            a.swap(col, pivot);
            b.swap(col, pivot);
            let inv = self.gf.inv(a[col][col]);
            for c in col..self.k {
                a[col][c] = self.gf.mul(a[col][c], inv);
            }
            b[col] = self.gf.mul(b[col], inv);
            for r in 0..self.k {
                if r == col || a[r][col] == 0 {
                    continue;
                }
                let factor = a[r][col];
                for c in col..self.k {
                    let sub = self.gf.mul(a[col][c], factor);
                    a[r][c] = self.gf.add(a[r][c], sub);
                }
                let sub = self.gf.mul(b[col], factor);
                b[r] = self.gf.add(b[r], sub);
            }
        }
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_systematic() {
        let rs = ReedSolomon::new(8, 4);
        let data: Vec<u8> = (10..18).collect();
        let shards = rs.encode(&data);
        assert_eq!(&shards[..8], data.as_slice());
        assert_eq!(shards.len(), 12);
    }

    #[test]
    fn decode_with_no_erasures_is_identity() {
        let rs = ReedSolomon::new(8, 4);
        let data: Vec<u8> = (0..8).map(|i| i * 31).collect();
        let shards: Vec<Option<u8>> = rs.encode(&data).into_iter().map(Some).collect();
        assert_eq!(rs.decode(&shards).unwrap(), data);
    }

    #[test]
    fn recovers_from_max_erasures_anywhere() {
        let rs = ReedSolomon::new(8, 4);
        let data: Vec<u8> = vec![7, 0, 255, 13, 42, 42, 1, 128];
        let encoded = rs.encode(&data);
        // Erase every combination of 4 shards out of 12 (495 cases).
        let n = 12;
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    for d in (c + 1)..n {
                        let mut shards: Vec<Option<u8>> =
                            encoded.iter().copied().map(Some).collect();
                        for &i in &[a, b, c, d] {
                            shards[i] = None;
                        }
                        assert_eq!(
                            rs.decode(&shards).as_deref(),
                            Some(data.as_slice()),
                            "erasures {a},{b},{c},{d}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn too_many_erasures_fail_cleanly() {
        let rs = ReedSolomon::new(8, 4);
        let encoded = rs.encode(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut shards: Vec<Option<u8>> = encoded.into_iter().map(Some).collect();
        for shard in shards.iter_mut().take(5) {
            *shard = None;
        }
        assert_eq!(rs.decode(&shards), None);
    }

    #[test]
    fn paper_geometry_64_plus_8() {
        let rs = ReedSolomon::new(64, 8);
        let data: Vec<u8> = (0..64).map(|i| (i * 7 + 3) as u8).collect();
        let encoded = rs.encode(&data);
        let mut shards: Vec<Option<u8>> = encoded.into_iter().map(Some).collect();
        // Kill 8 scattered tips, including parity tips.
        for i in [2usize, 9, 17, 33, 48, 63, 66, 70] {
            shards[i] = None;
        }
        assert_eq!(rs.decode(&shards).unwrap(), data);
    }

    #[test]
    fn parity_rows_are_nontrivial() {
        let rs = ReedSolomon::new(4, 2);
        let z = rs.encode(&[0, 0, 0, 0]);
        assert!(z.iter().all(|&s| s == 0));
        let e = rs.encode(&[1, 0, 0, 0]);
        assert!(e[4] != 0 && e[5] != 0, "parity must touch every data shard");
    }

    #[test]
    #[should_panic(expected = "data and parity")]
    fn zero_parity_rejected() {
        let _ = ReedSolomon::new(8, 0);
    }
}
