//! An end-to-end reliable sector store: real bytes through the real ECC.
//!
//! The rest of the fault module reasons about *timing* and *erasure
//! counts*; this is the data path itself. [`ReliableStore`] stores each
//! logical sector as its 72 encoded tip sectors (64 data + 8 ECC by
//! default), keyed by the physical (tip, cylinder, row) locations the
//! device geometry assigns. Reads consult the injected [`FaultState`]:
//! tip sectors on broken tips or grown defects come back unreadable, and
//! the vertical/horizontal codes repair what the parity budget covers —
//! so "data written before the tips broke is still there afterward" is a
//! property you can test with actual bytes, not an argument.

use std::collections::HashMap;

use mems_device::{Mapper, MemsParams, PhysAddr};

use super::inject::FaultState;
use super::stripe::StripeCodec;
use super::vertical::TipSector;

/// A byte-accurate striped sector store with fault injection.
///
/// # Examples
///
/// ```
/// use mems_device::MemsParams;
/// use mems_os::fault::{FaultState, ReliableStore};
///
/// let params = MemsParams::default();
/// let mut store = ReliableStore::new(&params, 8);
/// let data = [7u8; 512];
/// store.write_sector(12345, &data);
/// // Break a handful of tips after the write...
/// let mut faults = FaultState::new(&params);
/// for t in 0..5 { faults.fail_tip(t * 64); }
/// store.set_faults(faults);
/// // ...and the data is still exactly recoverable.
/// assert_eq!(store.read_sector(12345), Some(data));
/// ```
#[derive(Debug)]
pub struct ReliableStore {
    codec: StripeCodec,
    mapper: Mapper,
    faults: FaultState,
    tips: u32,
    active_per_track: u32,
    /// (first_tip_of_stripe, cylinder, row) → encoded stripe.
    media: HashMap<(u32, u32, u32), Vec<TipSector>>,
}

impl ReliableStore {
    /// Creates an empty store for a device with `parity_tips` horizontal
    /// ECC tips per logical sector.
    pub fn new(params: &MemsParams, parity_tips: usize) -> Self {
        ReliableStore {
            codec: StripeCodec::new(parity_tips),
            mapper: Mapper::new(params),
            faults: FaultState::new(params),
            tips: params.tips,
            active_per_track: params.active_tips,
            media: HashMap::new(),
        }
    }

    /// Installs (replaces) the fault state applied to subsequent reads.
    pub fn set_faults(&mut self, faults: FaultState) {
        self.faults = faults;
    }

    /// A mutable handle to the current fault state.
    pub fn faults_mut(&mut self) -> &mut FaultState {
        &mut self.faults
    }

    /// First tip of the stripe serving a physical address: track `t`
    /// owns tips `t·active .. (t+1)·active`, and slot `s` the 64-tip
    /// group at `s·64` within them. Parity tips follow conceptually as
    /// extra ECC tips switched on for the access (§6.1.2).
    fn stripe_tip(&self, addr: PhysAddr) -> u32 {
        addr.track * self.active_per_track + addr.slot * 64
    }

    /// Writes a 512-byte sector.
    ///
    /// # Panics
    ///
    /// Panics if `lbn` is out of range.
    pub fn write_sector(&mut self, lbn: u64, data: &[u8; 512]) {
        let addr = self.mapper.decompose(lbn);
        let stripe = self.codec.encode(data);
        self.media
            .insert((self.stripe_tip(addr), addr.cylinder, addr.row), stripe);
    }

    /// Reads a sector back, applying injected faults; `None` if the
    /// sector was never written or has more erasures than the parity
    /// covers.
    ///
    /// # Panics
    ///
    /// Panics if `lbn` is out of range.
    pub fn read_sector(&self, lbn: u64) -> Option<[u8; 512]> {
        let addr = self.mapper.decompose(lbn);
        let first_tip = self.stripe_tip(addr);
        let stripe = self.media.get(&(first_tip, addr.cylinder, addr.row))?;
        // Apply faults: a lost tip sector reads back as garbage, which
        // the vertical check converts to an erasure. Parity tips are
        // modeled as the tips directly after the 64 data tips (wrapping
        // within the device).
        let damaged: Vec<TipSector> = stripe
            .iter()
            .enumerate()
            .map(|(i, ts)| {
                let tip = (first_tip + i as u32) % self.tips;
                if self.faults.tip_sector_lost(tip, addr.row) {
                    TipSector {
                        data: [0x00; 8],
                        check: !ts.check, // guaranteed-failing vertical check
                    }
                } else {
                    *ts
                }
            })
            .collect();
        self.codec.decode(&damaged)
    }

    /// Number of sectors currently stored.
    pub fn stored_sectors(&self) -> usize {
        self.media.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage_sim::rng;

    fn params() -> MemsParams {
        MemsParams::default()
    }

    fn pattern(seed: u8) -> [u8; 512] {
        let mut d = [0u8; 512];
        for (i, b) in d.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(13).wrapping_add(seed);
        }
        d
    }

    #[test]
    fn clean_write_read_round_trip() {
        let mut store = ReliableStore::new(&params(), 8);
        for lbn in [0u64, 19, 20, 539, 540, 1_000_000, 6_749_999] {
            store.write_sector(lbn, &pattern(lbn as u8));
        }
        for lbn in [0u64, 19, 20, 539, 540, 1_000_000, 6_749_999] {
            assert_eq!(
                store.read_sector(lbn),
                Some(pattern(lbn as u8)),
                "lbn {lbn}"
            );
        }
        assert_eq!(store.stored_sectors(), 7);
    }

    #[test]
    fn unwritten_sectors_read_none() {
        let store = ReliableStore::new(&params(), 8);
        assert_eq!(store.read_sector(42), None);
    }

    #[test]
    fn data_survives_tip_failures_up_to_parity() {
        let p = params();
        let mut store = ReliableStore::new(&p, 8);
        let data = pattern(9);
        store.write_sector(0, &data);
        // Break 8 of the sector's own 64 data tips.
        let mut faults = FaultState::new(&p);
        for t in 0..8 {
            faults.fail_tip(t * 7); // tips 0,7,...,49 all serve slot 0
        }
        store.set_faults(faults);
        assert_eq!(store.read_sector(0), Some(data));
    }

    #[test]
    fn too_many_failures_lose_data_cleanly() {
        let p = params();
        let mut store = ReliableStore::new(&p, 4);
        store.write_sector(0, &pattern(1));
        let mut faults = FaultState::new(&p);
        for t in 0..5 {
            faults.fail_tip(t);
        }
        store.set_faults(faults);
        assert_eq!(store.read_sector(0), None, "5 losses exceed 4 parity tips");
    }

    #[test]
    fn media_defects_only_affect_their_rows() {
        let p = params();
        let mut store = ReliableStore::new(&p, 2);
        // Two sectors on the same tips, different rows.
        let a = pattern(3);
        let b = pattern(4);
        store.write_sector(0, &a); // row 0
        store.write_sector(20, &b); // row 1
        let mut faults = FaultState::new(&p);
        // Wipe rows 0..1 of five of the stripe's tips: three more than
        // the 2-tip parity can absorb in row 0.
        for t in 0..5 {
            faults.add_defect(super::super::inject::MediaDefect {
                tip: t,
                row_start: 0,
                row_end: 0,
            });
        }
        store.set_faults(faults);
        assert_eq!(store.read_sector(0), None, "row 0 exceeded parity");
        assert_eq!(store.read_sector(20), Some(b), "row 1 untouched");
    }

    #[test]
    fn overwrite_replaces_contents() {
        let mut store = ReliableStore::new(&params(), 8);
        store.write_sector(777, &pattern(1));
        store.write_sector(777, &pattern(2));
        assert_eq!(store.read_sector(777), Some(pattern(2)));
        assert_eq!(store.stored_sectors(), 1);
    }

    #[test]
    fn random_fault_campaign_never_returns_wrong_data() {
        // The crucial integrity property: reads either return exactly
        // what was written or fail — never silently corrupt data.
        let p = params();
        let mut store = ReliableStore::new(&p, 4);
        let lbns: Vec<u64> = (0..50).map(|i| i * 131_071 % 6_750_000).collect();
        for &lbn in &lbns {
            store.write_sector(lbn, &pattern(lbn as u8));
        }
        let mut r = rng::seeded(0xDA7A);
        let mut faults = FaultState::new(&p);
        faults.inject_random_tip_failures(120, &mut r);
        faults.inject_random_defects(60, &mut r);
        store.set_faults(faults);
        let mut lost = 0;
        for &lbn in &lbns {
            match store.read_sector(lbn) {
                Some(data) => assert_eq!(data, pattern(lbn as u8), "silent corruption at {lbn}"),
                None => lost += 1,
            }
        }
        // With only 4 parity tips and 120 broken tips some loss is
        // expected — but it must be *detected* loss.
        assert!(lost < lbns.len(), "not everything should be lost");
    }
}
