//! GF(2⁸) arithmetic for the striping ECC.
//!
//! The field is GF(2⁸) with the usual generator polynomial
//! `x⁸ + x⁴ + x³ + x² + 1` (0x11d) and generator element 2. Multiplication
//! and division go through exp/log tables built once at construction.

/// GF(2⁸) arithmetic context (exp/log tables).
///
/// # Examples
///
/// ```
/// use mems_os::fault::Gf256;
///
/// let gf = Gf256::new();
/// let a = 0x57;
/// let b = 0x83;
/// let p = gf.mul(a, b);
/// assert_eq!(gf.div(p, b), a);
/// assert_eq!(gf.mul(a, gf.inv(a)), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Gf256 {
    exp: [u8; 512],
    log: [u8; 256],
}

impl Gf256 {
    /// The field's generator polynomial (reduced modulo x⁸).
    const POLY: u16 = 0x11d;

    /// Builds the exp/log tables.
    pub fn new() -> Self {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        // Indexed on purpose: each step writes both tables at related slots.
        #[allow(clippy::needless_range_loop)]
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= Self::POLY;
            }
        }
        // Duplicate the table so mul can skip the mod-255 reduction.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Gf256 { exp, log }
    }

    /// Field addition (and subtraction): XOR.
    #[inline]
    pub fn add(&self, a: u8, b: u8) -> u8 {
        a ^ b
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[usize::from(self.log[usize::from(a)]) + usize::from(self.log[usize::from(b)])]
        }
    }

    /// Field division.
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    #[inline]
    pub fn div(&self, a: u8, b: u8) -> u8 {
        assert!(b != 0, "division by zero in GF(256)");
        if a == 0 {
            0
        } else {
            self.exp[255 + usize::from(self.log[usize::from(a)])
                - usize::from(self.log[usize::from(b)])]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on zero.
    #[inline]
    pub fn inv(&self, a: u8) -> u8 {
        assert!(a != 0, "zero has no inverse in GF(256)");
        self.exp[255 - usize::from(self.log[usize::from(a)])]
    }

    /// `base` raised to `power` (power taken mod 255).
    #[inline]
    pub fn pow(&self, base: u8, power: u32) -> u8 {
        if base == 0 {
            return if power == 0 { 1 } else { 0 };
        }
        let l = u32::from(self.log[usize::from(base)]);
        self.exp[((l * power) % 255) as usize]
    }
}

impl Default for Gf256 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_xor_and_self_inverse() {
        let gf = Gf256::new();
        assert_eq!(gf.add(0x57, 0x83), 0x57 ^ 0x83);
        assert_eq!(gf.add(0x42, 0x42), 0);
    }

    #[test]
    fn mul_matches_reference_slow_multiply() {
        // Russian-peasant multiplication as the independent reference.
        fn slow_mul(mut a: u8, mut b: u8) -> u8 {
            let mut p = 0u8;
            while b != 0 {
                if b & 1 != 0 {
                    p ^= a;
                }
                let hi = a & 0x80 != 0;
                a <<= 1;
                if hi {
                    a ^= 0x1d;
                }
                b >>= 1;
            }
            p
        }
        let gf = Gf256::new();
        for a in 0..=255u8 {
            for b in [0u8, 1, 2, 3, 0x53, 0xca, 0xff] {
                assert_eq!(gf.mul(a, b), slow_mul(a, b), "mul({a},{b})");
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_an_inverse() {
        let gf = Gf256::new();
        for a in 1..=255u8 {
            assert_eq!(gf.mul(a, gf.inv(a)), 1, "inv({a})");
        }
    }

    #[test]
    fn div_is_mul_by_inverse() {
        let gf = Gf256::new();
        for a in [0u8, 1, 7, 100, 200, 255] {
            for b in [1u8, 2, 50, 130, 255] {
                assert_eq!(gf.div(a, b), gf.mul(a, gf.inv(b)));
            }
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let gf = Gf256::new();
        for base in [1u8, 2, 3, 0x1d, 0xb7] {
            let mut acc = 1u8;
            for p in 0..20u32 {
                assert_eq!(gf.pow(base, p), acc, "pow({base},{p})");
                acc = gf.mul(acc, base);
            }
        }
        assert_eq!(gf.pow(0, 0), 1);
        assert_eq!(gf.pow(0, 5), 0);
    }

    #[test]
    fn multiplication_is_associative_and_distributive_spot_check() {
        let gf = Gf256::new();
        for &(a, b, c) in &[(3u8, 7u8, 11u8), (0x53, 0xca, 0x01), (255, 254, 253)] {
            assert_eq!(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
            assert_eq!(gf.mul(a, gf.add(b, c)), gf.add(gf.mul(a, b), gf.mul(a, c)));
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let gf = Gf256::new();
        let _ = gf.div(1, 0);
    }
}
