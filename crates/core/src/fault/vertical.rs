//! The vertical (per-tip) code: error detection within one tip sector.
//!
//! §6.1.2: "The vertical portion of the ECC can identify tip-sectors that
//! should be treated as missing (i.e., converting large errors into
//! erasures)." We model the N-bits-per-byte vertical encoding's detection
//! capability with a CRC-8 over the tip sector's 8 data bytes: a corrupted
//! tip sector fails its check and is handed to the horizontal
//! Reed–Solomon code as an erasure, which is far cheaper to correct than
//! an error at unknown position.

/// CRC-8 (polynomial 0x07, the ATM HEC polynomial) over a byte slice.
///
/// # Examples
///
/// ```
/// use mems_os::fault::crc8;
///
/// let payload = [1u8, 2, 3, 4, 5, 6, 7, 8];
/// let c = crc8(&payload);
/// let mut corrupted = payload;
/// corrupted[3] ^= 0x10;
/// assert_ne!(crc8(&corrupted), c);
/// ```
pub fn crc8(data: &[u8]) -> u8 {
    let mut crc = 0u8;
    for &byte in data {
        crc ^= byte;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// One tip sector as stored on the media: 8 data bytes plus the vertical
/// check byte (standing in for the per-tip encoding redundancy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TipSector {
    /// The 8 data bytes the tip stores for this sector.
    pub data: [u8; 8],
    /// Vertical check over `data`.
    pub check: u8,
}

impl TipSector {
    /// Encodes 8 data bytes into a checked tip sector.
    pub fn encode(data: [u8; 8]) -> Self {
        TipSector {
            data,
            check: crc8(&data),
        }
    }

    /// Verifies the vertical check; a failed check means the tip sector
    /// must be treated as an erasure.
    pub fn verify(&self) -> bool {
        crc8(&self.data) == self.check
    }

    /// Returns the data if the check passes, `None` (erasure) otherwise.
    pub fn read(&self) -> Option<[u8; 8]> {
        if self.verify() {
            Some(self.data)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc8_known_values() {
        assert_eq!(crc8(&[]), 0);
        assert_eq!(crc8(&[0]), 0);
        // CRC-8/ATM check value for "123456789" is 0xF4.
        assert_eq!(crc8(b"123456789"), 0xf4);
    }

    #[test]
    fn clean_round_trip_verifies() {
        let ts = TipSector::encode([9, 8, 7, 6, 5, 4, 3, 2]);
        assert!(ts.verify());
        assert_eq!(ts.read(), Some([9, 8, 7, 6, 5, 4, 3, 2]));
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let ts = TipSector::encode([0x55; 8]);
        for byte in 0..8 {
            for bit in 0..8 {
                let mut bad = ts;
                bad.data[byte] ^= 1 << bit;
                assert!(!bad.verify(), "missed flip at byte {byte} bit {bit}");
                assert_eq!(bad.read(), None);
            }
        }
        // Flips in the check byte are also caught.
        for bit in 0..8 {
            let mut bad = ts;
            bad.check ^= 1 << bit;
            assert!(!bad.verify());
        }
    }

    #[test]
    fn burst_errors_within_a_byte_are_detected() {
        let ts = TipSector::encode([1, 2, 3, 4, 5, 6, 7, 8]);
        for mask in 1u8..=255 {
            let mut bad = ts;
            bad.data[4] ^= mask;
            assert!(!bad.verify(), "missed burst mask {mask:#x}");
        }
    }
}
