//! Defective-sector remapping policies (§6.1.1).
//!
//! Disks slip defective sectors or remap them to spares elsewhere in the
//! cylinder or zone, breaking physical sequentiality and making access
//! times unpredictable. A MEMS device can instead remap a defective tip
//! sector to the *same tip sector on a dedicated spare tip*: the spare is
//! read in the very same sled pass, so the remap costs nothing at service
//! time. [`RemappedDevice`] wraps any [`StorageDevice`] with a remap table
//! so both policies can be measured; [`SpareTipPolicy`] models the MEMS
//! spare-tip trade-off between capacity and fault tolerance.

use std::collections::HashMap;

use storage_sim::{PositionOracle, Request, ServiceBreakdown, SimTime, StorageDevice};

/// How defective logical sectors are redirected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemapPolicy {
    /// MEMS spare-tip remap: same position on a spare tip, zero
    /// service-time penalty (the LBN's physical timing is unchanged).
    SpareTip,
    /// Disk-style remap to a spare region elsewhere on the device; the
    /// access physically goes to the spare location.
    FarSpare,
}

/// A defective-LBN → spare-LBN redirection table under one
/// [`RemapPolicy`], usable standalone (the online `DegradedDevice` embeds
/// one) or via the [`RemappedDevice`] wrapper.
#[derive(Debug, Clone)]
pub struct RemapTable {
    policy: RemapPolicy,
    /// Defective LBN → spare LBN (used by [`RemapPolicy::FarSpare`]).
    table: HashMap<u64, u64>,
    /// Next spare slot to hand out.
    next_spare: u64,
}

impl RemapTable {
    /// Creates an empty table. `spare_base` is the first LBN of the spare
    /// region far remaps are directed to.
    pub fn new(policy: RemapPolicy, spare_base: u64) -> Self {
        RemapTable {
            policy,
            table: HashMap::new(),
            next_spare: spare_base,
        }
    }

    /// Marks `lbn` defective, allocating a spare for it.
    pub fn remap(&mut self, lbn: u64) {
        let spare = self.next_spare;
        self.next_spare += 1;
        self.table.insert(lbn, spare);
    }

    /// Number of remapped sectors.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Returns `true` if nothing is remapped.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The table's policy.
    pub fn policy(&self) -> RemapPolicy {
        self.policy
    }

    /// Applies the policy to a request: under [`RemapPolicy::SpareTip`]
    /// the request is unchanged (the spare tip reads in the same pass);
    /// under [`RemapPolicy::FarSpare`] a request touching a defective
    /// first sector is redirected to its spare.
    pub fn effective(&self, req: &Request) -> Request {
        match self.policy {
            RemapPolicy::SpareTip => *req,
            RemapPolicy::FarSpare => match self.table.get(&req.lbn) {
                Some(&spare) => Request::new(req.id, req.arrival, spare, req.sectors, req.kind),
                None => *req,
            },
        }
    }
}

/// A device wrapper applying a defective-sector remap table.
///
/// # Examples
///
/// ```
/// use mems_device::{MemsDevice, MemsParams};
/// use mems_os::fault::{RemapPolicy, RemappedDevice};
/// use storage_sim::{IoKind, Request, SimTime, StorageDevice};
///
/// let dev = MemsDevice::new(MemsParams::default());
/// let spare_base = dev.capacity_lbns() - 2700; // last cylinder as spares
/// let mut far = RemappedDevice::new(dev, RemapPolicy::FarSpare, spare_base);
/// far.remap(1000);
/// let req = Request::new(0, SimTime::ZERO, 1000, 8, IoKind::Read);
/// // The access physically lands in the spare region.
/// let b = far.service(&req, SimTime::ZERO);
/// assert!(b.total() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct RemappedDevice<D> {
    inner: D,
    table: RemapTable,
}

impl<D: StorageDevice> RemappedDevice<D> {
    /// Wraps a device. `spare_base` is the first LBN of the spare region
    /// far remaps are directed to.
    pub fn new(inner: D, policy: RemapPolicy, spare_base: u64) -> Self {
        RemappedDevice {
            inner,
            table: RemapTable::new(policy, spare_base),
        }
    }

    /// Marks `lbn` defective, allocating a spare for it.
    pub fn remap(&mut self, lbn: u64) {
        self.table.remap(lbn);
    }

    /// Number of remapped sectors.
    pub fn remapped_count(&self) -> usize {
        self.table.len()
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Applies the table's policy to a request.
    fn effective(&self, req: &Request) -> Request {
        self.table.effective(req)
    }
}

impl<D: StorageDevice> PositionOracle for RemappedDevice<D> {
    fn position_time(&self, req: &Request, now: SimTime) -> f64 {
        let eff = self.effective(req);
        self.inner.position_time(&eff, now)
    }
}

impl<D: StorageDevice> StorageDevice for RemappedDevice<D> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn capacity_lbns(&self) -> u64 {
        self.inner.capacity_lbns()
    }

    fn service(&mut self, req: &Request, now: SimTime) -> ServiceBreakdown {
        let eff = self.effective(req);
        self.inner.service(&eff, now)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// The spare-tip provisioning trade-off (§6.1.1): on tip failure the OS
/// chooses between sacrificing capacity (converting regular tips to
/// spares) and sacrificing fault tolerance in that region (converting
/// spares to regular tips).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpareTipPolicy {
    /// Spare tips currently provisioned per 64-tip stripe group.
    pub spares_per_group: u32,
    /// Broken tips already absorbed per group (worst-case group).
    pub consumed: u32,
}

impl SpareTipPolicy {
    /// Creates a policy with `spares_per_group` spares and none consumed.
    pub fn new(spares_per_group: u32) -> Self {
        SpareTipPolicy {
            spares_per_group,
            consumed: 0,
        }
    }

    /// Remaining tip failures the worst-case group can absorb without
    /// losing data or capacity.
    pub fn remaining_tolerance(&self) -> u32 {
        self.spares_per_group.saturating_sub(self.consumed)
    }

    /// Absorbs a tip failure. Returns `false` if no spare was available
    /// (the OS must now choose a sacrifice).
    pub fn absorb_failure(&mut self) -> bool {
        if self.remaining_tolerance() > 0 {
            self.consumed += 1;
            true
        } else {
            false
        }
    }

    /// Sacrifices capacity: converts `n` regular tips into spares,
    /// shrinking usable capacity by `n / 64` of the affected stripes.
    pub fn sacrifice_capacity(&mut self, n: u32) {
        self.spares_per_group += n;
    }

    /// Usable-capacity fraction for a group provisioned this way, out of
    /// a 64-data-tip budget.
    pub fn capacity_fraction(&self) -> f64 {
        64.0 / (64.0 + f64::from(self.spares_per_group))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_device::{MemsDevice, MemsParams, SledState};
    use storage_sim::IoKind;

    fn mems() -> MemsDevice {
        MemsDevice::new(MemsParams::default())
    }

    fn req(lbn: u64) -> Request {
        Request::new(0, SimTime::ZERO, lbn, 8, IoKind::Read)
    }

    #[test]
    fn spare_tip_remap_has_zero_penalty() {
        let base = mems();
        let capacity = base.capacity_lbns();
        let mut plain = mems();
        let mut spare = RemappedDevice::new(mems(), RemapPolicy::SpareTip, capacity - 2700);
        spare.remap(1000);
        let b_plain = plain.service(&req(1000), SimTime::ZERO);
        let b_spare = spare.service(&req(1000), SimTime::ZERO);
        assert_eq!(b_plain.total(), b_spare.total(), "§6.1.1: no penalty");
    }

    #[test]
    fn far_spare_remap_changes_timing() {
        // LBN 1000 is in cylinder 0; its spare lives in the last cylinder.
        // From a sled parked at cylinder 0, the remapped access must seek.
        let capacity = mems().capacity_lbns();
        let park = |mut d: MemsDevice| {
            let x = d.mapper().x_of_cylinder(0);
            d.set_state(SledState { x, y: 0.0, vy: 0.0 });
            d
        };
        let mut plain = park(mems());
        let b_plain = plain.service(&req(1000), SimTime::ZERO);
        let mut far = RemappedDevice::new(park(mems()), RemapPolicy::FarSpare, capacity - 2700);
        far.remap(1000);
        let b_far = far.service(&req(1000), SimTime::ZERO);
        assert!(
            b_far.positioning > b_plain.positioning,
            "far remap must pay a seek: {} vs {}",
            b_far.positioning,
            b_plain.positioning
        );
    }

    #[test]
    fn unmapped_lbns_pass_through() {
        let base = mems();
        let capacity = base.capacity_lbns();
        let mut wrapped = RemappedDevice::new(mems(), RemapPolicy::FarSpare, capacity - 2700);
        wrapped.remap(5000);
        let mut plain = mems();
        let b_w = wrapped.service(&req(123), SimTime::ZERO);
        let b_p = plain.service(&req(123), SimTime::ZERO);
        assert_eq!(b_w.total(), b_p.total());
        assert_eq!(wrapped.remapped_count(), 1);
    }

    #[test]
    fn spare_policy_tradeoff() {
        let mut p = SpareTipPolicy::new(2);
        assert_eq!(p.remaining_tolerance(), 2);
        assert!(p.absorb_failure());
        assert!(p.absorb_failure());
        assert!(!p.absorb_failure(), "spares exhausted");
        // The OS sacrifices capacity to restore tolerance.
        p.sacrifice_capacity(1);
        assert_eq!(p.remaining_tolerance(), 1);
        assert!(p.capacity_fraction() < 1.0);
    }
}
