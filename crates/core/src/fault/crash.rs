//! Host-crash recovery and device initialization (§6.3).
//!
//! MEMS devices initialize in ≈0.5 ms — no spindle to spin up and no
//! power surge, so a whole array restarts concurrently. High-end disks
//! take up to 25 s each and are often spun up serially to avoid power
//! spikes. The same gap shrinks the penalty of synchronous metadata
//! writes after a crash.

use storage_sim::{IoKind, Request, SimTime, StorageDevice};

/// Time for an array of `n` devices to become ready after power-on.
///
/// `serialize` forces one-at-a-time startup (the disk-array power-spike
/// avoidance §6.3 describes); MEMS devices need no such serialization.
///
/// # Examples
///
/// ```
/// use mems_os::fault::array_ready_time;
///
/// // Eight high-end disks spun up serially: 200 seconds.
/// assert_eq!(array_ready_time(8, 25.0, true), 200.0);
/// // Eight MEMS devices initialized concurrently: 0.5 ms.
/// assert_eq!(array_ready_time(8, 0.5e-3, false), 0.5e-3);
/// ```
pub fn array_ready_time(n: u32, per_device_startup: f64, serialize: bool) -> f64 {
    if serialize {
        f64::from(n) * per_device_startup
    } else {
        per_device_startup
    }
}

/// Mean service time of a burst of small synchronous writes (the
/// file-system metadata-update pattern of \[GP94]) issued back-to-back at
/// random locations — the §6.3 sync-write penalty measure.
pub fn sync_write_burst_mean<D: StorageDevice>(device: &mut D, count: u32, sectors: u32) -> f64 {
    assert!(count > 0);
    let capacity = device.capacity_lbns();
    let mut t = SimTime::ZERO;
    let mut total = 0.0;
    let mut lbn = 777u64;
    for i in 0..count {
        // Deterministic pseudo-random walk over the LBN space.
        lbn = (lbn
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407))
            % (capacity - u64::from(sectors));
        let req = Request::new(u64::from(i), t, lbn, sectors, IoKind::Write);
        let b = device.service(&req, t);
        total += b.total();
        t += SimTime::from_secs(b.total());
    }
    total / f64::from(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_disk::{DiskDevice, DiskParams};
    use mems_device::{MemsDevice, MemsParams};

    #[test]
    fn serialized_startup_scales_with_array_size() {
        assert_eq!(array_ready_time(1, 25.0, true), 25.0);
        assert_eq!(array_ready_time(4, 25.0, true), 100.0);
        assert_eq!(array_ready_time(4, 25.0, false), 25.0);
    }

    #[test]
    fn mems_array_restart_is_fifty_thousand_times_faster() {
        let disks = array_ready_time(8, 25.0, true);
        let mems = array_ready_time(8, 0.5e-3, false);
        assert!(disks / mems > 100_000.0, "ratio {}", disks / mems);
    }

    #[test]
    fn sync_writes_are_much_cheaper_on_mems() {
        // §6.3: "the much lower service times for MEMS-based storage
        // devices should decrease the penalty for these writes."
        let mut mems = MemsDevice::new(MemsParams::default());
        let mut disk = DiskDevice::new(DiskParams::quantum_atlas_10k());
        let m = sync_write_burst_mean(&mut mems, 200, 2);
        let d = sync_write_burst_mean(&mut disk, 200, 2);
        assert!(m < 1.2e-3, "MEMS sync write {m}");
        assert!(d > 5e-3, "disk sync write {d}");
        assert!(d / m > 5.0, "ratio {}", d / m);
    }
}
