//! Fault injection: tips, media defects, and transient read errors.
//!
//! Models the §6.1.1 fault menagerie against the device geometry so the
//! fault-report experiment can measure recoverability: broken probe tips
//! (the whole tip region is lost), grown media defects (a localized blob
//! of bits, which at MEMS densities wipes several adjacent tip sectors of
//! *one* tip region), and transient per-tip read errors. Because every
//! logical sector is striped across 64 distinct tips, all three fault
//! types surface as per-stripe erasure counts — exactly what the
//! horizontal code tolerates up to its parity width.

use std::collections::HashSet;

use mems_device::{Mapper, MemsGeometry};
use rand::rngs::SmallRng;
use storage_sim::rng;

/// A grown media defect: a contiguous blob of ruined tip-sector rows in
/// one tip's region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MediaDefect {
    /// The tip whose region is damaged.
    pub tip: u32,
    /// First ruined tip-sector row.
    pub row_start: u32,
    /// Last ruined tip-sector row (inclusive).
    pub row_end: u32,
}

/// The accumulated fault state of one device.
///
/// # Examples
///
/// ```
/// use mems_device::MemsParams;
/// use mems_os::fault::FaultState;
///
/// let params = MemsParams::default();
/// let mut faults = FaultState::new(&params);
/// faults.fail_tip(100);
/// // Tip 100 serves stripe slot (100 % 64) of specific sector slots; any
/// // logical sector it participates in now has one erasure.
/// let affected = faults.stripe_erasures_for_tip_group(100 / 64, 0);
/// assert_eq!(affected, 1);
/// ```
#[derive(Debug, Clone)]
pub struct FaultState {
    geom: MemsGeometry,
    failed_tips: HashSet<u32>,
    defects: Vec<MediaDefect>,
    tips: u32,
}

impl FaultState {
    /// Creates a fault-free state for a device.
    pub fn new(params: &mems_device::MemsParams) -> Self {
        FaultState {
            geom: params.geometry(),
            failed_tips: HashSet::new(),
            defects: Vec::new(),
            tips: params.tips,
        }
    }

    /// Marks a probe tip as broken (tip crash, actuator failure, faulty
    /// per-tip logic).
    ///
    /// # Panics
    ///
    /// Panics if the tip id is out of range.
    pub fn fail_tip(&mut self, tip: u32) {
        assert!(tip < self.tips, "tip {tip} out of range");
        self.failed_tips.insert(tip);
    }

    /// Records a grown media defect.
    ///
    /// # Panics
    ///
    /// Panics if the tip or rows are out of range.
    pub fn add_defect(&mut self, defect: MediaDefect) {
        assert!(defect.tip < self.tips);
        assert!(defect.row_start <= defect.row_end);
        assert!(defect.row_end < self.geom.rows_per_track);
        self.defects.push(defect);
    }

    /// Injects `n` random tip failures.
    pub fn inject_random_tip_failures(&mut self, n: usize, rng_state: &mut SmallRng) {
        for _ in 0..n {
            let tip = rng::uniform_u64(rng_state, u64::from(self.tips)) as u32;
            self.failed_tips.insert(tip);
        }
    }

    /// Injects `n` random media defects of 1–3 rows each.
    pub fn inject_random_defects(&mut self, n: usize, rng_state: &mut SmallRng) {
        for _ in 0..n {
            let tip = rng::uniform_u64(rng_state, u64::from(self.tips)) as u32;
            let row = rng::uniform_u64(rng_state, u64::from(self.geom.rows_per_track)) as u32;
            let len = 1 + rng::uniform_u64(rng_state, 3) as u32;
            let row_end = (row + len - 1).min(self.geom.rows_per_track - 1);
            self.defects.push(MediaDefect {
                tip,
                row_start: row,
                row_end,
            });
        }
    }

    /// Number of broken tips.
    pub fn failed_tip_count(&self) -> usize {
        self.failed_tips.len()
    }

    /// Returns `true` if no faults have been recorded — the fast path the
    /// online degraded wrapper uses to skip per-request stripe scans on a
    /// healthy device.
    pub fn is_clean(&self) -> bool {
        self.failed_tips.is_empty() && self.defects.is_empty()
    }

    /// Returns `true` if the tip sector at (tip, row) is unreadable.
    pub fn tip_sector_lost(&self, tip: u32, row: u32) -> bool {
        self.failed_tips.contains(&tip)
            || self
                .defects
                .iter()
                .any(|d| d.tip == tip && (d.row_start..=d.row_end).contains(&row))
    }

    /// Erasure count of the stripe serving slot 0 of a tip group and row:
    /// how many of the 64 consecutive tips backing one logical sector are
    /// unreadable there. `group` indexes runs of 64 tips.
    pub fn stripe_erasures_for_tip_group(&self, group: u32, row: u32) -> usize {
        let first = group * 64;
        (first..first + 64)
            .filter(|&t| t < self.tips && self.tip_sector_lost(t, row))
            .count()
    }

    /// Erasure count for the stripe backing a logical sector, given the
    /// device mapper. Tips are assigned so that track `t` uses tips
    /// `t·active .. (t+1)·active`, and slot `s` of a row uses the 64-tip
    /// group starting at `s·64` within the track's tips.
    pub fn stripe_erasures_for_lbn(&self, mapper: &Mapper, lbn: u64) -> usize {
        let addr = mapper.decompose(lbn);
        let active = self.tips / self.geom.tracks_per_cylinder;
        let first = addr.track * active + addr.slot * 64;
        (first..first + 64)
            .filter(|&t| self.tip_sector_lost(t, addr.row))
            .count()
    }

    /// Fraction of all logical sectors whose stripes have more than
    /// `parity` erasures — i.e. data actually lost despite the ECC.
    pub fn unrecoverable_fraction(&self, mapper: &Mapper, parity: usize) -> f64 {
        // Loss depends only on (track, row, slot), not the cylinder, so
        // the scan is small.
        let mut lost = 0u64;
        let mut total = 0u64;
        for track in 0..self.geom.tracks_per_cylinder {
            for row in 0..self.geom.rows_per_track {
                for slot in 0..self.geom.sectors_per_row {
                    total += 1;
                    let lbn = mapper.compose(mems_device::PhysAddr {
                        cylinder: 0,
                        track,
                        row,
                        slot,
                    });
                    if self.stripe_erasures_for_lbn(mapper, lbn) > parity {
                        lost += 1;
                    }
                }
            }
        }
        lost as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_device::MemsParams;

    fn state() -> (FaultState, Mapper) {
        let p = MemsParams::default();
        (FaultState::new(&p), Mapper::new(&p))
    }

    #[test]
    fn fresh_device_has_no_loss() {
        let (f, m) = state();
        assert_eq!(f.stripe_erasures_for_lbn(&m, 0), 0);
        assert_eq!(f.unrecoverable_fraction(&m, 0), 0.0);
    }

    #[test]
    fn failed_tip_erases_exactly_its_stripes() {
        let (mut f, m) = state();
        f.fail_tip(0);
        // Tip 0 is slot 0 of track 0: sector 0 of every row of track 0.
        assert_eq!(f.stripe_erasures_for_lbn(&m, 0), 1);
        // Slot 1 of the same row uses tips 64..128: unaffected.
        assert_eq!(f.stripe_erasures_for_lbn(&m, 1), 0);
        // Track 1 uses tips 1280..: unaffected.
        assert_eq!(f.stripe_erasures_for_lbn(&m, 540), 0);
    }

    #[test]
    fn single_faults_are_recoverable_with_any_parity() {
        let (mut f, m) = state();
        f.fail_tip(7);
        f.add_defect(MediaDefect {
            tip: 70,
            row_start: 3,
            row_end: 5,
        });
        assert_eq!(f.unrecoverable_fraction(&m, 1), 0.0);
    }

    #[test]
    fn defect_only_affects_its_rows() {
        let (mut f, _) = state();
        f.add_defect(MediaDefect {
            tip: 5,
            row_start: 10,
            row_end: 12,
        });
        assert!(f.tip_sector_lost(5, 10));
        assert!(f.tip_sector_lost(5, 12));
        assert!(!f.tip_sector_lost(5, 9));
        assert!(!f.tip_sector_lost(5, 13));
        assert!(!f.tip_sector_lost(6, 11));
    }

    #[test]
    fn colocated_failures_can_exceed_parity() {
        let (mut f, m) = state();
        // Break 9 tips of the same 64-tip stripe group.
        for t in 0..9 {
            f.fail_tip(t);
        }
        assert_eq!(f.stripe_erasures_for_lbn(&m, 0), 9);
        assert!(f.unrecoverable_fraction(&m, 8) > 0.0);
        assert_eq!(f.unrecoverable_fraction(&m, 9), 0.0);
    }

    #[test]
    fn random_injection_is_deterministic_per_seed() {
        let p = MemsParams::default();
        let mut a = FaultState::new(&p);
        let mut b = FaultState::new(&p);
        let mut ra = rng::seeded(11);
        let mut rb = rng::seeded(11);
        a.inject_random_tip_failures(50, &mut ra);
        b.inject_random_tip_failures(50, &mut rb);
        assert_eq!(a.failed_tip_count(), b.failed_tip_count());
        let m = Mapper::new(&p);
        assert_eq!(
            a.unrecoverable_fraction(&m, 2),
            b.unrecoverable_fraction(&m, 2)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_tip_rejected() {
        let (mut f, _) = state();
        f.fail_tip(10_000);
    }
}
