//! Failure management (§6): internal faults, device failures, and
//! crash recovery.
//!
//! The module's organizing insight from the paper: because every logical
//! sector is striped across 64 probe tips, a MEMS device can spend its
//! massive internal parallelism on redundancy. Concretely:
//!
//! * [`Gf256`] / [`ReedSolomon`] / [`StripeCodec`] — the *horizontal* ECC
//!   across tips plus the *vertical* per-tip check ([`crc8`],
//!   [`TipSector`]) that converts errors into erasures (§6.1.2). Faults
//!   that lose whole tip regions become recoverable.
//! * [`FaultState`] — tip/media fault injection against the device
//!   geometry, measuring how many stripes exceed the parity (§6.1.1).
//! * [`RemappedDevice`] / [`SpareTipPolicy`] — spare-tip remapping with
//!   zero service-time penalty vs disk-style far remapping, and the
//!   capacity-vs-tolerance trade-off (§6.1.1).
//! * [`read_modify_write`] / [`Raid5Array`] — Table 2's RMW comparison
//!   and the RAID-5 small-write engine it accelerates (§6.2).
//! * [`disk_seek_error_penalty`] / [`mems_seek_error_penalty`] — §6.1.3,
//!   plus the [`RetryPolicy`]/[`resolve_transient`] bounded-backoff retry
//!   machinery for transient errors.
//! * [`DegradedDevice`] — the *online* composition: a device wrapper that
//!   reacts to mid-run fault events (retry, spare-tip remap, RS
//!   reconstruction reads) and bills recovery as real service time.
//! * [`array_ready_time`] / [`sync_write_burst_mean`] — §6.3 restart and
//!   crash-recovery costs.

mod crash;
mod degraded;
mod gf256;
mod inject;
mod remap;
mod rmw;
mod rs;
mod seek_error;
mod store;
mod stripe;
mod vertical;

pub use crash::{array_ready_time, sync_write_burst_mean};
pub use degraded::{DegradedConfig, DegradedCounters, DegradedDevice};
pub use gf256::Gf256;
pub use inject::{FaultState, MediaDefect};
pub use remap::{RemapPolicy, RemapTable, RemappedDevice, SpareTipPolicy};
pub use rmw::{read_modify_write, Raid5Array, RmwBreakdown};
pub use rs::ReedSolomon;
pub use seek_error::{
    disk_seek_error_penalty, mems_seek_error_penalty, resolve_transient, RetryOutcome, RetryPolicy,
    SeekErrorPenalty,
};
pub use store::ReliableStore;
pub use stripe::{StripeCodec, DATA_TIPS, TIP_BYTES};
pub use vertical::{crc8, TipSector};
