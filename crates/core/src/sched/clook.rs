//! Cyclical LOOK (C-LOOK, §4.1).
//!
//! Services pending requests in ascending LBN order; when every pending
//! request is "behind" the most recent one, the sweep restarts from the
//! lowest pending LBN \[SLW66]. One-directional sweeps bound how long any
//! request can be overtaken, giving C-LOOK the best starvation resistance
//! (lowest σ²/µ²) of the four algorithms in both the disk and the MEMS
//! experiments.

use std::collections::BTreeMap;

use storage_sim::{PositionOracle, Request, SchedCounters, Scheduler, SimTime};

/// Ascending-LBN cyclical sweep scheduler.
///
/// # Examples
///
/// ```
/// use mems_os::sched::ClookScheduler;
/// use storage_sim::{ConstantDevice, IoKind, Request, Scheduler, SimTime};
///
/// let mut s = ClookScheduler::new();
/// let d = ConstantDevice::new(10_000, 1e-3);
/// s.enqueue(Request::new(0, SimTime::ZERO, 5_000, 8, IoKind::Read));
/// s.enqueue(Request::new(1, SimTime::ZERO, 1_000, 8, IoKind::Read));
/// // First sweep serves ascending from the head (LBN 0): 1000 then 5000.
/// assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().id, 1);
/// assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().id, 0);
/// ```
#[derive(Debug, Default)]
pub struct ClookScheduler {
    pending: BTreeMap<(u64, u64), Request>,
    /// LBN just past the end of the last serviced request.
    head: u64,
    counters: SchedCounters,
}

impl ClookScheduler {
    /// Creates an empty scheduler sweeping up from LBN 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for ClookScheduler {
    fn name(&self) -> &str {
        "C-LOOK"
    }

    fn enqueue(&mut self, req: Request) {
        self.pending.insert((req.lbn, req.id), req);
    }

    fn pick<O: PositionOracle + ?Sized>(&mut self, _device: &O, _now: SimTime) -> Option<Request> {
        if self.pending.is_empty() {
            return None;
        }
        // First pending request at or above the head; wrap to the lowest
        // LBN when the sweep is exhausted.
        let key = self
            .pending
            .range((self.head, 0)..)
            .next()
            .or_else(|| self.pending.iter().next())
            .map(|(&k, _)| k)
            .expect("pending is non-empty");
        let req = self.pending.remove(&key).expect("key just found");
        // The sweep considers exactly one candidate: the next LBN up (or
        // the wrap target).
        self.counters.picks += 1;
        self.counters.candidates_examined += 1;
        self.head = req.end_lbn();
        Some(req)
    }

    fn len(&self) -> usize {
        self.pending.len()
    }

    fn counters(&self) -> SchedCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage_sim::{ConstantDevice, IoKind};

    fn req(id: u64, lbn: u64) -> Request {
        Request::new(id, SimTime::ZERO, lbn, 8, IoKind::Read)
    }

    fn dev() -> ConstantDevice {
        ConstantDevice::new(1_000_000, 1e-3)
    }

    #[test]
    fn sweeps_ascending_then_wraps() {
        let mut s = ClookScheduler::new();
        let d = dev();
        for (id, lbn) in [(0u64, 500u64), (1, 100), (2, 900), (3, 300)] {
            s.enqueue(req(id, lbn));
        }
        let order: Vec<u64> =
            std::iter::from_fn(|| s.pick(&d, SimTime::ZERO).map(|r| r.id)).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn requests_behind_the_head_wait_for_next_sweep() {
        let mut s = ClookScheduler::new();
        let d = dev();
        s.enqueue(req(0, 500));
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().id, 0);
        // Head is now past 500; 100 is behind, 600 ahead.
        s.enqueue(req(1, 100));
        s.enqueue(req(2, 600));
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().id, 2, "finish the sweep");
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().id, 1, "then wrap");
    }

    #[test]
    fn never_reverses_within_a_sweep() {
        let mut s = ClookScheduler::new();
        let d = dev();
        for (id, lbn) in [(0u64, 10u64), (1, 20), (2, 30), (3, 40), (4, 50)] {
            s.enqueue(req(id, lbn));
        }
        let mut last = 0u64;
        while let Some(r) = s.pick(&d, SimTime::ZERO) {
            assert!(r.lbn >= last, "sweep went backwards");
            last = r.lbn;
        }
    }

    #[test]
    fn bounded_overtaking_prevents_starvation() {
        // Unlike SSTF, a request can be overtaken at most one sweep's
        // worth of work: after the head passes it once, it is next.
        let mut s = ClookScheduler::new();
        let d = dev();
        s.enqueue(req(0, 900_000));
        // A flood of low-LBN requests arrives.
        for i in 1..50 {
            s.enqueue(req(i, i * 100));
        }
        // The high request is served before any wrap-around.
        let mut seen_high = false;
        let mut wrapped_before_high = false;
        let mut last = 0u64;
        while let Some(r) = s.pick(&d, SimTime::ZERO) {
            if r.lbn < last && !seen_high {
                wrapped_before_high = true;
            }
            if r.id == 0 {
                seen_high = true;
            }
            last = r.lbn;
        }
        assert!(seen_high);
        assert!(!wrapped_before_high, "sweep must reach the far request");
    }

    #[test]
    fn empty_queue_returns_none() {
        let mut s = ClookScheduler::new();
        assert!(s.pick(&dev(), SimTime::ZERO).is_none());
        assert!(s.is_empty());
    }
}
