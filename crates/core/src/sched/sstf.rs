//! Shortest Seek Time First, LBN approximation (SSTF_LBN, §4.1).
//!
//! True SSTF needs seek-time knowledge few hosts have, so practical
//! implementations greedily pick the pending request whose starting LBN is
//! closest to the last accessed LBN \[WGP94]. On a MEMS device this
//! minimizes X-dimension sled movement but is blind to the Y dimension —
//! the gap SPTF exploits (§4.2).

use std::collections::BTreeMap;

use storage_sim::{PositionOracle, Request, SchedCounters, Scheduler, SimTime};

/// Greedy nearest-LBN scheduler.
///
/// # Examples
///
/// ```
/// use mems_os::sched::SstfScheduler;
/// use storage_sim::{ConstantDevice, IoKind, Request, Scheduler, SimTime};
///
/// let mut s = SstfScheduler::new();
/// let d = ConstantDevice::new(10_000, 1e-3);
/// s.enqueue(Request::new(0, SimTime::ZERO, 9_000, 8, IoKind::Read));
/// s.enqueue(Request::new(1, SimTime::ZERO, 100, 8, IoKind::Read));
/// // The head starts at LBN 0, so the nearby request wins despite
/// // arriving second.
/// assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().id, 1);
/// ```
#[derive(Debug, Default)]
pub struct SstfScheduler {
    /// Pending requests keyed by (start LBN, id) for nearest-neighbor
    /// lookup; the id disambiguates duplicates.
    pending: BTreeMap<(u64, u64), Request>,
    /// LBN just past the end of the last serviced request.
    head: u64,
    counters: SchedCounters,
}

impl SstfScheduler {
    /// Creates an empty scheduler with the head position at LBN 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for SstfScheduler {
    fn name(&self) -> &str {
        "SSTF_LBN"
    }

    fn enqueue(&mut self, req: Request) {
        self.pending.insert((req.lbn, req.id), req);
    }

    fn pick<O: PositionOracle + ?Sized>(&mut self, _device: &O, _now: SimTime) -> Option<Request> {
        // Nearest pending LBN to the head: the last entry at-or-below and
        // the first entry above; whichever is closer wins (ties go down,
        // matching classic SSTF implementations).
        let below = self
            .pending
            .range(..=(self.head, u64::MAX))
            .next_back()
            .map(|(&k, _)| k);
        let above = self
            .pending
            .range((self.head, u64::MAX)..)
            .next()
            .map(|(&k, _)| k);
        self.counters.candidates_examined +=
            u64::from(below.is_some()) + u64::from(above.is_some());
        let key = match (below, above) {
            (None, None) => return None,
            (Some(b), None) => b,
            (None, Some(a)) => a,
            (Some(b), Some(a)) => {
                if self.head - b.0 <= a.0 - self.head {
                    b
                } else {
                    a
                }
            }
        };
        let req = self.pending.remove(&key).expect("key just found");
        self.counters.picks += 1;
        self.head = req.end_lbn();
        Some(req)
    }

    fn len(&self) -> usize {
        self.pending.len()
    }

    fn counters(&self) -> SchedCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage_sim::{ConstantDevice, IoKind};

    fn req(id: u64, lbn: u64) -> Request {
        Request::new(id, SimTime::ZERO, lbn, 8, IoKind::Read)
    }

    fn dev() -> ConstantDevice {
        ConstantDevice::new(1_000_000, 1e-3)
    }

    #[test]
    fn picks_nearest_in_either_direction() {
        let mut s = SstfScheduler::new();
        let d = dev();
        s.enqueue(req(0, 500));
        s.enqueue(req(1, 100));
        s.enqueue(req(2, 900));
        // Head at 0: nearest is 100.
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().id, 1);
        // Head now at 108: nearest is 500 (vs 900).
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().id, 0);
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().id, 2);
        assert!(s.pick(&d, SimTime::ZERO).is_none());
    }

    #[test]
    fn greediness_can_starve_distant_requests() {
        // The classic SSTF pathology the paper's σ²/µ² metric captures:
        // a stream of nearby requests indefinitely delays a far one.
        let mut s = SstfScheduler::new();
        let d = dev();
        s.enqueue(req(0, 900_000)); // far
        for i in 1..10 {
            s.enqueue(req(i, i * 10));
        }
        for _ in 0..9 {
            let picked = s.pick(&d, SimTime::ZERO).unwrap();
            assert_ne!(picked.id, 0, "far request must wait to the end");
        }
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().id, 0);
    }

    #[test]
    fn duplicate_lbns_are_both_served() {
        let mut s = SstfScheduler::new();
        let d = dev();
        s.enqueue(req(0, 42));
        s.enqueue(req(1, 42));
        assert_eq!(s.len(), 2);
        let a = s.pick(&d, SimTime::ZERO).unwrap();
        let b = s.pick(&d, SimTime::ZERO).unwrap();
        assert_ne!(a.id, b.id);
        assert!(s.is_empty());
    }

    #[test]
    fn head_advances_to_request_end() {
        let mut s = SstfScheduler::new();
        let d = dev();
        s.enqueue(req(0, 100));
        let _ = s.pick(&d, SimTime::ZERO);
        // Head should now be at 108; 109 beats 95 (distance 1 vs 13).
        s.enqueue(req(1, 95));
        s.enqueue(req(2, 109));
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().id, 2);
    }
}
