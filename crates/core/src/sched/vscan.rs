//! V(R): the continuum between SSTF and SCAN.
//!
//! The classic parameterized scheduler from the literature the paper's
//! methodology builds on \[WGP94]: V(R) behaves like SSTF but charges a
//! penalty of `R × full_sweep` for reversing direction. `R = 0` is pure
//! SSTF; `R = 1` is effectively SCAN/LOOK (a reversal costs a full
//! stroke, so the head never turns back early); intermediate values
//! trade a little mean response time for a lot of starvation resistance
//! — a useful knob on MEMS devices, where §4.2 shows SSTF and C-LOOK
//! nearly tie on the mean but differ on σ²/µ².

use std::collections::BTreeMap;

use storage_sim::{PositionOracle, Request, Scheduler, SimTime};

/// The V(R) scheduler.
///
/// # Examples
///
/// ```
/// use mems_os::sched::VrScheduler;
/// use storage_sim::{ConstantDevice, IoKind, Request, Scheduler, SimTime};
///
/// // R = 0.2 over a 1000-sector device: reversing costs 200 virtual
/// // sectors of distance.
/// let mut s = VrScheduler::new(0.2, 1000);
/// let d = ConstantDevice::new(1000, 1e-3);
/// s.enqueue(Request::new(0, SimTime::ZERO, 100, 8, IoKind::Read));
/// s.enqueue(Request::new(1, SimTime::ZERO, 900, 8, IoKind::Read));
/// assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().id, 0);
/// ```
#[derive(Debug)]
pub struct VrScheduler {
    pending: BTreeMap<(u64, u64), Request>,
    head: u64,
    /// +1 sweeping toward higher LBNs, −1 lower.
    direction: i8,
    /// Reversal penalty in sectors (R × capacity).
    penalty: u64,
    name: String,
}

impl VrScheduler {
    /// Creates a V(R) scheduler for a device of `capacity` sectors.
    ///
    /// # Panics
    ///
    /// Panics unless `r` is in `[0, 1]` and `capacity` is nonzero.
    pub fn new(r: f64, capacity: u64) -> Self {
        assert!((0.0..=1.0).contains(&r), "R must be in [0,1]");
        assert!(capacity > 0, "device must have capacity");
        VrScheduler {
            pending: BTreeMap::new(),
            head: 0,
            direction: 1,
            penalty: (r * capacity as f64) as u64,
            name: format!("V({r})"),
        }
    }
}

impl Scheduler for VrScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn enqueue(&mut self, req: Request) {
        self.pending.insert((req.lbn, req.id), req);
    }

    fn pick<O: PositionOracle + ?Sized>(&mut self, _device: &O, _now: SimTime) -> Option<Request> {
        if self.pending.is_empty() {
            return None;
        }
        // Nearest candidates on each side of the head.
        let below = self
            .pending
            .range(..=(self.head, u64::MAX))
            .next_back()
            .map(|(&k, _)| k);
        let above = self
            .pending
            .range((self.head, u64::MAX)..)
            .next()
            .map(|(&k, _)| k);
        // Effective distance: the off-direction candidate pays the
        // reversal penalty.
        let score = |key: (u64, u64), toward_higher: bool| -> u64 {
            let dist = key.0.abs_diff(self.head);
            let reversing =
                (toward_higher && self.direction < 0) || (!toward_higher && self.direction > 0);
            dist + if reversing { self.penalty } else { 0 }
        };
        let key = match (below, above) {
            (None, None) => return None,
            (Some(b), None) => b,
            (None, Some(a)) => a,
            (Some(b), Some(a)) => {
                if score(b, false) <= score(a, true) {
                    b
                } else {
                    a
                }
            }
        };
        let req = self.pending.remove(&key).expect("key just found");
        self.direction = if req.lbn >= self.head { 1 } else { -1 };
        self.head = req.end_lbn();
        Some(req)
    }

    fn len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage_sim::{ConstantDevice, IoKind};

    fn req(id: u64, lbn: u64) -> Request {
        Request::new(id, SimTime::ZERO, lbn, 8, IoKind::Read)
    }

    fn dev() -> ConstantDevice {
        ConstantDevice::new(1_000_000, 1e-3)
    }

    #[test]
    fn r_zero_behaves_like_sstf() {
        let mut vr = VrScheduler::new(0.0, 1_000_000);
        let mut sstf = super::super::SstfScheduler::new();
        let d = dev();
        for (i, lbn) in [(0u64, 500u64), (1, 100), (2, 900), (3, 450), (4, 510)] {
            vr.enqueue(req(i, lbn));
            sstf.enqueue(req(i, lbn));
        }
        loop {
            match (vr.pick(&d, SimTime::ZERO), sstf.pick(&d, SimTime::ZERO)) {
                (Some(a), Some(b)) => assert_eq!(a.id, b.id),
                (None, None) => break,
                _ => panic!("schedulers drained unevenly"),
            }
        }
    }

    #[test]
    fn r_one_sweeps_like_an_elevator() {
        // With a full-stroke reversal penalty, the head keeps sweeping up
        // past a slightly-closer request behind it.
        let mut s = VrScheduler::new(1.0, 1_000_000);
        let d = dev();
        s.enqueue(req(0, 1000));
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().id, 0);
        // Head at 1008 moving up. A request 100 behind vs 5000 ahead:
        // SSTF would reverse; V(1.0) keeps going.
        s.enqueue(req(1, 908));
        s.enqueue(req(2, 6008));
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().id, 2);
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().id, 1);
    }

    #[test]
    fn intermediate_r_reverses_only_for_big_wins() {
        let mut s = VrScheduler::new(0.01, 1_000_000); // penalty = 10_000
        let d = dev();
        s.enqueue(req(0, 50_000));
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().id, 0);
        // Head at 50_008 moving up. Behind by 3_000 vs ahead by 5_000:
        // reversal effective distance 13_000 > 5_000, keep sweeping.
        s.enqueue(req(1, 47_008));
        s.enqueue(req(2, 55_008));
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().id, 2);
        // The remaining request is the only one pending; picked despite
        // being behind (head moves to 47_016).
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().id, 1);
        // Now reversal for a big win: behind by 100 vs ahead by 50_000.
        // Effective: 100 + 10_000 = 10_100 < 50_000 → reverse.
        let head = 47_016;
        s.enqueue(req(3, head - 100));
        s.enqueue(req(4, head + 50_000));
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().id, 3);
    }

    #[test]
    fn conserves_requests() {
        let mut s = VrScheduler::new(0.3, 1_000_000);
        let d = dev();
        for i in 0..40u64 {
            s.enqueue(req(i, (i * 997_001) % 900_000));
        }
        let mut seen = std::collections::HashSet::new();
        while let Some(r) = s.pick(&d, SimTime::ZERO) {
            assert!(seen.insert(r.id), "duplicate pick");
        }
        assert_eq!(seen.len(), 40);
    }

    #[test]
    #[should_panic(expected = "R must be")]
    fn out_of_range_r_rejected() {
        let _ = VrScheduler::new(1.5, 100);
    }
}
