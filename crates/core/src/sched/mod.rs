//! Request scheduling algorithms (§4).
//!
//! The paper compares four classic disk schedulers on MEMS-based storage:
//!
//! * **FCFS** — first-come-first-served, the reference point (provided by
//!   [`storage_sim::FifoScheduler`], re-exported here);
//! * **SSTF_LBN** — greedy shortest "seek" first, approximating seek time
//!   by LBN distance as real hosts must [`SstfScheduler`];
//! * **C-LOOK** — cyclical ascending-LBN sweeps, the starvation-resistant
//!   choice [`ClookScheduler`];
//! * **SPTF** — shortest positioning time first, which consults the
//!   device's actual mechanical state [`SptfScheduler`].
//!
//! Three documented extensions round out the algorithm family from the
//! disk-scheduling literature the paper builds on: an age-weighted SPTF
//! ([`AgedSptfScheduler`], the classic starvation remedy of \[WGP94]), the
//! bidirectional elevator ([`LookScheduler`]), the frozen-queue batch
//! elevator ([`FscanScheduler`]), and the V(R) SSTF↔SCAN continuum
//! ([`VrScheduler`]).

mod clook;
mod scan;
mod sptf;
mod sstf;
mod vscan;

pub use clook::ClookScheduler;
pub use scan::{FscanScheduler, LookScheduler};
pub use sptf::{
    AgedSptfScheduler, NaiveAgedSptfScheduler, NaiveSptfScheduler, RescanAgedSptfScheduler,
    RescanSptfScheduler, SptfScheduler,
};
pub use sstf::SstfScheduler;
pub use vscan::VrScheduler;

pub use storage_sim::FifoScheduler;

use storage_sim::DynScheduler;

/// The scheduling algorithms evaluated in the paper's figures, in the
/// order the figures list them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// First come, first served.
    Fcfs,
    /// Shortest seek (LBN distance) first.
    SstfLbn,
    /// Cyclical LOOK over ascending LBNs.
    Clook,
    /// Shortest positioning time first.
    Sptf,
}

impl Algorithm {
    /// All four algorithms, figure order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Fcfs,
        Algorithm::SstfLbn,
        Algorithm::Clook,
        Algorithm::Sptf,
    ];

    /// The paper's label for the algorithm.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Fcfs => "FCFS",
            Algorithm::SstfLbn => "SSTF_LBN",
            Algorithm::Clook => "C-LOOK",
            Algorithm::Sptf => "SPTF",
        }
    }

    /// Instantiates a fresh scheduler for the algorithm, type-erased
    /// behind the [`DynScheduler`] shim (the box itself implements
    /// `Scheduler`, so it drops into any generic driver).
    pub fn build(self) -> Box<dyn DynScheduler> {
        match self {
            Algorithm::Fcfs => Box::new(FifoScheduler::new()),
            Algorithm::SstfLbn => Box::new(SstfScheduler::new()),
            Algorithm::Clook => Box::new(ClookScheduler::new()),
            Algorithm::Sptf => Box::new(SptfScheduler::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(Algorithm::Fcfs.label(), "FCFS");
        assert_eq!(Algorithm::SstfLbn.label(), "SSTF_LBN");
        assert_eq!(Algorithm::Clook.label(), "C-LOOK");
        assert_eq!(Algorithm::Sptf.label(), "SPTF");
    }

    #[test]
    fn build_produces_matching_names() {
        for alg in Algorithm::ALL {
            assert_eq!(alg.build().name(), alg.label());
        }
    }
}
