//! Elevator variants: LOOK and FSCAN.
//!
//! Extensions beyond the paper's four algorithms, from the scheduling
//! literature it builds on [Den67, TP72, SCO90]:
//!
//! * [`LookScheduler`] — the bidirectional elevator: service in the
//!   current sweep direction, reverse at the last pending request.
//!   C-LOOK's one-way cousin; slightly better mean response, slightly
//!   worse fairness to the edges.
//! * [`FscanScheduler`] — freeze the queue into a batch and service the
//!   batch as one ascending sweep while new arrivals wait for the next
//!   batch; a simple anti-starvation device.

use std::collections::BTreeMap;

use storage_sim::{PositionOracle, Request, Scheduler, SimTime};

/// Bidirectional elevator (LOOK).
///
/// # Examples
///
/// ```
/// use mems_os::sched::LookScheduler;
/// use storage_sim::{ConstantDevice, IoKind, Request, Scheduler, SimTime};
///
/// let mut s = LookScheduler::new();
/// let d = ConstantDevice::new(10_000, 1e-3);
/// for (id, lbn) in [(0, 500u64), (1, 900), (2, 100)] {
///     s.enqueue(Request::new(id, SimTime::ZERO, lbn, 8, IoKind::Read));
/// }
/// // Sweeping up from 0: 100, 500, 900.
/// assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().lbn, 100);
/// assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().lbn, 500);
/// assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().lbn, 900);
/// ```
#[derive(Debug, Default)]
pub struct LookScheduler {
    pending: BTreeMap<(u64, u64), Request>,
    head: u64,
    ascending: bool,
}

impl LookScheduler {
    /// Creates an elevator at LBN 0 sweeping upward.
    pub fn new() -> Self {
        LookScheduler {
            pending: BTreeMap::new(),
            head: 0,
            ascending: true,
        }
    }
}

impl Scheduler for LookScheduler {
    fn name(&self) -> &str {
        "LOOK"
    }

    fn enqueue(&mut self, req: Request) {
        self.pending.insert((req.lbn, req.id), req);
    }

    fn pick<O: PositionOracle + ?Sized>(&mut self, _device: &O, _now: SimTime) -> Option<Request> {
        if self.pending.is_empty() {
            return None;
        }
        let key = if self.ascending {
            match self.pending.range((self.head, 0)..).next() {
                Some((&k, _)) => k,
                None => {
                    self.ascending = false;
                    *self
                        .pending
                        .keys()
                        .next_back()
                        .expect("pending is non-empty")
                }
            }
        } else {
            match self.pending.range(..=(self.head, u64::MAX)).next_back() {
                Some((&k, _)) => k,
                None => {
                    self.ascending = true;
                    *self.pending.keys().next().expect("pending is non-empty")
                }
            }
        };
        let req = self.pending.remove(&key).expect("key just found");
        self.head = if self.ascending {
            req.end_lbn()
        } else {
            req.lbn
        };
        Some(req)
    }

    fn len(&self) -> usize {
        self.pending.len()
    }
}

/// Frozen-queue elevator (FSCAN): arrivals during a sweep wait for the
/// next sweep.
#[derive(Debug, Default)]
pub struct FscanScheduler {
    /// The batch currently being swept, ascending.
    active: BTreeMap<(u64, u64), Request>,
    /// Arrivals since the sweep began.
    frozen: Vec<Request>,
}

impl FscanScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for FscanScheduler {
    fn name(&self) -> &str {
        "FSCAN"
    }

    fn enqueue(&mut self, req: Request) {
        self.frozen.push(req);
    }

    fn pick<O: PositionOracle + ?Sized>(&mut self, _device: &O, _now: SimTime) -> Option<Request> {
        if self.active.is_empty() {
            // Promote the frozen queue into a new batch.
            for req in self.frozen.drain(..) {
                self.active.insert((req.lbn, req.id), req);
            }
        }
        let key = *self.active.keys().next()?;
        self.active.remove(&key)
    }

    fn len(&self) -> usize {
        self.active.len() + self.frozen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage_sim::{ConstantDevice, IoKind};

    fn req(id: u64, lbn: u64) -> Request {
        Request::new(id, SimTime::ZERO, lbn, 8, IoKind::Read)
    }

    fn dev() -> ConstantDevice {
        ConstantDevice::new(1_000_000, 1e-3)
    }

    #[test]
    fn look_reverses_at_the_last_request() {
        let mut s = LookScheduler::new();
        let d = dev();
        for (id, lbn) in [(0u64, 300u64), (1, 700), (2, 500)] {
            s.enqueue(req(id, lbn));
        }
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().lbn, 300);
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().lbn, 500);
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().lbn, 700);
        // New arrivals below the head are served on the way back down.
        s.enqueue(req(3, 600));
        s.enqueue(req(4, 100));
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().lbn, 600);
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().lbn, 100);
    }

    #[test]
    fn look_downward_sweep_is_descending() {
        let mut s = LookScheduler::new();
        let d = dev();
        s.enqueue(req(0, 900));
        let _ = s.pick(&d, SimTime::ZERO);
        for (id, lbn) in [(1u64, 100u64), (2, 500), (3, 800)] {
            s.enqueue(req(id, lbn));
        }
        let order: Vec<u64> =
            std::iter::from_fn(|| s.pick(&d, SimTime::ZERO).map(|r| r.lbn)).collect();
        assert_eq!(order, vec![800, 500, 100]);
    }

    #[test]
    fn fscan_freezes_arrivals_during_a_sweep() {
        let mut s = FscanScheduler::new();
        let d = dev();
        s.enqueue(req(0, 500));
        s.enqueue(req(1, 100));
        // Batch forms on first pick: {100, 500}.
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().lbn, 100);
        // A new low-LBN arrival must NOT jump into the active sweep.
        s.enqueue(req(2, 50));
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().lbn, 500);
        // Next batch picks it up.
        assert_eq!(s.pick(&d, SimTime::ZERO).unwrap().lbn, 50);
        assert!(s.pick(&d, SimTime::ZERO).is_none());
    }

    #[test]
    fn fscan_len_counts_both_queues() {
        let mut s = FscanScheduler::new();
        let d = dev();
        s.enqueue(req(0, 1));
        s.enqueue(req(1, 2));
        let _ = s.pick(&d, SimTime::ZERO);
        s.enqueue(req(2, 3));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_schedulers_return_none() {
        let d = dev();
        assert!(LookScheduler::new().pick(&d, SimTime::ZERO).is_none());
        assert!(FscanScheduler::new().pick(&d, SimTime::ZERO).is_none());
    }
}
