//! Shortest Positioning Time First (SPTF, §4.1–4.2).
//!
//! SPTF asks the device for the actual positioning delay of every pending
//! request and greedily services the cheapest [SCO90, JW91]. On disks the
//! positioning estimate combines seek and rotational latency; on MEMS
//! devices it is `max(X seek + settle, Y seek)` — which is exactly why
//! SPTF beats the LBN-based algorithms there: LBN distance approximates
//! only the X component, and once an LBN-based scheduler has squeezed X
//! seeks down, the Y component (which it cannot see) dominates (§4.2,
//! §4.4).
//!
//! # The pruned scan
//!
//! A full scan runs one closed-form kinematic solve per pending request
//! per pick — O(queue²) solves per simulated second at saturation, the
//! dominant cost of the Fig. 6 sweeps. [`SptfScheduler`] instead keeps the
//! pending set indexed by the device's *positioning bucket* (the cylinder,
//! for mechanical devices) and expands outward from the bucket under the
//! head, alternating sides nearest-first. Two sound lower bounds terminate
//! the scan early:
//!
//! * [`PositionOracle::min_position_time_at_bucket_distance`] — once the
//!   floor for the next ring exceeds the best exact positioning time
//!   found, no farther request can win and the scan stops;
//! * [`PositionOracle::bucket_position_time_floor`] — a whole bucket is
//!   skipped when its own floor (for MEMS, the exact X-seek + settle)
//!   cannot beat the incumbent.
//!
//! Both prunes fire only on a *strict* excess, and ties between exact
//! scores break on enqueue order, so the pruned pick is bit-identical to
//! the naive full scan ([`NaiveSptfScheduler`], kept as the reference the
//! equivalence tests run against). Devices that do not implement the
//! bucket interface fall back to all-buckets-0, degrading gracefully to
//! the exact full scan.
//!
//! [`AgedSptfScheduler`] is the classic aged variant \[WGP94]: each
//! request's positioning estimate is discounted by how long it has waited,
//! bounding starvation at a small average-case cost. The same pruned scan
//! applies with the maximum outstanding age credit
//! (`weight × oldest wait`) folded into the bounds.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use storage_sim::{PositionOracle, Request, SchedCounters, Scheduler, SimTime};

/// Pending requests indexed by positioning bucket; entries carry the
/// enqueue sequence number that breaks exact-tie scores.
type BucketIndex = BTreeMap<u64, Vec<(u64, Request)>>;

/// How many emptied bucket `Vec`s a scheduler keeps around for reuse.
/// At steady state a bucket drains and refills once per handful of picks;
/// recycling its allocation removes a malloc/free pair from every cycle.
const SPARE_BUCKET_CAP: usize = 64;

/// Expands the bucket index outward from the device's current bucket and
/// returns the `(bucket, index-within-bucket)` of the request minimizing
/// `score(req, position_time)`, ties broken by enqueue sequence.
///
/// `credit_bound` is the largest amount by which any pending request's
/// score may undercut its positioning-time floor (0 for plain SPTF,
/// `weight × oldest wait` for the aged variant).
fn pruned_best<O: PositionOracle + ?Sized, F: Fn(&Request, f64) -> f64>(
    buckets: &BucketIndex,
    device: &O,
    now: SimTime,
    score: F,
    credit_bound: f64,
    counters: &mut SchedCounters,
) -> Option<(u64, usize)> {
    let cur = device.current_bucket();
    let mut down = buckets.range(..=cur).rev().peekable();
    let mut up = buckets
        .range((Bound::Excluded(cur), Bound::Unbounded))
        .peekable();
    // (score, seq, bucket, index) of the incumbent.
    let mut best: Option<(f64, u64, u64, usize)> = None;
    loop {
        let d_down = down.peek().map(|(b, _)| cur - **b);
        let d_up = up.peek().map(|(b, _)| **b - cur);
        // Visit the nearer side first (lower bucket on equal distance —
        // the choice cannot affect the result: every unpruned candidate
        // is scored exactly and ties break on enqueue order).
        let take_down = match (d_down, d_up) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(a), Some(b)) => a <= b,
        };
        let dist = if take_down {
            d_down.unwrap()
        } else {
            d_up.unwrap()
        };
        if let Some((best_score, ..)) = best {
            // Every unexplored bucket on either side is at least `dist`
            // buckets away, and the floor is nondecreasing in distance.
            if device.min_position_time_at_bucket_distance(dist) - credit_bound > best_score {
                break;
            }
        }
        let (&bucket, entries) = if take_down {
            down.next().unwrap()
        } else {
            up.next().unwrap()
        };
        if let Some((best_score, ..)) = best {
            if device.bucket_position_time_floor(bucket) - credit_bound > best_score {
                counters.buckets_pruned += 1;
                continue;
            }
        }
        counters.candidates_examined += entries.len() as u64;
        for (idx, (seq, req)) in entries.iter().enumerate() {
            let s = score(req, device.position_time(req, now));
            let better = match best {
                None => true,
                Some((best_score, best_seq, ..)) => {
                    s < best_score || (s == best_score && *seq < best_seq)
                }
            };
            if better {
                best = Some((s, *seq, bucket, idx));
            }
        }
    }
    best.map(|(_, _, bucket, idx)| (bucket, idx))
}

/// Removes and returns entry `idx` of `bucket`, dropping the bucket when
/// it empties (its allocation is recycled into `spare`). Order within the
/// bucket (enqueue order) is preserved.
fn take_entry(
    buckets: &mut BucketIndex,
    spare: &mut Vec<Vec<(u64, Request)>>,
    bucket: u64,
    idx: usize,
) -> (u64, Request) {
    let entries = buckets.get_mut(&bucket).expect("bucket exists");
    let entry = entries.remove(idx);
    if entries.is_empty() {
        let emptied = buckets.remove(&bucket).expect("bucket exists");
        if spare.len() < SPARE_BUCKET_CAP {
            spare.push(emptied);
        }
    }
    entry
}

/// Moves the arrivals of `inbox` into their positioning buckets, drawing
/// recycled `Vec`s from `spare` for buckets that spring into existence.
/// Sequence numbers grow monotonically, so appending keeps each bucket
/// sorted by enqueue order.
fn index_arrivals<O: PositionOracle + ?Sized>(
    inbox: &mut Vec<(u64, Request)>,
    buckets: &mut BucketIndex,
    spare: &mut Vec<Vec<(u64, Request)>>,
    device: &O,
) {
    for (seq, req) in inbox.drain(..) {
        buckets
            .entry(device.position_bucket(&req))
            .or_insert_with(|| spare.pop().unwrap_or_default())
            .push((seq, req));
    }
}

/// Greedy shortest-positioning-time scheduler with a pruned pick.
///
/// Each pick queries [`PositionOracle::position_time`] — the same
/// full-knowledge oracle the paper's simulator gives its SPTF — but only
/// for candidates the bucket bounds cannot exclude; the result is always
/// identical to the full scan.
///
/// # Examples
///
/// ```
/// use mems_os::sched::SptfScheduler;
/// use mems_device::{MemsDevice, MemsParams};
/// use storage_sim::{IoKind, Request, Scheduler, SimTime};
///
/// let mut s = SptfScheduler::new();
/// let dev = MemsDevice::new(MemsParams::default());
/// s.enqueue(Request::new(0, SimTime::ZERO, 0, 8, IoKind::Read));
/// s.enqueue(Request::new(1, SimTime::ZERO, 1250 * 2700, 8, IoKind::Read));
/// // The sled starts centered; the center-cylinder request is
/// // mechanically closer and wins.
/// assert_eq!(s.pick(&dev, SimTime::ZERO).unwrap().id, 1);
/// ```
#[derive(Debug, Default)]
pub struct SptfScheduler {
    /// Arrivals not yet bucketed (bucketing needs the device, which
    /// `enqueue` does not see).
    inbox: Vec<(u64, Request)>,
    buckets: BucketIndex,
    /// Recycled allocations of emptied buckets.
    spare: Vec<Vec<(u64, Request)>>,
    len: usize,
    next_seq: u64,
    counters: SchedCounters,
}

impl SptfScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for SptfScheduler {
    fn name(&self) -> &str {
        "SPTF"
    }

    fn enqueue(&mut self, req: Request) {
        self.inbox.push((self.next_seq, req));
        self.next_seq += 1;
        self.len += 1;
    }

    fn pick<O: PositionOracle + ?Sized>(&mut self, device: &O, now: SimTime) -> Option<Request> {
        index_arrivals(&mut self.inbox, &mut self.buckets, &mut self.spare, device);
        let (bucket, idx) = pruned_best(
            &self.buckets,
            device,
            now,
            |_, t| t,
            0.0,
            &mut self.counters,
        )?;
        self.counters.picks += 1;
        self.len -= 1;
        Some(take_entry(&mut self.buckets, &mut self.spare, bucket, idx).1)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn counters(&self) -> SchedCounters {
        self.counters
    }
}

/// The exact O(n)-scan SPTF the pruned implementation must match pick for
/// pick: scan every pending request in enqueue order, keep the strict
/// minimum. Retained as the equivalence-test reference and the
/// `perf_smoke` baseline.
#[derive(Debug, Default)]
pub struct NaiveSptfScheduler {
    pending: Vec<Request>,
    counters: SchedCounters,
}

impl NaiveSptfScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for NaiveSptfScheduler {
    fn name(&self) -> &str {
        "SPTF"
    }

    fn enqueue(&mut self, req: Request) {
        self.pending.push(req);
    }

    fn pick<O: PositionOracle + ?Sized>(&mut self, device: &O, now: SimTime) -> Option<Request> {
        if self.pending.is_empty() {
            return None;
        }
        self.counters.picks += 1;
        self.counters.candidates_examined += self.pending.len() as u64;
        let mut best = 0usize;
        let mut best_time = f64::INFINITY;
        for (i, req) in self.pending.iter().enumerate() {
            let t = device.position_time(req, now);
            if t < best_time {
                best_time = t;
                best = i;
            }
        }
        // Order-preserving removal keeps the scan's tie-break (earliest
        // enqueue wins) stable across picks.
        Some(self.pending.remove(best))
    }

    fn len(&self) -> usize {
        self.pending.len()
    }

    fn counters(&self) -> SchedCounters {
        self.counters
    }
}

/// Aged SPTF: positioning time minus `weight × wait time` \[WGP94],
/// served by the same pruned scan as [`SptfScheduler`].
///
/// With `weight = 0` this is plain SPTF; larger weights approach FCFS.
/// A weight in the low single digits (seconds of positioning credit per
/// second of waiting, i.e. dimensionless) bounds starvation effectively.
/// The prune stays sound under aging: the bounds are discounted by the
/// *maximum* credit any pending request has earned (`weight × oldest
/// wait`), tracked via the arrival set.
#[derive(Debug)]
pub struct AgedSptfScheduler {
    inbox: Vec<(u64, Request)>,
    buckets: BucketIndex,
    /// Recycled allocations of emptied buckets.
    spare: Vec<Vec<(u64, Request)>>,
    /// `(arrival, seq)` of every pending request; the first entry gives
    /// the oldest wait, hence the largest possible age credit.
    arrivals: BTreeSet<(SimTime, u64)>,
    len: usize,
    next_seq: u64,
    weight: f64,
    name: String,
    counters: SchedCounters,
}

impl AgedSptfScheduler {
    /// Creates an aged SPTF scheduler with the given aging weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite.
    pub fn new(weight: f64) -> Self {
        assert!(weight.is_finite() && weight >= 0.0, "weight must be >= 0");
        AgedSptfScheduler {
            inbox: Vec::new(),
            buckets: BTreeMap::new(),
            spare: Vec::new(),
            arrivals: BTreeSet::new(),
            len: 0,
            next_seq: 0,
            weight,
            name: format!("SPTF-aged({weight})"),
            counters: SchedCounters::default(),
        }
    }
}

impl Scheduler for AgedSptfScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn enqueue(&mut self, req: Request) {
        self.arrivals.insert((req.arrival, self.next_seq));
        self.inbox.push((self.next_seq, req));
        self.next_seq += 1;
        self.len += 1;
    }

    fn pick<O: PositionOracle + ?Sized>(&mut self, device: &O, now: SimTime) -> Option<Request> {
        index_arrivals(&mut self.inbox, &mut self.buckets, &mut self.spare, device);
        let credit_bound = match self.arrivals.first() {
            Some(&(oldest, _)) => self.weight * (now - oldest).as_secs().max(0.0),
            None => return None,
        };
        let weight = self.weight;
        let score = |req: &Request, t: f64| {
            let wait = (now - req.arrival).as_secs().max(0.0);
            t - weight * wait
        };
        let (bucket, idx) = pruned_best(
            &self.buckets,
            device,
            now,
            score,
            credit_bound,
            &mut self.counters,
        )?;
        self.counters.picks += 1;
        let (seq, req) = take_entry(&mut self.buckets, &mut self.spare, bucket, idx);
        self.arrivals.remove(&(req.arrival, seq));
        self.len -= 1;
        Some(req)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn counters(&self) -> SchedCounters {
        self.counters
    }
}

/// The exact O(n)-scan aged SPTF, the reference for
/// [`AgedSptfScheduler`]'s pruned pick.
#[derive(Debug)]
pub struct NaiveAgedSptfScheduler {
    pending: Vec<Request>,
    weight: f64,
    name: String,
    counters: SchedCounters,
}

impl NaiveAgedSptfScheduler {
    /// Creates a naive aged SPTF scheduler with the given aging weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite.
    pub fn new(weight: f64) -> Self {
        assert!(weight.is_finite() && weight >= 0.0, "weight must be >= 0");
        NaiveAgedSptfScheduler {
            pending: Vec::new(),
            weight,
            name: format!("SPTF-aged({weight})"),
            counters: SchedCounters::default(),
        }
    }
}

impl Scheduler for NaiveAgedSptfScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn enqueue(&mut self, req: Request) {
        self.pending.push(req);
    }

    fn pick<O: PositionOracle + ?Sized>(&mut self, device: &O, now: SimTime) -> Option<Request> {
        if self.pending.is_empty() {
            return None;
        }
        self.counters.picks += 1;
        self.counters.candidates_examined += self.pending.len() as u64;
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for (i, req) in self.pending.iter().enumerate() {
            let wait = (now - req.arrival).as_secs().max(0.0);
            let score = device.position_time(req, now) - self.weight * wait;
            if score < best_score {
                best_score = score;
                best = i;
            }
        }
        Some(self.pending.remove(best))
    }

    fn len(&self) -> usize {
        self.pending.len()
    }

    fn counters(&self) -> SchedCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_device::{MemsDevice, MemsParams};
    use storage_sim::{ConstantDevice, IoKind, StorageDevice};

    fn req(id: u64, lbn: u64) -> Request {
        Request::new(id, SimTime::ZERO, lbn, 8, IoKind::Read)
    }

    #[test]
    fn picks_the_mechanically_cheapest_request() {
        let mut s = SptfScheduler::new();
        let dev = MemsDevice::new(MemsParams::default());
        // Sled centered: LBN at the center cylinder (1250 · 2700) beats
        // both extremes.
        s.enqueue(req(0, 0));
        s.enqueue(req(1, 1250 * 2700));
        s.enqueue(req(2, 2499 * 2700));
        assert_eq!(s.pick(&dev, SimTime::ZERO).unwrap().id, 1);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn pick_agrees_with_position_time_oracle() {
        let mut s = SptfScheduler::new();
        let dev = MemsDevice::new(MemsParams::default());
        let candidates: Vec<Request> = (0..50).map(|i| req(i, i * 67_000 + 13)).collect();
        for r in &candidates {
            s.enqueue(*r);
        }
        let picked = s.pick(&dev, SimTime::ZERO).unwrap();
        let t_picked = dev.position_time(&picked, SimTime::ZERO);
        for r in &candidates {
            assert!(
                dev.position_time(r, SimTime::ZERO) >= t_picked - 1e-15,
                "picked request is not minimal"
            );
        }
    }

    #[test]
    fn aged_sptf_with_zero_weight_matches_sptf() {
        let dev = MemsDevice::new(MemsParams::default());
        let mut plain = SptfScheduler::new();
        let mut aged = AgedSptfScheduler::new(0.0);
        for i in 0..20 {
            let r = req(i, (i * 997_001) % 6_000_000);
            plain.enqueue(r);
            aged.enqueue(r);
        }
        while let (Some(a), Some(b)) = (
            plain.pick(&dev, SimTime::ZERO),
            aged.pick(&dev, SimTime::ZERO),
        ) {
            assert_eq!(a.id, b.id);
        }
        assert!(plain.is_empty() && aged.is_empty());
    }

    #[test]
    fn aging_promotes_old_requests() {
        let dev = MemsDevice::new(MemsParams::default());
        let mut aged = AgedSptfScheduler::new(1.0);
        // An old, mechanically distant request vs a fresh nearby one.
        let old = Request::new(0, SimTime::ZERO, 2499 * 2700, 8, IoKind::Read);
        let fresh = Request::new(1, SimTime::from_secs(10.0), 1250 * 2700, 8, IoKind::Read);
        aged.enqueue(old);
        aged.enqueue(fresh);
        // At t = 10 s the old request has earned 10 s of credit — far more
        // than any positioning difference.
        assert_eq!(aged.pick(&dev, SimTime::from_secs(10.0)).unwrap().id, 0);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn negative_weight_rejected() {
        let _ = AgedSptfScheduler::new(-1.0);
    }

    #[test]
    fn empty_queue_returns_none() {
        let mut s = SptfScheduler::new();
        let dev = MemsDevice::new(MemsParams::default());
        assert!(s.pick(&dev, SimTime::ZERO).is_none());
    }

    /// Deterministic LCG stream of in-range LBNs.
    fn lbn_stream(seed: u64, capacity: u64) -> impl FnMut() -> u64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state % (capacity - 8)
        }
    }

    /// Drains pruned and naive schedulers against twin devices (service
    /// is applied to both so their mechanical states track), asserting
    /// identical pick sequences. Interleaves batches of arrivals with
    /// picks so the scan runs from many different sled states.
    fn assert_pick_equivalence<P: Scheduler, N: Scheduler>(
        mut pruned: P,
        mut naive: N,
        seed: u64,
        use_table: bool,
    ) {
        let mut dev_p = MemsDevice::new(MemsParams::default()).with_seek_table(use_table);
        let mut dev_n = MemsDevice::new(MemsParams::default()).with_seek_table(use_table);
        let mut next_lbn = lbn_stream(seed, dev_p.capacity_lbns());
        let mut id = 0u64;
        let mut now = SimTime::ZERO;
        for batch in 0..40 {
            for _ in 0..16 {
                let r = Request::new(id, now, next_lbn(), 8, IoKind::Read);
                pruned.enqueue(r);
                naive.enqueue(r);
                id += 1;
            }
            // Drain half the queue (all of it on the last batch).
            let drain = if batch == 39 { usize::MAX } else { 8 };
            for _ in 0..drain {
                let (a, b) = (pruned.pick(&dev_p, now), naive.pick(&dev_n, now));
                match (a, b) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.id, b.id, "pick diverged at t={now:?} (seed {seed})");
                        let done_p = now + dev_p.service(&a, now).total_time();
                        let done_n = now + dev_n.service(&b, now).total_time();
                        assert_eq!(done_p, done_n);
                        now = done_p;
                    }
                    (None, None) => break,
                    (a, b) => panic!("queue length diverged: {a:?} vs {b:?}"),
                }
            }
        }
        assert!(pruned.is_empty() && naive.is_empty());
    }

    #[test]
    fn pruned_sptf_matches_naive_scan_across_seeds() {
        for seed in [1u64, 0xDEAD_BEEF, 0x5EED_0006] {
            assert_pick_equivalence(SptfScheduler::new(), NaiveSptfScheduler::new(), seed, true);
            assert_pick_equivalence(SptfScheduler::new(), NaiveSptfScheduler::new(), seed, false);
        }
    }

    #[test]
    fn pruned_aged_sptf_matches_naive_scan_across_seeds() {
        for seed in [2u64, 42, 0x5EED_0006] {
            for weight in [0.5, 3.0] {
                assert_pick_equivalence(
                    AgedSptfScheduler::new(weight),
                    NaiveAgedSptfScheduler::new(weight),
                    seed,
                    true,
                );
            }
        }
    }

    #[test]
    fn pruned_scan_examines_fewer_candidates_than_naive() {
        let dev = MemsDevice::new(MemsParams::default());
        let mut pruned = SptfScheduler::new();
        let mut naive = NaiveSptfScheduler::new();
        let mut next_lbn = lbn_stream(0xC0FFEE, dev.capacity_lbns());
        for i in 0..256 {
            let r = Request::new(i, SimTime::ZERO, next_lbn(), 8, IoKind::Read);
            pruned.enqueue(r);
            naive.enqueue(r);
        }
        while pruned.pick(&dev, SimTime::ZERO).is_some() {
            let _ = naive.pick(&dev, SimTime::ZERO);
        }
        let (cp, cn) = (pruned.counters(), naive.counters());
        assert_eq!(cp.picks, 256);
        assert_eq!(cn.picks, 256);
        // Naive scans the whole queue every pick: 256 + 255 + ... + 1.
        assert_eq!(cn.candidates_examined, 256 * 257 / 2);
        assert!(
            cp.candidates_examined < cn.candidates_examined / 2,
            "prune saved less than half the scans: {} vs {}",
            cp.candidates_examined,
            cn.candidates_examined
        );
        assert!(cp.candidates_examined >= cp.picks, "every pick scores >= 1");
    }

    #[test]
    fn default_bucket_device_degrades_to_full_scan() {
        // ConstantDevice keeps every request in bucket 0 with zero floors;
        // the pruned scan must still pick the earliest-enqueued minimum
        // (everything ties at position time 0).
        let dev = ConstantDevice::new(1000, 1e-3);
        let mut s = SptfScheduler::new();
        for i in 0..10 {
            s.enqueue(req(i, 990 - i * 7));
        }
        for expect in 0..10 {
            assert_eq!(s.pick(&dev, SimTime::ZERO).unwrap().id, expect);
        }
    }
}
