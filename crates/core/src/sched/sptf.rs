//! Shortest Positioning Time First (SPTF, §4.1–4.2).
//!
//! SPTF asks the device for the actual positioning delay of every pending
//! request and greedily services the cheapest [SCO90, JW91]. On disks the
//! positioning estimate combines seek and rotational latency; on MEMS
//! devices it is `max(X seek + settle, Y seek)` — which is exactly why
//! SPTF beats the LBN-based algorithms there: LBN distance approximates
//! only the X component, and once an LBN-based scheduler has squeezed X
//! seeks down, the Y component (which it cannot see) dominates (§4.2,
//! §4.4).
//!
//! [`AgedSptfScheduler`] is the classic aged variant \[WGP94]: each
//! request's positioning estimate is discounted by how long it has waited,
//! bounding starvation at a small average-case cost.

use storage_sim::{Request, Scheduler, SimTime, StorageDevice};

/// Greedy shortest-positioning-time scheduler.
///
/// Each pick scans the pending set and queries
/// [`StorageDevice::position_time`] for each candidate — the same
/// full-knowledge oracle the paper's simulator gives its SPTF.
///
/// # Examples
///
/// ```
/// use mems_os::sched::SptfScheduler;
/// use mems_device::{MemsDevice, MemsParams};
/// use storage_sim::{IoKind, Request, Scheduler, SimTime};
///
/// let mut s = SptfScheduler::new();
/// let dev = MemsDevice::new(MemsParams::default());
/// s.enqueue(Request::new(0, SimTime::ZERO, 0, 8, IoKind::Read));
/// s.enqueue(Request::new(1, SimTime::ZERO, 1250 * 2700, 8, IoKind::Read));
/// // The sled starts centered; the center-cylinder request is
/// // mechanically closer and wins.
/// assert_eq!(s.pick(&dev, SimTime::ZERO).unwrap().id, 1);
/// ```
#[derive(Debug, Default)]
pub struct SptfScheduler {
    pending: Vec<Request>,
}

impl SptfScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for SptfScheduler {
    fn name(&self) -> &str {
        "SPTF"
    }

    fn enqueue(&mut self, req: Request) {
        self.pending.push(req);
    }

    fn pick(&mut self, device: &dyn StorageDevice, now: SimTime) -> Option<Request> {
        if self.pending.is_empty() {
            return None;
        }
        let mut best = 0usize;
        let mut best_time = f64::INFINITY;
        for (i, req) in self.pending.iter().enumerate() {
            let t = device.position_time(req, now);
            if t < best_time {
                best_time = t;
                best = i;
            }
        }
        Some(self.pending.swap_remove(best))
    }

    fn len(&self) -> usize {
        self.pending.len()
    }
}

/// Aged SPTF: positioning time minus `weight × wait time` \[WGP94].
///
/// With `weight = 0` this is plain SPTF; larger weights approach FCFS.
/// A weight in the low single digits (seconds of positioning credit per
/// second of waiting, i.e. dimensionless) bounds starvation effectively.
#[derive(Debug)]
pub struct AgedSptfScheduler {
    pending: Vec<Request>,
    weight: f64,
    name: String,
}

impl AgedSptfScheduler {
    /// Creates an aged SPTF scheduler with the given aging weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite.
    pub fn new(weight: f64) -> Self {
        assert!(weight.is_finite() && weight >= 0.0, "weight must be >= 0");
        AgedSptfScheduler {
            pending: Vec::new(),
            weight,
            name: format!("SPTF-aged({weight})"),
        }
    }
}

impl Scheduler for AgedSptfScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn enqueue(&mut self, req: Request) {
        self.pending.push(req);
    }

    fn pick(&mut self, device: &dyn StorageDevice, now: SimTime) -> Option<Request> {
        if self.pending.is_empty() {
            return None;
        }
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for (i, req) in self.pending.iter().enumerate() {
            let wait = (now - req.arrival).as_secs().max(0.0);
            let score = device.position_time(req, now) - self.weight * wait;
            if score < best_score {
                best_score = score;
                best = i;
            }
        }
        Some(self.pending.swap_remove(best))
    }

    fn len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_device::{MemsDevice, MemsParams};
    use storage_sim::IoKind;

    fn req(id: u64, lbn: u64) -> Request {
        Request::new(id, SimTime::ZERO, lbn, 8, IoKind::Read)
    }

    #[test]
    fn picks_the_mechanically_cheapest_request() {
        let mut s = SptfScheduler::new();
        let dev = MemsDevice::new(MemsParams::default());
        // Sled centered: LBN at the center cylinder (1250 · 2700) beats
        // both extremes.
        s.enqueue(req(0, 0));
        s.enqueue(req(1, 1250 * 2700));
        s.enqueue(req(2, 2499 * 2700));
        assert_eq!(s.pick(&dev, SimTime::ZERO).unwrap().id, 1);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn pick_agrees_with_position_time_oracle() {
        let mut s = SptfScheduler::new();
        let dev = MemsDevice::new(MemsParams::default());
        let candidates: Vec<Request> = (0..50).map(|i| req(i, i * 67_000 + 13)).collect();
        for r in &candidates {
            s.enqueue(*r);
        }
        let picked = s.pick(&dev, SimTime::ZERO).unwrap();
        let t_picked = dev.position_time(&picked, SimTime::ZERO);
        for r in &candidates {
            assert!(
                dev.position_time(r, SimTime::ZERO) >= t_picked - 1e-15,
                "picked request is not minimal"
            );
        }
    }

    #[test]
    fn aged_sptf_with_zero_weight_matches_sptf() {
        let dev = MemsDevice::new(MemsParams::default());
        let mut plain = SptfScheduler::new();
        let mut aged = AgedSptfScheduler::new(0.0);
        for i in 0..20 {
            let r = req(i, (i * 997_001) % 6_000_000);
            plain.enqueue(r);
            aged.enqueue(r);
        }
        while let (Some(a), Some(b)) = (
            plain.pick(&dev, SimTime::ZERO),
            aged.pick(&dev, SimTime::ZERO),
        ) {
            assert_eq!(a.id, b.id);
        }
        assert!(plain.is_empty() && aged.is_empty());
    }

    #[test]
    fn aging_promotes_old_requests() {
        let dev = MemsDevice::new(MemsParams::default());
        let mut aged = AgedSptfScheduler::new(1.0);
        // An old, mechanically distant request vs a fresh nearby one.
        let old = Request::new(0, SimTime::ZERO, 2499 * 2700, 8, IoKind::Read);
        let fresh = Request::new(1, SimTime::from_secs(10.0), 1250 * 2700, 8, IoKind::Read);
        aged.enqueue(old);
        aged.enqueue(fresh);
        // At t = 10 s the old request has earned 10 s of credit — far more
        // than any positioning difference.
        assert_eq!(aged.pick(&dev, SimTime::from_secs(10.0)).unwrap().id, 0);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn negative_weight_rejected() {
        let _ = AgedSptfScheduler::new(-1.0);
    }

    #[test]
    fn empty_queue_returns_none() {
        let mut s = SptfScheduler::new();
        let dev = MemsDevice::new(MemsParams::default());
        assert!(s.pick(&dev, SimTime::ZERO).is_none());
    }
}
