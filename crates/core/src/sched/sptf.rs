//! Shortest Positioning Time First (SPTF, §4.1–4.2).
//!
//! SPTF asks the device for the actual positioning delay of every pending
//! request and greedily services the cheapest [SCO90, JW91]. On disks the
//! positioning estimate combines seek and rotational latency; on MEMS
//! devices it is `max(X seek + settle, Y seek)` — which is exactly why
//! SPTF beats the LBN-based algorithms there: LBN distance approximates
//! only the X component, and once an LBN-based scheduler has squeezed X
//! seeks down, the Y component (which it cannot see) dominates (§4.2,
//! §4.4).
//!
//! # The pruned scan
//!
//! A full scan runs one closed-form kinematic solve per pending request
//! per pick — O(queue²) solves per simulated second at saturation, the
//! dominant cost of the Fig. 6 sweeps. The pruned scan instead keeps the
//! pending set indexed by the device's *positioning bucket* (the cylinder,
//! for mechanical devices) and expands outward from the bucket under the
//! head, alternating sides nearest-first. Two sound lower bounds terminate
//! the scan early:
//!
//! * [`PositionOracle::min_position_time_at_bucket_distance`] — once the
//!   floor for the next ring exceeds the best exact positioning time
//!   found, no farther request can win and the scan stops;
//! * [`PositionOracle::bucket_position_time_floor`] — a whole bucket is
//!   skipped when its own floor (for MEMS, the exact X-seek + settle)
//!   cannot beat the incumbent.
//!
//! Both prunes fire only on a *strict* excess, and ties between exact
//! scores break on enqueue order, so the pruned pick is bit-identical to
//! the naive full scan ([`NaiveSptfScheduler`], kept as the reference the
//! equivalence tests run against). Devices that do not implement the
//! bucket interface fall back to all-buckets-0, degrading gracefully to
//! the exact full scan.
//!
//! # Incremental candidate maintenance
//!
//! [`SptfScheduler`] goes one step further than pruning: it keeps the
//! bucket index in a *flat* dense array with an occupancy bitmap (the ring
//! walk becomes bit scans instead of B-tree iterator hops) and caches each
//! bucket's best candidate under the device's [`PositionOracle::rest_key`]
//! — the collision-free fingerprint of everything positioning depends on
//! besides the request. A cached bucket answers a visit without rescoring
//! any candidate; the cache slot is invalidated only when the bucket is
//! touched by an arrival or removal, and the whole cache turns over when
//! the rest key changes. Debug builds cross-check every cache hit against
//! a fresh rescan of that bucket. [`RescanSptfScheduler`] retains the
//! previous B-tree rescan-every-pick implementation as the equivalence
//! reference.
//!
//! [`AgedSptfScheduler`] is the classic aged variant \[WGP94]: each
//! request's positioning estimate is discounted by how long it has waited,
//! bounding starvation at a small average-case cost. The same pruned scan
//! applies with the maximum outstanding age credit
//! (`weight × oldest wait`) folded into the bounds. Aged scores depend on
//! `now`, so the aged pick uses the flat index without the per-bucket
//! cache ([`RescanAgedSptfScheduler`] keeps the B-tree reference).

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use storage_sim::{PositionOracle, Request, SchedCounters, Scheduler, SimTime};

/// Pending requests indexed by positioning bucket; entries carry the
/// enqueue sequence number that breaks exact-tie scores.
type BucketIndex = BTreeMap<u64, Vec<(u64, Request)>>;

/// How many emptied bucket `Vec`s a rescan scheduler keeps around for
/// reuse. At steady state a bucket drains and refills once per handful of
/// picks; recycling its allocation removes a malloc/free pair per cycle.
const SPARE_BUCKET_CAP: usize = 64;

/// Expands the bucket index outward from the device's current bucket and
/// returns the `(bucket, index-within-bucket)` of the request minimizing
/// `score(req, position_time)`, ties broken by enqueue sequence.
///
/// `credit_bound` is the largest amount by which any pending request's
/// score may undercut its positioning-time floor (0 for plain SPTF,
/// `weight × oldest wait` for the aged variant).
fn pruned_best<O: PositionOracle + ?Sized, F: Fn(&Request, f64) -> f64>(
    buckets: &BucketIndex,
    device: &O,
    now: SimTime,
    score: F,
    credit_bound: f64,
    counters: &mut SchedCounters,
) -> Option<(u64, usize)> {
    let cur = device.current_bucket();
    let mut down = buckets.range(..=cur).rev().peekable();
    let mut up = buckets
        .range((Bound::Excluded(cur), Bound::Unbounded))
        .peekable();
    // (score, seq, bucket, index) of the incumbent.
    let mut best: Option<(f64, u64, u64, usize)> = None;
    loop {
        let d_down = down.peek().map(|(b, _)| cur - **b);
        let d_up = up.peek().map(|(b, _)| **b - cur);
        // Visit the nearer side first (lower bucket on equal distance —
        // the choice cannot affect the result: every unpruned candidate
        // is scored exactly and ties break on enqueue order).
        let take_down = match (d_down, d_up) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(a), Some(b)) => a <= b,
        };
        let dist = if take_down {
            d_down.unwrap()
        } else {
            d_up.unwrap()
        };
        if let Some((best_score, ..)) = best {
            // Every unexplored bucket on either side is at least `dist`
            // buckets away, and the floor is nondecreasing in distance.
            if device.min_position_time_at_bucket_distance(dist) - credit_bound > best_score {
                break;
            }
        }
        let (&bucket, entries) = if take_down {
            down.next().unwrap()
        } else {
            up.next().unwrap()
        };
        if let Some((best_score, ..)) = best {
            if device.bucket_position_time_floor(bucket) - credit_bound > best_score {
                counters.buckets_pruned += 1;
                continue;
            }
        }
        counters.candidates_examined += entries.len() as u64;
        for (idx, (seq, req)) in entries.iter().enumerate() {
            let s = score(req, device.position_time(req, now));
            let better = match best {
                None => true,
                Some((best_score, best_seq, ..)) => {
                    s < best_score || (s == best_score && *seq < best_seq)
                }
            };
            if better {
                best = Some((s, *seq, bucket, idx));
            }
        }
    }
    best.map(|(_, _, bucket, idx)| (bucket, idx))
}

/// Removes and returns entry `idx` of `bucket`, dropping the bucket when
/// it empties (its allocation is recycled into `spare`). Order within the
/// bucket (enqueue order) is preserved.
fn take_entry(
    buckets: &mut BucketIndex,
    spare: &mut Vec<Vec<(u64, Request)>>,
    bucket: u64,
    idx: usize,
) -> (u64, Request) {
    let entries = buckets.get_mut(&bucket).expect("bucket exists");
    let entry = entries.remove(idx);
    if entries.is_empty() {
        let emptied = buckets.remove(&bucket).expect("bucket exists");
        if spare.len() < SPARE_BUCKET_CAP {
            spare.push(emptied);
        }
    }
    entry
}

/// Moves the arrivals of `inbox` into their positioning buckets, drawing
/// recycled `Vec`s from `spare` for buckets that spring into existence.
/// Sequence numbers grow monotonically, so appending keeps each bucket
/// sorted by enqueue order.
fn index_arrivals<O: PositionOracle + ?Sized>(
    inbox: &mut Vec<(u64, Request)>,
    buckets: &mut BucketIndex,
    spare: &mut Vec<Vec<(u64, Request)>>,
    device: &O,
) {
    for (seq, req) in inbox.drain(..) {
        buckets
            .entry(device.position_bucket(&req))
            .or_insert_with(|| spare.pop().unwrap_or_default())
            .push((seq, req));
    }
}

/// Flat dense bucket index: bucket `b` lives at `buckets[b]`, occupancy is
/// a bitmap, and the outward ring walk of the pruned scan becomes
/// next/previous-set-bit scans instead of B-tree iterator hops.
///
/// Positioning buckets are small dense cylinder indices on every device in
/// the workspace (MEMS: 2500, disks: a few thousand), so the dense array
/// stays tiny; emptied buckets keep their `Vec` allocation in place, which
/// replaces the rescan scheduler's spare-list recycling.
#[derive(Debug, Default)]
struct FlatIndex {
    buckets: Vec<Vec<(u64, Request)>>,
    /// Occupancy bitmap: bit `b` of `words[b / 64]` ⇔ `buckets[b]` nonempty.
    words: Vec<u64>,
}

impl FlatIndex {
    /// Grows the dense array to cover `bucket`.
    fn ensure(&mut self, bucket: usize) {
        if bucket >= self.buckets.len() {
            self.buckets.resize_with(bucket + 1, Vec::new);
            self.words.resize(self.buckets.len().div_ceil(64), 0);
        }
    }

    /// Appends an entry (sequence numbers grow monotonically, so appending
    /// keeps the bucket in enqueue order).
    fn push(&mut self, bucket: usize, seq: u64, req: Request) {
        self.ensure(bucket);
        self.buckets[bucket].push((seq, req));
        self.words[bucket / 64] |= 1u64 << (bucket % 64);
    }

    /// Removes and returns entry `idx` of `bucket`, preserving the order
    /// of the remaining entries and keeping the emptied `Vec` in place.
    fn remove(&mut self, bucket: usize, idx: usize) -> (u64, Request) {
        let entry = self.buckets[bucket].remove(idx);
        if self.buckets[bucket].is_empty() {
            self.words[bucket / 64] &= !(1u64 << (bucket % 64));
        }
        entry
    }

    /// Highest occupied bucket ≤ `from`, if any.
    fn prev_occupied(&self, from: u64) -> Option<usize> {
        if self.buckets.is_empty() {
            return None;
        }
        let from = (from as usize).min(self.buckets.len() - 1);
        let (mut w, off) = (from / 64, from % 64);
        let mut m = self.words[w] & (!0u64 >> (63 - off));
        loop {
            if m != 0 {
                return Some(w * 64 + 63 - m.leading_zeros() as usize);
            }
            if w == 0 {
                return None;
            }
            w -= 1;
            m = self.words[w];
        }
    }

    /// Lowest occupied bucket ≥ `from`, if any.
    fn next_occupied(&self, from: u64) -> Option<usize> {
        let from = from as usize;
        if from >= self.buckets.len() {
            return None;
        }
        let (mut w, off) = (from / 64, from % 64);
        let mut m = self.words[w] & (!0u64 << off);
        loop {
            if m != 0 {
                return Some(w * 64 + m.trailing_zeros() as usize);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            m = self.words[w];
        }
    }
}

/// One cached per-bucket winner. Valid iff `gen` equals the cache's
/// current generation; a freshly grown or invalidated slot has `gen` 0,
/// which never matches (generations start at 1).
#[derive(Debug, Clone, Copy)]
struct CacheSlot {
    gen: u64,
    score: f64,
    seq: u64,
    idx: usize,
}

const INVALID_SLOT: CacheSlot = CacheSlot {
    gen: 0,
    score: f64::INFINITY,
    seq: u64::MAX,
    idx: 0,
};

/// Per-bucket best-candidate cache keyed on the device rest state.
///
/// A slot holds the winning `(score, seq, idx)` of its bucket as computed
/// under `key` (the device's [`PositionOracle::rest_key`]). The slot
/// answers later visits from the same rest state without rescoring, as
/// long as the bucket itself was not touched by an arrival or removal.
/// Correct only for rest-state-pure scores (plain SPTF's positioning
/// time); aged scores depend on `now` and must not use the cache.
#[derive(Debug, Default)]
struct PickCache {
    slots: Vec<CacheSlot>,
    /// Current generation; bumping it invalidates every slot at once.
    gen: u64,
    key: Option<[u64; 3]>,
}

impl PickCache {
    /// Grows the slot array to match the index (new slots start invalid).
    fn ensure(&mut self, buckets: usize) {
        if buckets > self.slots.len() {
            self.slots.resize(buckets, INVALID_SLOT);
        }
    }

    /// Invalidates one bucket's slot (the bucket's entries changed).
    fn invalidate_bucket(&mut self, bucket: usize) {
        if let Some(slot) = self.slots.get_mut(bucket) {
            slot.gen = 0;
        }
    }

    /// Retunes the cache to the device's rest state at this pick: a key
    /// match keeps every valid slot, anything else (including devices
    /// without a rest key) turns the whole cache over.
    fn sync_key(&mut self, key: Option<[u64; 3]>) {
        match key {
            Some(k) if self.key == Some(k) => {}
            _ => {
                self.gen += 1;
                self.key = key;
            }
        }
    }
}

/// Scores every entry of one bucket, returning the `(score, seq, idx)`
/// winner under the lexicographic `(score, seq)` order.
fn bucket_best<O: PositionOracle + ?Sized, F: Fn(&Request, f64) -> f64>(
    entries: &[(u64, Request)],
    device: &O,
    now: SimTime,
    score: &F,
) -> (f64, u64, usize) {
    let mut best = (f64::INFINITY, u64::MAX, 0usize);
    for (idx, (seq, req)) in entries.iter().enumerate() {
        let s = score(req, device.position_time(req, now));
        if s < best.0 || (s == best.0 && *seq < best.1) {
            best = (s, *seq, idx);
        }
    }
    best
}

/// The flat-index pruned scan: identical visit order, floor comparisons,
/// and tie-breaks to [`pruned_best`], with the ring walk on the occupancy
/// bitmap and (when `cache` is given) per-bucket winners answered from the
/// incremental cache.
///
/// `cache` must be `None` unless `score` depends only on the request and
/// the device rest state (plain SPTF); the caller is responsible for
/// keying and invalidating it. Debug builds cross-check every cache hit
/// against a fresh rescan of the hit bucket.
fn pruned_best_flat<O: PositionOracle + ?Sized, F: Fn(&Request, f64) -> f64>(
    index: &FlatIndex,
    mut cache: Option<&mut PickCache>,
    device: &O,
    now: SimTime,
    score: F,
    credit_bound: f64,
    counters: &mut SchedCounters,
) -> Option<(u64, usize)> {
    let cur = device.current_bucket();
    let mut down = index.prev_occupied(cur);
    let mut up = index.next_occupied(cur + 1);
    // (score, seq, bucket, index) of the incumbent.
    let mut best: Option<(f64, u64, u64, usize)> = None;
    // The distance floor is deterministic in `dist` for the duration of a
    // pick, and the walk checks it with nondecreasing `dist` — often the
    // same value twice in a row (a down visit then an up visit at equal
    // distance). Memoize the last answer.
    let mut floor_dist = u64::MAX;
    let mut floor_val = 0.0f64;
    loop {
        let d_down = down.map(|b| cur - b as u64);
        let d_up = up.map(|b| b as u64 - cur);
        let take_down = match (d_down, d_up) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(a), Some(b)) => a <= b,
        };
        let dist = if take_down {
            d_down.unwrap()
        } else {
            d_up.unwrap()
        };
        if let Some((best_score, ..)) = best {
            if dist != floor_dist {
                floor_val = device.min_position_time_at_bucket_distance(dist);
                floor_dist = dist;
            }
            if floor_val - credit_bound > best_score {
                break;
            }
        }
        let bucket = if take_down {
            let b = down.unwrap();
            down = if b == 0 {
                None
            } else {
                index.prev_occupied(b as u64 - 1)
            };
            b
        } else {
            let b = up.unwrap();
            up = index.next_occupied(b as u64 + 1);
            b
        };
        if let Some((best_score, ..)) = best {
            if device.bucket_position_time_floor(bucket as u64) - credit_bound > best_score {
                counters.buckets_pruned += 1;
                continue;
            }
        }
        let entries = &index.buckets[bucket];
        let (bs, bseq, bidx) = match cache.as_deref_mut() {
            Some(c) if c.slots[bucket].gen == c.gen => {
                counters.cached_best_hits += 1;
                let slot = c.slots[bucket];
                #[cfg(debug_assertions)]
                {
                    // Cross-check the hit against a fresh rescan of this
                    // one bucket (a full per-pick rescan would defeat the
                    // point of the cache even in debug builds).
                    let fresh = bucket_best(entries, device, now, &score);
                    debug_assert_eq!(
                        (fresh.0.to_bits(), fresh.1, fresh.2),
                        (slot.score.to_bits(), slot.seq, slot.idx),
                        "stale SPTF cache slot for bucket {bucket}"
                    );
                }
                (slot.score, slot.seq, slot.idx)
            }
            c => {
                counters.candidates_examined += entries.len() as u64;
                let fresh = bucket_best(entries, device, now, &score);
                if let Some(c) = c {
                    c.slots[bucket] = CacheSlot {
                        gen: c.gen,
                        score: fresh.0,
                        seq: fresh.1,
                        idx: fresh.2,
                    };
                }
                fresh
            }
        };
        // Bucket-winner-then-compare equals the entrywise comparison: the
        // lexicographic (score, seq) minimum is associative.
        let better = match best {
            None => true,
            Some((best_score, best_seq, ..)) => {
                bs < best_score || (bs == best_score && bseq < best_seq)
            }
        };
        if better {
            best = Some((bs, bseq, bucket as u64, bidx));
        }
    }
    best.map(|(_, _, bucket, idx)| (bucket, idx))
}

/// Moves the arrivals of `inbox` into the flat index, invalidating the
/// cache slot of every touched bucket.
fn index_arrivals_flat<O: PositionOracle + ?Sized>(
    inbox: &mut Vec<(u64, Request)>,
    index: &mut FlatIndex,
    mut cache: Option<&mut PickCache>,
    device: &O,
) {
    for (seq, req) in inbox.drain(..) {
        let bucket = usize::try_from(device.position_bucket(&req)).expect("bucket fits usize");
        index.push(bucket, seq, req);
        if let Some(c) = cache.as_deref_mut() {
            c.invalidate_bucket(bucket);
        }
    }
    if let Some(c) = cache {
        c.ensure(index.buckets.len());
    }
}

/// Greedy shortest-positioning-time scheduler with a pruned, incrementally
/// cached pick.
///
/// Each pick queries [`PositionOracle::position_time`] — the same
/// full-knowledge oracle the paper's simulator gives its SPTF — but only
/// for candidates the bucket bounds cannot exclude, and only in buckets
/// whose cached winner was invalidated since the last pick from the same
/// rest state; the result is always identical to the full scan.
///
/// # Examples
///
/// ```
/// use mems_os::sched::SptfScheduler;
/// use mems_device::{MemsDevice, MemsParams};
/// use storage_sim::{IoKind, Request, Scheduler, SimTime};
///
/// let mut s = SptfScheduler::new();
/// let dev = MemsDevice::new(MemsParams::default());
/// s.enqueue(Request::new(0, SimTime::ZERO, 0, 8, IoKind::Read));
/// s.enqueue(Request::new(1, SimTime::ZERO, 1250 * 2700, 8, IoKind::Read));
/// // The sled starts centered; the center-cylinder request is
/// // mechanically closer and wins.
/// assert_eq!(s.pick(&dev, SimTime::ZERO).unwrap().id, 1);
/// ```
#[derive(Debug, Default)]
pub struct SptfScheduler {
    /// Arrivals not yet bucketed (bucketing needs the device, which
    /// `enqueue` does not see).
    inbox: Vec<(u64, Request)>,
    index: FlatIndex,
    cache: PickCache,
    len: usize,
    next_seq: u64,
    counters: SchedCounters,
}

impl SptfScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for SptfScheduler {
    fn name(&self) -> &str {
        "SPTF"
    }

    fn enqueue(&mut self, req: Request) {
        self.inbox.push((self.next_seq, req));
        self.next_seq += 1;
        self.len += 1;
    }

    fn pick<O: PositionOracle + ?Sized>(&mut self, device: &O, now: SimTime) -> Option<Request> {
        index_arrivals_flat(
            &mut self.inbox,
            &mut self.index,
            Some(&mut self.cache),
            device,
        );
        self.cache.sync_key(device.rest_key(now));
        let (bucket, idx) = pruned_best_flat(
            &self.index,
            Some(&mut self.cache),
            device,
            now,
            |_, t| t,
            0.0,
            &mut self.counters,
        )?;
        self.counters.picks += 1;
        self.len -= 1;
        let bucket = bucket as usize;
        self.cache.invalidate_bucket(bucket);
        Some(self.index.remove(bucket, idx).1)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn counters(&self) -> SchedCounters {
        self.counters
    }
}

/// The previous pruned SPTF: a B-tree bucket index rescanned on every
/// pick. Retained as the reference [`SptfScheduler`]'s incremental cache
/// is proven against (equivalence tests and `perf_smoke` ladders).
#[derive(Debug, Default)]
pub struct RescanSptfScheduler {
    inbox: Vec<(u64, Request)>,
    buckets: BucketIndex,
    /// Recycled allocations of emptied buckets.
    spare: Vec<Vec<(u64, Request)>>,
    len: usize,
    next_seq: u64,
    counters: SchedCounters,
}

impl RescanSptfScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RescanSptfScheduler {
    fn name(&self) -> &str {
        "SPTF"
    }

    fn enqueue(&mut self, req: Request) {
        self.inbox.push((self.next_seq, req));
        self.next_seq += 1;
        self.len += 1;
    }

    fn pick<O: PositionOracle + ?Sized>(&mut self, device: &O, now: SimTime) -> Option<Request> {
        index_arrivals(&mut self.inbox, &mut self.buckets, &mut self.spare, device);
        let (bucket, idx) = pruned_best(
            &self.buckets,
            device,
            now,
            |_, t| t,
            0.0,
            &mut self.counters,
        )?;
        self.counters.picks += 1;
        self.len -= 1;
        Some(take_entry(&mut self.buckets, &mut self.spare, bucket, idx).1)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn counters(&self) -> SchedCounters {
        self.counters
    }
}

/// The exact O(n)-scan SPTF the pruned implementations must match pick for
/// pick: scan every pending request in enqueue order, keep the strict
/// minimum. Retained as the equivalence-test reference and the
/// `perf_smoke` baseline.
#[derive(Debug, Default)]
pub struct NaiveSptfScheduler {
    pending: Vec<Request>,
    counters: SchedCounters,
}

impl NaiveSptfScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for NaiveSptfScheduler {
    fn name(&self) -> &str {
        "SPTF"
    }

    fn enqueue(&mut self, req: Request) {
        self.pending.push(req);
    }

    fn pick<O: PositionOracle + ?Sized>(&mut self, device: &O, now: SimTime) -> Option<Request> {
        if self.pending.is_empty() {
            return None;
        }
        self.counters.picks += 1;
        self.counters.candidates_examined += self.pending.len() as u64;
        let mut best = 0usize;
        let mut best_time = f64::INFINITY;
        for (i, req) in self.pending.iter().enumerate() {
            let t = device.position_time(req, now);
            if t < best_time {
                best_time = t;
                best = i;
            }
        }
        // Order-preserving removal keeps the scan's tie-break (earliest
        // enqueue wins) stable across picks.
        Some(self.pending.remove(best))
    }

    fn len(&self) -> usize {
        self.pending.len()
    }

    fn counters(&self) -> SchedCounters {
        self.counters
    }
}

/// Aged SPTF: positioning time minus `weight × wait time` \[WGP94],
/// served by the same flat-index pruned scan as [`SptfScheduler`].
///
/// With `weight = 0` this is plain SPTF; larger weights approach FCFS.
/// A weight in the low single digits (seconds of positioning credit per
/// second of waiting, i.e. dimensionless) bounds starvation effectively.
/// The prune stays sound under aging: the bounds are discounted by the
/// *maximum* credit any pending request has earned (`weight × oldest
/// wait`), tracked via the arrival set. Aged scores depend on `now`, so
/// the per-bucket winner cache does not apply.
#[derive(Debug)]
pub struct AgedSptfScheduler {
    inbox: Vec<(u64, Request)>,
    index: FlatIndex,
    /// `(arrival, seq)` of every pending request; the first entry gives
    /// the oldest wait, hence the largest possible age credit.
    arrivals: BTreeSet<(SimTime, u64)>,
    len: usize,
    next_seq: u64,
    weight: f64,
    name: String,
    counters: SchedCounters,
}

impl AgedSptfScheduler {
    /// Creates an aged SPTF scheduler with the given aging weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite.
    pub fn new(weight: f64) -> Self {
        assert!(weight.is_finite() && weight >= 0.0, "weight must be >= 0");
        AgedSptfScheduler {
            inbox: Vec::new(),
            index: FlatIndex::default(),
            arrivals: BTreeSet::new(),
            len: 0,
            next_seq: 0,
            weight,
            name: format!("SPTF-aged({weight})"),
            counters: SchedCounters::default(),
        }
    }
}

impl Scheduler for AgedSptfScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn enqueue(&mut self, req: Request) {
        self.arrivals.insert((req.arrival, self.next_seq));
        self.inbox.push((self.next_seq, req));
        self.next_seq += 1;
        self.len += 1;
    }

    fn pick<O: PositionOracle + ?Sized>(&mut self, device: &O, now: SimTime) -> Option<Request> {
        index_arrivals_flat(&mut self.inbox, &mut self.index, None, device);
        let credit_bound = match self.arrivals.first() {
            Some(&(oldest, _)) => self.weight * (now - oldest).as_secs().max(0.0),
            None => return None,
        };
        let weight = self.weight;
        let score = |req: &Request, t: f64| {
            let wait = (now - req.arrival).as_secs().max(0.0);
            t - weight * wait
        };
        let (bucket, idx) = pruned_best_flat(
            &self.index,
            None,
            device,
            now,
            score,
            credit_bound,
            &mut self.counters,
        )?;
        self.counters.picks += 1;
        let (seq, req) = self.index.remove(bucket as usize, idx);
        self.arrivals.remove(&(req.arrival, seq));
        self.len -= 1;
        Some(req)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn counters(&self) -> SchedCounters {
        self.counters
    }
}

/// The previous pruned aged SPTF on the B-tree bucket index, the
/// reference for [`AgedSptfScheduler`]'s flat-index pick.
#[derive(Debug)]
pub struct RescanAgedSptfScheduler {
    inbox: Vec<(u64, Request)>,
    buckets: BucketIndex,
    /// Recycled allocations of emptied buckets.
    spare: Vec<Vec<(u64, Request)>>,
    /// `(arrival, seq)` of every pending request; the first entry gives
    /// the oldest wait, hence the largest possible age credit.
    arrivals: BTreeSet<(SimTime, u64)>,
    len: usize,
    next_seq: u64,
    weight: f64,
    name: String,
    counters: SchedCounters,
}

impl RescanAgedSptfScheduler {
    /// Creates an aged SPTF scheduler with the given aging weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite.
    pub fn new(weight: f64) -> Self {
        assert!(weight.is_finite() && weight >= 0.0, "weight must be >= 0");
        RescanAgedSptfScheduler {
            inbox: Vec::new(),
            buckets: BTreeMap::new(),
            spare: Vec::new(),
            arrivals: BTreeSet::new(),
            len: 0,
            next_seq: 0,
            weight,
            name: format!("SPTF-aged({weight})"),
            counters: SchedCounters::default(),
        }
    }
}

impl Scheduler for RescanAgedSptfScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn enqueue(&mut self, req: Request) {
        self.arrivals.insert((req.arrival, self.next_seq));
        self.inbox.push((self.next_seq, req));
        self.next_seq += 1;
        self.len += 1;
    }

    fn pick<O: PositionOracle + ?Sized>(&mut self, device: &O, now: SimTime) -> Option<Request> {
        index_arrivals(&mut self.inbox, &mut self.buckets, &mut self.spare, device);
        let credit_bound = match self.arrivals.first() {
            Some(&(oldest, _)) => self.weight * (now - oldest).as_secs().max(0.0),
            None => return None,
        };
        let weight = self.weight;
        let score = |req: &Request, t: f64| {
            let wait = (now - req.arrival).as_secs().max(0.0);
            t - weight * wait
        };
        let (bucket, idx) = pruned_best(
            &self.buckets,
            device,
            now,
            score,
            credit_bound,
            &mut self.counters,
        )?;
        self.counters.picks += 1;
        let (seq, req) = take_entry(&mut self.buckets, &mut self.spare, bucket, idx);
        self.arrivals.remove(&(req.arrival, seq));
        self.len -= 1;
        Some(req)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn counters(&self) -> SchedCounters {
        self.counters
    }
}

/// The exact O(n)-scan aged SPTF, the reference for
/// [`AgedSptfScheduler`]'s pruned pick.
#[derive(Debug)]
pub struct NaiveAgedSptfScheduler {
    pending: Vec<Request>,
    weight: f64,
    name: String,
    counters: SchedCounters,
}

impl NaiveAgedSptfScheduler {
    /// Creates a naive aged SPTF scheduler with the given aging weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite.
    pub fn new(weight: f64) -> Self {
        assert!(weight.is_finite() && weight >= 0.0, "weight must be >= 0");
        NaiveAgedSptfScheduler {
            pending: Vec::new(),
            weight,
            name: format!("SPTF-aged({weight})"),
            counters: SchedCounters::default(),
        }
    }
}

impl Scheduler for NaiveAgedSptfScheduler {
    fn name(&self) -> &str {
        &self.name
    }

    fn enqueue(&mut self, req: Request) {
        self.pending.push(req);
    }

    fn pick<O: PositionOracle + ?Sized>(&mut self, device: &O, now: SimTime) -> Option<Request> {
        if self.pending.is_empty() {
            return None;
        }
        self.counters.picks += 1;
        self.counters.candidates_examined += self.pending.len() as u64;
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for (i, req) in self.pending.iter().enumerate() {
            let wait = (now - req.arrival).as_secs().max(0.0);
            let score = device.position_time(req, now) - self.weight * wait;
            if score < best_score {
                best_score = score;
                best = i;
            }
        }
        Some(self.pending.remove(best))
    }

    fn len(&self) -> usize {
        self.pending.len()
    }

    fn counters(&self) -> SchedCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_device::{MemsDevice, MemsParams};
    use storage_sim::{ConstantDevice, IoKind, StorageDevice};

    fn req(id: u64, lbn: u64) -> Request {
        Request::new(id, SimTime::ZERO, lbn, 8, IoKind::Read)
    }

    #[test]
    fn picks_the_mechanically_cheapest_request() {
        let mut s = SptfScheduler::new();
        let dev = MemsDevice::new(MemsParams::default());
        // Sled centered: LBN at the center cylinder (1250 · 2700) beats
        // both extremes.
        s.enqueue(req(0, 0));
        s.enqueue(req(1, 1250 * 2700));
        s.enqueue(req(2, 2499 * 2700));
        assert_eq!(s.pick(&dev, SimTime::ZERO).unwrap().id, 1);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn pick_agrees_with_position_time_oracle() {
        let mut s = SptfScheduler::new();
        let dev = MemsDevice::new(MemsParams::default());
        let candidates: Vec<Request> = (0..50).map(|i| req(i, i * 67_000 + 13)).collect();
        for r in &candidates {
            s.enqueue(*r);
        }
        let picked = s.pick(&dev, SimTime::ZERO).unwrap();
        let t_picked = dev.position_time(&picked, SimTime::ZERO);
        for r in &candidates {
            assert!(
                dev.position_time(r, SimTime::ZERO) >= t_picked - 1e-15,
                "picked request is not minimal"
            );
        }
    }

    #[test]
    fn aged_sptf_with_zero_weight_matches_sptf() {
        let dev = MemsDevice::new(MemsParams::default());
        let mut plain = SptfScheduler::new();
        let mut aged = AgedSptfScheduler::new(0.0);
        for i in 0..20 {
            let r = req(i, (i * 997_001) % 6_000_000);
            plain.enqueue(r);
            aged.enqueue(r);
        }
        while let (Some(a), Some(b)) = (
            plain.pick(&dev, SimTime::ZERO),
            aged.pick(&dev, SimTime::ZERO),
        ) {
            assert_eq!(a.id, b.id);
        }
        assert!(plain.is_empty() && aged.is_empty());
    }

    #[test]
    fn aging_promotes_old_requests() {
        let dev = MemsDevice::new(MemsParams::default());
        let mut aged = AgedSptfScheduler::new(1.0);
        // An old, mechanically distant request vs a fresh nearby one.
        let old = Request::new(0, SimTime::ZERO, 2499 * 2700, 8, IoKind::Read);
        let fresh = Request::new(1, SimTime::from_secs(10.0), 1250 * 2700, 8, IoKind::Read);
        aged.enqueue(old);
        aged.enqueue(fresh);
        // At t = 10 s the old request has earned 10 s of credit — far more
        // than any positioning difference.
        assert_eq!(aged.pick(&dev, SimTime::from_secs(10.0)).unwrap().id, 0);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn negative_weight_rejected() {
        let _ = AgedSptfScheduler::new(-1.0);
    }

    #[test]
    fn empty_queue_returns_none() {
        let mut s = SptfScheduler::new();
        let dev = MemsDevice::new(MemsParams::default());
        assert!(s.pick(&dev, SimTime::ZERO).is_none());
    }

    /// Deterministic LCG stream of in-range LBNs.
    fn lbn_stream(seed: u64, capacity: u64) -> impl FnMut() -> u64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state % (capacity - 8)
        }
    }

    /// Drains two schedulers against twin devices (service is applied to
    /// both so their mechanical states track), asserting identical pick
    /// sequences. Interleaves batches of arrivals with picks so the scan
    /// runs from many different sled states.
    fn assert_pick_equivalence<P: Scheduler, N: Scheduler>(
        mut pruned: P,
        mut naive: N,
        seed: u64,
        use_table: bool,
    ) {
        let mut dev_p = MemsDevice::new(MemsParams::default()).with_seek_table(use_table);
        let mut dev_n = MemsDevice::new(MemsParams::default()).with_seek_table(use_table);
        let mut next_lbn = lbn_stream(seed, dev_p.capacity_lbns());
        let mut id = 0u64;
        let mut now = SimTime::ZERO;
        for batch in 0..40 {
            for _ in 0..16 {
                let r = Request::new(id, now, next_lbn(), 8, IoKind::Read);
                pruned.enqueue(r);
                naive.enqueue(r);
                id += 1;
            }
            // Drain half the queue (all of it on the last batch).
            let drain = if batch == 39 { usize::MAX } else { 8 };
            for _ in 0..drain {
                let (a, b) = (pruned.pick(&dev_p, now), naive.pick(&dev_n, now));
                match (a, b) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.id, b.id, "pick diverged at t={now:?} (seed {seed})");
                        let done_p = now + dev_p.service(&a, now).total_time();
                        let done_n = now + dev_n.service(&b, now).total_time();
                        assert_eq!(done_p, done_n);
                        now = done_p;
                    }
                    (None, None) => break,
                    (a, b) => panic!("queue length diverged: {a:?} vs {b:?}"),
                }
            }
        }
        assert!(pruned.is_empty() && naive.is_empty());
    }

    #[test]
    fn incremental_sptf_matches_naive_scan_across_seeds() {
        for seed in [1u64, 0xDEAD_BEEF, 0x5EED_0006] {
            assert_pick_equivalence(SptfScheduler::new(), NaiveSptfScheduler::new(), seed, true);
            assert_pick_equivalence(SptfScheduler::new(), NaiveSptfScheduler::new(), seed, false);
        }
    }

    #[test]
    fn incremental_sptf_matches_rescan_across_seeds() {
        for seed in [1u64, 0xDEAD_BEEF, 0x5EED_0006] {
            assert_pick_equivalence(SptfScheduler::new(), RescanSptfScheduler::new(), seed, true);
        }
    }

    #[test]
    fn rescan_sptf_matches_naive_scan_across_seeds() {
        for seed in [1u64, 0x5EED_0006] {
            assert_pick_equivalence(
                RescanSptfScheduler::new(),
                NaiveSptfScheduler::new(),
                seed,
                true,
            );
        }
    }

    #[test]
    fn aged_sptf_matches_naive_scan_across_seeds() {
        for seed in [2u64, 42, 0x5EED_0006] {
            for weight in [0.5, 3.0] {
                assert_pick_equivalence(
                    AgedSptfScheduler::new(weight),
                    NaiveAgedSptfScheduler::new(weight),
                    seed,
                    true,
                );
            }
        }
    }

    #[test]
    fn aged_sptf_matches_rescan_across_seeds() {
        for seed in [2u64, 0x5EED_0006] {
            for weight in [0.5, 3.0] {
                assert_pick_equivalence(
                    AgedSptfScheduler::new(weight),
                    RescanAgedSptfScheduler::new(weight),
                    seed,
                    true,
                );
            }
        }
    }

    #[test]
    fn pruned_scan_examines_fewer_candidates_than_naive() {
        let dev = MemsDevice::new(MemsParams::default());
        let mut pruned = SptfScheduler::new();
        let mut naive = NaiveSptfScheduler::new();
        let mut next_lbn = lbn_stream(0xC0FFEE, dev.capacity_lbns());
        for i in 0..256 {
            let r = Request::new(i, SimTime::ZERO, next_lbn(), 8, IoKind::Read);
            pruned.enqueue(r);
            naive.enqueue(r);
        }
        while pruned.pick(&dev, SimTime::ZERO).is_some() {
            let _ = naive.pick(&dev, SimTime::ZERO);
        }
        let (cp, cn) = (pruned.counters(), naive.counters());
        assert_eq!(cp.picks, 256);
        assert_eq!(cn.picks, 256);
        // Naive scans the whole queue every pick: 256 + 255 + ... + 1.
        assert_eq!(cn.candidates_examined, 256 * 257 / 2);
        assert!(
            cp.candidates_examined < cn.candidates_examined / 2,
            "prune saved less than half the scans: {} vs {}",
            cp.candidates_examined,
            cn.candidates_examined
        );
        // Every pick resolves each visited bucket exactly once, either by
        // scoring it or from the cache.
        assert!(
            cp.candidates_examined + cp.cached_best_hits >= cp.picks,
            "every pick resolves >= 1 bucket"
        );
        // The device never moves in this drain (no service calls), so the
        // rest key is constant and the incremental cache must fire.
        assert!(
            cp.cached_best_hits > 0,
            "static rest state produced no cache hits"
        );
    }

    #[test]
    fn cache_survives_untouched_buckets_across_arrivals() {
        // Drain-with-interleaved-arrivals from a fixed rest state: only
        // buckets touched by arrivals or removals rescore; the rest hit.
        let dev = MemsDevice::new(MemsParams::default());
        let mut s = SptfScheduler::new();
        let mut next_lbn = lbn_stream(7, dev.capacity_lbns());
        let mut id = 0u64;
        for _ in 0..128 {
            s.enqueue(Request::new(id, SimTime::ZERO, next_lbn(), 8, IoKind::Read));
            id += 1;
        }
        let mut picked = Vec::new();
        for _ in 0..64 {
            picked.push(s.pick(&dev, SimTime::ZERO).unwrap().id);
            s.enqueue(Request::new(id, SimTime::ZERO, next_lbn(), 8, IoKind::Read));
            id += 1;
        }
        // Same stream through the rescan reference must pick identically.
        let mut r = RescanSptfScheduler::new();
        let mut next_lbn = lbn_stream(7, dev.capacity_lbns());
        let mut id = 0u64;
        for _ in 0..128 {
            r.enqueue(Request::new(id, SimTime::ZERO, next_lbn(), 8, IoKind::Read));
            id += 1;
        }
        for want in &picked {
            assert_eq!(r.pick(&dev, SimTime::ZERO).unwrap().id, *want);
            r.enqueue(Request::new(id, SimTime::ZERO, next_lbn(), 8, IoKind::Read));
            id += 1;
        }
        assert!(s.counters().cached_best_hits > 0);
    }

    #[test]
    fn default_bucket_device_degrades_to_full_scan() {
        // ConstantDevice keeps every request in bucket 0 with zero floors;
        // the pruned scan must still pick the earliest-enqueued minimum
        // (everything ties at position time 0).
        let dev = ConstantDevice::new(1000, 1e-3);
        let mut s = SptfScheduler::new();
        for i in 0..10 {
            s.enqueue(req(i, 990 - i * 7));
        }
        for expect in 0..10 {
            assert_eq!(s.pick(&dev, SimTime::ZERO).unwrap().id, expect);
        }
    }
}
