//! Predictive spin-down: the adaptive policy disks are forced into.
//!
//! §7's framing: because disk restart penalties are huge, "power
//! management software must constantly make trade-offs between reducing
//! power and increasing access time" — the literature's answer is to
//! predict idle-period lengths and sleep only when the prediction
//! clears the break-even time [DKM94, LKHA94]. [`PredictiveDevice`]
//! implements the classic exponentially-weighted predictor. On a MEMS
//! device it converges to "always sleep" (everything clears a 0.5 ms
//! break-even); on a disk it earns its keep by skipping short gaps —
//! demonstrating exactly why the MEMS policy needs no prediction at all.

use storage_sim::{PositionOracle, Request, ServiceBreakdown, SimTime, StorageDevice};

use super::managed::PowerStats;
use super::PowerProfile;

/// A device with EWMA-predictive sleep decisions.
///
/// At each idle-period start the device sleeps immediately iff the
/// predicted gap (an exponentially weighted moving average of past gaps)
/// exceeds the profile's break-even idle time.
///
/// # Examples
///
/// ```
/// use atlas_disk::DiskEnergyModel;
/// use mems_device::{MemsDevice, MemsParams};
/// use mems_os::power::{PowerProfile, PredictiveDevice};
///
/// let profile = PowerProfile::disk(&DiskEnergyModel::travelstar_class());
/// let dev = PredictiveDevice::new(MemsDevice::new(MemsParams::default()), profile, 0.3);
/// assert_eq!(dev.stats().wakeups, 0);
/// ```
#[derive(Debug, Clone)]
pub struct PredictiveDevice<D> {
    inner: D,
    profile: PowerProfile,
    /// EWMA smoothing weight for new observations, in (0, 1].
    alpha: f64,
    /// Predicted next gap, seconds.
    predicted_gap: f64,
    last_busy_end: f64,
    stats: PowerStats,
}

impl<D: StorageDevice> PredictiveDevice<D> {
    /// Wraps `inner`; `alpha` is the EWMA weight of the newest gap.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha` is in (0, 1].
    pub fn new(inner: D, profile: PowerProfile, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        PredictiveDevice {
            inner,
            profile,
            alpha,
            predicted_gap: 0.0,
            last_busy_end: 0.0,
            stats: PowerStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PowerStats {
        self.stats
    }

    /// Total energy so far under the profile.
    pub fn energy(&self) -> f64 {
        self.stats.energy(&self.profile)
    }

    /// The current gap prediction, seconds.
    pub fn predicted_gap(&self) -> f64 {
        self.predicted_gap
    }

    /// Closes the books at `end` (the trailing gap uses the prediction
    /// made when it began).
    pub fn finish(&mut self, end: SimTime) {
        let gap = (end.as_secs() - self.last_busy_end).max(0.0);
        if self.predicted_gap > self.profile.breakeven_idle() {
            self.stats.sleep_secs += gap;
        } else {
            self.stats.idle_secs += gap;
        }
        self.last_busy_end = end.as_secs();
    }
}

impl<D: StorageDevice> PositionOracle for PredictiveDevice<D> {
    fn position_time(&self, req: &Request, now: SimTime) -> f64 {
        self.inner.position_time(req, now)
    }
}

impl<D: StorageDevice> StorageDevice for PredictiveDevice<D> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn capacity_lbns(&self) -> u64 {
        self.inner.capacity_lbns()
    }

    fn service(&mut self, req: &Request, now: SimTime) -> ServiceBreakdown {
        let gap = (now.as_secs() - self.last_busy_end).max(0.0);
        // The decision for this gap was made when it began, using the
        // prediction available at that time.
        let slept = self.predicted_gap > self.profile.breakeven_idle() && gap > 0.0;
        let mut restart = 0.0;
        if slept {
            self.stats.sleep_secs += gap;
            self.stats.wakeups += 1;
            restart = self.profile.restart_time;
            self.stats.added_latency += restart;
        } else {
            self.stats.idle_secs += gap;
        }
        // Update the predictor with the observed gap.
        self.predicted_gap = self.alpha * gap + (1.0 - self.alpha) * self.predicted_gap;

        let mut b = self.inner.service(req, now + SimTime::from_secs(restart));
        b.overhead += restart;
        self.stats.active_secs += b.total();
        self.stats.requests += 1;
        self.last_busy_end = now.as_secs() + b.total();
        b
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.predicted_gap = 0.0;
        self.last_busy_end = 0.0;
        self.stats = PowerStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerManagedDevice;
    use atlas_disk::{DiskDevice, DiskEnergyModel, DiskParams};
    use mems_device::{MemsDevice, MemsEnergyModel, MemsParams};
    use storage_sim::rng;
    use storage_sim::IoKind;

    fn req(id: u64, at: f64, lbn: u64) -> Request {
        Request::new(id, SimTime::from_secs(at), lbn, 8, IoKind::Read)
    }

    #[test]
    fn mems_predictor_converges_to_always_sleep() {
        // Any observable gap dwarfs the 0.5 ms break-even, so after the
        // first gap the predictor always sleeps — matching the paper's
        // "no prediction needed" conclusion.
        let profile = super::super::PowerProfile::mems(&MemsEnergyModel::default(), 1280);
        let mut d = PredictiveDevice::new(MemsDevice::new(MemsParams::default()), profile, 0.5);
        let mut t = 0.0;
        for i in 0..20u64 {
            t += 0.5; // half-second gaps
            let b = d.service(&req(i, t, i * 2700), SimTime::from_secs(t));
            t += b.total();
        }
        // First gap awake (no history), the rest asleep.
        assert_eq!(d.stats().wakeups, 19);
    }

    #[test]
    fn disk_predictor_skips_short_gaps() {
        // Bimodal gaps: many 0.5 s pauses (below the mobile disk's ~13 s
        // break-even) and occasional 60 s pauses. The predictor must not
        // thrash on the short ones.
        let profile = super::super::PowerProfile::disk(&DiskEnergyModel::travelstar_class());
        let mut d = PredictiveDevice::new(
            DiskDevice::new(DiskParams::ibm_travelstar_class()),
            profile,
            0.3,
        );
        let mut r = rng::seeded(5);
        let mut t = 0.0;
        let mut short_gaps = 0;
        for i in 0..200u64 {
            let gap = if rng::bernoulli(&mut r, 0.9) {
                short_gaps += 1u64;
                0.5
            } else {
                60.0
            };
            t += gap;
            let b = d.service(
                &req(i, t, (i * 137_777) % 10_000_000),
                SimTime::from_secs(t),
            );
            t += b.total();
        }
        // Far fewer wakeups than gaps: most short gaps are ridden out
        // (the EWMA mispredicts the 1–2 gaps after each long one while it
        // decays back below break-even), and the long gaps are caught.
        let long_gaps: u64 = 200 - short_gaps;
        assert!(
            d.stats().wakeups < 90,
            "wakeups {} out of {short_gaps} short + {long_gaps} long gaps",
            d.stats().wakeups,
        );
        assert!(
            d.stats().wakeups >= long_gaps - 2,
            "the long gaps should be slept through"
        );
    }

    #[test]
    fn predictive_beats_immediate_spin_down_on_disks() {
        // The §7 disk bargain, resolved: on a bursty mobile workload the
        // predictor beats the naive immediate policy on BOTH energy and
        // added latency.
        let profile = super::super::PowerProfile::disk(&DiskEnergyModel::travelstar_class());
        let drive = |i: u64| (i * 999_331) % 10_000_000;
        let run_pred = || {
            let mut d = PredictiveDevice::new(
                DiskDevice::new(DiskParams::ibm_travelstar_class()),
                profile,
                0.3,
            );
            let mut r = rng::seeded(77);
            let mut t = 0.0;
            for i in 0..150u64 {
                t += if rng::bernoulli(&mut r, 0.85) {
                    1.0
                } else {
                    90.0
                };
                let b = d.service(&req(i, t, drive(i)), SimTime::from_secs(t));
                t += b.total();
            }
            d.finish(SimTime::from_secs(t));
            (d.energy(), d.stats().mean_added_latency())
        };
        let run_naive = || {
            let mut d = PowerManagedDevice::new(
                DiskDevice::new(DiskParams::ibm_travelstar_class()),
                profile,
                0.0,
            );
            let mut r = rng::seeded(77);
            let mut t = 0.0;
            for i in 0..150u64 {
                t += if rng::bernoulli(&mut r, 0.85) {
                    1.0
                } else {
                    90.0
                };
                let b = d.service(&req(i, t, drive(i)), SimTime::from_secs(t));
                t += b.total();
            }
            d.finish(SimTime::from_secs(t));
            (d.energy(), d.stats().mean_added_latency())
        };
        let (pe, pl) = run_pred();
        let (ne, nl) = run_naive();
        assert!(pe < ne, "predictive energy {pe} vs naive {ne}");
        assert!(pl < nl, "predictive latency {pl} vs naive {nl}");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        let profile = super::super::PowerProfile::mems(&MemsEnergyModel::default(), 1280);
        let _ = PredictiveDevice::new(MemsDevice::new(MemsParams::default()), profile, 0.0);
    }
}
