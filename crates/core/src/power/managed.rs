//! A power-managed device wrapper: timeout-to-sleep with energy and
//! latency accounting.

use storage_sim::{PositionOracle, Request, ServiceBreakdown, SimTime, StorageDevice};

use super::PowerProfile;

/// Cumulative power-management statistics of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerStats {
    /// Seconds spent servicing requests.
    pub active_secs: f64,
    /// Seconds up-and-ready but idle.
    pub idle_secs: f64,
    /// Seconds in the low-power state.
    pub sleep_secs: f64,
    /// Number of sleep→active transitions.
    pub wakeups: u64,
    /// Total latency added to requests by wake-ups.
    pub added_latency: f64,
    /// Number of requests serviced.
    pub requests: u64,
}

impl PowerStats {
    /// Total energy in joules under a profile.
    pub fn energy(&self, profile: &PowerProfile) -> f64 {
        profile.active_power * self.active_secs
            + profile.idle_power * self.idle_secs
            + profile.sleep_power * self.sleep_secs
            + profile.restart_energy * self.wakeups as f64
    }

    /// Mean wake-up latency added per request.
    pub fn mean_added_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.added_latency / self.requests as f64
        }
    }
}

/// Wraps a device with a timeout-to-sleep power policy.
///
/// After `timeout` seconds of emptiness the device drops into its
/// low-power state; the next request pays the profile's restart latency.
/// `timeout = 0` is the paper's aggressive MEMS policy (sleep as soon as
/// the I/O queue is empty); `timeout = f64::INFINITY` never sleeps.
///
/// # Examples
///
/// ```
/// use mems_device::{MemsDevice, MemsEnergyModel, MemsParams};
/// use mems_os::power::{PowerManagedDevice, PowerProfile};
/// use storage_sim::{IoKind, Request, SimTime, StorageDevice};
///
/// let profile = PowerProfile::mems(&MemsEnergyModel::default(), 1280);
/// let mut dev = PowerManagedDevice::new(
///     MemsDevice::new(MemsParams::default()),
///     profile,
///     0.0, // sleep whenever idle
/// );
/// // A request after a 1-second gap pays only the 0.5 ms restart.
/// let b = dev.service(&Request::new(0, SimTime::from_secs(1.0), 0, 8, IoKind::Read),
///                     SimTime::from_secs(1.0));
/// assert!(b.overhead >= 0.5e-3);
/// assert_eq!(dev.stats().wakeups, 1);
/// ```
#[derive(Debug, Clone)]
pub struct PowerManagedDevice<D> {
    inner: D,
    profile: PowerProfile,
    timeout: f64,
    last_busy_end: f64,
    stats: PowerStats,
}

impl<D: StorageDevice> PowerManagedDevice<D> {
    /// Wraps `inner` with the given profile and sleep timeout (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is negative or NaN.
    pub fn new(inner: D, profile: PowerProfile, timeout: f64) -> Self {
        assert!(timeout >= 0.0, "timeout must be non-negative");
        PowerManagedDevice {
            inner,
            profile,
            timeout,
            last_busy_end: 0.0,
            stats: PowerStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PowerStats {
        self.stats
    }

    /// Total energy so far under this device's profile.
    pub fn energy(&self) -> f64 {
        self.stats.energy(&self.profile)
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Closes the books at `end`: accounts the trailing idle/sleep period
    /// after the last request. Call once after a simulation completes.
    pub fn finish(&mut self, end: SimTime) {
        let gap = (end.as_secs() - self.last_busy_end).max(0.0);
        if gap > self.timeout {
            self.stats.idle_secs += self.timeout;
            self.stats.sleep_secs += gap - self.timeout;
        } else {
            self.stats.idle_secs += gap;
        }
        self.last_busy_end = end.as_secs();
    }
}

impl<D: StorageDevice> PositionOracle for PowerManagedDevice<D> {
    fn position_time(&self, req: &Request, now: SimTime) -> f64 {
        self.inner.position_time(req, now)
    }
}

impl<D: StorageDevice> StorageDevice for PowerManagedDevice<D> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn capacity_lbns(&self) -> u64 {
        self.inner.capacity_lbns()
    }

    fn service(&mut self, req: &Request, now: SimTime) -> ServiceBreakdown {
        let gap = (now.as_secs() - self.last_busy_end).max(0.0);
        let mut restart = 0.0;
        if gap > self.timeout {
            // The device slept from (last end + timeout) until now.
            self.stats.idle_secs += self.timeout;
            self.stats.sleep_secs += gap - self.timeout;
            self.stats.wakeups += 1;
            restart = self.profile.restart_time;
            self.stats.added_latency += restart;
        } else {
            self.stats.idle_secs += gap;
        }
        let mut b = self.inner.service(req, now + SimTime::from_secs(restart));
        b.overhead += restart;
        self.stats.active_secs += b.total();
        self.stats.requests += 1;
        self.last_busy_end = now.as_secs() + b.total();
        b
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.last_busy_end = 0.0;
        self.stats = PowerStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_device::{MemsDevice, MemsEnergyModel, MemsParams};
    use storage_sim::IoKind;

    fn mems_profile() -> PowerProfile {
        PowerProfile::mems(&MemsEnergyModel::default(), 1280)
    }

    fn req(id: u64, at: f64, lbn: u64) -> Request {
        Request::new(id, SimTime::from_secs(at), lbn, 8, IoKind::Read)
    }

    #[test]
    fn no_timeout_never_sleeps() {
        let mut d = PowerManagedDevice::new(
            MemsDevice::new(MemsParams::default()),
            mems_profile(),
            f64::INFINITY,
        );
        let b = d.service(&req(0, 10.0, 0), SimTime::from_secs(10.0));
        assert_eq!(d.stats().wakeups, 0);
        assert_eq!(b.overhead, 0.0);
        assert!((d.stats().idle_secs - 10.0).abs() < 1e-9);
        assert_eq!(d.stats().sleep_secs, 0.0);
    }

    #[test]
    fn immediate_sleep_charges_restart_per_gap() {
        let mut d =
            PowerManagedDevice::new(MemsDevice::new(MemsParams::default()), mems_profile(), 0.0);
        let b0 = d.service(&req(0, 1.0, 0), SimTime::from_secs(1.0));
        assert_eq!(d.stats().wakeups, 1);
        assert!((b0.overhead - 0.5e-3).abs() < 1e-12);
        // A back-to-back request pays nothing.
        let t1 = 1.0 + b0.total();
        let b1 = d.service(&req(1, t1, 2700), SimTime::from_secs(t1));
        assert_eq!(d.stats().wakeups, 1);
        assert_eq!(b1.overhead, 0.0);
    }

    #[test]
    fn timeout_splits_idle_and_sleep_time() {
        let mut d =
            PowerManagedDevice::new(MemsDevice::new(MemsParams::default()), mems_profile(), 2.0);
        let _ = d.service(&req(0, 10.0, 0), SimTime::from_secs(10.0));
        assert!((d.stats().idle_secs - 2.0).abs() < 1e-9);
        assert!((d.stats().sleep_secs - 8.0).abs() < 1e-9);
    }

    #[test]
    fn sleeping_saves_energy_on_long_gaps() {
        let run = |timeout: f64| {
            let mut d = PowerManagedDevice::new(
                MemsDevice::new(MemsParams::default()),
                mems_profile(),
                timeout,
            );
            let mut t = 0.0;
            for i in 0..10 {
                t += 5.0; // 5-second gaps
                let b = d.service(&req(i, t, i * 2700), SimTime::from_secs(t));
                t += b.total();
            }
            d.finish(SimTime::from_secs(t));
            (d.energy(), d.stats().mean_added_latency())
        };
        let (e_sleep, lat_sleep) = run(0.0);
        let (e_awake, lat_awake) = run(f64::INFINITY);
        assert!(
            e_sleep < e_awake / 5.0,
            "sleeping {e_sleep} J vs awake {e_awake} J"
        );
        // The MEMS wake-up penalty is half a millisecond — imperceptible.
        assert!(lat_sleep <= 0.5e-3 + 1e-12);
        assert_eq!(lat_awake, 0.0);
    }

    #[test]
    fn finish_accounts_trailing_idle() {
        let mut d = PowerManagedDevice::new(
            MemsDevice::new(MemsParams::default()),
            mems_profile(),
            f64::INFINITY,
        );
        let b = d.service(&req(0, 0.0, 0), SimTime::ZERO);
        d.finish(SimTime::from_secs(b.total() + 3.0));
        assert!((d.stats().idle_secs - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_timeout_rejected() {
        let _ =
            PowerManagedDevice::new(MemsDevice::new(MemsParams::default()), mems_profile(), -1.0);
    }
}
