//! OS power management (§7).
//!
//! Disks force the OS into a reluctant bargain: multiple power modes with
//! restart penalties from 40 ms to tens of seconds, so spin-down policies
//! must predict long idle periods. A MEMS device has a single idle mode
//! (sled stopped, non-essential electronics off) with a ≈0.5 ms restart —
//! cheap enough to enter *whenever the I/O queue is empty*.
//!
//! [`PowerManagedDevice`] wraps any device with a timeout-to-sleep policy
//! and accounts energy and added wake-up latency; [`PowerProfile`]
//! captures the few numbers that matter. Since ~90% of MEMS device power
//! is per-tip sensing/recording, §7 also frames power as a near-linear
//! function of bits accessed; [`compressed_transfer_energy`] models the
//! compress-to-save-tips optimization the paper sketches.

mod managed;
mod predictive;

pub use managed::{PowerManagedDevice, PowerStats};
pub use predictive::PredictiveDevice;

use atlas_disk::DiskEnergyModel;
use mems_device::MemsEnergyModel;

/// The power numbers a timeout policy needs, in watts/seconds/joules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerProfile {
    /// Power while servicing a request.
    pub active_power: f64,
    /// Power while up and ready but not servicing.
    pub idle_power: f64,
    /// Power in the low-power (sleep/standby) state.
    pub sleep_power: f64,
    /// Latency added to the first request after sleeping.
    pub restart_time: f64,
    /// Extra energy charged per wake-up.
    pub restart_energy: f64,
}

impl PowerProfile {
    /// Profile of a MEMS device with `active_tips` concurrently active
    /// tips: the single idle mode of §7.
    pub fn mems(model: &MemsEnergyModel, active_tips: u32) -> Self {
        PowerProfile {
            active_power: model.streaming_power(active_tips),
            idle_power: model.active_base_power,
            sleep_power: model.idle_power,
            restart_time: model.startup_time,
            restart_energy: model.startup_energy(),
        }
    }

    /// Profile of a disk using spin-down to standby as its sleep state.
    pub fn disk(model: &DiskEnergyModel) -> Self {
        PowerProfile {
            active_power: model.active_power,
            idle_power: model.idle_power,
            sleep_power: model.standby_power,
            restart_time: model.spinup_time,
            restart_energy: model.spinup_energy(),
        }
    }

    /// The idle duration beyond which sleeping saves energy.
    pub fn breakeven_idle(&self) -> f64 {
        (self.restart_energy - self.sleep_power * self.restart_time)
            / (self.idle_power - self.sleep_power)
    }
}

/// Energy to transfer `bytes` with `active_tips` tips when the embedded
/// logic compresses data by `ratio` before it reaches the media (§7's
/// compress-to-save-tips optimization): the media time (and hence the
/// tip-seconds) shrinks by the compression ratio.
///
/// # Panics
///
/// Panics unless `ratio >= 1`.
///
/// # Examples
///
/// ```
/// use mems_device::MemsEnergyModel;
/// use mems_os::power::compressed_transfer_energy;
///
/// let model = MemsEnergyModel::default();
/// let plain = compressed_transfer_energy(&model, 1 << 20, 1280, 1.0);
/// let packed = compressed_transfer_energy(&model, 1 << 20, 1280, 2.0);
/// assert!((plain / packed - 2.0).abs() < 1e-9);
/// ```
pub fn compressed_transfer_energy(
    model: &MemsEnergyModel,
    bytes: u64,
    active_tips: u32,
    ratio: f64,
) -> f64 {
    assert!(ratio >= 1.0, "compression ratio must be >= 1");
    // 512 B move per 20-sector row slot; at full width the device moves
    // sectors_per_row · 512 B per row time. Per-byte media time:
    let bytes_per_second = 79.6e6; // streaming bandwidth of the default device
    let media_time = bytes as f64 / bytes_per_second / ratio;
    model.streaming_power(active_tips) * media_time
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mems_profile_has_sub_millisecond_restart() {
        let p = PowerProfile::mems(&MemsEnergyModel::default(), 1280);
        assert!(p.restart_time <= 0.5e-3);
        assert!(p.idle_power < p.active_power);
        assert!(p.sleep_power < p.idle_power);
    }

    #[test]
    fn mems_breakeven_is_milliseconds_disk_is_minutes() {
        let mems = PowerProfile::mems(&MemsEnergyModel::default(), 1280);
        let disk = PowerProfile::disk(&DiskEnergyModel::atlas_10k());
        assert!(
            mems.breakeven_idle() < 0.01,
            "MEMS break-even {} should be ~ms",
            mems.breakeven_idle()
        );
        assert!(
            disk.breakeven_idle() > 60.0,
            "disk break-even {} should be minutes",
            disk.breakeven_idle()
        );
    }

    #[test]
    fn compression_scales_energy_linearly() {
        let m = MemsEnergyModel::default();
        let e1 = compressed_transfer_energy(&m, 10 << 20, 1280, 1.0);
        let e4 = compressed_transfer_energy(&m, 10 << 20, 1280, 4.0);
        assert!((e1 / e4 - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "compression ratio")]
    fn sub_unity_ratio_rejected() {
        let _ = compressed_transfer_energy(&MemsEnergyModel::default(), 1, 1280, 0.5);
    }
}
