//! Decayed per-block access frequency tracking.
//!
//! [`FrequencyTracker`] maintains one exponentially-decayed access
//! counter per placement block without ever touching more than the
//! accessed block: instead of decaying every counter on every access, it
//! keeps weights *normalized to a shared time anchor* and adds
//! `2^((now - anchor) / half_life)` per access. Because every stored
//! weight carries the same implicit decay factor, comparing raw weights
//! at any instant is exactly comparing decayed frequencies — the
//! ordering the placement policy needs. When the exponent grows large
//! enough to threaten `f64` range, all weights are rescaled by an exact
//! power of two (order-preserving) and the anchor advances.
//!
//! [`DoublePriorityQueue`] is the matching double-ended priority
//! structure: it yields the currently hottest and coldest blocks in
//! `O(log n)` with lazy invalidation (stale heap entries are skipped by
//! comparing their recorded weight bits against the tracker), so the
//! migration policy can pull swap candidates from both ends without a
//! full sort per idle window.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How many half-lives the anchor exponent may reach before the tracker
/// renormalizes. `2^512` leaves another ~500 powers of two of headroom
/// below `f64::MAX` for summing per-access increments.
const RENORM_HALF_LIVES: f64 = 512.0;

/// Exponentially-decayed per-block access counters with O(1) updates.
///
/// # Examples
///
/// ```
/// use mems_os::placement::FrequencyTracker;
///
/// let mut t = FrequencyTracker::new(4, 10.0);
/// t.record(1, 0.0);
/// t.record(1, 1.0);
/// t.record(2, 1.0);
/// // Block 1 (two accesses) is hotter than block 2 (one access).
/// assert!(t.weight(1) > t.weight(2));
/// // Decayed absolute counts: ~2 accesses worth of heat on block 1.
/// assert!(t.weight_at(1, 1.0) > 1.9 && t.weight_at(1, 1.0) < 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct FrequencyTracker {
    half_life: f64,
    /// Time the stored weights are normalized to, seconds.
    anchor: f64,
    /// Anchor-normalized weights; ordering equals decayed-count ordering.
    weights: Vec<f64>,
    renormalizations: u64,
}

impl FrequencyTracker {
    /// Creates a tracker for `n_blocks` blocks with the given decay
    /// half-life in seconds (an access loses half its weight every
    /// `half_life` seconds).
    ///
    /// # Panics
    ///
    /// Panics if `half_life` is not positive and finite.
    pub fn new(n_blocks: usize, half_life: f64) -> Self {
        assert!(
            half_life > 0.0 && half_life.is_finite(),
            "half-life must be positive and finite"
        );
        FrequencyTracker {
            half_life,
            anchor: 0.0,
            weights: vec![0.0; n_blocks],
            renormalizations: 0,
        }
    }

    /// Number of tracked blocks.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns `true` if no blocks are tracked.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The configured half-life, seconds.
    pub fn half_life(&self) -> f64 {
        self.half_life
    }

    /// Times the whole table has been rescaled to protect `f64` range.
    pub fn renormalizations(&self) -> u64 {
        self.renormalizations
    }

    /// Records one access to `block` at time `now` (seconds). Returns
    /// `true` if the table was renormalized, in which case any externally
    /// cached weight bits (e.g. [`DoublePriorityQueue`] entries) are
    /// stale and must be rebuilt.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn record(&mut self, block: usize, now: f64) -> bool {
        let mut renormalized = false;
        // `while`, not `if`: an access gap longer than 2×512 half-lives
        // must step the anchor repeatedly or the increment exponent
        // below would still overflow.
        while (now - self.anchor) / self.half_life > RENORM_HALF_LIVES {
            // Exact power-of-two rescale: multiplication by 2^-512 never
            // rounds, so the relative order of all weights is preserved
            // (weights more than ~1586 half-lives behind flush to zero,
            // where they belong).
            let scale = f64::exp2(-RENORM_HALF_LIVES);
            for w in &mut self.weights {
                *w *= scale;
            }
            self.anchor += RENORM_HALF_LIVES * self.half_life;
            self.renormalizations += 1;
            renormalized = true;
        }
        self.weights[block] += f64::exp2((now - self.anchor) / self.half_life);
        renormalized
    }

    /// The block's anchor-normalized weight — meaningless as an absolute
    /// count, but *comparing* two weights compares their decayed
    /// frequencies exactly (both carry the same implicit decay factor).
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn weight(&self, block: usize) -> f64 {
        self.weights[block]
    }

    /// The decayed access count of `block` as observed at time `now`:
    /// each past access contributes `2^-(age / half_life)`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn weight_at(&self, block: usize, now: f64) -> f64 {
        self.weights[block] * f64::exp2(-(now - self.anchor) / self.half_life)
    }

    /// Forgets all recorded accesses.
    pub fn reset(&mut self) {
        self.weights.fill(0.0);
        self.anchor = 0.0;
        self.renormalizations = 0;
    }
}

/// Heap entry: (weight bits, block). Weights are non-negative finite
/// `f64`s, whose IEEE-754 bit patterns order identically to their
/// values, so plain tuple ordering is numeric ordering with a
/// deterministic block-id tiebreak.
type Entry = (u64, u32);

/// A double-ended priority queue over the tracker's blocks: pop the
/// hottest from one end and the coldest from the other, in `O(log n)`
/// amortized, with lazy invalidation against the live tracker weights.
///
/// Every block always has at least one live entry in each heap as long
/// as callers re-push what they pop (see [`DoublePriorityQueue::push`]);
/// stale entries left behind by weight updates are skipped on pop and
/// garbage-collected by an automatic rebuild once they outnumber live
/// entries ~8:1.
///
/// # Examples
///
/// ```
/// use mems_os::placement::{DoublePriorityQueue, FrequencyTracker};
///
/// let mut t = FrequencyTracker::new(3, 10.0);
/// let mut q = DoublePriorityQueue::new(&t);
/// t.record(2, 0.0);
/// q.push(2, t.weight(2));
/// let (hot, _) = q.pop_max(&t).unwrap();
/// assert_eq!(hot, 2);
/// let (cold, w) = q.pop_min(&t).unwrap();
/// assert_eq!(w, 0.0); // blocks 0 and 1 were never accessed
/// assert!(cold == 0 || cold == 1);
/// ```
#[derive(Debug, Clone)]
pub struct DoublePriorityQueue {
    max: BinaryHeap<Entry>,
    min: BinaryHeap<Reverse<Entry>>,
    blocks: u32,
}

impl DoublePriorityQueue {
    /// Builds the queue with one entry per tracker block at its current
    /// weight.
    pub fn new(tracker: &FrequencyTracker) -> Self {
        let blocks = u32::try_from(tracker.len()).expect("block count fits u32");
        let mut q = DoublePriorityQueue {
            max: BinaryHeap::new(),
            min: BinaryHeap::new(),
            blocks,
        };
        q.rebuild(tracker);
        q
    }

    /// Number of blocks covered.
    pub fn blocks(&self) -> u32 {
        self.blocks
    }

    /// Registers `block`'s current `weight` (typically right after a
    /// [`FrequencyTracker::record`], or to return a popped block to the
    /// queue). Older entries for the block become stale and are skipped
    /// on pop.
    pub fn push(&mut self, block: u32, weight: f64) {
        let e = (weight.to_bits(), block);
        self.max.push(e);
        self.min.push(Reverse(e));
    }

    /// Pops the hottest block (highest weight, ties to the highest block
    /// id) whose entry matches the tracker's live weight. Returns `None`
    /// only if every block has been popped without being re-pushed.
    pub fn pop_max(&mut self, tracker: &FrequencyTracker) -> Option<(u32, f64)> {
        while let Some((bits, block)) = self.max.pop() {
            let live = tracker.weight(block as usize);
            if live.to_bits() == bits {
                return Some((block, live));
            }
        }
        None
    }

    /// Pops the coldest block (lowest weight, ties to the lowest block
    /// id) whose entry matches the tracker's live weight.
    pub fn pop_min(&mut self, tracker: &FrequencyTracker) -> Option<(u32, f64)> {
        while let Some(Reverse((bits, block))) = self.min.pop() {
            let live = tracker.weight(block as usize);
            if live.to_bits() == bits {
                return Some((block, live));
            }
        }
        None
    }

    /// Discards every entry and re-inserts one live entry per block.
    /// Required after [`FrequencyTracker::record`] reports a
    /// renormalization (all cached bits went stale at once); also called
    /// automatically by [`DoublePriorityQueue::maintain`].
    pub fn rebuild(&mut self, tracker: &FrequencyTracker) {
        self.max.clear();
        self.min.clear();
        for block in 0..self.blocks {
            let e = (tracker.weight(block as usize).to_bits(), block);
            self.max.push(e);
            self.min.push(Reverse(e));
        }
    }

    /// Rebuilds if stale entries dominate (heap length beyond ~8× the
    /// block count), bounding memory without changing pop results.
    pub fn maintain(&mut self, tracker: &FrequencyTracker) {
        let cap = 8 * self.blocks as usize + 64;
        if self.max.len() > cap || self.min.len() > cap {
            self.rebuild(tracker);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_recent_accesses_weigh_more() {
        let mut t = FrequencyTracker::new(2, 1.0);
        t.record(0, 0.0);
        t.record(1, 3.0);
        // One access each, but block 1's is 3 half-lives fresher.
        assert!(t.weight(1) > t.weight(0));
        let w0 = t.weight_at(0, 3.0);
        let w1 = t.weight_at(1, 3.0);
        assert!((w0 - 0.125).abs() < 1e-12, "decayed to 1/8: {w0}");
        assert!((w1 - 1.0).abs() < 1e-12, "fresh access: {w1}");
    }

    #[test]
    fn many_old_accesses_can_outweigh_one_fresh() {
        let mut t = FrequencyTracker::new(2, 10.0);
        for _ in 0..8 {
            t.record(0, 0.0);
        }
        t.record(1, 10.0); // one half-life later
        assert!(t.weight(0) > t.weight(1), "8 * 1/2 > 1 * 1");
    }

    #[test]
    fn renormalization_preserves_order_and_decayed_counts() {
        let mut t = FrequencyTracker::new(3, 0.001);
        t.record(0, 0.0);
        t.record(0, 0.0);
        t.record(1, 0.0);
        // 1000 half-lives later: forces a renormalization.
        let renormed = t.record(2, 1.0);
        assert!(renormed);
        assert_eq!(t.renormalizations(), 1);
        assert!(t.weight(2) > t.weight(0));
        assert!(t.weight(0) > t.weight(1));
        let w2 = t.weight_at(2, 1.0);
        assert!((w2 - 1.0).abs() < 1e-9, "fresh access: {w2}");
    }

    #[test]
    fn queue_pops_both_ends() {
        let mut t = FrequencyTracker::new(4, 10.0);
        let mut q = DoublePriorityQueue::new(&t);
        for (block, n) in [(0u32, 1), (1, 3), (2, 2)] {
            for _ in 0..n {
                assert!(!t.record(block as usize, 0.0));
                q.push(block, t.weight(block as usize));
            }
        }
        let (hot, w) = q.pop_max(&t).unwrap();
        assert_eq!((hot, w), (1, 3.0));
        // Block 3 was never touched: coldest at weight zero.
        let (cold, w) = q.pop_min(&t).unwrap();
        assert_eq!((cold, w), (3, 0.0));
        // Re-push and the ends are stable.
        q.push(hot, 3.0);
        q.push(cold, 0.0);
        assert_eq!(q.pop_max(&t).unwrap().0, 1);
        assert_eq!(q.pop_min(&t).unwrap().0, 3);
    }

    #[test]
    fn stale_entries_are_skipped_and_maintained() {
        let mut t = FrequencyTracker::new(2, 10.0);
        let mut q = DoublePriorityQueue::new(&t);
        for i in 0..100 {
            t.record(0, i as f64 * 1e-3);
            q.push(0, t.weight(0));
            q.maintain(&t);
        }
        // 100 pushes against a cap of 8*2+64: must have rebuilt, and the
        // heaps stay near one live entry per block.
        assert!(q.max.len() <= 8 * 2 + 64 + 1);
        assert_eq!(q.pop_max(&t).unwrap().0, 0);
        assert_eq!(q.pop_min(&t).unwrap().0, 1);
        // Both heaps drained of valid entries -> None.
        assert_eq!(q.pop_max(&t).unwrap().0, 1);
        assert_eq!(q.pop_min(&t).unwrap().0, 0);
        assert!(q.pop_max(&t).is_none());
        assert!(q.pop_min(&t).is_none());
    }
}
