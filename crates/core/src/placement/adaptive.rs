//! Online hot/cold block placement with idle-window migration.
//!
//! [`AdaptiveDevice`] closes the loop the paper's static layouts (§5)
//! leave open: the device's own seek model says center cylinders are
//! dramatically cheaper, so the wrapper tracks per-block access
//! frequency with exponential decay ([`FrequencyTracker`]), detects idle
//! windows in the request stream, and swaps hot blocks toward the
//! low-seek-cost center of the LBN space (cold blocks outward) through a
//! block-granular indirection table. It is the *online* counterpart of
//! [`crate::layout::OrganPipeMap`]: same center-out goal arrangement,
//! but reached incrementally from observed traffic instead of from an
//! offline frequency census.
//!
//! Honest billing is the design center: every migration I/O goes through
//! the wrapped device's normal [`StorageDevice::service`] path, so its
//! seek, transfer, and energy cost is real, moves the sled/arm, and is
//! visible to any tracer or heatmap sitting *inside* the wrapper.
//! Migration is preemptible *between* chunk I/Os, the copy-forward
//! idiom cleaners use: an arrival mid-swap defers the remaining chunks
//! to the next idle window, so a foreground request waits for at most
//! one in-flight chunk — and that overlap is billed to it as
//! [`ServiceBreakdown::background_wait`]; an individual chunk is never
//! preempted. Migration traffic is accounted in [`MigrationStats`],
//! separate from foreground response stats, mirroring the
//! rebuild-traffic split in the fleet layer.
//!
//! With [`PlacementConfig::migrate`] off and the identity initial
//! placement, the wrapper is proven bit-identical to the bare device
//! (the zero-cost gate CI enforces, like the zero-fault gate on
//! `DegradedDevice`).

use storage_sim::{
    FaultKind, IoKind, LogHistogram, PhaseEnergy, PositionOracle, Request, ServiceBreakdown,
    SimTime, StorageDevice, Welford,
};

use super::frequency::{DoublePriorityQueue, FrequencyTracker};
use crate::layout::OrganPipeMap;

/// Policy knobs for [`AdaptiveDevice`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementConfig {
    /// Placement granularity in sectors; the indirection table, frequency
    /// counters, and migration chunks all work on blocks of this size. A
    /// trailing partial block (capacity not divisible by `block_sectors`)
    /// is left unmanaged at its identity mapping.
    pub block_sectors: u32,
    /// Frequency-decay half-life, seconds: an access loses half its
    /// placement weight every `half_life` seconds.
    pub half_life: f64,
    /// Quiet time after the last service completion before the migrator
    /// wakes, seconds. Detection is retrospective (this is a simulator):
    /// when a request arrives after a gap of at least `idle_window`,
    /// migration is replayed as having started `idle_window` after the
    /// device went idle and run until the arrival.
    pub idle_window: f64,
    /// Block swaps allowed per detected idle period.
    pub max_swaps_per_window: u32,
    /// A hot block displaces a slot occupant only if its weight exceeds
    /// the occupant's by this factor (≥ 1), damping swap thrash between
    /// blocks of similar heat.
    pub hysteresis: f64,
    /// A swap must move the hot block at least this many center-out
    /// ranks inward. Once the working set is gathered at the center,
    /// its internal ordering is irrelevant to seek cost — this floor
    /// stops migration bandwidth from being burned on marginal
    /// reshuffles inside the set (the weight ordering between two
    /// similarly hot blocks is mostly sampling noise anyway).
    pub min_rank_gain: u32,
    /// A block is eligible to migrate only while its decayed access
    /// count is at least this many recent accesses. The relative
    /// `hysteresis` bar alone would let a block touched once migrate
    /// over a never-touched occupant; this absolute floor keeps one-off
    /// touches from consuming migration bandwidth.
    pub min_heat: f64,
    /// Master switch. Off, the wrapper never migrates and never bills
    /// wait time: with the identity initial placement it is bit-identical
    /// to the bare device, and with
    /// [`AdaptiveDevice::with_initial_placement`] it serves as the
    /// static-layout baseline.
    pub migrate: bool,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig {
            block_sectors: 512,
            half_life: 20.0,
            idle_window: 5e-3,
            max_swaps_per_window: 4,
            hysteresis: 2.0,
            min_rank_gain: 8,
            min_heat: 2.0,
            migrate: true,
        }
    }
}

/// Migration-side accounting, kept separate from foreground stats so
/// adaptive runs don't pollute foreground p99 comparisons.
#[derive(Debug, Clone)]
pub struct MigrationStats {
    /// Block swaps committed.
    pub swaps: u64,
    /// Idle periods in which at least one swap ran.
    pub windows: u64,
    /// Migration I/Os issued (4 per swap: two reads, two writes).
    pub chunk_ios: u64,
    /// Sectors moved by migration I/O.
    pub sectors: u64,
    /// Device busy time consumed by migration, seconds.
    pub busy_secs: f64,
    /// Energy consumed by migration I/O, joules.
    pub energy_j: f64,
    /// Phase decomposition summed over all migration I/Os.
    pub breakdown_sum: ServiceBreakdown,
    /// Foreground requests that arrived while a migration chunk was in
    /// flight.
    pub waits: u64,
    /// Total foreground wait billed as
    /// [`ServiceBreakdown::background_wait`], seconds.
    pub foreground_wait_secs: f64,
    /// Per-chunk service-time distribution (mean/min/max).
    pub chunk_time: Welford,
    /// Per-chunk service-time tail histogram (mergeable, log-spaced).
    pub chunk_tail: LogHistogram,
}

impl Default for MigrationStats {
    fn default() -> Self {
        Self::new()
    }
}

impl MigrationStats {
    /// All-zero stats, as a freshly built wrapper starts out.
    pub fn new() -> Self {
        MigrationStats {
            swaps: 0,
            windows: 0,
            chunk_ios: 0,
            sectors: 0,
            busy_secs: 0.0,
            energy_j: 0.0,
            breakdown_sum: ServiceBreakdown::default(),
            waits: 0,
            foreground_wait_secs: 0.0,
            chunk_time: Welford::new(),
            chunk_tail: LogHistogram::response_times(),
        }
    }

    /// Folds another ledger into this one (every field is mergeable), so
    /// a fleet of adaptive stations can report one pooled migration
    /// ledger. Exact for counts and histogram bins; float sums follow
    /// accumulation order.
    pub fn accumulate(&mut self, other: &MigrationStats) {
        self.swaps += other.swaps;
        self.windows += other.windows;
        self.chunk_ios += other.chunk_ios;
        self.sectors += other.sectors;
        self.busy_secs += other.busy_secs;
        self.energy_j += other.energy_j;
        self.breakdown_sum.accumulate(&other.breakdown_sum);
        self.waits += other.waits;
        self.foreground_wait_secs += other.foreground_wait_secs;
        self.chunk_time.merge(&other.chunk_time);
        self.chunk_tail.merge(&other.chunk_tail);
    }

    /// The ledger as one compact JSON object, for splicing into the
    /// tracer summaries (`obs_report`, `telemetry_report`, `fleet_obs`)
    /// so migration traffic is visible wherever a tracer is attached.
    pub fn summary_json(&self) -> String {
        format!(
            "{{ \"swaps\": {}, \"windows\": {}, \"chunk_ios\": {}, \"sectors\": {}, \
             \"busy_s\": {:.6}, \"energy_j\": {:.6}, \"foreground_waits\": {}, \
             \"foreground_wait_s\": {:.6}, \"chunk_mean_ms\": {:.4}, \
             \"chunk_p99_ms\": {:.4} }}",
            self.swaps,
            self.windows,
            self.chunk_ios,
            self.sectors,
            self.busy_secs,
            self.energy_j,
            self.waits,
            self.foreground_wait_secs,
            self.chunk_time.mean() * 1e3,
            self.chunk_tail.quantile(0.99) * 1e3,
        )
    }
}

/// Migration request ids live in their own namespace (top bit set) so
/// they can never collide with driver-issued foreground ids in a trace.
const MIGRATION_ID_BASE: u64 = 1 << 63;

/// A [`StorageDevice`] wrapper that adaptively migrates hot blocks to
/// the cheap center of the LBN space during idle windows.
///
/// Composes like the other oracle-stack wrappers (`DegradedDevice`,
/// cache, RAID): anything accepting a [`StorageDevice`] can hold an
/// `AdaptiveDevice`, and the wrapped device may itself be a wrapper.
///
/// # Examples
///
/// ```
/// use mems_device::{MemsDevice, MemsParams};
/// use mems_os::placement::{AdaptiveDevice, PlacementConfig};
/// use storage_sim::{IoKind, Request, SimTime, StorageDevice};
///
/// let cfg = PlacementConfig::default();
/// let mut dev = AdaptiveDevice::new(MemsDevice::new(MemsParams::default()), cfg);
/// let req = Request::new(0, SimTime::ZERO, 40_000, 8, IoKind::Read);
/// let b = dev.service(&req, SimTime::ZERO);
/// assert!(b.total() > 0.0);
/// // Nothing was hot yet, so nothing has migrated.
/// assert_eq!(dev.migration_stats().swaps, 0);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveDevice<D> {
    inner: D,
    cfg: PlacementConfig,
    name: String,
    /// Whole blocks under management; the partial tail block (if any)
    /// stays identity-mapped.
    n_blocks: u32,
    /// Physical slot currently holding each logical block.
    log_to_phys: Vec<u32>,
    /// Logical block currently stored in each physical slot.
    phys_to_log: Vec<u32>,
    /// The placement the wrapper starts from (and resets to).
    initial_log_to_phys: Vec<u32>,
    /// Center-out desirability rank of each physical slot (rank 0 =
    /// cheapest, the center of the LBN space).
    rank_of_slot: Vec<u32>,
    /// Physical slot at each center-out rank.
    slot_at_rank: Vec<u32>,
    tracker: FrequencyTracker,
    heap: DoublePriorityQueue,
    /// When the device last finished serving a request, seconds.
    last_busy_end: f64,
    /// A swap whose remaining chunks were deferred by a foreground
    /// arrival; resumed before new picks in the next idle window.
    pending: Option<PendingSwap>,
    next_migration_id: u64,
    stats: MigrationStats,
}

/// A swap mid-flight. The four chunk I/Os (read both homes, write
/// both) run one at a time so an arrival can preempt between them; the
/// permutation flips only when the final write lands. In-flight data
/// sits in a staging buffer, so deferral never loses a block (foreground
/// writes to a block mid-swap merge into the buffer — the standard
/// copy-forward discipline, costless in this model).
#[derive(Debug, Clone, Copy)]
struct PendingSwap {
    hot: u32,
    cold: u32,
    /// Next index into the fixed `[read hot, read cold, write cold,
    /// write hot]` chunk sequence.
    next_chunk: u8,
}

impl<D: StorageDevice> AdaptiveDevice<D> {
    /// Wraps `inner` with the identity initial placement.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.block_sectors` is zero, the device has no whole
    /// block, `cfg.hysteresis < 1`, or the decay/idle knobs are not
    /// positive.
    pub fn new(inner: D, cfg: PlacementConfig) -> Self {
        assert!(cfg.block_sectors > 0, "block size must be positive");
        assert!(cfg.hysteresis >= 1.0, "hysteresis must be at least 1");
        assert!(cfg.idle_window > 0.0, "idle window must be positive");
        let n_blocks =
            u32::try_from(inner.capacity_lbns() / u64::from(cfg.block_sectors)).unwrap_or(u32::MAX);
        assert!(n_blocks > 0, "device smaller than one placement block");
        let identity: Vec<u32> = (0..n_blocks).collect();
        // Center-out slot ranking, identical to OrganPipeMap's slot
        // enumeration: center, center+1, center-1, center+2, ...
        let center = n_blocks / 2;
        let mut slot_at_rank = Vec::with_capacity(n_blocks as usize);
        slot_at_rank.push(center);
        for d in 1..=n_blocks {
            if center + d < n_blocks {
                slot_at_rank.push(center + d);
            }
            if slot_at_rank.len() == n_blocks as usize {
                break;
            }
            if center >= d {
                slot_at_rank.push(center - d);
            }
            if slot_at_rank.len() == n_blocks as usize {
                break;
            }
        }
        let mut rank_of_slot = vec![0u32; n_blocks as usize];
        for (rank, &slot) in slot_at_rank.iter().enumerate() {
            rank_of_slot[slot as usize] = rank as u32;
        }
        let tracker = FrequencyTracker::new(n_blocks as usize, cfg.half_life);
        let heap = DoublePriorityQueue::new(&tracker);
        AdaptiveDevice {
            name: format!("adaptive({})", inner.name()),
            inner,
            cfg,
            n_blocks,
            log_to_phys: identity.clone(),
            phys_to_log: identity.clone(),
            initial_log_to_phys: identity,
            rank_of_slot,
            slot_at_rank,
            tracker,
            heap,
            last_busy_end: 0.0,
            pending: None,
            next_migration_id: MIGRATION_ID_BASE,
            stats: MigrationStats::new(),
        }
    }

    /// Starts from a precomputed block permutation instead of the
    /// identity — with [`PlacementConfig::migrate`] off this *is* the
    /// static organ-pipe baseline, served through the same mapping code
    /// as the adaptive runs.
    ///
    /// # Panics
    ///
    /// Panics if `map` does not cover exactly this wrapper's managed
    /// blocks.
    pub fn with_initial_placement(mut self, map: &OrganPipeMap) -> Self {
        assert_eq!(
            map.len(),
            self.n_blocks as usize,
            "placement map must cover the managed blocks"
        );
        for block in 0..self.n_blocks {
            let slot = u32::try_from(map.physical_of(u64::from(block))).expect("slot fits u32");
            self.log_to_phys[block as usize] = slot;
            self.phys_to_log[slot as usize] = block;
        }
        self.initial_log_to_phys = self.log_to_phys.clone();
        self
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The active configuration.
    pub fn config(&self) -> &PlacementConfig {
        &self.cfg
    }

    /// Whole blocks under management.
    pub fn managed_blocks(&self) -> u32 {
        self.n_blocks
    }

    /// Migration-side accounting (separate from foreground stats).
    pub fn migration_stats(&self) -> &MigrationStats {
        &self.stats
    }

    /// The frequency tracker (decayed per-block heat).
    pub fn tracker(&self) -> &FrequencyTracker {
        &self.tracker
    }

    /// Physical slot currently holding logical `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn slot_of_block(&self, block: u32) -> u32 {
        self.log_to_phys[block as usize]
    }

    /// Center-out desirability rank of logical `block`'s current slot
    /// (0 = the cheapest, center slot).
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn rank_of_block(&self, block: u32) -> u32 {
        self.rank_of_slot[self.log_to_phys[block as usize] as usize]
    }

    /// Maps a logical request to its physical location. Multi-block
    /// requests are placed by their first sector's block and extend
    /// contiguously from there (block-granular placement approximates
    /// spanning requests), clamped to the device capacity.
    fn map_request(&self, req: &Request) -> Request {
        let bs = u64::from(self.cfg.block_sectors);
        let block = req.lbn / bs;
        if block >= u64::from(self.n_blocks) {
            return *req; // unmanaged tail: identity
        }
        let phys = u64::from(self.log_to_phys[block as usize]) * bs + (req.lbn % bs);
        if phys == req.lbn {
            return *req;
        }
        let sectors = u64::from(req.sectors)
            .min(self.inner.capacity_lbns() - phys)
            .try_into()
            .expect("clamped sectors fit u32");
        Request::new(req.id, req.arrival, phys, sectors, req.kind)
    }

    /// Records heat on every managed block the request touches.
    fn record_heat(&mut self, req: &Request, now_s: f64) {
        let bs = u64::from(self.cfg.block_sectors);
        let first = req.lbn / bs;
        let last = (req.end_lbn().max(req.lbn + 1) - 1) / bs;
        for block in first..=last.min(u64::from(self.n_blocks) - 1) {
            let block = block as usize;
            if self.tracker.record(block, now_s) {
                // Renormalization staled every cached weight bit pattern.
                self.heap.rebuild(&self.tracker);
            } else {
                self.heap.push(block as u32, self.tracker.weight(block));
            }
        }
        self.heap.maintain(&self.tracker);
    }

    /// Picks the best (hot block, displaced cold block) swap, or `None`
    /// when no swap clears the hysteresis, rank-gain, and heat bars.
    /// Deterministic: candidate order comes from the heap's (weight,
    /// block-id) ordering and the fixed center-out slot ranking.
    fn pick_swap(&mut self, now_s: f64) -> Option<(u32, u32)> {
        /// Improvable candidates evaluated per pick.
        const HOT_CANDIDATES: usize = 16;
        /// Total heap pops per pick: already-centered blocks dominate
        /// the top of the heap once the set is gathered, and skipping
        /// them must not exhaust the candidate budget — but the walk
        /// has to stay bounded.
        const MAX_POPS: usize = 128;
        // Cheap double-ended bound first: if even the globally coldest
        // block is within hysteresis of the globally hottest, no pair
        // anywhere can clear the bar.
        let hottest = self.heap.pop_max(&self.tracker);
        let coldest = self.heap.pop_min(&self.tracker);
        if let Some((b, w)) = hottest {
            self.heap.push(b, w);
        }
        if let Some((b, w)) = coldest {
            self.heap.push(b, w);
        }
        let (Some((_, w_hot)), Some((_, w_cold))) = (hottest, coldest) else {
            return None;
        };
        if w_hot <= 0.0 || w_hot <= self.cfg.hysteresis * w_cold {
            return None;
        }

        let mut popped: Vec<(u32, f64)> = Vec::with_capacity(MAX_POPS);
        let mut best: Option<(f64, u32, u32)> = None;
        let mut examined = 0usize;
        while popped.len() < MAX_POPS && examined < HOT_CANDIDATES {
            let Some((h, wh)) = self.heap.pop_max(&self.tracker) else {
                break;
            };
            // Duplicate live entries are possible after re-pushes; skip.
            if popped.iter().any(|&(b, _)| b == h) {
                continue;
            }
            popped.push((h, wh));
            // The heap walks weight-descending: below the heat floor,
            // everything after is colder still.
            if wh <= 0.0 || self.tracker.weight_at(h as usize, now_s) < self.cfg.min_heat {
                break;
            }
            let rank_h = self.rank_of_slot[self.log_to_phys[h as usize] as usize];
            // Take the *innermost* slot whose occupant is genuinely
            // cold — below the absolute heat floor, not merely cooler by
            // the hysteresis ratio. Hot blocks therefore displace only
            // non-working-set leftovers, never each other: each block
            // makes one jump to the packing frontier around the center
            // and stays put, so migration bandwidth is never burned
            // reshuffling the ordering *within* the gathered set (which
            // is irrelevant to seek cost) or ratcheting one block inward
            // through repeated small steps. Only slots at least
            // `min_rank_gain` ranks inward qualify; an already-centered
            // block is not improvable and does not count against the
            // candidate budget.
            let scan_end = rank_h.saturating_sub(self.cfg.min_rank_gain.max(1) - 1);
            if scan_end == 0 {
                continue;
            }
            examined += 1;
            for r in 0..scan_end {
                let slot = self.slot_at_rank[r as usize];
                let occupant = self.phys_to_log[slot as usize];
                let wo = self.tracker.weight(occupant as usize);
                let wo_now = self.tracker.weight_at(occupant as usize, now_s);
                // Two-threshold hysteresis: entry requires `min_heat`,
                // eviction requires decaying a hysteresis factor *below*
                // it — otherwise blocks hovering at the threshold evict
                // each other endlessly (the Zipf tail is full of them).
                if wo_now * self.cfg.hysteresis < self.cfg.min_heat && wh > self.cfg.hysteresis * wo
                {
                    let gain = (wh - wo) * f64::from(rank_h - r);
                    if best.is_none_or(|(g, _, _)| gain > g) {
                        best = Some((gain, h, occupant));
                    }
                    break;
                }
            }
        }
        for (b, w) in popped {
            self.heap.push(b, w);
        }
        best.map(|(_, h, c)| (h, c))
    }

    /// Services the pending swap's next chunk I/O at `t` (seconds)
    /// through the wrapped device's normal service path — the cost is
    /// real and lands in any tracer or heatmap inside the wrapper. The
    /// permutation flips when the final write lands. Returns the chunk's
    /// duration.
    fn service_chunk(&mut self, t: f64) -> f64 {
        let p = self.pending.expect("a chunk needs a pending swap");
        let bs = self.cfg.block_sectors;
        let slot_hot = self.log_to_phys[p.hot as usize];
        let slot_cold = self.log_to_phys[p.cold as usize];
        let (slot, kind) = match p.next_chunk {
            0 => (slot_hot, IoKind::Read),
            1 => (slot_cold, IoKind::Read),
            2 => (slot_cold, IoKind::Write),
            _ => (slot_hot, IoKind::Write),
        };
        let at = SimTime::from_secs(t);
        let lbn = u64::from(slot) * u64::from(bs);
        let req = Request::new(self.next_migration_id, at, lbn, bs, kind);
        self.next_migration_id += 1;
        let b = self.inner.service(&req, at);
        let energy = self.inner.phase_energy(&b);
        let total = b.total();
        self.stats.chunk_ios += 1;
        self.stats.sectors += u64::from(bs);
        self.stats.busy_secs += total;
        self.stats.energy_j += energy.total();
        self.stats.breakdown_sum.accumulate(&b);
        self.stats.chunk_time.push(total);
        self.stats.chunk_tail.push(total);
        if p.next_chunk == 3 {
            self.log_to_phys.swap(p.hot as usize, p.cold as usize);
            self.phys_to_log.swap(slot_hot as usize, slot_cold as usize);
            self.stats.swaps += 1;
            self.pending = None;
        } else {
            self.pending = Some(PendingSwap {
                next_chunk: p.next_chunk + 1,
                ..p
            });
        }
        total
    }

    /// Replays the migrations of an idle period that started at `start`
    /// and was ended by a foreground arrival at `now_s`: first the
    /// chunks of a swap deferred by the previous arrival, then up to
    /// `max_swaps_per_window` fresh picks. Chunks are issued one at a
    /// time, and no new chunk starts at or after `now_s`, so the arrival
    /// waits for at most the one chunk in flight; that overlap is
    /// returned for billing as background wait.
    fn run_idle_window(&mut self, start: f64, now_s: f64) -> f64 {
        let mut t = start;
        let mut started = 0u32;
        let mut any = false;
        while t < now_s {
            if self.pending.is_none() {
                if started >= self.cfg.max_swaps_per_window {
                    break;
                }
                let Some((hot, cold)) = self.pick_swap(now_s) else {
                    break;
                };
                self.pending = Some(PendingSwap {
                    hot,
                    cold,
                    next_chunk: 0,
                });
                started += 1;
            }
            t += self.service_chunk(t);
            any = true;
        }
        if any {
            self.stats.windows += 1;
        }
        if t > now_s {
            let wait = t - now_s;
            self.stats.waits += 1;
            self.stats.foreground_wait_secs += wait;
            wait
        } else {
            0.0
        }
    }
}

impl<D: StorageDevice> PositionOracle for AdaptiveDevice<D> {
    fn position_time(&self, req: &Request, now: SimTime) -> f64 {
        self.inner.position_time(&self.map_request(req), now)
    }

    fn position_bucket(&self, req: &Request) -> u64 {
        self.inner.position_bucket(&self.map_request(req))
    }

    fn current_bucket(&self) -> u64 {
        self.inner.current_bucket()
    }

    fn min_position_time_at_bucket_distance(&self, distance: u64) -> f64 {
        self.inner.min_position_time_at_bucket_distance(distance)
    }

    fn bucket_position_time_floor(&self, bucket: u64) -> f64 {
        self.inner.bucket_position_time_floor(bucket)
    }

    fn rest_key(&self, now: SimTime) -> Option<[u64; 3]> {
        if self.cfg.migrate {
            // A swap between two scheduler visits changes position_time
            // for remapped requests without the inner rest state moving,
            // so cached per-bucket winners could go stale: disable the
            // pick cache (always safe).
            None
        } else {
            self.inner.rest_key(now)
        }
    }
}

impl<D: StorageDevice> StorageDevice for AdaptiveDevice<D> {
    fn name(&self) -> &str {
        &self.name
    }

    fn capacity_lbns(&self) -> u64 {
        self.inner.capacity_lbns()
    }

    fn service(&mut self, req: &Request, now: SimTime) -> ServiceBreakdown {
        let now_s = now.as_secs();
        let mut wait = 0.0;
        if self.cfg.migrate && now_s - self.last_busy_end >= self.cfg.idle_window {
            wait = self.run_idle_window(self.last_busy_end + self.cfg.idle_window, now_s);
        }
        self.record_heat(req, now_s);
        let eff = self.map_request(req);
        let start = if wait > 0.0 {
            SimTime::from_secs(now_s + wait)
        } else {
            now
        };
        let mut b = self.inner.service(&eff, start);
        b.background_wait = wait;
        self.last_busy_end = now_s + b.total();
        b
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.log_to_phys.copy_from_slice(&self.initial_log_to_phys);
        for (block, &slot) in self.initial_log_to_phys.iter().enumerate() {
            self.phys_to_log[slot as usize] = block as u32;
        }
        self.tracker.reset();
        self.heap.rebuild(&self.tracker);
        self.last_busy_end = 0.0;
        self.pending = None;
        self.next_migration_id = MIGRATION_ID_BASE;
        self.stats = MigrationStats::new();
    }

    fn phase_energy(&self, breakdown: &ServiceBreakdown) -> PhaseEnergy {
        // `background_wait` is not a mechanical phase of this request
        // (its energy is billed on the migration I/Os themselves), and
        // the inner models only read the explicit phase fields.
        self.inner.phase_energy(breakdown)
    }

    fn on_fault(&mut self, fault: &FaultKind, now: SimTime) {
        self.inner.on_fault(fault, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_device::{MemsDevice, MemsParams};

    fn mems() -> MemsDevice {
        MemsDevice::new(MemsParams::default())
    }

    fn cfg() -> PlacementConfig {
        PlacementConfig {
            block_sectors: 2700, // one cylinder per block
            idle_window: 2e-3,
            ..PlacementConfig::default()
        }
    }

    fn read(id: u64, at_ms: f64, lbn: u64) -> Request {
        Request::new(id, SimTime::from_ms(at_ms), lbn, 8, IoKind::Read)
    }

    #[test]
    fn hot_block_migrates_toward_center() {
        let mut dev = AdaptiveDevice::new(mems(), cfg());
        // Hammer a block at the far edge of the device, with idle gaps.
        let hot_block = 2u32;
        let lbn = u64::from(hot_block) * 2700 + 100;
        let start_rank = dev.rank_of_block(hot_block);
        for i in 0..40 {
            let b = dev.service(
                &read(i, 10.0 * i as f64, lbn),
                SimTime::from_ms(10.0 * i as f64),
            );
            assert!(b.total() > 0.0);
        }
        let stats = dev.migration_stats();
        assert!(stats.swaps >= 1, "hot edge block should migrate");
        // 4 chunk I/Os per committed swap, plus up to 3 belonging to a
        // swap still deferred mid-flight.
        assert!(
            stats.chunk_ios >= 4 * stats.swaps && stats.chunk_ios <= 4 * stats.swaps + 3,
            "chunk_ios {} vs swaps {}",
            stats.chunk_ios,
            stats.swaps
        );
        assert!(stats.busy_secs > 0.0);
        assert!(stats.energy_j > 0.0);
        assert!(
            dev.rank_of_block(hot_block) < start_rank,
            "rank should improve: {} -> {}",
            start_rank,
            dev.rank_of_block(hot_block)
        );
    }

    #[test]
    fn migrated_block_reads_its_new_home() {
        let mut dev = AdaptiveDevice::new(mems(), cfg());
        let lbn = 2 * 2700 + 100;
        for i in 0..40 {
            dev.service(
                &read(i, 10.0 * i as f64, lbn),
                SimTime::from_ms(10.0 * i as f64),
            );
        }
        assert!(dev.migration_stats().swaps >= 1);
        let slot = dev.slot_of_block(2);
        assert_ne!(slot, 2);
        let eff = dev.map_request(&read(99, 0.0, lbn));
        assert_eq!(eff.lbn, u64::from(slot) * 2700 + 100);
        // The mapping is a permutation: some other block now maps to the
        // hot block's old home.
        let displaced = dev.phys_to_log[2];
        assert_eq!(dev.slot_of_block(displaced), 2);
    }

    #[test]
    fn no_migration_without_idle_window() {
        let mut dev = AdaptiveDevice::new(mems(), cfg());
        // Back-to-back requests, never idle for 2 ms.
        let mut t = 0.0;
        for i in 0..200 {
            let b = dev.service(&read(i, t * 1e3, 2 * 2700 + 100), SimTime::from_secs(t));
            t += b.total();
        }
        assert_eq!(dev.migration_stats().swaps, 0);
    }

    #[test]
    fn migrate_off_never_swaps_or_waits() {
        let mut dev = AdaptiveDevice::new(
            mems(),
            PlacementConfig {
                migrate: false,
                ..cfg()
            },
        );
        for i in 0..40 {
            let b = dev.service(
                &read(i, 10.0 * i as f64, 5400),
                SimTime::from_ms(10.0 * i as f64),
            );
            assert_eq!(b.background_wait, 0.0);
        }
        assert_eq!(dev.migration_stats().swaps, 0);
        assert_eq!(dev.migration_stats().chunk_ios, 0);
    }

    #[test]
    fn reset_restores_initial_placement_and_stats() {
        let mut dev = AdaptiveDevice::new(mems(), cfg());
        for i in 0..40 {
            dev.service(
                &read(i, 10.0 * i as f64, 5500),
                SimTime::from_ms(10.0 * i as f64),
            );
        }
        assert!(dev.migration_stats().swaps >= 1);
        dev.reset();
        assert_eq!(dev.migration_stats().swaps, 0);
        for block in 0..dev.managed_blocks() {
            assert_eq!(dev.slot_of_block(block), block);
        }
        assert_eq!(dev.tracker().weight(2), 0.0);
    }

    #[test]
    fn organ_pipe_initial_placement_applies() {
        let base = AdaptiveDevice::new(mems(), cfg());
        let n = base.managed_blocks() as usize;
        // Block 7 hottest, everything else uniform.
        let mut freqs = vec![1.0; n];
        freqs[7] = 100.0;
        let map = OrganPipeMap::build(&freqs);
        let dev = AdaptiveDevice::new(
            mems(),
            PlacementConfig {
                migrate: false,
                ..cfg()
            },
        )
        .with_initial_placement(&map);
        assert_eq!(dev.rank_of_block(7), 0, "hottest block sits at rank 0");
        let req = read(0, 0.0, 7 * 2700 + 5);
        let eff = dev.map_request(&req);
        assert_eq!(eff.lbn, u64::from(dev.slot_of_block(7)) * 2700 + 5);
    }

    #[test]
    fn spanning_request_extends_contiguously_and_clamps() {
        use storage_sim::ConstantDevice;
        // 10 blocks of 10 sectors on a 100-sector device; descending
        // frequencies rank block i at center-out rank i, and rank 7 is
        // the last physical slot (slot order 5,6,4,7,3,8,2,9,1,0).
        let freqs: Vec<f64> = (0..10).map(|i| f64::from(10 - i)).collect();
        let map = OrganPipeMap::build(&freqs);
        let dev = AdaptiveDevice::new(
            ConstantDevice::new(100, 1e-3),
            PlacementConfig {
                block_sectors: 10,
                migrate: false,
                ..PlacementConfig::default()
            },
        )
        .with_initial_placement(&map);
        assert_eq!(dev.slot_of_block(7), 9);
        // A spanning request from block 7 extends contiguously from its
        // mapped start and clamps at the device capacity.
        let req = Request::new(0, SimTime::ZERO, 75, 10, IoKind::Read);
        let eff = dev.map_request(&req);
        assert_eq!(eff.lbn, 95);
        assert_eq!(eff.sectors, 5, "clamped at capacity");
        // A request that fits keeps its size.
        let req = Request::new(1, SimTime::ZERO, 75, 3, IoKind::Read);
        let eff = dev.map_request(&req);
        assert_eq!((eff.lbn, eff.sectors), (95, 3));
    }
}
