//! Adaptive data placement: online hot/cold migration (ROADMAP item 2).
//!
//! The paper's §5 layouts are computed offline from a frequency census
//! and never move data again. This module closes the observation→action
//! loop instead: [`FrequencyTracker`] keeps exponentially-decayed
//! per-block access counters (with [`DoublePriorityQueue`] exposing the
//! hottest and coldest blocks), and [`AdaptiveDevice`] migrates hot
//! blocks toward the cheap center cylinders during idle windows,
//! through a block-granular indirection table, billing every migration
//! I/O through the wrapped device's normal service path.

mod adaptive;
mod frequency;

pub use adaptive::{AdaptiveDevice, MigrationStats, PlacementConfig};
pub use frequency::{DoublePriorityQueue, FrequencyTracker};
