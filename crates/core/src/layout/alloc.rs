//! Extent allocation over a bipartite layout.
//!
//! The paper's §5.3 placement decision — small/popular data to the
//! centermost subregion, large/streaming data to the outer subregions —
//! needs an allocator to be usable by a file system or database. This
//! module provides one: a first-fit extent allocator per data class,
//! seeded from a [`Layout`]'s designated regions, with coalescing frees
//! and fragmentation reporting.

use std::collections::BTreeMap;
use std::ops::Range;

use super::Layout;

/// An allocated run of sectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First sector.
    pub lbn: u64,
    /// Length in sectors.
    pub sectors: u64,
}

impl Extent {
    /// One past the last sector.
    pub fn end(&self) -> u64 {
        self.lbn + self.sectors
    }
}

/// Which data class an extent belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataClass {
    /// Small, popular data (centermost placement).
    Small,
    /// Large, streaming data (outer placement).
    Large,
}

/// First-fit free-extent list with coalescing.
#[derive(Debug, Clone, Default)]
struct FreeList {
    /// start → length, non-overlapping, non-adjacent.
    runs: BTreeMap<u64, u64>,
    free: u64,
}

impl FreeList {
    fn seed(ranges: &[Range<u64>]) -> Self {
        let mut list = FreeList::default();
        for r in ranges {
            list.release(r.start, r.end - r.start);
        }
        list
    }

    fn allocate(&mut self, sectors: u64) -> Option<u64> {
        let (&start, &len) = self.runs.iter().find(|(_, &len)| len >= sectors)?;
        self.runs.remove(&start);
        if len > sectors {
            self.runs.insert(start + sectors, len - sectors);
        }
        self.free -= sectors;
        Some(start)
    }

    fn release(&mut self, start: u64, sectors: u64) {
        assert!(sectors > 0);
        // Merge with the predecessor and successor where adjacent.
        let mut new_start = start;
        let mut new_len = sectors;
        if let Some((&p_start, &p_len)) = self.runs.range(..start).next_back() {
            assert!(p_start + p_len <= start, "double free or overlap");
            if p_start + p_len == start {
                self.runs.remove(&p_start);
                new_start = p_start;
                new_len += p_len;
            }
        }
        if let Some((&n_start, &n_len)) = self.runs.range(start..).next() {
            assert!(start + sectors <= n_start, "double free or overlap");
            if start + sectors == n_start {
                self.runs.remove(&n_start);
                new_len += n_len;
            }
        }
        self.runs.insert(new_start, new_len);
        self.free += sectors;
    }

    fn largest(&self) -> u64 {
        self.runs.values().copied().max().unwrap_or(0)
    }
}

/// A per-class extent allocator seeded from a layout's regions.
///
/// # Examples
///
/// ```
/// use mems_device::MemsParams;
/// use mems_os::layout::{Allocator, ColumnarLayout, DataClass};
///
/// let layout = ColumnarLayout::new(&MemsParams::default().geometry());
/// let mut alloc = Allocator::new(&layout);
/// let meta = alloc.allocate(DataClass::Small, 8).unwrap();
/// let stream = alloc.allocate(DataClass::Large, 800).unwrap();
/// // Small data landed in the center column, large in the outer band.
/// assert!(meta.lbn >= 1200 * 2700 && meta.end() <= 1300 * 2700);
/// assert!(stream.end() <= 1000 * 2700 || stream.lbn >= 1500 * 2700);
/// alloc.release(DataClass::Small, meta);
/// ```
#[derive(Debug, Clone)]
pub struct Allocator {
    small: FreeList,
    large: FreeList,
    small_total: u64,
    large_total: u64,
}

impl Allocator {
    /// Seeds an allocator from a layout's regions.
    pub fn new(layout: &dyn Layout) -> Self {
        let small = FreeList::seed(layout.small_ranges());
        let large = FreeList::seed(layout.large_ranges());
        let small_total = small.free;
        let large_total = large.free;
        Allocator {
            small,
            large,
            small_total,
            large_total,
        }
    }

    /// Allocates a contiguous extent of `sectors` in the class's region;
    /// `None` when no free run is large enough.
    ///
    /// # Panics
    ///
    /// Panics if `sectors` is zero.
    pub fn allocate(&mut self, class: DataClass, sectors: u64) -> Option<Extent> {
        assert!(sectors > 0, "cannot allocate zero sectors");
        let list = self.list_mut(class);
        list.allocate(sectors).map(|lbn| Extent { lbn, sectors })
    }

    /// Returns an extent to its class's free pool, coalescing neighbors.
    ///
    /// # Panics
    ///
    /// Panics on double frees or overlapping releases.
    pub fn release(&mut self, class: DataClass, extent: Extent) {
        self.list_mut(class).release(extent.lbn, extent.sectors);
    }

    /// Free sectors remaining in a class.
    pub fn free_sectors(&self, class: DataClass) -> u64 {
        self.list(class).free
    }

    /// Utilization of a class region in `[0, 1]`.
    pub fn utilization(&self, class: DataClass) -> f64 {
        let total = match class {
            DataClass::Small => self.small_total,
            DataClass::Large => self.large_total,
        };
        if total == 0 {
            0.0
        } else {
            1.0 - self.list(class).free as f64 / total as f64
        }
    }

    /// External fragmentation of a class: 1 − largest free run / free
    /// space (0 = one contiguous run, → 1 = shattered).
    pub fn fragmentation(&self, class: DataClass) -> f64 {
        let list = self.list(class);
        if list.free == 0 {
            0.0
        } else {
            1.0 - list.largest() as f64 / list.free as f64
        }
    }

    fn list(&self, class: DataClass) -> &FreeList {
        match class {
            DataClass::Small => &self.small,
            DataClass::Large => &self.large,
        }
    }

    fn list_mut(&mut self, class: DataClass) -> &mut FreeList {
        match class {
            DataClass::Small => &mut self.small,
            DataClass::Large => &mut self.large,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::SimpleLayout;

    fn alloc() -> Allocator {
        Allocator::new(&SimpleLayout::new(10_000))
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut a = alloc();
        let mut taken: Vec<Extent> = Vec::new();
        for _ in 0..100 {
            let e = a.allocate(DataClass::Small, 64).unwrap();
            for t in &taken {
                assert!(e.end() <= t.lbn || t.end() <= e.lbn, "overlap");
            }
            taken.push(e);
        }
    }

    #[test]
    fn exhaustion_returns_none_then_release_recovers() {
        let mut a = alloc();
        let e1 = a.allocate(DataClass::Small, 6_000).unwrap();
        assert!(a.allocate(DataClass::Small, 6_000).is_none());
        a.release(DataClass::Small, e1);
        assert!(a.allocate(DataClass::Small, 6_000).is_some());
    }

    #[test]
    fn coalescing_restores_contiguity() {
        let mut a = alloc();
        let e1 = a.allocate(DataClass::Small, 3_000).unwrap();
        let e2 = a.allocate(DataClass::Small, 3_000).unwrap();
        let e3 = a.allocate(DataClass::Small, 3_000).unwrap();
        // Free in shuffle order; the three must merge back.
        a.release(DataClass::Small, e2);
        a.release(DataClass::Small, e1);
        a.release(DataClass::Small, e3);
        assert_eq!(a.fragmentation(DataClass::Small), 0.0);
        assert!(a.allocate(DataClass::Small, 9_000).is_some());
    }

    #[test]
    fn utilization_tracks_allocations() {
        let mut a = alloc();
        assert_eq!(a.utilization(DataClass::Small), 0.0);
        let _ = a.allocate(DataClass::Small, 5_000).unwrap();
        assert!((a.utilization(DataClass::Small) - 0.5).abs() < 1e-12);
        assert_eq!(a.free_sectors(DataClass::Small), 5_000);
    }

    #[test]
    fn fragmentation_reflects_holes() {
        let mut a = alloc();
        let extents: Vec<Extent> = (0..10)
            .map(|_| a.allocate(DataClass::Small, 1_000).unwrap())
            .collect();
        // Free every other extent: five 1000-sector holes.
        for e in extents.iter().step_by(2) {
            a.release(DataClass::Small, *e);
        }
        let frag = a.fragmentation(DataClass::Small);
        assert!(frag > 0.5, "shattered free space, frag {frag}");
    }

    #[test]
    fn classes_are_independent_pools() {
        let layout =
            crate::layout::ColumnarLayout::new(&mems_device::MemsParams::default().geometry());
        let mut a = Allocator::new(&layout);
        let small = a.allocate(DataClass::Small, 8).unwrap();
        let large = a.allocate(DataClass::Large, 800).unwrap();
        assert!(small.end() <= 1300 * 2700 && small.lbn >= 1200 * 2700);
        assert!(large.end() <= 1000 * 2700 || large.lbn >= 1500 * 2700);
        // Releasing into the wrong class would corrupt accounting; the
        // pools don't know each other's ranges, so discipline is on the
        // caller — but double frees within a class are caught.
        a.release(DataClass::Small, small);
        a.release(DataClass::Large, large);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = alloc();
        let e = a.allocate(DataClass::Small, 100).unwrap();
        a.release(DataClass::Small, e);
        a.release(DataClass::Small, e);
    }

    #[test]
    fn subregion_layout_allocates_within_row_bands() {
        let layout =
            crate::layout::SubregionedLayout::new(&mems_device::MemsParams::default().geometry());
        let mut a = Allocator::new(&layout);
        let mapper = mems_device::Mapper::new(&mems_device::MemsParams::default());
        for _ in 0..50 {
            let e = a.allocate(DataClass::Small, 8).unwrap();
            let addr = mapper.decompose(e.lbn);
            assert!((1000..1500).contains(&addr.cylinder));
            assert!((10..17).contains(&addr.row));
        }
    }
}
