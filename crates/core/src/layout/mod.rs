//! On-device data placement (§5).
//!
//! The paper's layout study exploits two MEMS-specific observations:
//!
//! 1. short seeks near the sled edges are slower than near the center,
//!    because the springs fight the actuator (§5.1, Fig. 9), and
//! 2. positioning is so fast relative to streaming that large sequential
//!    transfers barely care where they live (<10% penalty even for
//!    1000-cylinder seeks; §5.2, Fig. 10).
//!
//! Together they motivate a **bipartite** placement: small, popular data
//! in the centermost subregion; large streaming data in the outermost
//! subregions. This module provides the four layouts Fig. 11 compares —
//! [`SimpleLayout`], [`OrganPipeLayout`], [`SubregionedLayout`] (5×5
//! grid), and [`ColumnarLayout`] (25 columns) — as designated LBN regions
//! for the two data classes, a [`BipartiteWorkload`] generator that drives
//! them with the paper's 89%-small/11%-large read mix, and the real
//! organ-pipe block permutation ([`OrganPipeMap`]) with its bookkeeping
//! cost, which the bipartite layouts avoid.

mod alloc;
mod columnar;
mod organ_pipe;
mod simple;
mod subregion;

pub use alloc::{Allocator, DataClass, Extent};
pub use columnar::ColumnarLayout;
pub use organ_pipe::{OrganPipeLayout, OrganPipeMap};
pub use simple::SimpleLayout;
pub use subregion::SubregionedLayout;

use std::ops::Range;

use rand::rngs::SmallRng;
use storage_sim::rng;
use storage_sim::{IoKind, Request, SimTime, Workload};

/// A bipartite data placement: designated LBN regions for small/popular
/// and large/sequential data.
pub trait Layout {
    /// Scheme name as it appears in Fig. 11.
    fn name(&self) -> &str;

    /// LBN ranges holding small, popular data.
    fn small_ranges(&self) -> &[Range<u64>];

    /// LBN ranges holding large, streaming data.
    fn large_ranges(&self) -> &[Range<u64>];
}

/// Total number of sectors across a set of ranges.
pub fn ranges_len(ranges: &[Range<u64>]) -> u64 {
    ranges.iter().map(|r| r.end - r.start).sum()
}

/// Samples an aligned start LBN for a request of `sectors` sectors,
/// uniform over the usable positions of `ranges`.
///
/// Returns `None` if no range can hold the request.
pub fn sample_start(rng_state: &mut SmallRng, ranges: &[Range<u64>], sectors: u32) -> Option<u64> {
    let usable: Vec<Range<u64>> = ranges
        .iter()
        .filter(|r| r.end - r.start >= u64::from(sectors))
        .cloned()
        .collect();
    if usable.is_empty() {
        return None;
    }
    let total: u64 = usable
        .iter()
        .map(|r| r.end - r.start - u64::from(sectors) + 1)
        .sum();
    let mut pick = rng::uniform_u64(rng_state, total);
    for r in &usable {
        let slots = r.end - r.start - u64::from(sectors) + 1;
        if pick < slots {
            return Some(r.start + pick);
        }
        pick -= slots;
    }
    unreachable!("pick is within the total slot count");
}

/// The Fig. 11 workload: a read stream, `small_fraction` of requests
/// small (4 KB) targeting the layout's small region and the rest large
/// (400 KB) targeting its large region.
///
/// # Examples
///
/// ```
/// use mems_os::layout::{BipartiteWorkload, SimpleLayout};
/// use storage_sim::Workload;
///
/// let layout = SimpleLayout::new(6_750_000);
/// let mut w = BipartiteWorkload::paper(&layout, 100, 42);
/// let mut small = 0;
/// while let Some(r) = w.next_request() {
///     if r.sectors == 8 { small += 1; }
/// }
/// assert!(small > 75); // ≈89% of requests are small
/// ```
pub struct BipartiteWorkload {
    small_ranges: Vec<Range<u64>>,
    large_ranges: Vec<Range<u64>>,
    small_fraction: f64,
    small_sectors: u32,
    large_sectors: u32,
    interarrival: f64,
    remaining: u64,
    next_id: u64,
    clock: f64,
    rng: SmallRng,
}

impl BipartiteWorkload {
    /// The paper's §5.3 parameters: 89% small 4 KB reads, 11% large
    /// 400 KB reads, arrivals spaced far enough apart that no queueing
    /// occurs (Fig. 11 reports pure access times).
    pub fn paper(layout: &dyn Layout, requests: u64, seed: u64) -> Self {
        Self::new(layout, requests, 0.89, 8, 800, 1.0, seed)
    }

    /// Fully parameterized constructor.
    ///
    /// # Panics
    ///
    /// Panics if `small_fraction` is outside `[0,1]` or a region cannot
    /// hold its request size.
    pub fn new(
        layout: &dyn Layout,
        requests: u64,
        small_fraction: f64,
        small_sectors: u32,
        large_sectors: u32,
        interarrival: f64,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&small_fraction));
        let small_ranges = layout.small_ranges().to_vec();
        let large_ranges = layout.large_ranges().to_vec();
        assert!(
            small_ranges
                .iter()
                .any(|r| r.end - r.start >= u64::from(small_sectors)),
            "small region too small for small requests"
        );
        assert!(
            small_fraction >= 1.0
                || large_ranges
                    .iter()
                    .any(|r| r.end - r.start >= u64::from(large_sectors)),
            "large region too small for large requests"
        );
        BipartiteWorkload {
            small_ranges,
            large_ranges,
            small_fraction,
            small_sectors,
            large_sectors,
            interarrival,
            remaining: requests,
            next_id: 0,
            clock: 0.0,
            rng: rng::seeded(seed),
        }
    }
}

impl Workload for BipartiteWorkload {
    fn next_request(&mut self) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let small = rng::bernoulli(&mut self.rng, self.small_fraction);
        let (ranges, sectors) = if small {
            (&self.small_ranges, self.small_sectors)
        } else {
            (&self.large_ranges, self.large_sectors)
        };
        let lbn = sample_start(&mut self.rng, ranges, sectors)
            .expect("constructor validated the regions");
        let req = Request::new(
            self.next_id,
            SimTime::from_secs(self.clock),
            lbn,
            sectors,
            IoKind::Read,
        );
        self.next_id += 1;
        self.clock += self.interarrival;
        Some(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TwoRegion {
        small: Vec<Range<u64>>,
        large: Vec<Range<u64>>,
    }

    impl Layout for TwoRegion {
        fn name(&self) -> &str {
            "two-region"
        }
        fn small_ranges(&self) -> &[Range<u64>] {
            &self.small
        }
        fn large_ranges(&self) -> &[Range<u64>] {
            &self.large
        }
    }

    #[test]
    fn ranges_len_sums_disjoint_ranges() {
        assert_eq!(ranges_len(&[0..10, 20..25]), 15);
        assert_eq!(ranges_len(&[]), 0);
    }

    #[test]
    fn sample_start_stays_inside_and_fits() {
        let mut r = rng::seeded(7);
        let ranges = vec![100..200, 1000..1016];
        for _ in 0..10_000 {
            let start = sample_start(&mut r, &ranges, 16).unwrap();
            let fits_first = (100..=184).contains(&start);
            let fits_second = start == 1000;
            assert!(fits_first || fits_second, "start {start}");
        }
    }

    #[test]
    fn sample_start_skips_too_small_ranges() {
        let mut r = rng::seeded(7);
        let ranges = vec![0..4, 100..200];
        for _ in 0..1000 {
            let start = sample_start(&mut r, &ranges, 8).unwrap();
            assert!((100..=192).contains(&start));
        }
        assert_eq!(sample_start(&mut r, &[0..4], 8), None);
    }

    #[test]
    fn workload_respects_regions_and_mix() {
        let layout = TwoRegion {
            small: vec![0..10_000],
            large: vec![100_000..200_000],
        };
        let mut w = BipartiteWorkload::new(&layout, 5000, 0.89, 8, 800, 0.001, 3);
        let (mut small, mut large) = (0u64, 0u64);
        let mut last_arrival = SimTime::ZERO;
        while let Some(r) = w.next_request() {
            assert!(r.arrival >= last_arrival);
            last_arrival = r.arrival;
            if r.sectors == 8 {
                small += 1;
                assert!(r.end_lbn() <= 10_000);
            } else {
                large += 1;
                assert_eq!(r.sectors, 800);
                assert!(r.lbn >= 100_000 && r.end_lbn() <= 200_000);
            }
        }
        let frac = small as f64 / (small + large) as f64;
        assert!((frac - 0.89).abs() < 0.02, "small fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "large region too small")]
    fn undersized_large_region_rejected() {
        let layout = TwoRegion {
            small: vec![0..10_000],
            large: vec![0..100],
        };
        let _ = BipartiteWorkload::new(&layout, 10, 0.5, 8, 800, 1.0, 1);
    }
}
