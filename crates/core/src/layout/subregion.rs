//! The subregioned layout (§5.3): a 5×5 grid over sled X and Y.
//!
//! The sled's travel is divided into a five-by-five grid of subregions
//! (Fig. 9). Unlike the columnar layout, subregions bound *both* sled
//! dimensions, so placing small data in the centermost subregion keeps
//! both the X and the Y excursions of hot accesses short — which is why
//! the subregioned layout wins once settle time is removed ("MEMS-nosettle"
//! in Fig. 11). Small data occupies the centermost subregion; large data
//! the ten leftmost and ten rightmost subregions (the two outer column
//! bands in full).

use std::ops::Range;

use mems_device::MemsGeometry;

use super::Layout;

/// 5×5-grid bipartite placement over a MEMS device.
///
/// # Examples
///
/// ```
/// use mems_device::MemsParams;
/// use mems_os::layout::{Layout, SubregionedLayout};
///
/// let geom = MemsParams::default().geometry();
/// let l = SubregionedLayout::new(&geom);
/// // The small region bounds Y as well as X, so it is made of many short
/// // per-track runs rather than one contiguous range.
/// assert!(l.small_ranges().len() > 100);
/// ```
#[derive(Debug, Clone)]
pub struct SubregionedLayout {
    small: Vec<Range<u64>>,
    large: Vec<Range<u64>>,
}

impl SubregionedLayout {
    /// Grid dimension, fixed at 5 per the paper.
    pub const GRID: u32 = 5;

    /// Builds the layout for a device geometry.
    ///
    /// # Panics
    ///
    /// Panics if the device has fewer cylinders or rows than the grid.
    pub fn new(geom: &MemsGeometry) -> Self {
        assert!(geom.cylinders >= Self::GRID && geom.rows_per_track >= Self::GRID);
        let g = Self::GRID;
        // Cylinder bands 0..5 and row bands 0..5. Rows don't divide by 5
        // evenly (27 = 5+5+7+5+5); give the center band the excess so the
        // "centermost" subregion is centered.
        let cyl_band = geom.cylinders / g;
        let row_band = geom.rows_per_track / g;
        let row_excess = geom.rows_per_track - row_band * g;
        let row_bounds = {
            let mut bounds = Vec::with_capacity(g as usize + 1);
            let mut r = 0u32;
            bounds.push(r);
            for band in 0..g {
                r += row_band + if band == g / 2 { row_excess } else { 0 };
                bounds.push(r);
            }
            bounds
        };

        // The centermost subregion: cylinder band 2 × row band 2.
        let center_cyls = (g / 2) * cyl_band..(g / 2 + 1) * cyl_band;
        let center_rows = row_bounds[(g / 2) as usize]..row_bounds[(g / 2 + 1) as usize];
        let spr = u64::from(geom.sectors_per_row);
        let rpt = u64::from(geom.rows_per_track);
        let tpc = u64::from(geom.tracks_per_cylinder);
        let mut small = Vec::new();
        for cyl in center_cyls {
            for track in 0..geom.tracks_per_cylinder {
                let base = (u64::from(cyl) * tpc + u64::from(track)) * rpt * spr;
                small.push(
                    base + u64::from(center_rows.start) * spr
                        ..base + u64::from(center_rows.end) * spr,
                );
            }
        }

        // The ten leftmost and ten rightmost subregions are the two outer
        // cylinder double-bands with all rows — contiguous LBN ranges.
        let spc = tpc * rpt * spr; // sectors per cylinder
        let left_end = u64::from(2 * cyl_band) * spc;
        let right_start = u64::from(3 * cyl_band) * spc;
        let total = geom.total_sectors();
        let large = vec![0..left_end, right_start..total];

        SubregionedLayout { small, large }
    }
}

impl Layout for SubregionedLayout {
    fn name(&self) -> &str {
        "subregioned"
    }

    fn small_ranges(&self) -> &[Range<u64>] {
        &self.small
    }

    fn large_ranges(&self) -> &[Range<u64>] {
        &self.large
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ranges_len;
    use mems_device::{Mapper, MemsParams};

    fn layout() -> SubregionedLayout {
        SubregionedLayout::new(&MemsParams::default().geometry())
    }

    #[test]
    fn small_region_bounds_both_dimensions() {
        let l = layout();
        let mapper = Mapper::new(&MemsParams::default());
        for r in l.small_ranges() {
            for lbn in [r.start, r.end - 1] {
                let a = mapper.decompose(lbn);
                assert!(
                    (1000..1500).contains(&a.cylinder),
                    "cylinder {} outside center band",
                    a.cylinder
                );
                // Row band 2 with the excess: rows 10..17.
                assert!(
                    (10..17).contains(&a.row),
                    "row {} outside center band",
                    a.row
                );
            }
        }
    }

    #[test]
    fn small_region_covers_center_band_fully() {
        let l = layout();
        // 500 cylinders × 5 tracks × 7 rows × 20 sectors.
        assert_eq!(ranges_len(l.small_ranges()), 500 * 5 * 7 * 20);
        assert_eq!(l.small_ranges().len(), 500 * 5);
    }

    #[test]
    fn large_region_is_the_outer_cylinder_bands() {
        let l = layout();
        let lr = l.large_ranges();
        assert_eq!(lr[0], 0..1000 * 2700);
        assert_eq!(lr[1], 1500 * 2700..2500 * 2700);
    }

    #[test]
    fn small_runs_fit_4_kb_requests() {
        let l = layout();
        for r in l.small_ranges() {
            assert!(r.end - r.start >= 8, "run too short for a 4 KB request");
        }
    }

    #[test]
    fn regions_do_not_overlap() {
        let l = layout();
        for s in l.small_ranges() {
            for g in l.large_ranges() {
                assert!(s.end <= g.start || g.end <= s.start, "overlap");
            }
        }
    }
}
