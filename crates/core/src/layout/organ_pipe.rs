//! The organ pipe layout [VC90, RW91] — the optimal *disk* arrangement.
//!
//! The most popular blocks sit at the center of the LBN space, with blocks
//! of decreasing popularity alternating to either side. The paper's point
//! (§5.3): although provably optimal for disks, on MEMS devices organ pipe
//! loses to the bipartite subregioned/columnar layouts — and it also drags
//! along bookkeeping the bipartite layouts don't need (per-block popularity
//! counts and periodic reshuffling). [`OrganPipeMap`] is the real
//! block-permutation machinery including that bookkeeping;
//! [`OrganPipeLayout`] is the bipartite-workload view used by Fig. 11.

use std::ops::Range;

use super::Layout;

/// A popularity-driven organ-pipe block permutation.
///
/// Logical blocks ranked by access frequency are assigned physical
/// positions center-out: rank 0 at the center slot, rank 1 just above,
/// rank 2 just below, and so on.
///
/// # Examples
///
/// ```
/// use mems_os::layout::OrganPipeMap;
///
/// // Five blocks; block 3 is the hottest, block 0 the coldest.
/// let freqs = [1.0, 2.0, 3.0, 100.0, 4.0];
/// let map = OrganPipeMap::build(&freqs);
/// // The hottest block lands in the center slot (index 2 of 5).
/// assert_eq!(map.physical_of(3), 2);
/// // Round trip.
/// for b in 0..5 { assert_eq!(map.logical_of(map.physical_of(b)), b); }
/// ```
#[derive(Debug, Clone)]
pub struct OrganPipeMap {
    /// physical slot of each logical block.
    phys: Vec<u64>,
    /// logical block in each physical slot.
    logical: Vec<u64>,
}

impl OrganPipeMap {
    /// Builds the permutation from per-block access frequencies.
    ///
    /// # Panics
    ///
    /// Panics if `frequencies` is empty or contains a negative or
    /// non-finite value.
    pub fn build(frequencies: &[f64]) -> Self {
        assert!(!frequencies.is_empty(), "no blocks to place");
        assert!(
            frequencies.iter().all(|f| f.is_finite() && *f >= 0.0),
            "frequencies must be finite and non-negative"
        );
        let n = frequencies.len();
        // Rank blocks by descending frequency (ties by block number for
        // determinism).
        let mut ranked: Vec<usize> = (0..n).collect();
        ranked.sort_by(|&a, &b| {
            frequencies[b]
                .partial_cmp(&frequencies[a])
                .expect("frequencies are finite")
                .then(a.cmp(&b))
        });
        // Center-out slot order: center, center+1, center-1, center+2, ...
        let center = n / 2;
        let mut slots = Vec::with_capacity(n);
        slots.push(center);
        for d in 1..=n {
            if center + d < n {
                slots.push(center + d);
            }
            if slots.len() == n {
                break;
            }
            if center >= d {
                slots.push(center - d);
            }
            if slots.len() == n {
                break;
            }
        }
        let mut phys = vec![0u64; n];
        let mut logical = vec![0u64; n];
        for (rank, &block) in ranked.iter().enumerate() {
            let slot = slots[rank];
            phys[block] = slot as u64;
            logical[slot] = block as u64;
        }
        OrganPipeMap { phys, logical }
    }

    /// Number of blocks managed.
    pub fn len(&self) -> usize {
        self.phys.len()
    }

    /// Returns `true` if the map is empty (never true for built maps).
    pub fn is_empty(&self) -> bool {
        self.phys.is_empty()
    }

    /// Physical slot of a logical block.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn physical_of(&self, block: u64) -> u64 {
        self.phys[usize::try_from(block).expect("block fits usize")]
    }

    /// Logical block stored in a physical slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn logical_of(&self, slot: u64) -> u64 {
        self.logical[usize::try_from(slot).expect("slot fits usize")]
    }

    /// Number of blocks that must move to transform this arrangement into
    /// `next` — the periodic reshuffling cost the paper charges against
    /// organ pipe (§5.3).
    pub fn reshuffle_moves(&self, next: &OrganPipeMap) -> u64 {
        assert_eq!(self.len(), next.len(), "maps must cover the same blocks");
        self.phys
            .iter()
            .zip(&next.phys)
            .filter(|(a, b)| a != b)
            .count() as u64
    }
}

/// Fig. 11's organ-pipe layout: *all* blocks — small 4 KB blocks and
/// large 400 KB extents alike — are placed center-out by per-block access
/// frequency, the way organ pipe actually works.
///
/// This is where organ pipe loses to the bipartite layouts on MEMS
/// devices: with the paper's one-large-per-eight-small distribution, the
/// per-block popularity of large extents is comparable to that of small
/// blocks, so large extents interleave into the hot center. The small
/// data ends up scattered across a wide span (large extents consume 100×
/// the space per placement), inflating the hot-access excursions, while
/// the bipartite layouts pin all small data in one tight subregion.
#[derive(Debug, Clone)]
pub struct OrganPipeLayout {
    small: Vec<Range<u64>>,
    large: Vec<Range<u64>>,
}

impl OrganPipeLayout {
    /// Builds the popularity-interleaved arrangement for a device of
    /// `capacity` sectors: a small-block pool of `small_pool` sectors (in
    /// `small_block` chunks) and a large-extent pool of `large_pool`
    /// sectors (in `large_block` chunks), with class access masses of
    /// 89%/11% and Zipf-ish per-block popularity within each class.
    ///
    /// # Panics
    ///
    /// Panics if the pools don't fit the capacity or a chunk size is
    /// zero.
    pub fn interleaved(
        capacity: u64,
        small_pool: u64,
        large_pool: u64,
        small_block: u32,
        large_block: u32,
    ) -> Self {
        assert!(small_block > 0 && large_block > 0);
        assert!(small_pool + large_pool <= capacity, "pools exceed capacity");
        let n_small = small_pool / u64::from(small_block);
        let n_large = large_pool / u64::from(large_block);
        assert!(n_small > 0 && n_large > 0, "each pool needs blocks");
        // Per-block weight: class mass × Zipf(rank) within the class.
        let theta = 0.8;
        let h = |n: u64| -> f64 { (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum() };
        let h_small = h(n_small.min(200_000));
        let h_large = h(n_large);
        let weight_small = |rank: u64| 0.89 / h_small / ((rank + 1) as f64).powf(theta);
        let weight_large = |rank: u64| 0.11 / h_large / ((rank + 1) as f64).powf(theta);

        // Merge the two popularity-sorted classes by descending weight
        // (both sequences are themselves descending, so this is a merge).
        let mut placements: Vec<(bool, u32)> = Vec::with_capacity((n_small + n_large) as usize);
        let (mut i, mut j) = (0u64, 0u64);
        while i < n_small || j < n_large {
            let take_small = match (i < n_small, j < n_large) {
                (true, true) => weight_small(i) >= weight_large(j),
                (true, false) => true,
                _ => false,
            };
            if take_small {
                placements.push((true, small_block));
                i += 1;
            } else {
                placements.push((false, large_block));
                j += 1;
            }
        }

        // Assign placements to positions center-out: alternate above and
        // below the center, keeping each side contiguous.
        let total: u64 = small_pool + large_pool;
        let center = capacity / 2;
        let mut above = center; // next free sector going up
        let mut below = center; // one past the next free run going down
        debug_assert!(center >= total / 2 + u64::from(large_block));
        let mut small = Vec::new();
        let mut large = Vec::new();
        for (idx, &(is_small, len)) in placements.iter().enumerate() {
            let len = u64::from(len);
            let range = if idx % 2 == 0 {
                let r = above..above + len;
                above += len;
                r
            } else {
                let r = below - len..below;
                below -= len;
                r
            };
            if is_small {
                small.push(range);
            } else {
                large.push(range);
            }
        }
        OrganPipeLayout {
            small: coalesce(small),
            large: coalesce(large),
        }
    }

    /// The paper-comparable sizing: the same data footprints as the
    /// columnar layout (small pool = 1/25 of capacity in 4 KB blocks,
    /// large pool = 20/25 in 400 KB extents).
    pub fn paper(capacity: u64) -> Self {
        Self::interleaved(capacity, capacity / 25, capacity * 20 / 25, 8, 800)
    }
}

/// Sorts ranges and merges adjacent/overlapping ones.
fn coalesce(mut ranges: Vec<Range<u64>>) -> Vec<Range<u64>> {
    ranges.sort_by_key(|r| r.start);
    let mut out: Vec<Range<u64>> = Vec::new();
    for r in ranges {
        match out.last_mut() {
            Some(last) if r.start <= last.end => last.end = last.end.max(r.end),
            _ => out.push(r),
        }
    }
    out
}

impl Layout for OrganPipeLayout {
    fn name(&self) -> &str {
        "organ pipe"
    }

    fn small_ranges(&self) -> &[Range<u64>] {
        &self.small
    }

    fn large_ranges(&self) -> &[Range<u64>] {
        &self.large
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ranges_len;

    #[test]
    fn map_places_hottest_at_center() {
        let freqs: Vec<f64> = (0..101).map(f64::from).collect();
        let map = OrganPipeMap::build(&freqs);
        // Block 100 is hottest -> center slot 50.
        assert_eq!(map.physical_of(100), 50);
        // The next two hottest flank the center.
        let p99 = map.physical_of(99);
        let p98 = map.physical_of(98);
        assert!(p99 == 51 || p99 == 49);
        assert!(p98 == 51 || p98 == 49);
        assert_ne!(p99, p98);
    }

    #[test]
    fn map_is_a_permutation() {
        let freqs: Vec<f64> = (0..500).map(|i| ((i * 37) % 91) as f64).collect();
        let map = OrganPipeMap::build(&freqs);
        let mut seen = vec![false; 500];
        for b in 0..500 {
            let p = map.physical_of(b);
            assert!(!seen[p as usize], "slot {p} assigned twice");
            seen[p as usize] = true;
            assert_eq!(map.logical_of(p), b);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn popularity_decreases_with_distance_from_center() {
        let freqs: Vec<f64> = (0..200).map(|i| f64::from(200 - i)).collect();
        let map = OrganPipeMap::build(&freqs);
        let center = 100u64;
        // For any two blocks, the more popular one is no farther from the
        // center than the less popular one (frequencies are distinct).
        for a in 0..200u64 {
            for b in (a + 1)..200 {
                // freqs[a] > freqs[b]
                let da = map.physical_of(a).abs_diff(center);
                let db = map.physical_of(b).abs_diff(center);
                assert!(da <= db, "block {a} (hotter) farther than {b}");
            }
        }
    }

    #[test]
    fn reshuffle_counts_moved_blocks() {
        let a = OrganPipeMap::build(&[1.0, 2.0, 3.0]);
        let b = OrganPipeMap::build(&[3.0, 2.0, 1.0]);
        assert_eq!(a.reshuffle_moves(&a), 0);
        assert!(a.reshuffle_moves(&b) > 0);
    }

    #[test]
    fn interleaved_layout_preserves_pool_sizes() {
        let l = OrganPipeLayout::paper(6_750_000);
        assert_eq!(ranges_len(l.small_ranges()), 6_750_000 / 25 / 8 * 8);
        assert_eq!(
            ranges_len(l.large_ranges()),
            6_750_000 * 20 / 25 / 800 * 800
        );
        // The two classes never overlap.
        let mut all: Vec<_> = l
            .small_ranges()
            .iter()
            .chain(l.large_ranges())
            .cloned()
            .collect();
        all.sort_by_key(|r| r.start);
        for pair in all.windows(2) {
            assert!(pair[0].end <= pair[1].start, "overlapping placements");
        }
    }

    #[test]
    fn interleaved_layout_scatters_small_data_beyond_a_tight_band() {
        // The §5.3 point: organ pipe interleaves large extents into the
        // hot center, so the small data spans far more than its own pool
        // size — unlike the bipartite layouts, which pin it in one
        // subregion.
        let capacity = 6_750_000u64;
        let l = OrganPipeLayout::paper(capacity);
        let lo = l.small_ranges().iter().map(|r| r.start).min().unwrap();
        let hi = l.small_ranges().iter().map(|r| r.end).max().unwrap();
        let span = hi - lo;
        let pool = ranges_len(l.small_ranges());
        assert!(
            span > 3 * pool,
            "small-data span {span} should far exceed its pool {pool}"
        );
    }

    #[test]
    fn interleaved_center_is_hot_small_data() {
        // The very center of the arrangement holds the most popular
        // (small) blocks.
        let capacity = 6_750_000u64;
        let l = OrganPipeLayout::paper(capacity);
        let center = capacity / 2;
        let covers_center = l
            .small_ranges()
            .iter()
            .any(|r| r.start <= center && center < r.end + 800);
        assert!(covers_center, "hottest small blocks should sit at center");
    }

    #[test]
    #[should_panic(expected = "no blocks")]
    fn empty_frequencies_rejected() {
        let _ = OrganPipeMap::build(&[]);
    }
}
