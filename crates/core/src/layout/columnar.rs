//! The columnar layout (§5.3): 25 columns of 100 contiguous cylinders.
//!
//! A "simple columnar division of the LBN space into 25 columns": each
//! column is a contiguous run of cylinders, so each is one contiguous LBN
//! range. Small data goes in the centermost column; large data in the ten
//! leftmost and ten rightmost columns.

use std::ops::Range;

use mems_device::MemsGeometry;

use super::Layout;

/// 25-column bipartite placement over a MEMS device.
///
/// # Examples
///
/// ```
/// use mems_device::MemsParams;
/// use mems_os::layout::{ColumnarLayout, Layout};
///
/// let geom = MemsParams::default().geometry();
/// let l = ColumnarLayout::new(&geom);
/// // The small region is the single centermost column: one contiguous
/// // range of 100 cylinders × 2700 sectors.
/// assert_eq!(l.small_ranges().len(), 1);
/// assert_eq!(l.small_ranges()[0].end - l.small_ranges()[0].start, 100 * 2700);
/// ```
#[derive(Debug, Clone)]
pub struct ColumnarLayout {
    small: Vec<Range<u64>>,
    large: Vec<Range<u64>>,
}

impl ColumnarLayout {
    /// Number of columns, fixed at 25 per the paper.
    pub const COLUMNS: u32 = 25;

    /// Builds the layout for a device geometry.
    ///
    /// # Panics
    ///
    /// Panics if the device has fewer cylinders than columns.
    pub fn new(geom: &MemsGeometry) -> Self {
        assert!(
            geom.cylinders >= Self::COLUMNS,
            "need at least {} cylinders",
            Self::COLUMNS
        );
        let sectors_per_cylinder =
            u64::from(geom.tracks_per_cylinder) * u64::from(geom.sectors_per_track);
        let col_cyls = geom.cylinders / Self::COLUMNS;
        let column_range = |col: u32| -> Range<u64> {
            let first_cyl = u64::from(col * col_cyls);
            let end_cyl = if col == Self::COLUMNS - 1 {
                u64::from(geom.cylinders)
            } else {
                u64::from((col + 1) * col_cyls)
            };
            first_cyl * sectors_per_cylinder..end_cyl * sectors_per_cylinder
        };
        let center = Self::COLUMNS / 2; // column 12
        let small = vec![column_range(center)];
        // Ten leftmost columns are contiguous, as are the ten rightmost.
        let large = vec![
            column_range(0).start..column_range(9).end,
            column_range(15).start..column_range(24).end,
        ];
        ColumnarLayout { small, large }
    }
}

impl Layout for ColumnarLayout {
    fn name(&self) -> &str {
        "columnar"
    }

    fn small_ranges(&self) -> &[Range<u64>] {
        &self.small
    }

    fn large_ranges(&self) -> &[Range<u64>] {
        &self.large
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ranges_len;
    use mems_device::MemsParams;

    fn layout() -> ColumnarLayout {
        ColumnarLayout::new(&MemsParams::default().geometry())
    }

    #[test]
    fn small_region_is_the_center_column() {
        let l = layout();
        let r = &l.small_ranges()[0];
        // Column 12 of 25 → cylinders 1200..1300 → sectors 1200·2700 ...
        assert_eq!(r.start, 1200 * 2700);
        assert_eq!(r.end, 1300 * 2700);
    }

    #[test]
    fn large_region_is_the_outer_twenty_columns() {
        let l = layout();
        let lr = l.large_ranges();
        assert_eq!(lr.len(), 2);
        assert_eq!(lr[0].start, 0);
        assert_eq!(lr[0].end, 1000 * 2700);
        assert_eq!(lr[1].start, 1500 * 2700);
        assert_eq!(lr[1].end, 2500 * 2700);
        assert_eq!(ranges_len(lr), 2000 * 2700);
    }

    #[test]
    fn regions_do_not_overlap() {
        let l = layout();
        for s in l.small_ranges() {
            for g in l.large_ranges() {
                assert!(s.end <= g.start || g.end <= s.start, "overlap");
            }
        }
    }

    #[test]
    fn large_regions_hold_400_kb_extents() {
        let l = layout();
        for r in l.large_ranges() {
            assert!(r.end - r.start >= 800);
        }
    }
}
