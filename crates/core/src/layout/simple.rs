//! The simple linear layout — Fig. 11's baseline.
//!
//! Data of both classes is spread uniformly over the whole device, the
//! behaviour of a file system that ignores device geometry.

use std::ops::Range;

use super::Layout;

/// Uniform whole-device placement for both data classes.
///
/// # Examples
///
/// ```
/// use mems_os::layout::{Layout, SimpleLayout};
///
/// let l = SimpleLayout::new(1000);
/// assert_eq!(l.small_ranges(), &[0..1000]);
/// assert_eq!(l.small_ranges(), l.large_ranges());
/// ```
#[derive(Debug, Clone)]
pub struct SimpleLayout {
    whole: [Range<u64>; 1],
}

impl SimpleLayout {
    /// Creates the baseline layout for a device of `capacity` sectors.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "device must have capacity");
        SimpleLayout {
            whole: [0..capacity],
        }
    }
}

impl Layout for SimpleLayout {
    fn name(&self) -> &str {
        "simple"
    }

    fn small_ranges(&self) -> &[Range<u64>] {
        &self.whole
    }

    fn large_ranges(&self) -> &[Range<u64>] {
        &self.whole
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_whole_device() {
        let l = SimpleLayout::new(6_750_000);
        assert_eq!(super::super::ranges_len(l.small_ranges()), 6_750_000);
        assert_eq!(super::super::ranges_len(l.large_ranges()), 6_750_000);
        assert_eq!(l.name(), "simple");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = SimpleLayout::new(0);
    }
}
