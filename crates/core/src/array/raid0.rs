//! RAID-0: block-interleaved striping.

use storage_sim::{PositionOracle, Request, ServiceBreakdown, SimTime, StorageDevice};

use super::{combine, service_member, stripe_spans};

/// A striped array over identical members.
///
/// # Examples
///
/// ```
/// use mems_device::{MemsDevice, MemsParams};
/// use mems_os::array::Raid0Device;
/// use storage_sim::{IoKind, Request, SimTime, StorageDevice};
///
/// let members: Vec<MemsDevice> =
///     (0..4).map(|_| MemsDevice::new(MemsParams::default())).collect();
/// let mut array = Raid0Device::new(members, 64);
/// // Capacity is the sum of the members'.
/// assert_eq!(array.capacity_lbns(), 4 * 2500 * 5 * 540);
/// // A 1 MB read splits across members (512 sectors each) and finishes
/// // when the slowest member does — a single device would stream 4x as
/// // many rows (~13 ms).
/// let big = Request::new(0, SimTime::ZERO, 0, 2048, IoKind::Read);
/// let b = array.service(&big, SimTime::ZERO);
/// assert!(b.total() < 5.0e-3);
/// ```
#[derive(Debug)]
pub struct Raid0Device<D> {
    members: Vec<D>,
    stripe_unit: u32,
    name: String,
}

impl<D: StorageDevice> Raid0Device<D> {
    /// Creates a striped array with `stripe_unit` sectors per strip.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two members or a zero stripe unit.
    pub fn new(members: Vec<D>, stripe_unit: u32) -> Self {
        assert!(members.len() >= 2, "striping needs at least two members");
        assert!(stripe_unit > 0);
        let name = format!("RAID-0 x{} ({})", members.len(), members[0].name());
        Raid0Device {
            members,
            stripe_unit,
            name,
        }
    }

    /// Number of members.
    pub fn width(&self) -> usize {
        self.members.len()
    }
}

impl<D: StorageDevice> PositionOracle for Raid0Device<D> {
    fn position_time(&self, req: &Request, now: SimTime) -> f64 {
        // The first touched member's positioning dominates small requests.
        let spans = stripe_spans(req.lbn, req.sectors, self.stripe_unit, self.members.len());
        let s = spans[0];
        let sub = Request::new(req.id, req.arrival, s.lbn, s.sectors, req.kind);
        self.members[s.member].position_time(&sub, now)
    }
}

impl<D: StorageDevice> StorageDevice for Raid0Device<D> {
    fn name(&self) -> &str {
        &self.name
    }

    fn capacity_lbns(&self) -> u64 {
        self.members.iter().map(StorageDevice::capacity_lbns).sum()
    }

    fn service(&mut self, req: &Request, now: SimTime) -> ServiceBreakdown {
        assert!(
            req.end_lbn() <= self.capacity_lbns(),
            "beyond array capacity"
        );
        let spans = stripe_spans(req.lbn, req.sectors, self.stripe_unit, self.members.len());
        let mut slowest = 0.0f64;
        let mut first = ServiceBreakdown::default();
        for m in 0..self.members.len() {
            let mut member_spans: Vec<(u64, u32, storage_sim::IoKind)> = spans
                .iter()
                .filter(|s| s.member == m)
                .map(|s| (s.lbn, s.sectors, req.kind))
                .collect();
            if member_spans.is_empty() {
                continue;
            }
            super::coalesce_spans(&mut member_spans);
            let (t, b) = service_member(&mut self.members[m], &member_spans, req, now);
            if t > slowest {
                slowest = t;
                first = b;
            }
        }
        combine(slowest, first)
    }

    fn reset(&mut self) {
        for m in &mut self.members {
            m.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_device::{MemsDevice, MemsParams};
    use storage_sim::IoKind;

    fn array(n: usize) -> Raid0Device<MemsDevice> {
        Raid0Device::new(
            (0..n)
                .map(|_| MemsDevice::new(MemsParams::default()))
                .collect(),
            64,
        )
    }

    fn read(lbn: u64, sectors: u32) -> Request {
        Request::new(0, SimTime::ZERO, lbn, sectors, IoKind::Read)
    }

    #[test]
    fn capacity_sums_members() {
        assert_eq!(array(4).capacity_lbns(), 4 * 6_750_000);
    }

    #[test]
    fn small_requests_touch_one_member() {
        let mut a = array(4);
        let single = MemsDevice::new(MemsParams::default())
            .service_from(mems_device::SledState::CENTERED, &read(0, 8))
            .0;
        let b = a.service(&read(0, 8), SimTime::ZERO);
        assert!((b.total() - single.total()).abs() < 1e-12);
    }

    #[test]
    fn large_reads_scale_with_width() {
        // A 1 MB read: one device streams ~26 ms worth of rows per MB...
        // compare 2-wide vs 4-wide arrays.
        let mut a2 = array(2);
        let mut a4 = array(4);
        let big = read(0, 2048);
        let t2 = a2.service(&big, SimTime::ZERO).total();
        let t4 = a4.service(&big, SimTime::ZERO).total();
        assert!(
            t4 < 0.7 * t2,
            "4-wide {t4} should be well under 2-wide {t2}"
        );
    }

    #[test]
    fn member_states_persist_across_requests() {
        let mut a = array(2);
        let b1 = a.service(&read(0, 128), SimTime::ZERO);
        // Sequential continuation should be cheaper than a cold start.
        let b2 = a.service(&read(128, 128), SimTime::ZERO);
        assert!(b2.total() <= b1.total() + 1e-12);
    }

    #[test]
    #[should_panic(expected = "beyond array capacity")]
    fn overflow_rejected() {
        let mut a = array(2);
        let cap = a.capacity_lbns();
        let _ = a.service(&read(cap - 4, 8), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "two members")]
    fn single_member_rejected() {
        let _ = array(1);
    }
}
