//! Recursive virtual devices: arbitrary stripe/mirror/parity composition.
//!
//! The flat wrappers ([`Raid0Device`](super::Raid0Device) and friends)
//! compose raw devices one level deep. `Vdev` generalizes them into a
//! recursive tree — a stripe of mirrors, a mirror of RAID-Z groups, any
//! nesting — because every interior node is itself a
//! [`StorageDevice`]. Each interior node runs *exactly* the flat
//! wrapper's algorithm over its children, so a depth-1 `Vdev` is
//! bit-identical to the corresponding `Raid{0,1,5}Device` (asserted by
//! the `fleet_equivalence` integration test). The layering follows the
//! bfffs vdev/cluster design named in the ROADMAP.

use storage_sim::{IoKind, PositionOracle, Request, ServiceBreakdown, SimTime, StorageDevice};

use super::{coalesce_spans, combine, raidz_locate, service_member, stripe_spans};

/// A node in a recursive array composition tree.
///
/// # Examples
///
/// A stripe of mirror pairs (RAID-10) over four MEMS devices:
///
/// ```
/// use mems_device::{MemsDevice, MemsParams};
/// use mems_os::array::Vdev;
/// use storage_sim::StorageDevice;
///
/// let pair = || {
///     Vdev::mirror(
///         (0..2)
///             .map(|_| Vdev::leaf(MemsDevice::new(MemsParams::default())))
///             .collect(),
///     )
/// };
/// let volume = Vdev::stripe(vec![pair(), pair()], 64);
/// // Two mirror pairs: half the raw capacity of four devices.
/// assert_eq!(volume.capacity_lbns(), 2 * 2500 * 5 * 540);
/// ```
#[derive(Debug)]
pub enum Vdev<D> {
    /// A raw device at the bottom of the tree.
    Leaf(D),
    /// Block-interleaved striping across children (RAID-0 algorithm).
    Stripe {
        /// Child vdevs; requests split across all of them.
        children: Vec<Vdev<D>>,
        /// Sectors per strip.
        stripe_unit: u32,
        /// Display name.
        name: String,
    },
    /// Mirroring with positioning-aware read steering (RAID-1 algorithm).
    Mirror {
        /// Child vdevs; reads steer to one, writes hit all.
        children: Vec<Vdev<D>>,
        /// Display name.
        name: String,
    },
    /// Rotating parity, left-symmetric (RAID-5/RAID-Z algorithm).
    RaidZ {
        /// Child vdevs; one child's worth of capacity goes to parity.
        children: Vec<Vdev<D>>,
        /// Sectors per strip.
        stripe_unit: u32,
        /// Display name.
        name: String,
    },
}

impl<D: StorageDevice> Vdev<D> {
    /// Wraps a raw device as a leaf node.
    pub fn leaf(device: D) -> Self {
        Vdev::Leaf(device)
    }

    /// Creates a striped node with `stripe_unit` sectors per strip.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two children or a zero stripe unit.
    pub fn stripe(children: Vec<Vdev<D>>, stripe_unit: u32) -> Self {
        assert!(children.len() >= 2, "striping needs at least two members");
        assert!(stripe_unit > 0);
        let name = format!("stripe x{} ({})", children.len(), children[0].name());
        Vdev::Stripe {
            children,
            stripe_unit,
            name,
        }
    }

    /// Creates a mirrored node.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two children or mismatched capacities.
    pub fn mirror(children: Vec<Vdev<D>>) -> Self {
        assert!(children.len() >= 2, "mirroring needs at least two replicas");
        let cap = children[0].capacity_lbns();
        assert!(
            children.iter().all(|c| c.capacity_lbns() == cap),
            "replicas must have equal capacity"
        );
        let name = format!("mirror x{} ({})", children.len(), children[0].name());
        Vdev::Mirror { children, name }
    }

    /// Creates a rotating-parity node with `stripe_unit` sectors per strip.
    ///
    /// # Panics
    ///
    /// Panics with fewer than three children or a zero stripe unit.
    pub fn raidz(children: Vec<Vdev<D>>, stripe_unit: u32) -> Self {
        assert!(children.len() >= 3, "RAID-Z needs at least three members");
        assert!(stripe_unit > 0);
        let name = format!("raidz x{} ({})", children.len(), children[0].name());
        Vdev::RaidZ {
            children,
            stripe_unit,
            name,
        }
    }

    /// Number of direct children (1 for a leaf).
    pub fn width(&self) -> usize {
        match self {
            Vdev::Leaf(_) => 1,
            Vdev::Stripe { children, .. }
            | Vdev::Mirror { children, .. }
            | Vdev::RaidZ { children, .. } => children.len(),
        }
    }

    /// Number of leaf devices in the whole subtree.
    pub fn leaf_count(&self) -> usize {
        match self {
            Vdev::Leaf(_) => 1,
            Vdev::Stripe { children, .. }
            | Vdev::Mirror { children, .. }
            | Vdev::RaidZ { children, .. } => children.iter().map(Vdev::leaf_count).sum(),
        }
    }

    /// Index of the child a mirror read of `req` would steer to — the
    /// smallest positioning estimate, exactly like
    /// [`Raid1Device::steer`](super::Raid1Device::steer).
    fn steer(children: &[Vdev<D>], req: &Request, now: SimTime) -> usize {
        let mut best = 0usize;
        let mut best_t = f64::INFINITY;
        for (i, r) in children.iter().enumerate() {
            let t = r.position_time(req, now);
            if t < best_t {
                best_t = t;
                best = i;
            }
        }
        best
    }

    /// Splits a RAID-Z request into per-strip pieces:
    /// (strip, offset-in-strip, sectors).
    fn raidz_pieces(req: &Request, stripe_unit: u32) -> Vec<(u64, u32, u32)> {
        let su = u64::from(stripe_unit);
        let mut out = Vec::new();
        let mut a = req.lbn;
        let end = req.end_lbn();
        while a < end {
            let strip = a / su;
            let offset = (a % su) as u32;
            let chunk = (su - u64::from(offset)).min(end - a) as u32;
            out.push((strip, offset, chunk));
            a += u64::from(chunk);
        }
        out
    }
}

impl<D: StorageDevice> PositionOracle for Vdev<D> {
    fn position_time(&self, req: &Request, now: SimTime) -> f64 {
        match self {
            Vdev::Leaf(d) => d.position_time(req, now),
            Vdev::Stripe {
                children,
                stripe_unit,
                ..
            } => {
                // The first touched member's positioning dominates small
                // requests (the Raid0Device rule).
                let spans = stripe_spans(req.lbn, req.sectors, *stripe_unit, children.len());
                let s = spans[0];
                let sub = Request::new(req.id, req.arrival, s.lbn, s.sectors, req.kind);
                children[s.member].position_time(&sub, now)
            }
            Vdev::Mirror { children, .. } => match req.kind {
                IoKind::Read => {
                    let target = Self::steer(children, req, now);
                    children[target].position_time(req, now)
                }
                IoKind::Write => children
                    .iter()
                    .map(|r| r.position_time(req, now))
                    .fold(0.0, f64::max),
            },
            Vdev::RaidZ {
                children,
                stripe_unit,
                ..
            } => {
                let su = u64::from(*stripe_unit);
                let strip = req.lbn / su;
                let (data, _, base) = raidz_locate(strip, children.len(), *stripe_unit);
                let sub = Request::new(
                    req.id,
                    req.arrival,
                    base + req.lbn % su,
                    req.sectors.min(*stripe_unit),
                    req.kind,
                );
                children[data].position_time(&sub, now)
            }
        }
    }
}

impl<D: StorageDevice> StorageDevice for Vdev<D> {
    fn name(&self) -> &str {
        match self {
            Vdev::Leaf(d) => d.name(),
            Vdev::Stripe { name, .. } | Vdev::Mirror { name, .. } | Vdev::RaidZ { name, .. } => {
                name
            }
        }
    }

    fn capacity_lbns(&self) -> u64 {
        match self {
            Vdev::Leaf(d) => d.capacity_lbns(),
            Vdev::Stripe { children, .. } => {
                children.iter().map(StorageDevice::capacity_lbns).sum()
            }
            Vdev::Mirror { children, .. } => children[0].capacity_lbns(),
            Vdev::RaidZ { children, .. } => {
                // One child's capacity worth of parity across the group.
                let per = children[0].capacity_lbns();
                per * (children.len() as u64 - 1)
            }
        }
    }

    fn service(&mut self, req: &Request, now: SimTime) -> ServiceBreakdown {
        match self {
            Vdev::Leaf(d) => d.service(req, now),
            Vdev::Stripe {
                children,
                stripe_unit,
                ..
            } => {
                let cap: u64 = children.iter().map(StorageDevice::capacity_lbns).sum();
                assert!(req.end_lbn() <= cap, "beyond array capacity");
                let spans = stripe_spans(req.lbn, req.sectors, *stripe_unit, children.len());
                let mut slowest = 0.0f64;
                let mut first = ServiceBreakdown::default();
                for (m, child) in children.iter_mut().enumerate() {
                    let mut member_spans: Vec<(u64, u32, IoKind)> = spans
                        .iter()
                        .filter(|s| s.member == m)
                        .map(|s| (s.lbn, s.sectors, req.kind))
                        .collect();
                    if member_spans.is_empty() {
                        continue;
                    }
                    coalesce_spans(&mut member_spans);
                    let (t, b) = service_member(child, &member_spans, req, now);
                    if t > slowest {
                        slowest = t;
                        first = b;
                    }
                }
                combine(slowest, first)
            }
            Vdev::Mirror { children, .. } => match req.kind {
                IoKind::Read => {
                    let target = Self::steer(children, req, now);
                    children[target].service(req, now)
                }
                IoKind::Write => {
                    let mut slowest = ServiceBreakdown::default();
                    for r in children.iter_mut() {
                        let b = r.service(req, now);
                        if b.total() > slowest.total() {
                            slowest = b;
                        }
                    }
                    slowest
                }
            },
            Vdev::RaidZ {
                children,
                stripe_unit,
                ..
            } => {
                let per = children[0].capacity_lbns();
                let cap = per * (children.len() as u64 - 1);
                assert!(req.end_lbn() <= cap, "beyond array capacity");
                // Per-member accumulated busy time for this request;
                // members work in parallel, pieces on one serialize.
                let mut busy = vec![0.0f64; children.len()];
                let mut first = ServiceBreakdown::default();
                let mut first_set = false;
                let full_stripe_width = (children.len() - 1) as u64 * u64::from(*stripe_unit);
                let full_stripe_aligned = req.kind == IoKind::Write
                    && req.lbn.is_multiple_of(full_stripe_width)
                    && u64::from(req.sectors) % full_stripe_width == 0;

                for (strip, offset, sectors) in Self::raidz_pieces(req, *stripe_unit) {
                    let (data, parity, base) = raidz_locate(strip, children.len(), *stripe_unit);
                    let lbn = base + u64::from(offset);
                    match req.kind {
                        IoKind::Read => {
                            let sub = Request::new(req.id, req.arrival, lbn, sectors, IoKind::Read);
                            let b =
                                children[data].service(&sub, now + SimTime::from_secs(busy[data]));
                            if !first_set {
                                first = b;
                                first_set = true;
                            }
                            busy[data] += b.total();
                        }
                        IoKind::Write if full_stripe_aligned => {
                            let wd = Request::new(req.id, req.arrival, lbn, sectors, IoKind::Write);
                            let b =
                                children[data].service(&wd, now + SimTime::from_secs(busy[data]));
                            if !first_set {
                                first = b;
                                first_set = true;
                            }
                            busy[data] += b.total();
                            if strip % (children.len() as u64 - 1) == 0 {
                                let wp = Request::new(
                                    req.id,
                                    req.arrival,
                                    base,
                                    *stripe_unit,
                                    IoKind::Write,
                                );
                                let b = children[parity]
                                    .service(&wp, now + SimTime::from_secs(busy[parity]));
                                busy[parity] += b.total();
                            }
                        }
                        IoKind::Write => {
                            // Small write: read-modify-write on data and
                            // parity.
                            for member in [data, parity] {
                                let rd =
                                    Request::new(req.id, req.arrival, lbn, sectors, IoKind::Read);
                                let br = children[member]
                                    .service(&rd, now + SimTime::from_secs(busy[member]));
                                if !first_set {
                                    first = br;
                                    first_set = true;
                                }
                                busy[member] += br.total();
                                let wr =
                                    Request::new(req.id, req.arrival, lbn, sectors, IoKind::Write);
                                let bw = children[member]
                                    .service(&wr, now + SimTime::from_secs(busy[member]));
                                busy[member] += bw.total();
                            }
                        }
                    }
                }
                let slowest = busy.iter().copied().fold(0.0, f64::max);
                combine(slowest, first)
            }
        }
    }

    fn reset(&mut self) {
        match self {
            Vdev::Leaf(d) => d.reset(),
            Vdev::Stripe { children, .. }
            | Vdev::Mirror { children, .. }
            | Vdev::RaidZ { children, .. } => {
                for c in children {
                    c.reset();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Raid0Device, Raid1Device, Raid5Device};
    use super::*;
    use mems_device::{MemsDevice, MemsParams};

    fn mems() -> MemsDevice {
        MemsDevice::new(MemsParams::default())
    }

    fn leaves(n: usize) -> Vec<Vdev<MemsDevice>> {
        (0..n).map(|_| Vdev::leaf(mems())).collect()
    }

    fn read(lbn: u64, sectors: u32) -> Request {
        Request::new(0, SimTime::ZERO, lbn, sectors, IoKind::Read)
    }

    fn write(lbn: u64, sectors: u32) -> Request {
        Request::new(0, SimTime::ZERO, lbn, sectors, IoKind::Write)
    }

    #[test]
    fn depth1_stripe_matches_raid0_exactly() {
        let mut v = Vdev::stripe(leaves(4), 64);
        let mut r = Raid0Device::new((0..4).map(|_| mems()).collect(), 64);
        assert_eq!(v.capacity_lbns(), r.capacity_lbns());
        for (i, &(lbn, sectors)) in [(0, 8), (100, 2048), (5_000, 17), (123, 1)]
            .iter()
            .enumerate()
        {
            let rq = Request::new(i as u64, SimTime::ZERO, lbn, sectors, IoKind::Read);
            let bv = v.service(&rq, SimTime::from_ms(i as f64));
            let br = r.service(&rq, SimTime::from_ms(i as f64));
            assert_eq!(bv.total().to_bits(), br.total().to_bits());
            assert_eq!(bv.positioning.to_bits(), br.positioning.to_bits());
        }
    }

    #[test]
    fn depth1_mirror_matches_raid1_exactly() {
        let mut v = Vdev::mirror(leaves(2));
        let mut r = Raid1Device::new((0..2).map(|_| mems()).collect());
        for (i, rq) in [read(0, 8), write(9_000, 16), read(1_000_000, 8)]
            .iter()
            .enumerate()
        {
            let bv = v.service(rq, SimTime::from_ms(i as f64));
            let br = r.service(rq, SimTime::from_ms(i as f64));
            assert_eq!(bv.total().to_bits(), br.total().to_bits());
        }
    }

    #[test]
    fn depth1_raidz_matches_raid5_exactly() {
        let mut v = Vdev::raidz(leaves(5), 8);
        let mut r = Raid5Device::new((0..5).map(|_| mems()).collect(), 8);
        assert_eq!(v.capacity_lbns(), r.capacity_lbns());
        // Read, small write (RMW), and full-stripe write (4 data x 8).
        for (i, rq) in [read(800, 8), write(800, 8), write(0, 32), read(64, 64)]
            .iter()
            .enumerate()
        {
            let bv = v.service(rq, SimTime::from_ms(i as f64));
            let br = r.service(rq, SimTime::from_ms(i as f64));
            assert_eq!(bv.total().to_bits(), br.total().to_bits());
        }
    }

    #[test]
    fn nested_stripe_of_mirrors_has_mirror_capacity() {
        let pair = || Vdev::mirror(leaves(2));
        let v = Vdev::stripe(vec![pair(), pair()], 64);
        assert_eq!(v.capacity_lbns(), 2 * 6_750_000);
        assert_eq!(v.leaf_count(), 4);
        assert_eq!(v.width(), 2);
    }

    #[test]
    fn nested_mirror_write_lands_on_every_leaf() {
        // A stripe-of-mirrors write to one strip must busy both replicas
        // of that mirror; reading it back right after is positioning-free
        // on the steered replica.
        let pair = || Vdev::mirror(leaves(2));
        let mut v = Vdev::stripe(vec![pair(), pair()], 64);
        let w = v.service(&write(0, 8), SimTime::ZERO);
        let r = v.service(&read(0, 8), SimTime::ZERO);
        assert!(r.positioning <= w.positioning + 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn raidz_needs_three() {
        let _ = Vdev::raidz(leaves(2), 8);
    }
}
