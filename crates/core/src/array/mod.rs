//! Device arrays: striping, mirroring, and rotating parity (§6.2).
//!
//! The paper packages several MEMS sleds into a disk form factor (§2.1)
//! and leans on inter-device redundancy for whole-device failures
//! (§6.2). This module provides the three classic array organizations as
//! composable [`storage_sim::StorageDevice`]s, so every scheduler,
//! workload, and power wrapper in the workspace runs unchanged against
//! an array:
//!
//! * [`Raid0Device`] — block-interleaved striping for bandwidth;
//! * [`Raid1Device`] — mirroring with read steering (reads go to the
//!   mechanically closer replica — cheap on MEMS because positioning
//!   estimates are exact);
//! * [`Raid5Device`] — rotating parity, where partial-strip writes pay
//!   the read-modify-write cycle that Table 2 shows is ~19× cheaper on
//!   MEMS than on disks.
//!
//! Members service their sub-requests in parallel; an array request
//! completes when its slowest member finishes.

mod raid0;
mod raid1;
mod raid5;
mod vdev;

pub use raid0::Raid0Device;
pub use raid1::Raid1Device;
pub use raid5::Raid5Device;
pub use vdev::Vdev;

use storage_sim::{Request, ServiceBreakdown, SimTime, StorageDevice};

/// A per-member span of an array request.
///
/// Public so the fleet volume layer can route the same spans the array
/// wrappers service in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberSpan {
    /// Member index.
    pub member: usize,
    /// Member-local LBN.
    pub lbn: u64,
    /// Sectors in the span.
    pub sectors: u32,
}

/// Splits the array-LBN range `[lbn, lbn+sectors)` into member spans
/// under block interleaving with `stripe_unit` sectors per strip over
/// `members` data members, merging adjacent spans on the same member.
pub fn stripe_spans(lbn: u64, sectors: u32, stripe_unit: u32, members: usize) -> Vec<MemberSpan> {
    let su = u64::from(stripe_unit);
    let n = members as u64;
    let mut spans: Vec<MemberSpan> = Vec::new();
    let mut a = lbn;
    let end = lbn + u64::from(sectors);
    while a < end {
        let strip = a / su;
        let offset = a % su;
        let chunk = (su - offset).min(end - a) as u32;
        let member = (strip % n) as usize;
        let member_lbn = (strip / n) * su + offset;
        match spans.last_mut() {
            Some(last)
                if last.member == member && last.lbn + u64::from(last.sectors) == member_lbn =>
            {
                last.sectors += chunk;
            }
            _ => spans.push(MemberSpan {
                member,
                lbn: member_lbn,
                sectors: chunk,
            }),
        }
        a += u64::from(chunk);
    }
    spans
}

/// Maps an array-logical strip to (data member, parity member,
/// member-local base LBN) under the left-symmetric rotating-parity
/// layout shared by [`Raid5Device`] and the RAID-Z vdev/volume paths.
pub fn raidz_locate(strip: u64, members: usize, stripe_unit: u32) -> (usize, usize, u64) {
    let n = members as u64;
    let stripe = strip / (n - 1);
    let within = strip % (n - 1);
    let parity = (n - 1 - (stripe % n)) as usize;
    let mut data = within as usize;
    if data >= parity {
        data += 1;
    }
    (data, parity, stripe * u64::from(stripe_unit))
}

/// Merges adjacent (lbn, sectors, kind) sub-requests on one member so a
/// striped transfer reads each tip-sector row once.
pub fn coalesce_spans(spans: &mut Vec<(u64, u32, storage_sim::IoKind)>) {
    spans.sort_by_key(|&(lbn, _, _)| lbn);
    let mut out: Vec<(u64, u32, storage_sim::IoKind)> = Vec::with_capacity(spans.len());
    for &(lbn, sectors, kind) in spans.iter() {
        match out.last_mut() {
            Some(last) if last.0 + u64::from(last.1) == lbn && last.2 == kind => {
                last.1 += sectors;
            }
            _ => out.push((lbn, sectors, kind)),
        }
    }
    *spans = out;
}

/// Services a sequence of sub-requests on one member starting at `now`,
/// returning the member's total busy time and its first-span breakdown.
pub(crate) fn service_member<D: StorageDevice>(
    member: &mut D,
    spans: &[(u64, u32, storage_sim::IoKind)],
    base: &Request,
    now: SimTime,
) -> (f64, ServiceBreakdown) {
    let mut t = 0.0;
    let mut first = ServiceBreakdown::default();
    for (i, &(lbn, sectors, kind)) in spans.iter().enumerate() {
        let sub = Request::new(base.id, base.arrival, lbn, sectors, kind);
        let b = member.service(&sub, now + SimTime::from_secs(t));
        if i == 0 {
            first = b;
        }
        t += b.total();
    }
    (t, first)
}

/// Combines the slowest member time with a representative breakdown.
pub(crate) fn combine(total: f64, first: ServiceBreakdown) -> ServiceBreakdown {
    ServiceBreakdown {
        positioning: first.positioning.min(total),
        seek_x: first.seek_x,
        settle: first.settle,
        seek_y: first.seek_y,
        rotation: first.rotation,
        transfer: (total - first.positioning - first.overhead).max(0.0),
        turnaround: first.turnaround,
        turnaround_count: first.turnaround_count,
        overhead: first.overhead,
        fault_recovery: first.fault_recovery,
        // Any member-level background wait is already inside `total`,
        // which this synthesized breakdown's `transfer` absorbs.
        background_wait: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_cover_the_request_exactly() {
        let spans = stripe_spans(0, 64, 8, 4);
        let total: u32 = spans.iter().map(|s| s.sectors).sum();
        assert_eq!(total, 64);
        // 64 sectors over 4 members at 8-sector strips: 16 per member.
        for m in 0..4 {
            let per: u32 = spans
                .iter()
                .filter(|s| s.member == m)
                .map(|s| s.sectors)
                .sum();
            assert_eq!(per, 16, "member {m}");
        }
    }

    #[test]
    fn unaligned_request_splits_at_strip_boundaries() {
        let spans = stripe_spans(5, 10, 8, 2);
        // Sectors 5..15: strip 0 (member 0, lbn 5..8), strip 1 (member 1,
        // lbn 0..7).
        assert_eq!(
            spans,
            vec![
                MemberSpan {
                    member: 0,
                    lbn: 5,
                    sectors: 3
                },
                MemberSpan {
                    member: 1,
                    lbn: 0,
                    sectors: 7
                },
            ]
        );
    }

    #[test]
    fn wrapping_strips_merge_on_the_same_member() {
        // 2 members: strips 0 and 2 both live on member 0 at lbns 0..8
        // and 8..16 — contiguous, so a request covering strips 0..4
        // yields one merged span per member.
        let spans = stripe_spans(0, 32, 8, 2);
        assert_eq!(
            spans,
            vec![
                MemberSpan {
                    member: 0,
                    lbn: 0,
                    sectors: 8
                },
                MemberSpan {
                    member: 1,
                    lbn: 0,
                    sectors: 8
                },
                MemberSpan {
                    member: 0,
                    lbn: 8,
                    sectors: 8
                },
                MemberSpan {
                    member: 1,
                    lbn: 8,
                    sectors: 8
                },
            ],
            "alternating strips do not merge (non-adjacent per member)"
        );
    }

    #[test]
    fn single_sector_request_is_one_span() {
        let spans = stripe_spans(17, 1, 8, 5);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].member, (17 / 8));
    }
}
