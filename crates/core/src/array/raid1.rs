//! RAID-1: mirroring with positioning-aware read steering.

use storage_sim::{IoKind, PositionOracle, Request, ServiceBreakdown, SimTime, StorageDevice};

/// A two-way (or wider) mirror.
///
/// Reads are steered to the replica with the smallest positioning
/// estimate — the same oracle SPTF uses, and a place where the MEMS
/// device's exact positioning model pays off twice. Writes go to every
/// replica and complete with the slowest.
///
/// # Examples
///
/// ```
/// use mems_device::{MemsDevice, MemsParams};
/// use mems_os::array::Raid1Device;
/// use storage_sim::{IoKind, Request, SimTime, StorageDevice};
///
/// let mirrors: Vec<MemsDevice> =
///     (0..2).map(|_| MemsDevice::new(MemsParams::default())).collect();
/// let mut array = Raid1Device::new(mirrors);
/// assert_eq!(array.capacity_lbns(), 2500 * 5 * 540); // one member's worth
/// let b = array.service(&Request::new(0, SimTime::ZERO, 42, 8, IoKind::Read), SimTime::ZERO);
/// assert!(b.total() > 0.0);
/// ```
#[derive(Debug)]
pub struct Raid1Device<D> {
    replicas: Vec<D>,
    name: String,
}

impl<D: StorageDevice> Raid1Device<D> {
    /// Creates a mirror set.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two replicas or mismatched capacities.
    pub fn new(replicas: Vec<D>) -> Self {
        assert!(replicas.len() >= 2, "mirroring needs at least two replicas");
        let cap = replicas[0].capacity_lbns();
        assert!(
            replicas.iter().all(|r| r.capacity_lbns() == cap),
            "replicas must have equal capacity"
        );
        let name = format!("RAID-1 x{} ({})", replicas.len(), replicas[0].name());
        Raid1Device { replicas, name }
    }

    /// Number of replicas.
    pub fn width(&self) -> usize {
        self.replicas.len()
    }

    /// Index of the replica a read of `req` would be steered to.
    pub fn steer(&self, req: &Request, now: SimTime) -> usize {
        let mut best = 0usize;
        let mut best_t = f64::INFINITY;
        for (i, r) in self.replicas.iter().enumerate() {
            let t = r.position_time(req, now);
            if t < best_t {
                best_t = t;
                best = i;
            }
        }
        best
    }
}

impl<D: StorageDevice> PositionOracle for Raid1Device<D> {
    fn position_time(&self, req: &Request, now: SimTime) -> f64 {
        match req.kind {
            IoKind::Read => {
                let target = self.steer(req, now);
                self.replicas[target].position_time(req, now)
            }
            IoKind::Write => self
                .replicas
                .iter()
                .map(|r| r.position_time(req, now))
                .fold(0.0, f64::max),
        }
    }
}

impl<D: StorageDevice> StorageDevice for Raid1Device<D> {
    fn name(&self) -> &str {
        &self.name
    }

    fn capacity_lbns(&self) -> u64 {
        self.replicas[0].capacity_lbns()
    }

    fn service(&mut self, req: &Request, now: SimTime) -> ServiceBreakdown {
        match req.kind {
            IoKind::Read => {
                let target = self.steer(req, now);
                self.replicas[target].service(req, now)
            }
            IoKind::Write => {
                let mut slowest = ServiceBreakdown::default();
                for r in &mut self.replicas {
                    let b = r.service(req, now);
                    if b.total() > slowest.total() {
                        slowest = b;
                    }
                }
                slowest
            }
        }
    }

    fn reset(&mut self) {
        for r in &mut self.replicas {
            r.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_device::{MemsDevice, MemsParams, SledState};

    fn mirror() -> Raid1Device<MemsDevice> {
        Raid1Device::new(
            (0..2)
                .map(|_| MemsDevice::new(MemsParams::default()))
                .collect(),
        )
    }

    fn req(lbn: u64, kind: IoKind) -> Request {
        Request::new(0, SimTime::ZERO, lbn, 8, kind)
    }

    #[test]
    fn reads_are_steered_to_the_closer_replica() {
        let mut devs: Vec<MemsDevice> = (0..2)
            .map(|_| MemsDevice::new(MemsParams::default()))
            .collect();
        // Park replica 0 at the left edge and replica 1 at the center.
        let left = devs[0].mapper().x_of_cylinder(0);
        devs[0].set_state(SledState {
            x: left,
            y: 0.0,
            vy: 0.0,
        });
        let array = Raid1Device::new(devs);
        // A left-edge read steers to replica 0; a center read to 1.
        assert_eq!(array.steer(&req(0, IoKind::Read), SimTime::ZERO), 0);
        assert_eq!(
            array.steer(&req(1250 * 2700, IoKind::Read), SimTime::ZERO),
            1
        );
    }

    #[test]
    fn steering_beats_a_single_device_on_mixed_reads() {
        // Alternate far-apart reads: a mirror can keep one head left and
        // one right; a single device must shuttle.
        let mut single = MemsDevice::new(MemsParams::default());
        let mut array = mirror();
        let mut t_single = 0.0;
        let mut t_array = 0.0;
        for i in 0..40u64 {
            let lbn = if i % 2 == 0 { 100 * 2700 } else { 2400 * 2700 };
            let r = Request::new(i, SimTime::ZERO, lbn, 8, IoKind::Read);
            t_single += single.service(&r, SimTime::ZERO).total();
            t_array += array.service(&r, SimTime::ZERO).total();
        }
        assert!(
            t_array < 0.8 * t_single,
            "steered mirror {t_array} vs single {t_single}"
        );
    }

    #[test]
    fn writes_hit_every_replica_and_take_the_max() {
        let mut array = mirror();
        let w = array.service(&req(1_000_000, IoKind::Write), SimTime::ZERO);
        // Both replicas moved: identical state, so both produce the same
        // time — and a subsequent read of the same sector is fast on
        // either replica.
        let r = array.service(&req(1_000_000, IoKind::Read), SimTime::ZERO);
        assert!(r.positioning < w.positioning + 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal capacity")]
    fn mismatched_replicas_rejected() {
        let a = MemsDevice::new(MemsParams::default());
        let b = MemsDevice::new(MemsParams {
            tips: 3200,
            active_tips: 640,
            ..MemsParams::default()
        });
        let _ = Raid1Device::new(vec![a, b]);
    }
}
