//! RAID-5: block-interleaved rotating parity as a full array device.
//!
//! Reads touch only data members. Writes distinguish the two classic
//! paths: a write covering a full stripe computes parity in memory and
//! writes all members in parallel; a partial-strip ("small") write pays
//! the read-modify-write cycle on the data member and the parity member
//! — the §6.2 cost that MEMS turnarounds nearly erase.

use storage_sim::{IoKind, PositionOracle, Request, ServiceBreakdown, SimTime, StorageDevice};

use super::combine;

/// A rotating-parity array with left-symmetric layout.
///
/// # Examples
///
/// ```
/// use mems_device::{MemsDevice, MemsParams};
/// use mems_os::array::Raid5Device;
/// use storage_sim::{IoKind, Request, SimTime, StorageDevice};
///
/// let members: Vec<MemsDevice> =
///     (0..5).map(|_| MemsDevice::new(MemsParams::default())).collect();
/// let mut array = Raid5Device::new(members, 64);
/// // One member's worth of capacity goes to parity.
/// assert_eq!(array.capacity_lbns(), 4 * 2500 * 5 * 540);
/// // A 4 KB small write pays two parallel read-modify-writes.
/// let b = array.service(&Request::new(0, SimTime::ZERO, 0, 8, IoKind::Write), SimTime::ZERO);
/// assert!(b.total() < 2e-3, "MEMS small write stays sub-2ms: {}", b.total());
/// ```
#[derive(Debug)]
pub struct Raid5Device<D> {
    members: Vec<D>,
    stripe_unit: u32,
    name: String,
}

impl<D: StorageDevice> Raid5Device<D> {
    /// Creates the array with `stripe_unit` sectors per strip.
    ///
    /// # Panics
    ///
    /// Panics with fewer than three members or a zero stripe unit.
    pub fn new(members: Vec<D>, stripe_unit: u32) -> Self {
        assert!(members.len() >= 3, "RAID-5 needs at least three members");
        assert!(stripe_unit > 0);
        let name = format!("RAID-5 x{} ({})", members.len(), members[0].name());
        Raid5Device {
            members,
            stripe_unit,
            name,
        }
    }

    /// Number of members (data + rotating parity).
    pub fn width(&self) -> usize {
        self.members.len()
    }

    /// Maps an array-logical strip to (data member, parity member,
    /// member-local LBN), left-symmetric (see [`super::raidz_locate`]).
    pub fn locate(&self, strip: u64) -> (usize, usize, u64) {
        super::raidz_locate(strip, self.members.len(), self.stripe_unit)
    }

    /// Splits an array request into per-strip pieces:
    /// (strip, offset-in-strip, sectors).
    fn pieces(&self, req: &Request) -> Vec<(u64, u32, u32)> {
        let su = u64::from(self.stripe_unit);
        let mut out = Vec::new();
        let mut a = req.lbn;
        let end = req.end_lbn();
        while a < end {
            let strip = a / su;
            let offset = (a % su) as u32;
            let chunk = (su - u64::from(offset)).min(end - a) as u32;
            out.push((strip, offset, chunk));
            a += u64::from(chunk);
        }
        out
    }
}

impl<D: StorageDevice> PositionOracle for Raid5Device<D> {
    fn position_time(&self, req: &Request, now: SimTime) -> f64 {
        let su = u64::from(self.stripe_unit);
        let strip = req.lbn / su;
        let (data, _, base) = self.locate(strip);
        let sub = Request::new(
            req.id,
            req.arrival,
            base + req.lbn % su,
            req.sectors.min(self.stripe_unit),
            req.kind,
        );
        self.members[data].position_time(&sub, now)
    }
}

impl<D: StorageDevice> StorageDevice for Raid5Device<D> {
    fn name(&self) -> &str {
        &self.name
    }

    fn capacity_lbns(&self) -> u64 {
        // One member's capacity worth of parity across the array.
        let per = self.members[0].capacity_lbns();
        per * (self.members.len() as u64 - 1)
    }

    fn service(&mut self, req: &Request, now: SimTime) -> ServiceBreakdown {
        assert!(
            req.end_lbn() <= self.capacity_lbns(),
            "beyond array capacity"
        );
        // Per-member accumulated busy time for this request; members work
        // in parallel, pieces on the same member serialize.
        let mut busy = vec![0.0f64; self.members.len()];
        let mut first = ServiceBreakdown::default();
        let mut first_set = false;
        let full_stripe_width = (self.members.len() - 1) as u64 * u64::from(self.stripe_unit);
        let full_stripe_aligned = req.kind == IoKind::Write
            && req.lbn.is_multiple_of(full_stripe_width)
            && u64::from(req.sectors) % full_stripe_width == 0;

        for (strip, offset, sectors) in self.pieces(req) {
            let (data, parity, base) = self.locate(strip);
            let lbn = base + u64::from(offset);
            match req.kind {
                IoKind::Read => {
                    let sub = Request::new(req.id, req.arrival, lbn, sectors, IoKind::Read);
                    let b = self.members[data].service(&sub, now + SimTime::from_secs(busy[data]));
                    if !first_set {
                        first = b;
                        first_set = true;
                    }
                    busy[data] += b.total();
                }
                IoKind::Write if full_stripe_aligned => {
                    // Full-stripe write: parity computed in memory; data
                    // strips and the parity strip all written in place.
                    let wd = Request::new(req.id, req.arrival, lbn, sectors, IoKind::Write);
                    let b = self.members[data].service(&wd, now + SimTime::from_secs(busy[data]));
                    if !first_set {
                        first = b;
                        first_set = true;
                    }
                    busy[data] += b.total();
                    // Write the parity strip once per stripe: when this
                    // piece is the stripe's first data strip.
                    if strip % (self.members.len() as u64 - 1) == 0 {
                        let wp = Request::new(
                            req.id,
                            req.arrival,
                            base,
                            self.stripe_unit,
                            IoKind::Write,
                        );
                        let b = self.members[parity]
                            .service(&wp, now + SimTime::from_secs(busy[parity]));
                        busy[parity] += b.total();
                    }
                }
                IoKind::Write => {
                    // Small write: read-modify-write on data and parity.
                    for member in [data, parity] {
                        let rd = Request::new(req.id, req.arrival, lbn, sectors, IoKind::Read);
                        let br = self.members[member]
                            .service(&rd, now + SimTime::from_secs(busy[member]));
                        if !first_set {
                            first = br;
                            first_set = true;
                        }
                        busy[member] += br.total();
                        let wr = Request::new(req.id, req.arrival, lbn, sectors, IoKind::Write);
                        let bw = self.members[member]
                            .service(&wr, now + SimTime::from_secs(busy[member]));
                        busy[member] += bw.total();
                    }
                }
            }
        }
        let slowest = busy.iter().copied().fold(0.0, f64::max);
        combine(slowest, first)
    }

    fn reset(&mut self) {
        for m in &mut self.members {
            m.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlas_disk::{DiskDevice, DiskParams};
    use mems_device::{MemsDevice, MemsParams};

    fn mems_array(n: usize) -> Raid5Device<MemsDevice> {
        Raid5Device::new(
            (0..n)
                .map(|_| MemsDevice::new(MemsParams::default()))
                .collect(),
            8,
        )
    }

    #[test]
    fn capacity_reserves_one_member_for_parity() {
        assert_eq!(mems_array(5).capacity_lbns(), 4 * 6_750_000);
    }

    #[test]
    fn parity_rotates_across_members() {
        let a = mems_array(5);
        let mut seen = std::collections::HashSet::new();
        for strip in 0..40 {
            let (data, parity, _) = a.locate(strip);
            assert_ne!(data, parity);
            seen.insert(parity);
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn reads_cost_the_same_as_raw_device_reads() {
        let mut a = mems_array(4);
        let mut raw = MemsDevice::new(MemsParams::default());
        let r = Request::new(0, SimTime::ZERO, 16, 8, IoKind::Read);
        // The array maps lbn 16 to some member-local lbn; timing is a
        // single-member single-row access either way.
        let ba = a.service(&r, SimTime::ZERO);
        let braw = raw.service(&r, SimTime::ZERO);
        assert!((ba.total() - braw.total()).abs() < 0.3e-3);
    }

    #[test]
    fn small_write_penalty_is_modest_on_mems_and_severe_on_disk() {
        // §6.2's point: the RAID-5 small-write cycle barely hurts a MEMS
        // array (a turnaround and a rewrite on top of the read) but costs
        // a disk array most of a revolution per member.
        fn ratio<D: StorageDevice>(
            mut read_dev: Raid5Device<D>,
            mut write_dev: Raid5Device<D>,
        ) -> f64 {
            let r = Request::new(0, SimTime::ZERO, 800, 8, IoKind::Read);
            let w = Request::new(0, SimTime::ZERO, 800, 8, IoKind::Write);
            let tr = read_dev.service(&r, SimTime::ZERO).total();
            let tw = write_dev.service(&w, SimTime::ZERO).total();
            tw / tr
        }
        let mems_ratio = ratio(mems_array(4), mems_array(4));
        assert!(
            mems_ratio > 1.0 && mems_ratio < 1.8,
            "MEMS small-write/read ratio {mems_ratio} should be modest"
        );
        let disk = || {
            Raid5Device::new(
                (0..4)
                    .map(|_| DiskDevice::new(DiskParams::quantum_atlas_10k()))
                    .collect::<Vec<_>>(),
                8,
            )
        };
        let disk_ratio = ratio(disk(), disk());
        assert!(
            disk_ratio > 1.5,
            "disk small-write/read ratio {disk_ratio} should be severe"
        );
        assert!(disk_ratio > mems_ratio);
    }

    #[test]
    fn full_stripe_writes_avoid_the_rmw() {
        // 3 data members × 8-sector strips = 24-sector stripes.
        let mut a = mems_array(4);
        let full = a
            .service(
                &Request::new(0, SimTime::ZERO, 0, 24, IoKind::Write),
                SimTime::ZERO,
            )
            .total();
        let mut a = mems_array(4);
        let partial_total: f64 = (0..3)
            .map(|i| {
                a.service(
                    &Request::new(i, SimTime::ZERO, i * 8, 8, IoKind::Write),
                    SimTime::ZERO,
                )
                .total()
            })
            .sum();
        assert!(
            full < partial_total * 0.7,
            "full-stripe write {full} must beat three small writes {partial_total}"
        );
    }

    #[test]
    fn mems_raid5_small_writes_crush_disk_raid5() {
        let mut mems = mems_array(5);
        let mut disk = Raid5Device::new(
            (0..5)
                .map(|_| DiskDevice::new(DiskParams::quantum_atlas_10k()))
                .collect::<Vec<_>>(),
            8,
        );
        let w = Request::new(0, SimTime::ZERO, 10_000, 8, IoKind::Write);
        let m = mems.service(&w, SimTime::ZERO).total();
        let d = disk.service(&w, SimTime::ZERO).total();
        assert!(d / m > 5.0, "disk {d} vs mems {m}");
    }
}
