//! Operating system management policies for MEMS-based storage devices.
//!
//! This crate is the paper's primary contribution: how four aspects of OS
//! storage management change when the device behind the block interface
//! is a MEMS media sled rather than a rotating disk.
//!
//! * [`sched`] — request scheduling (§4): FCFS, SSTF_LBN, C-LOOK, and
//!   SPTF, plus an aged-SPTF extension. The headline result: the
//!   algorithms keep their disk ranking, but the *gaps* change — LBN
//!   schedulers only minimize X sled movement, so SPTF's advantage is
//!   governed by how much settle time lets X seeks dominate Y seeks.
//! * [`layout`] — data placement (§5): the spring-aware bipartite layouts
//!   (subregioned 5×5 grid and columnar) that beat the disk-optimal organ
//!   pipe arrangement on MEMS devices.
//! * [`fault`] — failure management (§6): striping + horizontal/vertical
//!   ECC across tips, spare-tip remapping with zero service-time penalty,
//!   the capacity-vs-tolerance trade, seek-error recovery, Table 2's
//!   read-modify-write advantage, and the RAID-5 small-write engine.
//! * [`power`] — power management (§7): a single aggressive idle mode
//!   (0.5 ms restart) instead of the disk's reluctant spin-down bargain,
//!   and power as a near-linear function of bits accessed.
//! * [`array`](mod@array) — RAID-0/1/5 arrays as composable devices (§6.2), with
//!   positioning-aware mirror read steering and the small-write RMW path.
//! * [`placement`] — adaptive hot/cold placement: decayed per-block
//!   frequency tracking and idle-window migration of hot blocks toward
//!   the cheap center cylinders, as a composable device wrapper.
//! * [`cache`] — the §2.4.11 speed-matching buffer: LRU sector cache with
//!   multi-stream sequential readahead, composed as a device wrapper.
//!
//! # Examples
//!
//! Run the paper's random workload against the default MEMS device under
//! SPTF scheduling:
//!
//! ```
//! use mems_device::{MemsDevice, MemsParams};
//! use mems_os::sched::SptfScheduler;
//! use storage_sim::{Driver, IoKind, Request, SimTime, VecWorkload};
//!
//! let requests: Vec<Request> = (0..100)
//!     .map(|i| {
//!         let lbn = (i * 2_654_435_761u64) % 6_000_000;
//!         Request::new(i, SimTime::from_ms(i as f64), lbn, 8, IoKind::Read)
//!     })
//!     .collect();
//! let mut driver = Driver::new(
//!     VecWorkload::new(requests),
//!     SptfScheduler::new(),
//!     MemsDevice::new(MemsParams::default()),
//! );
//! let report = driver.run();
//! assert_eq!(report.completed, 100);
//! println!("mean response: {:.2} ms", report.response.mean_ms());
//! ```

#![warn(missing_docs)]
// Layouts represent LBN *regions* as collections of `Range<u64>`; a
// one-element collection is meaningful (one region), not a typo for a
// range of values, so this lint misfires throughout the crate.
#![allow(clippy::single_range_in_vec_init)]

pub mod array;
pub mod cache;
pub mod fault;
pub mod layout;
pub mod placement;
pub mod power;
pub mod sched;
