//! A sector-granular LRU set.
//!
//! Device buffers track which sectors are resident; this implementation
//! keeps an intrusive doubly-linked recency list over a hash map, giving
//! O(1) `contains`, `insert`, `touch`, and eviction.

use std::collections::HashMap;

/// Fixed-capacity LRU set of sector numbers.
///
/// # Examples
///
/// ```
/// use mems_os::cache::LruCache;
///
/// let mut c = LruCache::new(2);
/// c.insert(1);
/// c.insert(2);
/// c.insert(3); // evicts 1
/// assert!(!c.contains(1));
/// assert!(c.contains(2) && c.contains(3));
/// ```
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    /// sector → node index in `nodes`.
    map: HashMap<u64, usize>,
    /// Arena of list nodes; `free` chains recycled slots.
    nodes: Vec<Node>,
    free: Vec<usize>,
    /// Most-recently-used node, if any.
    head: Option<usize>,
    /// Least-recently-used node, if any.
    tail: Option<usize>,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    sector: u64,
    prev: Option<usize>,
    next: Option<usize>,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` sectors.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache needs capacity");
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: None,
            tail: None,
        }
    }

    /// Number of resident sectors.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Returns `true` if `sector` is resident (does not touch recency).
    pub fn contains(&self, sector: u64) -> bool {
        self.map.contains_key(&sector)
    }

    /// Marks `sector` most-recently-used if resident.
    pub fn touch(&mut self, sector: u64) {
        if let Some(&idx) = self.map.get(&sector) {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    /// Inserts `sector` as most-recently-used, evicting the LRU sector if
    /// full. Returns the evicted sector, if any.
    pub fn insert(&mut self, sector: u64) -> Option<u64> {
        if let Some(&idx) = self.map.get(&sector) {
            self.unlink(idx);
            self.push_front(idx);
            return None;
        }
        let mut evicted = None;
        if self.map.len() == self.capacity {
            let lru = self.tail.expect("full cache has a tail");
            let victim = self.nodes[lru].sector;
            self.unlink(lru);
            self.map.remove(&victim);
            self.free.push(lru);
            evicted = Some(victim);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node {
                    sector,
                    prev: None,
                    next: None,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    sector,
                    prev: None,
                    next: None,
                });
                self.nodes.len() - 1
            }
        };
        self.map.insert(sector, idx);
        self.push_front(idx);
        evicted
    }

    /// Empties the cache.
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = None;
        self.tail = None;
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        match prev {
            Some(p) => self.nodes[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.nodes[n].prev = prev,
            None => self.tail = prev,
        }
        self.nodes[idx].prev = None;
        self.nodes[idx].next = None;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = None;
        self.nodes[idx].next = self.head;
        if let Some(h) = self.head {
            self.nodes[h].prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_in_lru_order() {
        let mut c = LruCache::new(3);
        c.insert(1);
        c.insert(2);
        c.insert(3);
        assert_eq!(c.insert(4), Some(1));
        assert_eq!(c.insert(5), Some(2));
        assert!(c.contains(3) && c.contains(4) && c.contains(5));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn touch_protects_from_eviction() {
        let mut c = LruCache::new(3);
        c.insert(1);
        c.insert(2);
        c.insert(3);
        c.touch(1); // 2 is now LRU
        assert_eq!(c.insert(4), Some(2));
        assert!(c.contains(1));
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let mut c = LruCache::new(2);
        c.insert(1);
        c.insert(2);
        assert_eq!(c.insert(1), None); // refresh, no eviction
        assert_eq!(c.insert(3), Some(2));
        assert!(c.contains(1) && c.contains(3));
    }

    #[test]
    fn touch_of_absent_sector_is_a_noop() {
        let mut c = LruCache::new(2);
        c.insert(1);
        c.touch(99);
        assert!(c.contains(1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut c = LruCache::new(4);
        for s in 0..4 {
            c.insert(s);
        }
        c.clear();
        assert!(c.is_empty());
        assert!(!c.contains(0));
        // Still usable after clear.
        c.insert(9);
        assert!(c.contains(9));
    }

    #[test]
    fn single_slot_cache_works() {
        let mut c = LruCache::new(1);
        assert_eq!(c.insert(1), None);
        assert_eq!(c.insert(2), Some(1));
        c.touch(2);
        assert_eq!(c.insert(3), Some(2));
    }

    #[test]
    fn heavy_churn_maintains_invariants() {
        let mut c = LruCache::new(64);
        let mut x = 7u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            c.insert(x % 500);
            assert!(c.len() <= 64);
        }
        assert_eq!(c.len(), 64);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = LruCache::new(0);
    }
}
