//! Device-side caching and prefetching (§2.4.11).
//!
//! "Since this rate rarely matches that of the external interface,
//! speed-matching buffers are important. Further, since sequential
//! request streams are important aspects of many real systems, these
//! speed-matching buffers will play an important role in prefetching of
//! sequential LBNs. Also, as with disks, most block reuse will be
//! captured by larger host memory caches instead of in the device cache."
//!
//! [`CachedDevice`] wraps any [`storage_sim::StorageDevice`] with a small
//! LRU sector buffer and a sequential-stream readahead policy: exactly
//! the firmware a MEMS device would ship. The cache is deliberately
//! small (device buffers are megabytes, not gigabytes) — its job is to
//! capture sequential readahead, not working-set reuse.

mod lru;
mod prefetch;

pub use lru::LruCache;
pub use prefetch::SequentialDetector;

use storage_sim::{IoKind, PositionOracle, Request, ServiceBreakdown, SimTime, StorageDevice};

/// Statistics accumulated by a [`CachedDevice`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read requests fully satisfied from the buffer.
    pub read_hits: u64,
    /// Read requests that went to the media.
    pub read_misses: u64,
    /// Write requests (always go to the media; write-through).
    pub writes: u64,
    /// Sectors fetched beyond the request by readahead.
    pub prefetched_sectors: u64,
}

impl CacheStats {
    /// Read hit rate in `[0, 1]`; zero when no reads occurred.
    pub fn hit_rate(&self) -> f64 {
        let total = self.read_hits + self.read_misses;
        if total == 0 {
            0.0
        } else {
            self.read_hits as f64 / total as f64
        }
    }
}

/// A device wrapped with an LRU sector buffer and sequential readahead.
///
/// Reads that hit entirely in the buffer cost only the (electronic)
/// `hit_time`. Misses go to the media; when the miss extends a detected
/// sequential stream, the device fetches ahead by a window that doubles
/// with each sequential hit up to `max_readahead` sectors, amortizing
/// positioning over long transfers — cheap on a MEMS device because
/// sequential rows stream at full media rate.
///
/// # Examples
///
/// ```
/// use mems_device::{MemsDevice, MemsParams};
/// use mems_os::cache::CachedDevice;
/// use storage_sim::{IoKind, Request, SimTime, StorageDevice};
///
/// let mut dev = CachedDevice::new(MemsDevice::new(MemsParams::default()), 4096, 256, 50e-6);
/// // Two sequential misses open the readahead window...
/// let a = dev.service(&Request::new(0, SimTime::ZERO, 1000, 8, IoKind::Read), SimTime::ZERO);
/// let b = dev.service(&Request::new(1, SimTime::ZERO, 1008, 8, IoKind::Read), SimTime::ZERO);
/// // ...and the third sequential read rides the prefetched extent.
/// let c = dev.service(&Request::new(2, SimTime::ZERO, 1016, 8, IoKind::Read), SimTime::ZERO);
/// assert!(c.total() < a.total() && c.total() < b.total());
/// assert_eq!(dev.stats().read_hits, 1);
/// ```
#[derive(Debug)]
pub struct CachedDevice<D> {
    inner: D,
    cache: LruCache,
    detector: SequentialDetector,
    max_readahead: u32,
    hit_time: f64,
    stats: CacheStats,
}

impl<D: StorageDevice> CachedDevice<D> {
    /// Wraps `inner` with a buffer of `capacity_sectors` sectors, up to
    /// `max_readahead` sectors of prefetch, and `hit_time` seconds per
    /// buffer hit.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_sectors` is zero or `hit_time` is negative.
    pub fn new(inner: D, capacity_sectors: usize, max_readahead: u32, hit_time: f64) -> Self {
        assert!(hit_time >= 0.0, "hit time must be non-negative");
        CachedDevice {
            inner,
            cache: LruCache::new(capacity_sectors),
            detector: SequentialDetector::new(),
            max_readahead,
            hit_time,
            stats: CacheStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    fn all_cached(&self, req: &Request) -> bool {
        (req.lbn..req.end_lbn()).all(|s| self.cache.contains(s))
    }

    fn insert_range(&mut self, lbn: u64, sectors: u64) {
        for s in lbn..lbn + sectors {
            self.cache.insert(s);
        }
    }
}

impl<D: StorageDevice> PositionOracle for CachedDevice<D> {
    fn position_time(&self, req: &Request, now: SimTime) -> f64 {
        if req.kind == IoKind::Read && self.all_cached(req) {
            0.0
        } else {
            self.inner.position_time(req, now)
        }
    }
}

impl<D: StorageDevice> StorageDevice for CachedDevice<D> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn capacity_lbns(&self) -> u64 {
        self.inner.capacity_lbns()
    }

    fn service(&mut self, req: &Request, now: SimTime) -> ServiceBreakdown {
        if req.kind == IoKind::Write {
            // Write-through: media write, buffer updated so subsequent
            // reads of the same sectors hit.
            self.stats.writes += 1;
            let b = self.inner.service(req, now);
            self.insert_range(req.lbn, u64::from(req.sectors));
            return b;
        }
        // Touch for LRU recency even on a hit. The detector only sees
        // misses: its stream positions track fetched extents, and hits
        // are by definition inside an extent it already fetched.
        if self.all_cached(req) {
            for s in req.lbn..req.end_lbn() {
                self.cache.touch(s);
            }
            self.stats.read_hits += 1;
            return ServiceBreakdown {
                overhead: self.hit_time,
                ..ServiceBreakdown::default()
            };
        }
        self.stats.read_misses += 1;
        let window = self.detector.observe(req.lbn, req.sectors);
        let readahead = window.min(self.max_readahead);
        let available = self.capacity_lbns() - req.end_lbn();
        let extra = u64::from(readahead).min(available) as u32;
        let fetch = Request::new(req.id, req.arrival, req.lbn, req.sectors + extra, req.kind);
        self.stats.prefetched_sectors += u64::from(extra);
        let b = self.inner.service(&fetch, now);
        self.insert_range(fetch.lbn, u64::from(fetch.sectors));
        b
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.cache.clear();
        self.detector = SequentialDetector::new();
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mems_device::{MemsDevice, MemsParams};

    fn cached() -> CachedDevice<MemsDevice> {
        CachedDevice::new(MemsDevice::new(MemsParams::default()), 8192, 512, 20e-6)
    }

    fn read(id: u64, lbn: u64, sectors: u32) -> Request {
        Request::new(id, SimTime::ZERO, lbn, sectors, IoKind::Read)
    }

    #[test]
    fn repeated_read_hits_the_buffer() {
        let mut d = cached();
        let miss = d.service(&read(0, 5000, 8), SimTime::ZERO);
        let hit = d.service(&read(1, 5000, 8), SimTime::ZERO);
        assert!(miss.total() > 1e-4);
        assert_eq!(hit.total(), 20e-6);
        assert_eq!(d.stats().read_hits, 1);
        assert_eq!(d.stats().read_misses, 1);
    }

    #[test]
    fn sequential_stream_gets_prefetched() {
        let mut d = cached();
        let mut hits = 0;
        for i in 0..40u64 {
            let b = d.service(&read(i, 10_000 + i * 8, 8), SimTime::ZERO);
            if b.total() <= 20e-6 {
                hits += 1;
            }
        }
        assert!(
            hits >= 30,
            "readahead should satisfy most of a sequential stream, got {hits}"
        );
        assert!(d.stats().prefetched_sectors > 0);
        assert!(d.stats().hit_rate() > 0.7);
    }

    #[test]
    fn random_reads_do_not_benefit() {
        let mut d = cached();
        let mut lbn = 999u64;
        let mut hits = 0;
        for i in 0..40u64 {
            lbn = (lbn.wrapping_mul(6364136223846793005).wrapping_add(7)) % 6_000_000;
            let b = d.service(&read(i, lbn, 8), SimTime::ZERO);
            if b.total() <= 20e-6 {
                hits += 1;
            }
        }
        assert!(hits <= 2, "random reads should mostly miss, hits {hits}");
    }

    #[test]
    fn writes_populate_the_buffer() {
        let mut d = cached();
        let w = Request::new(0, SimTime::ZERO, 777, 8, IoKind::Write);
        let bw = d.service(&w, SimTime::ZERO);
        assert!(bw.total() > 1e-4, "write-through goes to media");
        let br = d.service(&read(1, 777, 8), SimTime::ZERO);
        assert_eq!(br.total(), 20e-6, "read-after-write hits");
    }

    #[test]
    fn lru_evicts_old_sectors() {
        let mut d = CachedDevice::new(MemsDevice::new(MemsParams::default()), 16, 0, 20e-6);
        let _ = d.service(&read(0, 100, 8), SimTime::ZERO);
        let _ = d.service(&read(1, 300, 8), SimTime::ZERO);
        // Capacity 16 sectors holds both; a third range evicts the first.
        let _ = d.service(&read(2, 500, 8), SimTime::ZERO);
        let again = d.service(&read(3, 100, 8), SimTime::ZERO);
        assert!(again.total() > 20e-6, "oldest range must have been evicted");
    }

    #[test]
    fn position_time_is_zero_for_hits() {
        let mut d = cached();
        let _ = d.service(&read(0, 4242, 8), SimTime::ZERO);
        assert_eq!(d.position_time(&read(1, 4242, 8), SimTime::ZERO), 0.0);
        assert!(d.position_time(&read(2, 4_000_000, 8), SimTime::ZERO) > 0.0);
    }

    #[test]
    fn readahead_respects_device_capacity() {
        let mut d = cached();
        let capacity = d.capacity_lbns();
        // Establish a sequential stream right at the end of the device.
        let b = d.service(&read(0, capacity - 24, 8), SimTime::ZERO);
        assert!(b.total().is_finite());
        let b = d.service(&read(1, capacity - 16, 8), SimTime::ZERO);
        assert!(b.total().is_finite());
        let b = d.service(&read(2, capacity - 8, 8), SimTime::ZERO);
        assert!(b.total().is_finite());
    }

    #[test]
    fn reset_clears_everything() {
        let mut d = cached();
        let _ = d.service(&read(0, 123, 8), SimTime::ZERO);
        d.reset();
        assert_eq!(d.stats(), CacheStats::default());
        let again = d.service(&read(1, 123, 8), SimTime::ZERO);
        assert!(again.total() > 20e-6);
    }
}
