//! Sequential stream detection for readahead.
//!
//! The classic ramp-up policy: a request that begins exactly where the
//! previous one ended extends the stream, and the readahead window
//! doubles (from one request's worth) up to the caller's cap; any
//! non-sequential request resets the window. Tracking a handful of
//! concurrent streams covers interleaved sequential readers (e.g. two
//! files being copied at once).

/// Detects sequential read streams and sizes the readahead window.
///
/// # Examples
///
/// ```
/// use mems_os::cache::SequentialDetector;
///
/// let mut d = SequentialDetector::new();
/// assert_eq!(d.observe(100, 8), 0);       // first touch: no readahead
/// let w1 = d.observe(108, 8);             // sequential: window opens
/// assert!(w1 > 0);
/// // The caller fetched [108, 116 + w1); the next miss lands after it.
/// let w2 = d.observe(116 + u64::from(w1), 8);
/// assert!(w2 > w1);                       // and the window doubles
/// assert_eq!(d.observe(9_999_999, 8), 0); // random: no readahead
/// ```
#[derive(Debug)]
pub struct SequentialDetector {
    streams: Vec<Stream>,
}

#[derive(Debug, Clone, Copy)]
struct Stream {
    next_lbn: u64,
    window: u32,
    age: u64,
}

/// Number of concurrent streams tracked.
const MAX_STREAMS: usize = 8;

impl SequentialDetector {
    /// Creates a detector with no known streams.
    pub fn new() -> Self {
        SequentialDetector {
            streams: Vec::with_capacity(MAX_STREAMS),
        }
    }

    /// Observes a request and returns the readahead window (in sectors)
    /// to fetch beyond it: zero unless the request extends a known
    /// stream.
    pub fn observe(&mut self, lbn: u64, sectors: u32) -> u32 {
        for s in &mut self.streams {
            s.age += 1;
        }
        if let Some(s) = self.streams.iter_mut().find(|s| s.next_lbn == lbn) {
            // Extends a stream: ramp the window (it covers the *next*
            // requests, so start at one request's worth and double).
            s.window = (s.window * 2).clamp(sectors, u32::MAX / 2);
            s.next_lbn = lbn + u64::from(sectors) + u64::from(s.window);
            s.age = 0;
            return s.window;
        }
        // New stream candidate; replace the stalest slot.
        let slot = Stream {
            next_lbn: lbn + u64::from(sectors),
            window: sectors / 2,
            age: 0,
        };
        if self.streams.len() < MAX_STREAMS {
            self.streams.push(slot);
        } else {
            let stalest = self
                .streams
                .iter()
                .enumerate()
                .max_by_key(|(_, s)| s.age)
                .map(|(i, _)| i)
                .expect("streams is non-empty");
            self.streams[stalest] = slot;
        }
        0
    }
}

impl Default for SequentialDetector {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_gets_no_readahead() {
        let mut d = SequentialDetector::new();
        assert_eq!(d.observe(0, 8), 0);
    }

    #[test]
    fn window_ramps_on_sequential_access() {
        let mut d = SequentialDetector::new();
        let mut lbn = 0u64;
        let mut last_window = 0u32;
        d.observe(lbn, 8);
        lbn += 8;
        for step in 0..5 {
            let w = d.observe(lbn, 8);
            assert!(w >= last_window, "window shrank at step {step}");
            lbn += 8 + u64::from(w); // the readahead was consumed too
            last_window = w;
        }
        assert!(last_window >= 64, "window should ramp, got {last_window}");
    }

    #[test]
    fn random_access_resets() {
        let mut d = SequentialDetector::new();
        d.observe(0, 8);
        let w = d.observe(8, 8);
        assert!(w > 0);
        assert_eq!(d.observe(1_000_000, 8), 0);
    }

    #[test]
    fn interleaved_streams_are_both_tracked() {
        let mut d = SequentialDetector::new();
        d.observe(0, 8);
        d.observe(500_000, 8);
        let wa = d.observe(8, 8);
        let wb = d.observe(500_008, 8);
        assert!(wa > 0, "stream A lost");
        assert!(wb > 0, "stream B lost");
    }

    #[test]
    fn stream_table_evicts_stalest() {
        let mut d = SequentialDetector::new();
        // Fill the table with streams, then keep only one alive.
        for i in 0..MAX_STREAMS as u64 {
            d.observe(i * 100_000, 8);
        }
        for _ in 0..4 {
            // A burst of new one-shot streams evicts the stale entries.
            for i in 0..MAX_STREAMS as u64 {
                d.observe(10_000_000 + i * 7_777, 8);
            }
        }
        // The original first stream should be long gone.
        assert_eq!(d.observe(8, 8), 0);
    }
}
