//! Property-based tests for the OS-management layer's invariants.

use mems_device::{MemsDevice, MemsParams};
use mems_os::fault::{
    crc8, resolve_transient, ReedSolomon, RetryOutcome, RetryPolicy, StripeCodec, TipSector,
};
use mems_os::layout::{
    Allocator, ColumnarLayout, DataClass, Layout, OrganPipeMap, SimpleLayout, SubregionedLayout,
};
use mems_os::placement::{DoublePriorityQueue, FrequencyTracker};
use mems_os::sched::{Algorithm, ClookScheduler, LookScheduler, SstfScheduler};
use proptest::prelude::*;
use storage_sim::{IoKind, Request, Scheduler, SimTime};

proptest! {
    // 64 cases per property: several of these run whole scheduler/codec
    // pipelines per case, and the default 256 makes `cargo test` crawl.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RS decode ∘ encode is the identity under any erasure pattern of at
    /// most `m` losses.
    #[test]
    fn rs_recovers_any_erasure_pattern(
        data in prop::collection::vec(any::<u8>(), 16),
        mut losses in prop::collection::hash_set(0usize..20, 0..=4),
    ) {
        let rs = ReedSolomon::new(16, 4);
        let encoded = rs.encode(&data);
        let mut shards: Vec<Option<u8>> = encoded.into_iter().map(Some).collect();
        losses.retain(|&i| i < shards.len());
        for &i in &losses {
            shards[i] = None;
        }
        let decoded = rs.decode(&shards);
        prop_assert_eq!(decoded.as_deref(), Some(data.as_slice()));
    }

    /// Exceeding the parity budget always fails cleanly (no wrong data).
    #[test]
    fn rs_fails_cleanly_beyond_parity(
        data in prop::collection::vec(any::<u8>(), 16),
        start in 0usize..15,
    ) {
        let rs = ReedSolomon::new(16, 4);
        let encoded = rs.encode(&data);
        let mut shards: Vec<Option<u8>> = encoded.into_iter().map(Some).collect();
        for i in 0..5 {
            shards[(start + i * 3) % 20] = None;
        }
        let erased = shards.iter().filter(|s| s.is_none()).count();
        let decoded = rs.decode(&shards);
        if erased > 4 {
            prop_assert_eq!(decoded, None);
        } else {
            prop_assert_eq!(decoded.as_deref(), Some(data.as_slice()));
        }
    }

    /// The stripe codec round-trips any sector under any ≤8-tip damage.
    #[test]
    fn stripe_codec_round_trips(
        seed in any::<u64>(),
        damaged in prop::collection::hash_set(0usize..72, 0..=8),
    ) {
        let codec = StripeCodec::new(8);
        let mut sector = [0u8; 512];
        let mut x = seed | 1;
        for b in sector.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (x >> 56) as u8;
        }
        let mut stripe = codec.encode(&sector);
        for &t in &damaged {
            stripe[t].data[(t * 3) % 8] ^= 0x5a;
        }
        prop_assert_eq!(codec.decode(&stripe), Some(sector));
    }

    /// The vertical check catches any nonzero corruption of a tip sector.
    #[test]
    fn vertical_check_detects_any_corruption(
        data in any::<[u8; 8]>(),
        flip in any::<[u8; 8]>(),
    ) {
        prop_assume!(flip.iter().any(|&b| b != 0));
        let ts = TipSector::encode(data);
        let mut bad = ts;
        for (d, f) in bad.data.iter_mut().zip(flip.iter()) {
            *d ^= f;
        }
        // CRC-8 detects all burst errors ≤8 bits and virtually all wider
        // patterns; a same-CRC collision over random flips is possible in
        // principle (p≈1/256) but the deterministic check below uses the
        // actual CRC values.
        if crc8(&bad.data) != crc8(&ts.data) {
            prop_assert!(!bad.verify());
        }
    }

    /// Organ pipe always produces a permutation with the hottest block in
    /// the centermost slot.
    #[test]
    fn organ_pipe_builds_valid_permutations(
        freqs in prop::collection::vec(0.0f64..100.0, 1..200),
    ) {
        let map = OrganPipeMap::build(&freqs);
        let n = freqs.len();
        let mut seen = vec![false; n];
        for b in 0..n as u64 {
            let p = map.physical_of(b);
            prop_assert!(!seen[p as usize]);
            seen[p as usize] = true;
            prop_assert_eq!(map.logical_of(p), b);
        }
        // The hottest block (ties broken by lowest index) sits center.
        let hottest = (0..n)
            .max_by(|&a, &b| freqs[a].partial_cmp(&freqs[b]).unwrap().then(b.cmp(&a)))
            .unwrap();
        prop_assert_eq!(map.physical_of(hottest as u64), (n / 2) as u64);
    }

    /// LBN-based schedulers are conservative: every enqueued request is
    /// picked exactly once, regardless of interleaving.
    #[test]
    fn schedulers_lose_nothing(
        lbns in prop::collection::vec(0u64..6_000_000, 1..60),
        pick_between in prop::collection::vec(prop::bool::ANY, 1..60),
    ) {
        let dev = MemsDevice::new(MemsParams::default());
        for alg in [Algorithm::SstfLbn, Algorithm::Clook, Algorithm::Sptf, Algorithm::Fcfs] {
            let mut s = alg.build();
            let mut picked = Vec::new();
            for (i, &lbn) in lbns.iter().enumerate() {
                s.enqueue(Request::new(i as u64, SimTime::ZERO, lbn, 8, IoKind::Read));
                if *pick_between.get(i).unwrap_or(&false) {
                    if let Some(r) = s.pick(&dev, SimTime::ZERO) {
                        picked.push(r.id);
                    }
                }
            }
            while let Some(r) = s.pick(&dev, SimTime::ZERO) {
                picked.push(r.id);
            }
            picked.sort_unstable();
            let expected: Vec<u64> = (0..lbns.len() as u64).collect();
            prop_assert_eq!(&picked, &expected, "{} lost/duplicated requests", alg.label());
        }
    }

    /// LOOK and SSTF also conserve requests.
    #[test]
    fn extension_schedulers_lose_nothing(
        lbns in prop::collection::vec(0u64..6_000_000, 1..50),
    ) {
        let dev = MemsDevice::new(MemsParams::default());
        let mut look = LookScheduler::new();
        let mut sstf = SstfScheduler::new();
        let mut clook = ClookScheduler::new();
        for (i, &lbn) in lbns.iter().enumerate() {
            let r = Request::new(i as u64, SimTime::ZERO, lbn, 8, IoKind::Read);
            look.enqueue(r);
            sstf.enqueue(r);
            clook.enqueue(r);
        }
        for s in [
            &mut look as &mut dyn storage_sim::DynScheduler,
            &mut sstf,
            &mut clook,
        ] {
            let mut count = 0;
            while s.pick_dyn(&dev, SimTime::ZERO).is_some() {
                count += 1;
            }
            prop_assert_eq!(count, lbns.len());
        }
    }

    /// Allocator invariant: live extents never overlap and stay inside
    /// their class regions, across arbitrary alloc/free interleavings.
    #[test]
    fn allocator_extents_never_overlap(
        ops in prop::collection::vec((any::<bool>(), 1u64..200), 1..80),
    ) {
        let layout = SimpleLayout::new(50_000);
        let mut a = Allocator::new(&layout);
        let mut live: Vec<mems_os::layout::Extent> = Vec::new();
        for (free_instead, size) in ops {
            if free_instead && !live.is_empty() {
                let e = live.swap_remove(live.len() / 2);
                a.release(DataClass::Small, e);
            } else if let Some(e) = a.allocate(DataClass::Small, size) {
                prop_assert!(e.end() <= 50_000);
                for other in &live {
                    prop_assert!(
                        e.end() <= other.lbn || other.end() <= e.lbn,
                        "overlap {:?} vs {:?}", e, other
                    );
                }
                live.push(e);
            }
        }
        // Free everything: the region must coalesce back to one run.
        for e in live.drain(..) {
            a.release(DataClass::Small, e);
        }
        prop_assert_eq!(a.free_sectors(DataClass::Small), 50_000);
        prop_assert_eq!(a.fragmentation(DataClass::Small), 0.0);
    }

    /// Every layout keeps its two regions disjoint and large requests
    /// placeable.
    #[test]
    fn layouts_have_disjoint_usable_regions(seed in any::<u64>()) {
        let geom = MemsParams::default().geometry();
        let capacity = geom.total_sectors();
        let layouts: Vec<Box<dyn Layout>> = vec![
            Box::new(SimpleLayout::new(capacity)),
            Box::new(ColumnarLayout::new(&geom)),
            Box::new(SubregionedLayout::new(&geom)),
            Box::new(mems_os::layout::OrganPipeLayout::paper(capacity)),
        ];
        let _ = seed;
        for l in &layouts {
            if l.name() != "simple" {
                for s in l.small_ranges() {
                    for g in l.large_ranges() {
                        prop_assert!(s.end <= g.start || g.end <= s.start);
                    }
                }
            }
            prop_assert!(l.large_ranges().iter().any(|r| r.end - r.start >= 800));
            prop_assert!(l.small_ranges().iter().any(|r| r.end - r.start >= 8));
            for r in l.small_ranges().iter().chain(l.large_ranges()) {
                prop_assert!(r.end <= capacity);
            }
        }
    }

    /// The transient-seek-error retry decision is a pure function of the
    /// seed: identical seeds replay the identical outcome (attempts and
    /// billed delay, bit for bit), and the delay grows with each attempt.
    #[test]
    fn retry_decision_is_deterministic_per_seed(
        seed in any::<u64>(),
        prob_milli in 0u32..=1000,
        penalty_us in 1u32..=2000,
    ) {
        let policy = RetryPolicy::default();
        let prob = f64::from(prob_milli) / 1000.0;
        let penalty = f64::from(penalty_us) * 1e-6;
        let a = resolve_transient(&policy, penalty, prob, &mut storage_sim::rng::seeded(seed));
        let b = resolve_transient(&policy, penalty, prob, &mut storage_sim::rng::seeded(seed));
        prop_assert_eq!(a, b, "same seed must replay the same outcome");
        match a {
            RetryOutcome::Recovered { attempts, delay }
            | RetryOutcome::Exhausted { attempts, delay } => {
                prop_assert!(attempts >= 1 && attempts <= policy.max_retries);
                // Every attempt bills at least the penalty plus first backoff.
                prop_assert!(delay >= f64::from(attempts) * (penalty + policy.backoff(1)) - 1e-15);
            }
        }
    }

    /// Max-retry exhaustion surfaces as an explicit `Exhausted` outcome —
    /// never a silent success — and still bills the time spent trying.
    #[test]
    fn retry_exhaustion_is_never_silent_success(
        seed in any::<u64>(),
        max_retries in 1u32..=8,
    ) {
        let policy = RetryPolicy { max_retries, ..RetryPolicy::default() };
        let out = resolve_transient(&policy, 0.5e-3, 0.0, &mut storage_sim::rng::seeded(seed));
        prop_assert!(!out.recovered(), "zero recovery probability cannot succeed");
        match out {
            RetryOutcome::Exhausted { attempts, delay } => {
                prop_assert_eq!(attempts, max_retries);
                prop_assert!(delay >= f64::from(max_retries) * 0.5e-3);
            }
            RetryOutcome::Recovered { .. } => prop_assert!(false, "silent success"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The anchor-normalized decayed counters order exactly like
    /// brute-force decayed sums under arbitrary access interleavings and
    /// decay rates — including rates small enough that the run crosses
    /// many renormalization boundaries — and the double-ended priority
    /// queue tracks both extremes through it all.
    #[test]
    fn decayed_counters_preserve_relative_order(
        accesses in prop::collection::vec((0usize..6, 1e-4f64..0.5), 1..120),
        half_life_pick in 0usize..3,
    ) {
        const BLOCKS: usize = 6;
        // Spans gentle decay up to a rate small enough that the run
        // crosses many renormalization boundaries.
        let half_life = [0.001f64, 0.05, 5.0][half_life_pick];
        let mut tracker = FrequencyTracker::new(BLOCKS, half_life);
        let mut queue = DoublePriorityQueue::new(&tracker);
        let mut times: Vec<Vec<f64>> = vec![Vec::new(); BLOCKS];
        let mut now = 0.0;
        for &(block, dt) in &accesses {
            now += dt;
            if tracker.record(block, now) {
                // Renormalization staled every cached weight bit pattern.
                queue.rebuild(&tracker);
            } else {
                queue.push(block as u32, tracker.weight(block));
            }
            queue.maintain(&tracker);
            times[block].push(now);
        }
        // Brute force: each access contributes 2^-(age / half_life).
        let brute: Vec<f64> = times
            .iter()
            .map(|ts| ts.iter().map(|t| f64::exp2(-(now - t) / half_life)).sum())
            .collect();
        for (b, &expect) in brute.iter().enumerate() {
            let got = tracker.weight_at(b, now);
            prop_assert!(
                (got - expect).abs() <= 1e-9 * expect.max(got) + 1e-300,
                "block {}: weight_at {} vs brute {}",
                b, got, expect
            );
        }
        // Raw (anchor-normalized) weights order identically wherever the
        // brute-force comparison is decisive.
        for i in 0..BLOCKS {
            for j in 0..BLOCKS {
                if brute[i] > brute[j] * 1.000_001 && brute[i] > 1e-200 {
                    prop_assert!(
                        tracker.weight(i) > tracker.weight(j),
                        "order flipped: block {} ({} brute {}) vs block {} ({} brute {})",
                        i, tracker.weight(i), brute[i],
                        j, tracker.weight(j), brute[j]
                    );
                }
            }
        }
        // The queue's two ends are the live extremes, bit for bit.
        let max_w = (0..BLOCKS).map(|b| tracker.weight(b)).fold(f64::MIN, f64::max);
        let min_w = (0..BLOCKS).map(|b| tracker.weight(b)).fold(f64::MAX, f64::min);
        let (_, popped_max) = queue.pop_max(&tracker).unwrap();
        let (_, popped_min) = queue.pop_min(&tracker).unwrap();
        prop_assert_eq!(popped_max.to_bits(), max_w.to_bits());
        prop_assert_eq!(popped_min.to_bits(), min_w.to_bits());
    }
}
