//! Property-based tests for the simulation engine.

use proptest::prelude::*;
use storage_sim::{
    BinaryHeapEventQueue, ConstantDevice, Driver, EventQueue, FifoScheduler, IoKind, Request,
    SimTime, VecWorkload, Welford,
};

proptest! {
    /// The event queue dequeues in exactly sorted-stable order.
    #[test]
    fn event_queue_matches_stable_sort(times in prop::collection::vec(0u32..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_us(f64::from(t)), i);
        }
        let mut expected: Vec<(u32, usize)> =
            times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
        expected.sort_by_key(|&(t, i)| (t, i));
        let mut actual = Vec::new();
        while let Some(e) = q.pop() {
            actual.push(e.payload);
        }
        let expected_order: Vec<usize> = expected.into_iter().map(|(_, i)| i).collect();
        prop_assert_eq!(actual, expected_order);
    }

    /// The calendar queue pops in exactly the order the binary-heap
    /// reference pops, on arbitrary push streams. The narrow time domain
    /// forces duplicate timestamps, exercising the seq FIFO tie-break.
    #[test]
    fn calendar_pop_order_matches_heap(times in prop::collection::vec(0u32..50, 0..300)) {
        let mut cal = EventQueue::new();
        let mut heap = BinaryHeapEventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            let at = SimTime::from_us(f64::from(t));
            cal.push(at, i);
            heap.push(at, i);
        }
        loop {
            match (cal.pop(), heap.pop()) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.at, b.at);
                    prop_assert_eq!(a.payload, b.payload);
                }
                (None, None) => break,
                (a, b) => prop_assert!(false, "length diverged: {:?} vs {:?}", a, b),
            }
        }
    }

    /// Calendar and heap agree under interleaved push/pop, including
    /// pushes at (or before) the time of the last pop — the clamp path.
    #[test]
    fn calendar_matches_heap_interleaved(
        ops in prop::collection::vec((0u32..10_000, prop::bool::ANY), 0..400),
    ) {
        let mut cal = EventQueue::new();
        let mut heap = BinaryHeapEventQueue::new();
        for (i, &(t, is_pop)) in ops.iter().enumerate() {
            if is_pop {
                let (a, b) = (cal.pop(), heap.pop());
                match (a, b) {
                    (Some(a), Some(b)) => {
                        prop_assert_eq!(a.at, b.at);
                        prop_assert_eq!(a.payload, b.payload);
                    }
                    (None, None) => {}
                    (a, b) => prop_assert!(false, "pop diverged: {:?} vs {:?}", a, b),
                }
            } else {
                let at = SimTime::from_us(f64::from(t));
                cal.push(at, i);
                heap.push(at, i);
            }
            prop_assert_eq!(cal.len(), heap.len());
            prop_assert_eq!(cal.peek_time(), heap.peek_time());
        }
        while let Some(b) = heap.pop() {
            let a = cal.pop().expect("calendar drained early");
            prop_assert_eq!(a.at, b.at);
            prop_assert_eq!(a.payload, b.payload);
        }
        prop_assert!(cal.pop().is_none());
    }

    /// Welford matches the naive two-pass computation on arbitrary data.
    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        let scale = mean.abs().max(1.0);
        prop_assert!((w.mean() - mean).abs() / scale < 1e-9);
        prop_assert!((w.population_variance() - var).abs() / var.max(1.0) < 1e-6);
    }

    /// Welford merge equals sequential accumulation for any split point.
    #[test]
    fn welford_merge_is_split_invariant(
        xs in prop::collection::vec(-100.0f64..100.0, 2..200),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((xs.len() as f64) * split_frac) as usize;
        let mut all = Welford::new();
        let mut a = Welford::new();
        let mut b = Welford::new();
        for (i, &x) in xs.iter().enumerate() {
            all.push(x);
            if i < split {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), all.count());
        prop_assert!((a.mean() - all.mean()).abs() < 1e-9);
        prop_assert!((a.population_variance() - all.population_variance()).abs() < 1e-6);
    }

    /// The driver conserves requests and produces causally consistent
    /// completions for arbitrary arrival patterns.
    #[test]
    fn driver_conserves_requests(
        mut gaps in prop::collection::vec(0u32..5000, 1..150),
        service_us in 100u32..5000,
    ) {
        gaps.sort_unstable();
        let requests: Vec<Request> = gaps
            .iter()
            .scan(0u64, |t, &g| {
                *t += u64::from(g);
                Some(*t)
            })
            .enumerate()
            .map(|(i, at)| {
                Request::new(i as u64, SimTime::from_us(at as f64), i as u64 * 8, 8, IoKind::Read)
            })
            .collect();
        let n = requests.len() as u64;
        let mut driver = Driver::new(
            VecWorkload::new(requests),
            FifoScheduler::new(),
            ConstantDevice::new(10_000_000, f64::from(service_us) * 1e-6),
        )
        .record_completions(true);
        let report = driver.run();
        prop_assert_eq!(report.completed, n);
        let completions = report.completions.as_ref().unwrap();
        let mut last_completion = SimTime::ZERO;
        for c in completions {
            prop_assert!(c.start_service >= c.request.arrival);
            prop_assert!(c.completion >= last_completion, "FIFO completes in order");
            last_completion = c.completion;
        }
        // Busy time is exactly n services.
        prop_assert!((report.busy_secs - n as f64 * f64::from(service_us) * 1e-6).abs() < 1e-9);
    }

    /// Response time equals queue + service for every completion.
    #[test]
    fn response_decomposes(arrivals in prop::collection::vec(0u32..1000, 1..50)) {
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let requests: Vec<Request> = sorted
            .iter()
            .enumerate()
            .map(|(i, &at)| {
                Request::new(i as u64, SimTime::from_ms(f64::from(at)), 0, 1, IoKind::Read)
            })
            .collect();
        let mut driver = Driver::new(
            VecWorkload::new(requests),
            FifoScheduler::new(),
            ConstantDevice::new(100, 2e-3),
        )
        .record_completions(true);
        let report = driver.run();
        for c in report.completions.as_ref().unwrap() {
            let resp = c.response_time().as_secs();
            let decomposed = c.queue_time().as_secs() + c.service_time().as_secs();
            prop_assert!((resp - decomposed).abs() < 1e-12);
        }
    }
}
