//! Zero-cost-when-off request tracing.
//!
//! The paper's analyses hinge on *where time and energy go inside a
//! request* — seek vs. settle vs. media transfer vs. turnaround (Fig. 4,
//! Fig. 8, the §7 power tables) — but the driver's [`crate::SimReport`]
//! only aggregates. A [`Tracer`] observes every request's lifecycle
//! (arrival, scheduler pick, per-phase device timing and energy,
//! completion) without perturbing the simulation: the driver is generic
//! over the tracer type, so with the default [`NoopTracer`] every hook
//! monomorphizes to nothing and the binary is byte-for-byte the untraced
//! simulation. The equivalence is asserted by test, not just promised:
//! tracer-off and tracer-on runs must produce bit-identical reports.
//!
//! [`RingTracer`] is the recording implementation: a bounded ring of
//! structured [`TraceEvent`]s plus monotonic counters and a queue-depth
//! time series, exportable as JSONL (one event per line) and a summary
//! JSON object.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::device::{PhaseEnergy, ServiceBreakdown};
use crate::fault::FaultKind;
use crate::profile::ProfScope;
use crate::request::{Completion, IoKind, Request};
use crate::time::SimTime;

/// Observer of request lifecycle events inside the simulation driver.
///
/// All hooks default to no-ops; implementations override what they need.
/// The driver consults [`Tracer::ENABLED`] before doing any work that
/// exists only to feed the tracer (phase-energy attribution, counter
/// deltas), so a disabled tracer costs nothing — not even the arithmetic.
pub trait Tracer {
    /// Whether the driver should compute trace-only inputs (phase energy,
    /// candidate-count deltas, queue-depth samples) at all. `false`
    /// compiles the instrumented paths out entirely.
    const ENABLED: bool;

    /// Whether the driver should wrap its hot components (scheduler picks,
    /// device service, fault delivery, the event loop) in wall-clock scoped
    /// timers and report them via [`Tracer::on_scope`] /
    /// [`Tracer::on_run_wall`]. Defaults to `false`: only self-profiling
    /// tracers (e.g. [`crate::Profiler`]) pay for `Instant::now()` calls.
    /// The timers never feed back into the simulation, so simulated results
    /// are identical either way.
    const PROFILE: bool = false;

    /// A request entered the scheduler queue at `now`; `queue_depth` is
    /// the pending count including this request.
    fn on_arrival(&mut self, req: &Request, now: SimTime, queue_depth: usize) {
        let _ = (req, now, queue_depth);
    }

    /// The scheduler elected `req` at `now` from `queue_depth` pending
    /// requests, examining `candidates` of them (exact positioning
    /// queries issued; 0 when the scheduler does not report counters).
    fn on_pick(&mut self, req: &Request, now: SimTime, queue_depth: usize, candidates: u64) {
        let _ = (req, now, queue_depth, candidates);
    }

    /// The device serviced `req` starting at `start`, with the given
    /// per-phase time decomposition and per-phase energy attribution.
    fn on_service(
        &mut self,
        req: &Request,
        start: SimTime,
        breakdown: &ServiceBreakdown,
        energy: &PhaseEnergy,
    ) {
        let _ = (req, start, breakdown, energy);
    }

    /// A request completed.
    fn on_complete(&mut self, completion: &Completion) {
        let _ = completion;
    }

    /// The scheduler queue depth observed at an event boundary (sampled
    /// by the driver at every simulation event).
    fn on_queue_depth(&mut self, now: SimTime, depth: usize) {
        let _ = (now, depth);
    }

    /// A scheduled fault event was delivered to the device at `now`.
    fn on_fault(&mut self, fault: &FaultKind, now: SimTime) {
        let _ = (fault, now);
    }

    /// An arrival was shed at admission by the overload policy at `now`
    /// (`queue_depth` is the pending count that tripped the watermark).
    fn on_shed(&mut self, req: &Request, now: SimTime, queue_depth: usize) {
        let _ = (req, now, queue_depth);
    }

    /// A queued request aged past the overload policy's timeout and was
    /// abandoned by the pick loop at `now` instead of being dispatched.
    fn on_timeout(&mut self, req: &Request, now: SimTime) {
        let _ = (req, now);
    }

    /// One wall-clock scope completed in `wall_nanos` nanoseconds. Only
    /// called when [`Tracer::PROFILE`] is `true`.
    fn on_scope(&mut self, scope: ProfScope, wall_nanos: u64) {
        let _ = (scope, wall_nanos);
    }

    /// The event loop finished after processing `events` simulation events
    /// in `wall_nanos` wall-clock nanoseconds. Only called when
    /// [`Tracer::PROFILE`] is `true`.
    fn on_run_wall(&mut self, events: u64, wall_nanos: u64) {
        let _ = (events, wall_nanos);
    }
}

/// The default tracer: records nothing, costs nothing.
///
/// With `ENABLED = false` the driver skips every trace-only computation,
/// and the empty hook bodies inline away — the traced driver is the
/// untraced driver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    const ENABLED: bool = false;
}

/// One structured lifecycle event.
///
/// Times are in seconds on the simulated timeline; phase durations and
/// energies are per-request (not cumulative).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A request arrived in the scheduler queue.
    Arrival {
        /// Request id.
        id: u64,
        /// Arrival time, seconds.
        t: f64,
        /// First logical block addressed.
        lbn: u64,
        /// Sectors transferred.
        sectors: u32,
        /// `true` for reads.
        read: bool,
        /// Queue depth including this request.
        queue_depth: usize,
    },
    /// The scheduler elected a request.
    Pick {
        /// Request id.
        id: u64,
        /// Pick time, seconds.
        t: f64,
        /// Pending requests at pick time (including the picked one).
        queue_depth: usize,
        /// Exact positioning candidates the scheduler examined.
        candidates: u64,
    },
    /// The device serviced a request: per-phase times and energy.
    Service {
        /// Request id.
        id: u64,
        /// Service start time, seconds.
        t: f64,
        /// First logical block addressed (for replay harnesses).
        lbn: u64,
        /// Sectors transferred.
        sectors: u32,
        /// Resolved pre-transfer positioning time, seconds.
        positioning: f64,
        /// X/arm seek component, seconds.
        seek_x: f64,
        /// Post-seek settle, seconds.
        settle: f64,
        /// Y seek component, seconds.
        seek_y: f64,
        /// Rotational latency (disk), seconds.
        rotation: f64,
        /// Media transfer time, seconds.
        transfer: f64,
        /// Turnaround portion of the transfer, seconds.
        turnaround: f64,
        /// Number of turnarounds.
        turnaround_count: u32,
        /// Fixed overhead, seconds.
        overhead: f64,
        /// Online failure-recovery time billed to the request, seconds.
        fault_recovery: f64,
        /// Energy attributed to positioning, joules.
        energy_positioning_j: f64,
        /// Energy attributed to media transfer, joules.
        energy_transfer_j: f64,
        /// Energy attributed to overhead, joules.
        energy_overhead_j: f64,
    },
    /// A request completed.
    Complete {
        /// Request id.
        id: u64,
        /// Completion time, seconds.
        t: f64,
        /// Queue (wait) time, seconds.
        queue: f64,
        /// Service time, seconds.
        service: f64,
        /// Response time (queue + service), seconds.
        response: f64,
    },
    /// A scheduled fault event was delivered to the device.
    Fault {
        /// Delivery time, seconds.
        t: f64,
        /// The fault delivered.
        kind: FaultKind,
    },
}

impl TraceEvent {
    /// The event as one JSON object (no trailing newline). Field names
    /// are stable; see EXPERIMENTS.md for the schema.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        match *self {
            TraceEvent::Arrival {
                id,
                t,
                lbn,
                sectors,
                read,
                queue_depth,
            } => {
                let _ = write!(
                    s,
                    "{{\"ev\":\"arrival\",\"id\":{id},\"t\":{t:.9},\"lbn\":{lbn},\
                     \"sectors\":{sectors},\"kind\":\"{}\",\"queue_depth\":{queue_depth}}}",
                    if read { "read" } else { "write" }
                );
            }
            TraceEvent::Pick {
                id,
                t,
                queue_depth,
                candidates,
            } => {
                let _ = write!(
                    s,
                    "{{\"ev\":\"pick\",\"id\":{id},\"t\":{t:.9},\
                     \"queue_depth\":{queue_depth},\"candidates\":{candidates}}}"
                );
            }
            TraceEvent::Service {
                id,
                t,
                lbn,
                sectors,
                positioning,
                seek_x,
                settle,
                seek_y,
                rotation,
                transfer,
                turnaround,
                turnaround_count,
                overhead,
                fault_recovery,
                energy_positioning_j,
                energy_transfer_j,
                energy_overhead_j,
            } => {
                let _ = write!(
                    s,
                    "{{\"ev\":\"service\",\"id\":{id},\"t\":{t:.9},\"lbn\":{lbn},\
                     \"sectors\":{sectors},\"positioning\":{positioning:.12},\
                     \"seek_x\":{seek_x:.12},\"settle\":{settle:.12},\
                     \"seek_y\":{seek_y:.12},\"rotation\":{rotation:.12},\
                     \"transfer\":{transfer:.12},\"turnaround\":{turnaround:.12},\
                     \"turnaround_count\":{turnaround_count},\"overhead\":{overhead:.12},\
                     \"fault_recovery\":{fault_recovery:.12},\
                     \"energy_positioning_j\":{energy_positioning_j:.12},\
                     \"energy_transfer_j\":{energy_transfer_j:.12},\
                     \"energy_overhead_j\":{energy_overhead_j:.12}}}"
                );
            }
            TraceEvent::Complete {
                id,
                t,
                queue,
                service,
                response,
            } => {
                let _ = write!(
                    s,
                    "{{\"ev\":\"complete\",\"id\":{id},\"t\":{t:.9},\"queue\":{queue:.12},\
                     \"service\":{service:.12},\"response\":{response:.12}}}"
                );
            }
            TraceEvent::Fault { t, kind } => {
                let _ = write!(
                    s,
                    "{{\"ev\":\"fault\",\"t\":{t:.9},\"kind\":\"{}\"",
                    kind.label()
                );
                match kind {
                    FaultKind::TipFailure { tip } => {
                        let _ = write!(s, ",\"tip\":{tip}");
                    }
                    FaultKind::MediaDefect {
                        tip,
                        row_start,
                        row_end,
                    } => {
                        let _ = write!(
                            s,
                            ",\"tip\":{tip},\"row_start\":{row_start},\"row_end\":{row_end}"
                        );
                    }
                    FaultKind::TransientSeekError => {}
                }
                s.push('}');
            }
        }
        s
    }
}

/// Monotonic counters accumulated over a traced run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TraceCounters {
    /// Requests that arrived.
    pub arrivals: u64,
    /// Scheduler picks.
    pub picks: u64,
    /// Completions.
    pub completions: u64,
    /// Exact positioning candidates examined across all picks.
    pub candidates_examined: u64,
    /// Sum of queue depth at each pick (for candidates-vs-depth ratios).
    pub pick_depth_sum: u64,
    /// Fault events delivered to the device.
    pub faults: u64,
    /// Events evicted from the ring because it was full.
    pub dropped_events: u64,
    /// Queue-depth samples evicted because the series was full. The
    /// max-depth statistic stays exact regardless.
    pub dropped_depth_samples: u64,
}

/// A recording tracer: bounded event ring, counters, phase/energy sums,
/// and a queue-depth time series.
///
/// # Examples
///
/// ```
/// use storage_sim::{ConstantDevice, Driver, FifoScheduler, IoKind, Request,
///                   RingTracer, SimTime, VecWorkload};
///
/// let reqs = vec![Request::new(0, SimTime::ZERO, 0, 8, IoKind::Read)];
/// let mut driver = Driver::new(
///     VecWorkload::new(reqs),
///     FifoScheduler::new(),
///     ConstantDevice::new(1_000, 0.001),
/// )
/// .with_tracer(RingTracer::new(1024));
/// let report = driver.run();
/// let trace = driver.tracer();
/// assert_eq!(trace.counters().completions, report.completed);
/// // Four events per request: arrival, pick, service, complete.
/// assert_eq!(trace.events().count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct RingTracer {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    counters: TraceCounters,
    /// Per-phase time sums over all serviced requests, seconds.
    phase_sum: ServiceBreakdown,
    /// Per-phase energy sums, joules.
    energy_sum: PhaseEnergy,
    /// `(time, depth)` samples, one per simulation event (same bound as
    /// the event ring).
    depth_series: VecDeque<(f64, usize)>,
    max_queue_depth: usize,
    /// Device-side positioning-cache `(hits, misses)`, attached by the
    /// harness after a run (the tracer itself cannot see the device).
    cache_stats: Option<(u64, u64)>,
}

impl RingTracer {
    /// Creates a tracer retaining at most `capacity` events (and as many
    /// queue-depth samples). Counters and sums are exact regardless of
    /// capacity; only the per-event ring is bounded.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingTracer {
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            counters: TraceCounters::default(),
            phase_sum: ServiceBreakdown::default(),
            energy_sum: PhaseEnergy::default(),
            depth_series: VecDeque::with_capacity(capacity.min(4096)),
            max_queue_depth: 0,
            cache_stats: None,
        }
    }

    /// Attaches the device's seek-time memo-table hit/miss counters so the
    /// summary JSON reports cache effectiveness alongside the scheduler
    /// counters. Call after the run (e.g. with
    /// `device.seek_table_stats()`); pass the raw `(hits, misses)`.
    pub fn set_cache_stats(&mut self, hits: u64, misses: u64) {
        self.cache_stats = Some((hits, misses));
    }

    /// The attached positioning-cache `(hits, misses)`, if any.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.cache_stats
    }

    fn push_event(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.counters.dropped_events += 1;
        }
        self.events.push_back(ev);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// The monotonic counters.
    pub fn counters(&self) -> TraceCounters {
        self.counters
    }

    /// Per-phase time sums over every serviced request (exact even when
    /// the ring dropped events).
    pub fn phase_sum(&self) -> &ServiceBreakdown {
        &self.phase_sum
    }

    /// Per-phase energy sums over every serviced request, joules.
    pub fn energy_sum(&self) -> &PhaseEnergy {
        &self.energy_sum
    }

    /// The retained `(time, depth)` queue-depth samples, oldest first.
    pub fn depth_series(&self) -> impl Iterator<Item = &(f64, usize)> {
        self.depth_series.iter()
    }

    /// Largest queue depth sampled.
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue_depth
    }

    /// Mean candidates examined per pick (0 when no picks were counted).
    pub fn mean_candidates_per_pick(&self) -> f64 {
        if self.counters.picks == 0 {
            0.0
        } else {
            self.counters.candidates_examined as f64 / self.counters.picks as f64
        }
    }

    /// Mean queue depth at pick time (0 when no picks happened).
    pub fn mean_depth_at_pick(&self) -> f64 {
        if self.counters.picks == 0 {
            0.0
        } else {
            self.counters.pick_depth_sum as f64 / self.counters.picks as f64
        }
    }

    /// The retained events as JSONL, one event object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 160);
        for ev in &self.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// The run summary as one pretty-printed JSON object: counters,
    /// per-phase time and energy sums, and derived ratios.
    pub fn summary_json(&self) -> String {
        let c = &self.counters;
        let p = &self.phase_sum;
        let e = &self.energy_sum;
        let mut s = String::with_capacity(1024);
        let _ = write!(
            s,
            concat!(
                "{{\n",
                "  \"arrivals\": {},\n",
                "  \"picks\": {},\n",
                "  \"completions\": {},\n",
                "  \"candidates_examined\": {},\n",
                "  \"mean_candidates_per_pick\": {:.4},\n",
                "  \"mean_queue_depth_at_pick\": {:.4},\n",
                "  \"max_queue_depth\": {},\n",
                "  \"dropped_events\": {},\n",
                "  \"dropped_depth_samples\": {},\n",
                "  \"phase_seconds\": {{\n",
                "    \"positioning\": {:.9},\n",
                "    \"seek_x\": {:.9},\n",
                "    \"settle\": {:.9},\n",
                "    \"seek_y\": {:.9},\n",
                "    \"rotation\": {:.9},\n",
                "    \"transfer\": {:.9},\n",
                "    \"turnaround\": {:.9},\n",
                "    \"overhead\": {:.9}\n",
                "  }},\n",
                "  \"turnaround_count\": {},\n",
                "  \"energy_joules\": {{\n",
                "    \"positioning\": {:.9},\n",
                "    \"transfer\": {:.9},\n",
                "    \"overhead\": {:.9},\n",
                "    \"total\": {:.9}\n",
                "  }}"
            ),
            c.arrivals,
            c.picks,
            c.completions,
            c.candidates_examined,
            self.mean_candidates_per_pick(),
            self.mean_depth_at_pick(),
            self.max_queue_depth,
            c.dropped_events,
            c.dropped_depth_samples,
            p.positioning,
            p.seek_x,
            p.settle,
            p.seek_y,
            p.rotation,
            p.transfer,
            p.turnaround,
            p.overhead,
            p.turnaround_count,
            e.positioning_j,
            e.transfer_j,
            e.overhead_j,
            e.total(),
        );
        if let Some((hits, misses)) = self.cache_stats {
            let total = hits + misses;
            let rate = if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            };
            let _ = write!(
                s,
                ",\n  \"seek_cache\": {{\n    \"hits\": {hits},\n    \"misses\": {misses},\n    \"hit_rate\": {rate:.4}\n  }}"
            );
        }
        s.push_str("\n}\n");
        s
    }
}

impl Tracer for RingTracer {
    const ENABLED: bool = true;

    fn on_arrival(&mut self, req: &Request, now: SimTime, queue_depth: usize) {
        self.counters.arrivals += 1;
        self.push_event(TraceEvent::Arrival {
            id: req.id,
            t: now.as_secs(),
            lbn: req.lbn,
            sectors: req.sectors,
            read: req.kind == IoKind::Read,
            queue_depth,
        });
    }

    fn on_pick(&mut self, req: &Request, now: SimTime, queue_depth: usize, candidates: u64) {
        self.counters.picks += 1;
        self.counters.candidates_examined += candidates;
        self.counters.pick_depth_sum += queue_depth as u64;
        self.push_event(TraceEvent::Pick {
            id: req.id,
            t: now.as_secs(),
            queue_depth,
            candidates,
        });
    }

    fn on_service(
        &mut self,
        req: &Request,
        start: SimTime,
        b: &ServiceBreakdown,
        energy: &PhaseEnergy,
    ) {
        self.phase_sum.accumulate(b);
        self.energy_sum.accumulate(energy);
        self.push_event(TraceEvent::Service {
            id: req.id,
            t: start.as_secs(),
            lbn: req.lbn,
            sectors: req.sectors,
            positioning: b.positioning,
            seek_x: b.seek_x,
            settle: b.settle,
            seek_y: b.seek_y,
            rotation: b.rotation,
            transfer: b.transfer,
            turnaround: b.turnaround,
            turnaround_count: b.turnaround_count,
            overhead: b.overhead,
            fault_recovery: b.fault_recovery,
            energy_positioning_j: energy.positioning_j,
            energy_transfer_j: energy.transfer_j,
            energy_overhead_j: energy.overhead_j,
        });
    }

    fn on_complete(&mut self, c: &Completion) {
        self.counters.completions += 1;
        self.push_event(TraceEvent::Complete {
            id: c.request.id,
            t: c.completion.as_secs(),
            queue: c.queue_time().as_secs(),
            service: c.service_time().as_secs(),
            response: c.response_time().as_secs(),
        });
    }

    fn on_queue_depth(&mut self, now: SimTime, depth: usize) {
        self.max_queue_depth = self.max_queue_depth.max(depth);
        if self.depth_series.len() == self.capacity {
            self.depth_series.pop_front();
            self.counters.dropped_depth_samples += 1;
        }
        self.depth_series.push_back((now.as_secs(), depth));
    }

    fn on_fault(&mut self, fault: &FaultKind, now: SimTime) {
        self.counters.faults += 1;
        self.push_event(TraceEvent::Fault {
            t: now.as_secs(),
            kind: *fault,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64) -> Request {
        Request::new(id, SimTime::ZERO, id * 64, 8, IoKind::Read)
    }

    #[test]
    fn noop_tracer_is_disabled() {
        const { assert!(!NoopTracer::ENABLED) };
        // The hooks are callable and do nothing.
        let mut t = NoopTracer;
        t.on_arrival(&req(0), SimTime::ZERO, 1);
        t.on_queue_depth(SimTime::ZERO, 3);
    }

    #[test]
    fn ring_records_lifecycle_events_in_order() {
        let mut t = RingTracer::new(16);
        let r = req(7);
        t.on_arrival(&r, SimTime::ZERO, 1);
        t.on_pick(&r, SimTime::ZERO, 1, 1);
        t.on_service(
            &r,
            SimTime::ZERO,
            &ServiceBreakdown {
                positioning: 1e-3,
                transfer: 2e-3,
                ..Default::default()
            },
            &PhaseEnergy::default(),
        );
        t.on_complete(&Completion {
            request: r,
            start_service: SimTime::ZERO,
            completion: SimTime::from_ms(3.0),
        });
        let kinds: Vec<&str> = t
            .events()
            .map(|e| match e {
                TraceEvent::Arrival { .. } => "arrival",
                TraceEvent::Pick { .. } => "pick",
                TraceEvent::Service { .. } => "service",
                TraceEvent::Complete { .. } => "complete",
                TraceEvent::Fault { .. } => "fault",
            })
            .collect();
        assert_eq!(kinds, ["arrival", "pick", "service", "complete"]);
        assert_eq!(t.counters().arrivals, 1);
        assert_eq!(t.counters().picks, 1);
        assert_eq!(t.counters().completions, 1);
        assert!((t.phase_sum().positioning - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn full_ring_drops_oldest_but_keeps_sums_exact() {
        let mut t = RingTracer::new(2);
        for i in 0..5 {
            t.on_arrival(&req(i), SimTime::ZERO, 1);
        }
        assert_eq!(t.events().count(), 2);
        assert_eq!(t.counters().dropped_events, 3);
        assert_eq!(t.counters().arrivals, 5, "counters are exact");
        // The survivors are the two newest.
        let ids: Vec<u64> = t
            .events()
            .map(|e| match e {
                TraceEvent::Arrival { id, .. } => *id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, [3, 4]);
    }

    #[test]
    fn jsonl_has_one_object_per_event() {
        let mut t = RingTracer::new(8);
        t.on_arrival(&req(1), SimTime::from_ms(0.5), 1);
        t.on_pick(&req(1), SimTime::from_ms(0.5), 1, 1);
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"ev\":\"arrival\""));
        assert!(lines[0].contains("\"lbn\":64"));
        assert!(lines[1].starts_with("{\"ev\":\"pick\""));
        for line in lines {
            assert!(line.ends_with('}'));
        }
    }

    #[test]
    fn summary_reports_ratios() {
        let mut t = RingTracer::new(8);
        t.on_pick(&req(0), SimTime::ZERO, 4, 2);
        t.on_pick(&req(1), SimTime::ZERO, 2, 2);
        assert_eq!(t.mean_candidates_per_pick(), 2.0);
        assert_eq!(t.mean_depth_at_pick(), 3.0);
        let s = t.summary_json();
        assert!(s.contains("\"picks\": 2"));
        assert!(s.contains("\"candidates_examined\": 4"));
    }

    #[test]
    fn depth_series_is_bounded() {
        let mut t = RingTracer::new(3);
        for i in 0..10 {
            t.on_queue_depth(SimTime::from_ms(i as f64), i as usize);
        }
        assert_eq!(t.depth_series().count(), 3);
        assert_eq!(t.max_queue_depth(), 9);
        assert_eq!(
            t.counters().dropped_depth_samples,
            7,
            "evicted samples are accounted, not silent"
        );
        assert!(t.summary_json().contains("\"dropped_depth_samples\": 7"));
    }

    #[test]
    fn summary_reports_cache_stats_when_attached() {
        let mut t = RingTracer::new(4);
        assert!(
            !t.summary_json().contains("seek_cache"),
            "no cache section until stats are attached"
        );
        t.set_cache_stats(30, 10);
        assert_eq!(t.cache_stats(), Some((30, 10)));
        let s = t.summary_json();
        assert!(s.contains("\"seek_cache\""));
        assert!(s.contains("\"hits\": 30"));
        assert!(s.contains("\"hit_rate\": 0.7500"));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = RingTracer::new(0);
    }
}
