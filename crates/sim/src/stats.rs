//! Simulation statistics.
//!
//! The paper evaluates scheduling policies with two metrics (§4.1): the
//! average response time (queue + service) and the squared coefficient of
//! variation σ²/µ² of response time, used as a starvation-resistance
//! ("fairness") measure following [TP72, WGP94]. [`ResponseStats`] computes
//! both, plus percentiles for the extended analyses.

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use storage_sim::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; zero when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by n); zero for fewer than two samples.
    pub fn population_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divides by n−1); zero for fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// σ²/µ² — the paper's starvation-resistance metric. Zero when the
    /// mean is zero.
    pub fn sq_coeff_var(&self) -> f64 {
        let mu = self.mean();
        if mu == 0.0 {
            0.0
        } else {
            self.population_variance() / (mu * mu)
        }
    }

    /// Smallest sample; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n_total = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n_total as f64;
        self.m2 += other.m2 + delta * delta * self.n as f64 * other.n as f64 / n_total as f64;
        self.n = n_total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Response-time statistics retaining the full sample for percentiles.
///
/// Values are stored in seconds (matching [`crate::SimTime::as_secs`]).
///
/// The default mode keeps every sample, so [`ResponseStats::percentile`]
/// is exact — the right trade for figure cells of ~10⁵ requests. For
/// streaming-scale runs (10⁷ requests and up) the retained vector is the
/// dominant memory term; [`ResponseStats::streaming`] swaps it for a
/// [`LogHistogram`] so memory stays O(bins) and percentiles come back as
/// histogram quantiles (within ~12% of exact). The Welford moments —
/// mean, variance, min/max, count — are bit-identical in both modes.
#[derive(Debug, Clone, Default)]
pub struct ResponseStats {
    welford: Welford,
    samples: Vec<f64>,
    sorted: bool,
    histogram: Option<LogHistogram>,
}

impl ResponseStats {
    /// Creates an empty collection retaining every sample (exact
    /// percentiles).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty collection in constant-memory streaming mode:
    /// samples feed a [`LogHistogram::response_times`] instead of a
    /// retained vector, and [`ResponseStats::percentile`] answers from the
    /// histogram.
    pub fn streaming() -> Self {
        ResponseStats {
            histogram: Some(LogHistogram::response_times()),
            ..Self::default()
        }
    }

    /// Whether this collection was built with [`ResponseStats::streaming`].
    pub fn is_streaming(&self) -> bool {
        self.histogram.is_some()
    }

    /// Records one response time in seconds.
    pub fn push(&mut self, secs: f64) {
        self.welford.push(secs);
        match self.histogram.as_mut() {
            Some(h) => h.push(secs),
            None => {
                self.samples.push(secs);
                self.sorted = false;
            }
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.welford.count()
    }

    /// Mean in seconds.
    pub fn mean(&self) -> f64 {
        self.welford.mean()
    }

    /// Mean in milliseconds — the unit the paper's figures use.
    pub fn mean_ms(&self) -> f64 {
        self.mean() * 1e3
    }

    /// Population standard deviation in seconds.
    pub fn std_dev(&self) -> f64 {
        self.welford.std_dev()
    }

    /// σ²/µ² starvation-resistance metric.
    pub fn sq_coeff_var(&self) -> f64 {
        self.welford.sq_coeff_var()
    }

    /// Largest sample in seconds.
    pub fn max(&self) -> f64 {
        self.welford.max()
    }

    /// Returns the `p`-quantile (0 ≤ p ≤ 1) by nearest-rank on the sorted
    /// sample; zero when empty. In streaming mode the answer is the
    /// [`LogHistogram`] quantile under the same nearest-rank convention,
    /// good to within one log-spaced bin (~12%).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0,1]");
        if let Some(h) = self.histogram.as_ref() {
            return h.quantile(p);
        }
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("response times are not NaN"));
            self.sorted = true;
        }
        let rank = ((self.samples.len() as f64 - 1.0) * p).round() as usize;
        self.samples[rank]
    }
}

/// A fixed-width histogram over `[lo, hi)` with overflow/underflow bins,
/// used by the fault/turnaround distribution reports.
///
/// # Examples
///
/// ```
/// use storage_sim::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// h.push(0.5);
/// h.push(3.7);
/// h.push(42.0); // overflow
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(3), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Inclusive-exclusive bounds of bin `i`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range top.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

/// A mergeable log-spaced streaming histogram for latency-style samples.
///
/// Bin `i` covers `[lo·r^i, lo·r^(i+1))` where `r = 10^(1/bins_per_decade)`,
/// so relative resolution is constant across the full dynamic range — the
/// right shape for response times that span 0.1 ms to seconds under load.
/// Unlike [`ResponseStats`] it keeps no per-sample state, so a telemetry
/// window costs O(bins) regardless of how many requests land in it, and two
/// histograms with the same `(lo, bins_per_decade)` law merge by adding
/// counts — the operation the telemetry coarsening step relies on.
///
/// Samples below `lo` (including zero) are counted in an underflow bin that
/// quantile queries treat as the value `lo`.
///
/// # Examples
///
/// ```
/// use storage_sim::LogHistogram;
///
/// let mut h = LogHistogram::response_times();
/// for x in [0.4e-3, 0.5e-3, 0.6e-3, 12e-3] {
///     h.push(x);
/// }
/// assert_eq!(h.count(), 4);
/// // The p50 estimate lands within one log-spaced bin of 0.5 ms.
/// let p50 = h.quantile(0.5);
/// assert!(p50 > 0.4e-3 && p50 < 0.7e-3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    lo: f64,
    bins_per_decade: u32,
    /// `ln` of the bin-width ratio `r`, precomputed for indexing.
    ln_ratio: f64,
    bins: Vec<u64>,
    underflow: u64,
    count: u64,
    sum: f64,
}

impl LogHistogram {
    /// Creates an empty histogram whose first bin starts at `lo` with
    /// `bins_per_decade` bins per factor of ten.
    ///
    /// # Panics
    ///
    /// Panics if `lo` is not positive and finite or `bins_per_decade` is 0.
    pub fn new(lo: f64, bins_per_decade: u32) -> Self {
        assert!(
            lo > 0.0 && lo.is_finite(),
            "histogram origin must be positive and finite"
        );
        assert!(bins_per_decade > 0, "need at least one bin per decade");
        LogHistogram {
            lo,
            bins_per_decade,
            ln_ratio: std::f64::consts::LN_10 / f64::from(bins_per_decade),
            bins: Vec::new(),
            underflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// The standard response-time law used by the telemetry layer: 10 µs
    /// origin, 20 bins per decade (bin-width ratio ≈ 1.12, i.e. estimates
    /// within ~12% of exact percentiles).
    pub fn response_times() -> Self {
        LogHistogram::new(10e-6, 20)
    }

    /// The bin-width ratio `r = 10^(1/bins_per_decade)`.
    pub fn bin_ratio(&self) -> f64 {
        self.ln_ratio.exp()
    }

    /// Whether `other` uses the same binning law (and may be merged).
    pub fn same_law(&self, other: &LogHistogram) -> bool {
        self.lo == other.lo && self.bins_per_decade == other.bins_per_decade
    }

    /// Adds a sample. Non-finite samples count into the underflow bin
    /// (and contribute nothing to the sum) rather than poisoning the
    /// histogram.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += if x.is_finite() { x } else { 0.0 };
        if !x.is_finite() || x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x / self.lo).ln() / self.ln_ratio).floor() as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0);
        }
        self.bins[idx] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all finite samples (for windowed means).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the recorded samples; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Samples that fell below the histogram origin.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo * (self.ln_ratio * i as f64).exp()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest rank over the bin counts,
    /// reported as the geometric midpoint of the containing bin; zero when
    /// empty. Guaranteed within one bin width of the exact sample quantile.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return 0.0;
        }
        // Same nearest-rank convention as `ResponseStats::percentile`.
        let rank = ((self.count as f64 - 1.0) * q).round() as u64;
        let mut seen = self.underflow;
        if rank < seen {
            return self.lo;
        }
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if rank < seen {
                // Geometric midpoint of [bin_lo, bin_lo·r).
                return self.bin_lo(i) * (self.ln_ratio * 0.5).exp();
            }
        }
        // Unreachable when counts are consistent; fall back to the top edge.
        self.bin_lo(self.bins.len())
    }

    /// Merges `other` into this histogram by adding counts; exact (no
    /// re-binning error) and associative on the counts.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms use different binning laws.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert!(
            self.same_law(other),
            "cannot merge histograms with different binning laws"
        );
        if self.bins.len() < other.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (dst, src) in self.bins.iter_mut().zip(&other.bins) {
            *dst += src;
        }
        self.underflow += other.underflow;
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 5.0 + 10.0)
            .collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-10);
        assert!((w.population_variance() - var).abs() < 1e-10);
        assert!(w.min() <= w.mean() && w.mean() <= w.max());
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| i as f64 * 0.1).collect();
        let mut all = Welford::new();
        let mut a = Welford::new();
        let mut b = Welford::new();
        for (i, &x) in xs.iter().enumerate() {
            all.push(x);
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-8);
    }

    #[test]
    fn sq_coeff_var_of_constant_is_zero() {
        let mut w = Welford::new();
        for _ in 0..10 {
            w.push(3.0);
        }
        assert_eq!(w.sq_coeff_var(), 0.0);
    }

    #[test]
    fn empty_welford_is_benign() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.sq_coeff_var(), 0.0);
    }

    #[test]
    fn percentiles() {
        let mut r = ResponseStats::new();
        for i in 1..=100 {
            r.push(i as f64);
        }
        assert_eq!(r.percentile(0.0), 1.0);
        assert_eq!(r.percentile(1.0), 100.0);
        let p50 = r.percentile(0.5);
        assert!((49.0..=51.0).contains(&p50));
        assert!((r.mean() - 50.5).abs() < 1e-12);
        assert!((r.mean_ms() - 50500.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_empty_is_zero() {
        let mut r = ResponseStats::new();
        assert_eq!(r.percentile(0.5), 0.0);
        let mut s = ResponseStats::streaming();
        assert_eq!(s.percentile(0.5), 0.0);
    }

    #[test]
    fn streaming_response_stats_match_welford_exactly() {
        let xs = seeded_samples(0xABCD, 4000);
        let mut exact = ResponseStats::new();
        let mut streamed = ResponseStats::streaming();
        for &x in &xs {
            exact.push(x);
            streamed.push(x);
        }
        assert!(streamed.is_streaming() && !exact.is_streaming());
        // Moments are Welford-derived in both modes: identical bits.
        assert_eq!(exact.count(), streamed.count());
        assert_eq!(exact.mean().to_bits(), streamed.mean().to_bits());
        assert_eq!(exact.std_dev().to_bits(), streamed.std_dev().to_bits());
        assert_eq!(exact.max().to_bits(), streamed.max().to_bits());
        // Percentiles agree to within one log-spaced bin.
        let ratio = LogHistogram::response_times().bin_ratio();
        for q in [0.5, 0.95, 0.99] {
            let est = streamed.percentile(q);
            let truth = exact.percentile(q);
            assert!(
                est / truth <= ratio * (1.0 + 1e-12) && truth / est <= ratio * (1.0 + 1e-12),
                "q {q}: streaming {est} vs exact {truth}"
            );
        }
    }

    /// Deterministic pseudo-random response-time-like samples (seconds).
    fn seeded_samples(seed: u64, n: usize) -> Vec<f64> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Spread over ~3 decades: 0.1 ms .. 100 ms.
                let u = (x >> 11) as f64 / (1u64 << 53) as f64;
                1e-4 * 10f64.powf(3.0 * u)
            })
            .collect()
    }

    #[test]
    fn log_histogram_percentiles_within_one_bin_of_exact() {
        for seed in [3u64, 17, 0x5EED] {
            let xs = seeded_samples(seed, 4000);
            let mut h = LogHistogram::response_times();
            let mut exact = ResponseStats::new();
            for &x in &xs {
                h.push(x);
                exact.push(x);
            }
            let ratio = h.bin_ratio();
            for q in [0.5, 0.95, 0.99] {
                let est = h.quantile(q);
                let truth = exact.percentile(q);
                // Same nearest-rank convention, so the estimate's bin
                // contains the exact order statistic: the two values agree
                // to within one bin width (a factor of `ratio`).
                assert!(
                    est / truth <= ratio * (1.0 + 1e-12) && truth / est <= ratio * (1.0 + 1e-12),
                    "seed {seed} q {q}: estimate {est} vs exact {truth} (ratio {ratio})"
                );
            }
            assert_eq!(h.count(), exact.count());
            assert!((h.mean() - exact.mean()).abs() <= 1e-12 * exact.mean());
        }
    }

    #[test]
    fn log_histogram_merge_is_associative_and_exact() {
        let xs = seeded_samples(99, 3000);
        let thirds: Vec<LogHistogram> = xs
            .chunks(1000)
            .map(|chunk| {
                let mut h = LogHistogram::response_times();
                for &x in chunk {
                    h.push(x);
                }
                h
            })
            .collect();
        let [a, b, c] = [&thirds[0], &thirds[1], &thirds[2]];
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(b);
        left.merge(c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.bins, right.bins, "bin counts must merge associatively");
        assert_eq!(left.count(), right.count());
        assert_eq!(left.underflow(), right.underflow());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(left.quantile(q), right.quantile(q));
        }
        // The merged histogram equals the sequentially-filled one bin for bin.
        let mut all = LogHistogram::response_times();
        for &x in &xs {
            all.push(x);
        }
        assert_eq!(left.bins, all.bins);
        assert_eq!(left.count(), all.count());
    }

    #[test]
    fn log_histogram_underflow_and_degenerate_inputs() {
        let mut h = LogHistogram::new(1e-5, 10);
        h.push(0.0);
        h.push(f64::NAN);
        h.push(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.underflow(), 3);
        // All mass below the origin: quantiles report the origin.
        assert_eq!(h.quantile(0.5), 1e-5);
        assert_eq!(h.sum(), 0.0, "non-finite samples add nothing to the sum");
        let empty = LogHistogram::response_times();
        assert_eq!(empty.quantile(0.99), 0.0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "different binning laws")]
    fn log_histogram_rejects_mismatched_merge() {
        let mut a = LogHistogram::new(1e-5, 10);
        let b = LogHistogram::new(1e-5, 20);
        a.merge(&b);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for x in [0.1, 0.3, 0.6, 0.9, -0.1, 1.0, 2.0] {
            h.push(x);
        }
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(2), 1);
        assert_eq!(h.bin_count(3), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_bounds(1), (0.25, 0.5));
        assert_eq!(h.num_bins(), 4);
    }
}
