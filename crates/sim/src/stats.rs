//! Simulation statistics.
//!
//! The paper evaluates scheduling policies with two metrics (§4.1): the
//! average response time (queue + service) and the squared coefficient of
//! variation σ²/µ² of response time, used as a starvation-resistance
//! ("fairness") measure following [TP72, WGP94]. [`ResponseStats`] computes
//! both, plus percentiles for the extended analyses.

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use storage_sim::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; zero when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by n); zero for fewer than two samples.
    pub fn population_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divides by n−1); zero for fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// σ²/µ² — the paper's starvation-resistance metric. Zero when the
    /// mean is zero.
    pub fn sq_coeff_var(&self) -> f64 {
        let mu = self.mean();
        if mu == 0.0 {
            0.0
        } else {
            self.population_variance() / (mu * mu)
        }
    }

    /// Smallest sample; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n_total = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n_total as f64;
        self.m2 += other.m2 + delta * delta * self.n as f64 * other.n as f64 / n_total as f64;
        self.n = n_total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Response-time statistics retaining the full sample for percentiles.
///
/// Values are stored in seconds (matching [`crate::SimTime::as_secs`]).
#[derive(Debug, Clone, Default)]
pub struct ResponseStats {
    welford: Welford,
    samples: Vec<f64>,
    sorted: bool,
}

impl ResponseStats {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one response time in seconds.
    pub fn push(&mut self, secs: f64) {
        self.welford.push(secs);
        self.samples.push(secs);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.welford.count()
    }

    /// Mean in seconds.
    pub fn mean(&self) -> f64 {
        self.welford.mean()
    }

    /// Mean in milliseconds — the unit the paper's figures use.
    pub fn mean_ms(&self) -> f64 {
        self.mean() * 1e3
    }

    /// Population standard deviation in seconds.
    pub fn std_dev(&self) -> f64 {
        self.welford.std_dev()
    }

    /// σ²/µ² starvation-resistance metric.
    pub fn sq_coeff_var(&self) -> f64 {
        self.welford.sq_coeff_var()
    }

    /// Largest sample in seconds.
    pub fn max(&self) -> f64 {
        self.welford.max()
    }

    /// Returns the `p`-quantile (0 ≤ p ≤ 1) by nearest-rank on the sorted
    /// sample; zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0,1]");
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("response times are not NaN"));
            self.sorted = true;
        }
        let rank = ((self.samples.len() as f64 - 1.0) * p).round() as usize;
        self.samples[rank]
    }
}

/// A fixed-width histogram over `[lo, hi)` with overflow/underflow bins,
/// used by the fault/turnaround distribution reports.
///
/// # Examples
///
/// ```
/// use storage_sim::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// h.push(0.5);
/// h.push(3.7);
/// h.push(42.0); // overflow
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(3), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count in bin `i`.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Inclusive-exclusive bounds of bin `i`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range top.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 5.0 + 10.0)
            .collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-10);
        assert!((w.population_variance() - var).abs() < 1e-10);
        assert!(w.min() <= w.mean() && w.mean() <= w.max());
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| i as f64 * 0.1).collect();
        let mut all = Welford::new();
        let mut a = Welford::new();
        let mut b = Welford::new();
        for (i, &x) in xs.iter().enumerate() {
            all.push(x);
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-8);
    }

    #[test]
    fn sq_coeff_var_of_constant_is_zero() {
        let mut w = Welford::new();
        for _ in 0..10 {
            w.push(3.0);
        }
        assert_eq!(w.sq_coeff_var(), 0.0);
    }

    #[test]
    fn empty_welford_is_benign() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.sq_coeff_var(), 0.0);
    }

    #[test]
    fn percentiles() {
        let mut r = ResponseStats::new();
        for i in 1..=100 {
            r.push(i as f64);
        }
        assert_eq!(r.percentile(0.0), 1.0);
        assert_eq!(r.percentile(1.0), 100.0);
        let p50 = r.percentile(0.5);
        assert!((49.0..=51.0).contains(&p50));
        assert!((r.mean() - 50.5).abs() < 1e-12);
        assert!((r.mean_ms() - 50500.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_empty_is_zero() {
        let mut r = ResponseStats::new();
        assert_eq!(r.percentile(0.5), 0.0);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for x in [0.1, 0.3, 0.6, 0.9, -0.1, 1.0, 2.0] {
            h.push(x);
        }
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(2), 1);
        assert_eq!(h.bin_count(3), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_bounds(1), (0.25, 0.5));
        assert_eq!(h.num_bins(), 4);
    }
}
