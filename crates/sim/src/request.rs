//! I/O requests.
//!
//! Requests are expressed against the device's logical block (LBN) space in
//! 512-byte sectors, matching the SCSI-like interface the paper assumes for
//! MEMS-based storage devices (§2.2).

use crate::time::SimTime;

/// Unique identifier for a request within one simulation run.
pub type RequestId = u64;

/// Whether a request reads or writes the media.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// Transfer from media to host.
    Read,
    /// Transfer from host to media.
    Write,
}

impl IoKind {
    /// Returns `true` for [`IoKind::Read`].
    pub fn is_read(self) -> bool {
        matches!(self, IoKind::Read)
    }
}

/// A block-level I/O request.
///
/// # Examples
///
/// ```
/// use storage_sim::{IoKind, Request, SimTime};
///
/// // An 8-sector (4 KB) read arriving at t = 1 ms at LBN 1000.
/// let r = Request::new(0, SimTime::from_ms(1.0), 1000, 8, IoKind::Read);
/// assert_eq!(r.bytes(), 4096);
/// assert_eq!(r.end_lbn(), 1008);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Simulation-unique identifier.
    pub id: RequestId,
    /// Arrival time at the device driver queue.
    pub arrival: SimTime,
    /// First logical block (512-byte sector) addressed.
    pub lbn: u64,
    /// Number of 512-byte sectors transferred; always at least one.
    pub sectors: u32,
    /// Read or write.
    pub kind: IoKind,
}

impl Request {
    /// Bytes per logical sector, fixed at 512 across the workspace.
    pub const SECTOR_BYTES: u32 = 512;

    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if `sectors` is zero.
    pub fn new(id: RequestId, arrival: SimTime, lbn: u64, sectors: u32, kind: IoKind) -> Self {
        assert!(sectors > 0, "request must transfer at least one sector");
        Request {
            id,
            arrival,
            lbn,
            sectors,
            kind,
        }
    }

    /// Returns the first LBN past the end of the request.
    pub fn end_lbn(&self) -> u64 {
        self.lbn + u64::from(self.sectors)
    }

    /// Returns the transfer size in bytes.
    pub fn bytes(&self) -> u64 {
        u64::from(self.sectors) * u64::from(Self::SECTOR_BYTES)
    }
}

/// A request together with its simulated execution record.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// The request as issued.
    pub request: Request,
    /// When the device began servicing it.
    pub start_service: SimTime,
    /// When the device finished it.
    pub completion: SimTime,
}

impl Completion {
    /// Queue time plus service time — the paper's response-time metric.
    pub fn response_time(&self) -> SimTime {
        self.completion - self.request.arrival
    }

    /// Time spent waiting in the scheduler queue.
    pub fn queue_time(&self) -> SimTime {
        self.start_service - self.request.arrival
    }

    /// Time spent at the device.
    pub fn service_time(&self) -> SimTime {
        self.completion - self.start_service
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_geometry() {
        let r = Request::new(7, SimTime::ZERO, 100, 16, IoKind::Write);
        assert_eq!(r.end_lbn(), 116);
        assert_eq!(r.bytes(), 8192);
        assert!(!r.kind.is_read());
    }

    #[test]
    #[should_panic(expected = "at least one sector")]
    fn zero_sector_request_rejected() {
        let _ = Request::new(0, SimTime::ZERO, 0, 0, IoKind::Read);
    }

    #[test]
    fn completion_metrics() {
        let r = Request::new(1, SimTime::from_ms(1.0), 0, 1, IoKind::Read);
        let c = Completion {
            request: r,
            start_service: SimTime::from_ms(3.0),
            completion: SimTime::from_ms(4.5),
        };
        assert!((c.response_time().as_ms() - 3.5).abs() < 1e-12);
        assert!((c.queue_time().as_ms() - 2.0).abs() < 1e-12);
        assert!((c.service_time().as_ms() - 1.5).abs() < 1e-12);
    }
}
