//! Discrete-event storage simulation engine.
//!
//! `storage-sim` provides the substrate that the memsstore project uses in
//! place of DiskSim \[GWP98]: a simulation clock, a stable event queue, the
//! request/workload/scheduler/device abstractions, a driver that couples
//! them into an open-arrival queueing simulation, and the statistics the
//! paper reports (mean response time and the squared coefficient of
//! variation used as a starvation metric).
//!
//! The engine is deliberately single-threaded and deterministic: a fixed
//! workload seed always produces the same simulated timeline, so every
//! figure in the paper reproduction is replayable bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use storage_sim::{
//!     ConstantDevice, Driver, FifoScheduler, Request, IoKind, SimTime, VecWorkload,
//! };
//!
//! // Three back-to-back 4 KB reads against a device with a constant 1 ms
//! // service time, scheduled FIFO.
//! let reqs = vec![
//!     Request::new(0, SimTime::from_ms(0.0), 0, 8, IoKind::Read),
//!     Request::new(1, SimTime::from_ms(0.1), 800, 8, IoKind::Read),
//!     Request::new(2, SimTime::from_ms(0.2), 1600, 8, IoKind::Write),
//! ];
//! let mut driver = Driver::new(
//!     VecWorkload::new(reqs),
//!     FifoScheduler::new(),
//!     ConstantDevice::new(10_000, 0.001),
//! );
//! let report = driver.run();
//! assert_eq!(report.completed, 3);
//! assert!(report.response.mean() >= 0.001);
//! ```

#![warn(missing_docs)]

pub mod closed;
pub mod device;
pub mod driver;
pub mod event;
pub mod fault;
pub mod overload;
pub mod profile;
pub mod request;
pub mod rng;
pub mod sched;
pub mod slab;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod tracer;
pub mod workload;

pub use closed::{closed_loop, ClosedReport, RequestSource};
pub use device::{
    ConstantDevice, PhaseEnergy, PositionOracle, PowerState, ServiceBreakdown, StorageDevice,
};
pub use driver::{Driver, RunState, SimReport};
pub use event::{
    BinaryHeapEventQueue, CalendarQueuePolicy, Event, EventQueue, HeapQueuePolicy, QueuePolicy,
    SimQueue,
};
pub use fault::{FaultClock, FaultEvent, FaultKind};
pub use overload::OverloadPolicy;
pub use profile::{ProfScope, Profiler, ScopeStats};
pub use request::{Completion, IoKind, Request, RequestId};
pub use sched::{DynScheduler, FifoScheduler, SchedCounters, Scheduler};
pub use slab::{MoveStore, RequestStore, Slab, SlabStore, SlotHandle};
pub use stats::{Histogram, LogHistogram, ResponseStats, Welford};
pub use telemetry::{Telemetry, TracerPair, Window};
pub use time::SimTime;
pub use tracer::{NoopTracer, RingTracer, TraceCounters, TraceEvent, Tracer};
pub use workload::{FnWorkload, VecWorkload, Workload};
