//! Simulation time.
//!
//! [`SimTime`] is a thin wrapper around `f64` seconds. All device models in
//! the workspace produce times from closed-form physics, so floating point
//! is the natural representation; the wrapper exists to keep units explicit
//! (constructors and accessors are unit-suffixed) and to provide the total
//! ordering the event queue needs.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant (or duration) on the simulated timeline, in seconds.
///
/// `SimTime` is totally ordered via [`f64::total_cmp`]; constructors reject
/// NaN so the ordering is also semantically sound. Negative values are
/// permitted (they arise transiently in interval arithmetic) but the driver
/// never schedules events in the past.
///
/// # Examples
///
/// ```
/// use storage_sim::SimTime;
///
/// let t = SimTime::from_ms(1.5);
/// assert_eq!(t.as_us(), 1500.0);
/// assert!(t < SimTime::from_secs(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch, time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime must not be NaN");
        SimTime(secs)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub fn from_us(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Returns the time in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the time in milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the time in microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= 1.0 {
            write!(f, "{:.6} s", self.0)
        } else if self.0.abs() >= 1e-3 {
            write!(f, "{:.3} ms", self.0 * 1e3)
        } else {
            write!(f, "{:.1} us", self.0 * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_ms(2.5);
        assert!((t.as_secs() - 0.0025).abs() < 1e-15);
        assert!((t.as_us() - 2500.0).abs() < 1e-9);
        assert_eq!(SimTime::from_us(1000.0), SimTime::from_ms(1.0));
    }

    #[test]
    fn ordering_is_total_and_sane() {
        let a = SimTime::from_ms(1.0);
        let b = SimTime::from_ms(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(SimTime::ZERO.max(a), a);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ms(1.0);
        let b = SimTime::from_ms(0.5);
        assert_eq!(a + b, SimTime::from_ms(1.5));
        assert_eq!(a - b, SimTime::from_ms(0.5));
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_ms(1.5));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_secs(2.0)), "2.000000 s");
        assert_eq!(format!("{}", SimTime::from_ms(2.0)), "2.000 ms");
        assert_eq!(format!("{}", SimTime::from_us(2.0)), "2.0 us");
    }
}
