//! Open-loop overload control: queue-depth admission watermarks and
//! queue-time timeouts.
//!
//! An open-loop arrival process does not slow down when the device
//! saturates — past the knee the scheduler queue grows without bound and
//! response times diverge. [`OverloadPolicy`] gives the driver two classic
//! production controls, both billed as **explicit outcomes** in the
//! [`crate::SimReport`] (`shed` / `timed_out` counters plus tracer hooks)
//! rather than silent drops:
//!
//! * **Shed watermarks with hysteresis**: once the queue depth reaches
//!   `shed_high` at an arrival, the driver enters shedding mode and rejects
//!   arrivals at admission until the depth has drained below `resume_low`.
//!   The high/low split prevents flapping at the boundary — the policy
//!   commits to shedding through the burst and re-admits only once the
//!   backlog has genuinely cleared.
//! * **Queue timeout**: a request that has waited longer than
//!   `queue_timeout` when the scheduler elects it is abandoned instead of
//!   serviced (the pick loop bills it and elects again). This models
//!   initiator-side request expiry: the work was queued, aged out, and was
//!   never worth dispatching.
//!
//! A driver with no policy attached takes none of these branches, and a
//! policy whose watermark is never reached and whose timeout never fires is
//! bit-identical to no policy at all (asserted by test).

use crate::time::SimTime;

/// Admission and expiry control for open-loop overload runs. Attach with
/// [`crate::Driver::with_overload`].
///
/// # Examples
///
/// ```
/// use storage_sim::{OverloadPolicy, SimTime};
///
/// // Shed above 256 queued requests, resume below 64, expire requests
/// // that waited more than 250 ms.
/// let policy = OverloadPolicy::watermarks(256, 64).with_queue_timeout(SimTime::from_ms(250.0));
/// assert_eq!(policy.shed_high, 256);
/// assert_eq!(policy.resume_low, 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadPolicy {
    /// Queue depth (before enqueue) at or above which arrivals are shed.
    pub shed_high: usize,
    /// Depth below which shedding stops (hysteresis; `resume_low <=
    /// shed_high`).
    pub resume_low: usize,
    /// Maximum time a request may wait in the queue before the pick loop
    /// abandons it instead of dispatching; `None` disables expiry.
    pub queue_timeout: Option<SimTime>,
}

impl OverloadPolicy {
    /// A policy that sheds at depth `shed_high` and resumes admission below
    /// `resume_low`, with no queue timeout.
    ///
    /// # Panics
    ///
    /// Panics if `resume_low > shed_high` or `shed_high == 0`.
    pub fn watermarks(shed_high: usize, resume_low: usize) -> Self {
        assert!(
            shed_high > 0,
            "shed watermark must admit at least one request"
        );
        assert!(
            resume_low <= shed_high,
            "hysteresis low watermark must not exceed the high watermark"
        );
        OverloadPolicy {
            shed_high,
            resume_low,
            queue_timeout: None,
        }
    }

    /// A policy that never sheds (watermark at `usize::MAX`) but expires
    /// requests that queued longer than `timeout`.
    pub fn timeout_only(timeout: SimTime) -> Self {
        OverloadPolicy {
            shed_high: usize::MAX,
            resume_low: usize::MAX,
            queue_timeout: Some(timeout),
        }
    }

    /// Adds a queue timeout to this policy.
    pub fn with_queue_timeout(mut self, timeout: SimTime) -> Self {
        self.queue_timeout = Some(timeout);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate_watermarks() {
        let p = OverloadPolicy::watermarks(100, 25);
        assert_eq!(p.queue_timeout, None);
        let t = OverloadPolicy::timeout_only(SimTime::from_ms(50.0));
        assert_eq!(t.shed_high, usize::MAX);
        assert_eq!(t.queue_timeout, Some(SimTime::from_ms(50.0)));
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_watermarks_panic() {
        let _ = OverloadPolicy::watermarks(10, 20);
    }
}
