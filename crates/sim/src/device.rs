//! The device abstraction: stateful service-time models.
//!
//! A [`StorageDevice`] is what DiskSim calls a device module: given its
//! current mechanical state and a request, it returns how long the request
//! takes, broken into the paper's components (positioning, transfer,
//! overhead), and advances its state. Schedulers that need positioning
//! estimates (SPTF, §4.1) use the read-only [`PositionOracle`] supertrait,
//! which must not mutate state.

use crate::fault::FaultKind;
use crate::request::Request;
use crate::time::SimTime;

/// Per-request service-time decomposition, in seconds.
///
/// `positioning` is the *resolved* pre-transfer delay. For MEMS devices it
/// is `max(seek_x + settle, seek_y)` because the X and Y seeks proceed in
/// parallel (§2.4.1); for disks it is `seek + rotation`, which proceed in
/// sequence. The raw components are retained for the figure harnesses.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceBreakdown {
    /// Resolved pre-transfer positioning time.
    pub positioning: f64,
    /// X-dimension seek (MEMS) or arm seek (disk), excluding settle.
    pub seek_x: f64,
    /// Post-seek settling time.
    pub settle: f64,
    /// Y-dimension seek including any pre-access turnarounds (MEMS only).
    pub seek_y: f64,
    /// Rotational latency (disk only).
    pub rotation: f64,
    /// Media transfer time, including intra-request track/cylinder switches.
    pub transfer: f64,
    /// Portion of `transfer` spent turning the sled around (MEMS only).
    pub turnaround: f64,
    /// Number of turnarounds performed during the request.
    pub turnaround_count: u32,
    /// Fixed controller/bus overhead.
    pub overhead: f64,
    /// Online failure-recovery time billed to this request: transient
    /// seek-error retries (penalty plus backoff), one-time remap charges,
    /// and reconstruction-read overhead. Zero on a healthy device.
    pub fault_recovery: f64,
    /// Time this foreground request spent waiting behind a non-preemptible
    /// background operation already in flight on the device (e.g. the last
    /// chunk of an idle-window migration that overshot the arrival). Part
    /// of the request's service time, but not a mechanical phase: the
    /// mechanical work it covers is billed on the background I/O itself,
    /// so energy models and phase-utilization exports ignore this field.
    pub background_wait: f64,
}

impl ServiceBreakdown {
    /// Total service time in seconds.
    pub fn total(&self) -> f64 {
        self.positioning
            + self.transfer
            + self.overhead
            + self.fault_recovery
            + self.background_wait
    }

    /// Total service time as a [`SimTime`].
    pub fn total_time(&self) -> SimTime {
        SimTime::from_secs(self.total())
    }

    /// Element-wise accumulation, for averaging over a run.
    pub fn accumulate(&mut self, other: &ServiceBreakdown) {
        self.positioning += other.positioning;
        self.seek_x += other.seek_x;
        self.settle += other.settle;
        self.seek_y += other.seek_y;
        self.rotation += other.rotation;
        self.transfer += other.transfer;
        self.turnaround += other.turnaround;
        self.turnaround_count += other.turnaround_count;
        self.overhead += other.overhead;
        self.fault_recovery += other.fault_recovery;
        self.background_wait += other.background_wait;
    }
}

/// Per-request energy attribution by service phase, in joules.
///
/// Produced by [`StorageDevice::phase_energy`] from a completed request's
/// [`ServiceBreakdown`] and the device's power model; the three phases
/// partition the request, so the fields sum to the request's total energy.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseEnergy {
    /// Energy spent positioning (seek/settle/rotation), J.
    pub positioning_j: f64,
    /// Energy spent on the media transfer (including turnarounds), J.
    pub transfer_j: f64,
    /// Energy spent during fixed controller/bus overhead, J.
    pub overhead_j: f64,
}

impl PhaseEnergy {
    /// Total request energy in joules.
    pub fn total(&self) -> f64 {
        self.positioning_j + self.transfer_j + self.overhead_j
    }

    /// Element-wise accumulation, for summing over a run.
    pub fn accumulate(&mut self, other: &PhaseEnergy) {
        self.positioning_j += other.positioning_j;
        self.transfer_j += other.transfer_j;
        self.overhead_j += other.overhead_j;
    }
}

/// Coarse power state of a device (§7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerState {
    /// Servicing requests or ready to do so immediately.
    Active,
    /// Mechanics stopped / non-essential electronics off; fast restart.
    Idle,
    /// Fully powered down (disk: spindle stopped); slow restart.
    Standby,
}

/// The read-only positioning oracle a scheduler consults while picking.
///
/// Split out of [`StorageDevice`] so `Scheduler::pick` can be generic over
/// the concrete device (fully monomorphized — no vtable hop per candidate
/// query on the SPTF hot path) while the report/tracer plumbing that needs
/// object safety keeps a `&dyn PositionOracle` view. Every method is
/// `&self`: consulting the oracle must never mutate mechanical state.
pub trait PositionOracle {
    /// Estimates the positioning (pre-transfer) delay `req` would incur if
    /// started at `now`, without mutating state. This is SPTF's oracle.
    fn position_time(&self, req: &Request, now: SimTime) -> f64;

    /// Positioning-locality bucket of `req` — a coarse key (the cylinder,
    /// for mechanical devices) such that requests in nearby buckets tend to
    /// have small positioning times. Must depend only on the request, not
    /// on the mechanical state. The default (everything in bucket 0)
    /// disables the pruned SPTF scan, which then degrades to the exact
    /// full scan.
    fn position_bucket(&self, req: &Request) -> u64 {
        let _ = req;
        0
    }

    /// Bucket closest to the head/tips in the current mechanical state.
    fn current_bucket(&self) -> u64 {
        0
    }

    /// Lower bound on [`PositionOracle::position_time`] for **any** request
    /// whose bucket is at least `distance` buckets from
    /// [`PositionOracle::current_bucket`]. Implementations must guarantee
    /// the bound is sound and nondecreasing in `distance`; the pruned SPTF
    /// scan stops expanding once this exceeds the best candidate found.
    /// The default (0) never prunes.
    fn min_position_time_at_bucket_distance(&self, distance: u64) -> f64 {
        let _ = distance;
        0.0
    }

    /// Lower bound on [`PositionOracle::position_time`] for any request in
    /// `bucket`, given the current mechanical state. Sharper than the
    /// distance bound (it may use the exact per-bucket seek time); used to
    /// skip whole buckets. The default (0) never skips.
    fn bucket_position_time_floor(&self, bucket: u64) -> f64 {
        let _ = bucket;
        0.0
    }

    /// Collision-free fingerprint of the rest state: everything
    /// [`PositionOracle::position_time`] depends on *besides* the request.
    /// Two calls returning equal `Some` keys MUST produce bit-identical
    /// `position_time` for every request — implementations encode exact
    /// state (float bit patterns, integer coordinates), never hashes.
    /// Incremental SPTF caches per-bucket winners under this key and reuses
    /// them only while the key is unchanged. The default (`None`) disables
    /// caching, which is always safe — in particular for wrappers whose
    /// oracle depends on more than the wrapped device's mechanical state.
    fn rest_key(&self, now: SimTime) -> Option<[u64; 3]> {
        let _ = now;
        None
    }
}

/// References are oracles too: this lets `&dyn PositionOracle` (and `&D`)
/// satisfy the generic `O: PositionOracle + ?Sized` bound on
/// `Scheduler::pick`, which is what keeps the dyn-compat [`crate::sched::DynScheduler`]
/// shim expressible on top of the generic trait.
impl<T: PositionOracle + ?Sized> PositionOracle for &T {
    fn position_time(&self, req: &Request, now: SimTime) -> f64 {
        (**self).position_time(req, now)
    }

    fn position_bucket(&self, req: &Request) -> u64 {
        (**self).position_bucket(req)
    }

    fn current_bucket(&self) -> u64 {
        (**self).current_bucket()
    }

    fn min_position_time_at_bucket_distance(&self, distance: u64) -> f64 {
        (**self).min_position_time_at_bucket_distance(distance)
    }

    fn bucket_position_time_floor(&self, bucket: u64) -> f64 {
        (**self).bucket_position_time_floor(bucket)
    }

    fn rest_key(&self, now: SimTime) -> Option<[u64; 3]> {
        (**self).rest_key(now)
    }
}

/// A stateful storage device service-time model.
pub trait StorageDevice: PositionOracle {
    /// Human-readable model name, e.g. `"MEMS (default)"`.
    fn name(&self) -> &str;

    /// Number of addressable 512-byte logical blocks.
    fn capacity_lbns(&self) -> u64;

    /// Services `req` starting at `now`, advancing mechanical state, and
    /// returns the time decomposition.
    fn service(&mut self, req: &Request, now: SimTime) -> ServiceBreakdown;

    /// Restores the device to its initial mechanical state.
    fn reset(&mut self);

    /// Attributes the energy of a serviced request to its phases using the
    /// device's power model. Consumed by the observability layer; never
    /// called on the simulation's hot path unless a tracer is attached.
    /// The default (all zeros) is for devices without a power model.
    fn phase_energy(&self, breakdown: &ServiceBreakdown) -> PhaseEnergy {
        let _ = breakdown;
        PhaseEnergy::default()
    }

    /// Delivers a scheduled fault event to the device at `now`. The
    /// default ignores faults — a bare device is fault-oblivious; wrappers
    /// like `DegradedDevice` override this to transition their fault state
    /// online (remap a spare tip, arm a transient error, grow a defect).
    /// Faults never interrupt an in-flight request: state changes apply
    /// from the next [`StorageDevice::service`] call onward.
    fn on_fault(&mut self, fault: &FaultKind, now: SimTime) {
        let _ = (fault, now);
    }
}

/// A trivially simple device with a constant service time, for tests and
/// queueing sanity checks.
///
/// # Examples
///
/// ```
/// use storage_sim::{ConstantDevice, IoKind, Request, SimTime, StorageDevice};
///
/// let mut d = ConstantDevice::new(1000, 0.002);
/// let r = Request::new(0, SimTime::ZERO, 10, 8, IoKind::Read);
/// assert_eq!(d.service(&r, SimTime::ZERO).total(), 0.002);
/// ```
#[derive(Debug, Clone)]
pub struct ConstantDevice {
    capacity: u64,
    service_secs: f64,
}

impl ConstantDevice {
    /// Creates a device with `capacity` LBNs and a fixed per-request
    /// service time of `service_secs` seconds.
    pub fn new(capacity: u64, service_secs: f64) -> Self {
        ConstantDevice {
            capacity,
            service_secs,
        }
    }
}

impl PositionOracle for ConstantDevice {
    fn position_time(&self, _req: &Request, _now: SimTime) -> f64 {
        0.0
    }

    fn rest_key(&self, _now: SimTime) -> Option<[u64; 3]> {
        // Positioning is identically zero: the rest state never changes.
        Some([0; 3])
    }
}

impl StorageDevice for ConstantDevice {
    fn name(&self) -> &str {
        "constant"
    }

    fn capacity_lbns(&self) -> u64 {
        self.capacity
    }

    fn service(&mut self, _req: &Request, _now: SimTime) -> ServiceBreakdown {
        ServiceBreakdown {
            transfer: self.service_secs,
            ..ServiceBreakdown::default()
        }
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::IoKind;

    #[test]
    fn breakdown_total_sums_resolved_components() {
        let b = ServiceBreakdown {
            positioning: 0.5e-3,
            transfer: 0.3e-3,
            overhead: 0.1e-3,
            ..Default::default()
        };
        assert!((b.total() - 0.9e-3).abs() < 1e-15);
        assert_eq!(b.total_time(), SimTime::from_us(900.0));
    }

    #[test]
    fn breakdown_accumulates() {
        let mut a = ServiceBreakdown {
            seek_x: 1.0,
            turnaround_count: 2,
            ..Default::default()
        };
        let b = ServiceBreakdown {
            seek_x: 0.5,
            turnaround_count: 1,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.seek_x, 1.5);
        assert_eq!(a.turnaround_count, 3);
    }

    #[test]
    fn phase_energy_totals_and_accumulates() {
        let mut a = PhaseEnergy {
            positioning_j: 1.0,
            transfer_j: 2.0,
            overhead_j: 0.5,
        };
        assert!((a.total() - 3.5).abs() < 1e-15);
        a.accumulate(&PhaseEnergy {
            positioning_j: 0.5,
            transfer_j: 0.0,
            overhead_j: 0.5,
        });
        assert_eq!(a.positioning_j, 1.5);
        assert_eq!(a.overhead_j, 1.0);
        // Devices without a power model attribute zero energy.
        let d = ConstantDevice::new(10, 1e-3);
        assert_eq!(
            d.phase_energy(&ServiceBreakdown::default()),
            PhaseEnergy::default()
        );
    }

    #[test]
    fn constant_device_is_constant() {
        let mut d = ConstantDevice::new(100, 1e-3);
        let r = Request::new(0, SimTime::ZERO, 0, 1, IoKind::Read);
        assert_eq!(d.service(&r, SimTime::ZERO).total(), 1e-3);
        assert_eq!(d.position_time(&r, SimTime::ZERO), 0.0);
        assert_eq!(d.capacity_lbns(), 100);
        assert_eq!(d.name(), "constant");
    }
}
