//! Online fault injection: scheduled fault events for live simulations.
//!
//! The static fault machinery (ECC budgets, remap tables) answers *whether*
//! data survives; measuring what degraded operation *costs* requires faults
//! to occur while the discrete-event simulation is running, the way DiskSim
//! injects events mid-trace. A [`FaultClock`] is a deterministic, seeded
//! schedule of [`FaultEvent`]s that the [`crate::Driver`] merges into its
//! event queue as first-class events; when one fires, the driver delivers
//! it to the device through [`crate::StorageDevice::on_fault`] and to the
//! tracer through [`crate::Tracer::on_fault`]. A driver with an empty
//! clock executes exactly the fault-free event sequence (asserted
//! bit-identical by test).

use crate::rng;
use crate::time::SimTime;

/// One kind of fault arriving at a device mid-run.
///
/// The simulator stays geometry-agnostic: tips and rows are plain indices
/// that device wrappers interpret against their own geometry (and ignore
/// when meaningless — a disk has no probe tips).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A probe tip fails permanently (tip crash, actuator failure, faulty
    /// per-tip logic). The device decides between spare-tip remapping and
    /// operating the region degraded.
    TipFailure {
        /// The failing tip index.
        tip: u32,
    },
    /// A transient positioning (seek) error arms on the device: the next
    /// serviced request mis-positions and must retry.
    TransientSeekError,
    /// A grown media defect ruins a contiguous blob of tip-sector rows in
    /// one tip's region.
    MediaDefect {
        /// The tip whose region is damaged.
        tip: u32,
        /// First ruined tip-sector row.
        row_start: u32,
        /// Last ruined tip-sector row (inclusive).
        row_end: u32,
    },
}

impl FaultKind {
    /// Short stable label for traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::TipFailure { .. } => "tip_failure",
            FaultKind::TransientSeekError => "transient_seek_error",
            FaultKind::MediaDefect { .. } => "media_defect",
        }
    }
}

/// A fault scheduled at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault occurs.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events, consumed in time order.
///
/// Construct one from an explicit event list ([`FaultClock::from_events`]),
/// from a seeded burst of tip failures ([`FaultClock::tip_failures`]), or
/// from seeded Poisson arrival processes ([`FaultClock::poisson`]). The
/// default clock is empty: a driver carrying it schedules nothing and runs
/// the unchanged fault-free simulation.
///
/// # Examples
///
/// ```
/// use storage_sim::{FaultClock, FaultEvent, FaultKind, SimTime};
///
/// let mut clock = FaultClock::from_events(vec![
///     FaultEvent { at: SimTime::from_ms(2.0), kind: FaultKind::TransientSeekError },
///     FaultEvent { at: SimTime::from_ms(1.0), kind: FaultKind::TipFailure { tip: 7 } },
/// ]);
/// // Events come out in time order regardless of construction order.
/// assert_eq!(clock.pop().unwrap().at, SimTime::from_ms(1.0));
/// assert_eq!(clock.pop().unwrap().kind, FaultKind::TransientSeekError);
/// assert!(clock.pop().is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultClock {
    /// Remaining events, time-ordered.
    events: Vec<FaultEvent>,
    next: usize,
}

impl FaultClock {
    /// An empty schedule: no faults ever fire.
    pub fn empty() -> Self {
        FaultClock::default()
    }

    /// Builds a schedule from explicit events, sorting them stably by time
    /// (ties keep their relative order, so the schedule is deterministic).
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultClock { events, next: 0 }
    }

    /// A seeded burst of `n` tip failures on tips drawn uniformly from
    /// `[0, tips)` (duplicates possible, as in a real correlated failure),
    /// spread evenly across `(0, window]` — failure `i` fires at
    /// `(i + 1) / n · window`.
    ///
    /// # Panics
    ///
    /// Panics if `tips` is zero while `n` is not.
    pub fn tip_failures(seed: u64, n: usize, tips: u32, window: SimTime) -> Self {
        let mut r = rng::seeded(seed);
        let events = (0..n)
            .map(|i| FaultEvent {
                at: SimTime::from_secs(window.as_secs() * (i + 1) as f64 / n as f64),
                kind: FaultKind::TipFailure {
                    tip: rng::uniform_u64(&mut r, u64::from(tips)) as u32,
                },
            })
            .collect();
        FaultClock::from_events(events)
    }

    /// Seeded Poisson arrival processes over `(0, horizon)`: independent
    /// exponential inter-arrival streams for tip failures, transient seek
    /// errors, and media defects (rates in events/second; a zero rate
    /// disables that stream). Defects ruin 1–3 rows of a uniform tip, like
    /// the static injector.
    pub fn poisson(
        seed: u64,
        horizon: SimTime,
        tip_failure_rate: f64,
        transient_rate: f64,
        defect_rate: f64,
        tips: u32,
        rows_per_track: u32,
    ) -> Self {
        let mut r = rng::seeded(seed);
        let mut events = Vec::new();
        let horizon = horizon.as_secs();
        if tip_failure_rate > 0.0 {
            let mut t = rng::exponential(&mut r, 1.0 / tip_failure_rate);
            while t < horizon {
                events.push(FaultEvent {
                    at: SimTime::from_secs(t),
                    kind: FaultKind::TipFailure {
                        tip: rng::uniform_u64(&mut r, u64::from(tips)) as u32,
                    },
                });
                t += rng::exponential(&mut r, 1.0 / tip_failure_rate);
            }
        }
        if transient_rate > 0.0 {
            let mut t = rng::exponential(&mut r, 1.0 / transient_rate);
            while t < horizon {
                events.push(FaultEvent {
                    at: SimTime::from_secs(t),
                    kind: FaultKind::TransientSeekError,
                });
                t += rng::exponential(&mut r, 1.0 / transient_rate);
            }
        }
        if defect_rate > 0.0 {
            let mut t = rng::exponential(&mut r, 1.0 / defect_rate);
            while t < horizon {
                let tip = rng::uniform_u64(&mut r, u64::from(tips)) as u32;
                let row = rng::uniform_u64(&mut r, u64::from(rows_per_track)) as u32;
                let len = 1 + rng::uniform_u64(&mut r, 3) as u32;
                events.push(FaultEvent {
                    at: SimTime::from_secs(t),
                    kind: FaultKind::MediaDefect {
                        tip,
                        row_start: row,
                        row_end: (row + len - 1).min(rows_per_track - 1),
                    },
                });
                t += rng::exponential(&mut r, 1.0 / defect_rate);
            }
        }
        FaultClock::from_events(events)
    }

    /// The firing time of the next scheduled fault, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.events.get(self.next).map(|e| e.at)
    }

    /// Removes and returns the next fault event, if any.
    pub fn pop(&mut self) -> Option<FaultEvent> {
        let ev = self.events.get(self.next).copied();
        if ev.is_some() {
            self.next += 1;
        }
        ev
    }

    /// Number of events not yet delivered.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }

    /// Returns `true` if no events remain.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_clock_yields_nothing() {
        let mut c = FaultClock::empty();
        assert!(c.is_empty());
        assert_eq!(c.next_time(), None);
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn events_come_out_time_ordered_and_stably() {
        let mut c = FaultClock::from_events(vec![
            FaultEvent {
                at: SimTime::from_ms(5.0),
                kind: FaultKind::TipFailure { tip: 1 },
            },
            FaultEvent {
                at: SimTime::from_ms(1.0),
                kind: FaultKind::TransientSeekError,
            },
            FaultEvent {
                at: SimTime::from_ms(5.0),
                kind: FaultKind::TipFailure { tip: 2 },
            },
        ]);
        assert_eq!(c.remaining(), 3);
        assert_eq!(c.pop().unwrap().kind, FaultKind::TransientSeekError);
        // Simultaneous events keep their construction order.
        assert_eq!(c.pop().unwrap().kind, FaultKind::TipFailure { tip: 1 });
        assert_eq!(c.pop().unwrap().kind, FaultKind::TipFailure { tip: 2 });
        assert!(c.is_empty());
    }

    #[test]
    fn tip_failure_burst_is_deterministic_and_in_window() {
        let window = SimTime::from_ms(100.0);
        let a = FaultClock::tip_failures(42, 20, 6400, window);
        let b = FaultClock::tip_failures(42, 20, 6400, window);
        assert_eq!(a.events, b.events);
        assert_eq!(a.remaining(), 20);
        for ev in &a.events {
            assert!(ev.at > SimTime::ZERO && ev.at <= window);
            match ev.kind {
                FaultKind::TipFailure { tip } => assert!(tip < 6400),
                other => panic!("unexpected {other:?}"),
            }
        }
        let c = FaultClock::tip_failures(43, 20, 6400, window);
        assert_ne!(a.events, c.events, "different seeds draw different tips");
    }

    #[test]
    fn poisson_streams_are_seeded_and_bounded() {
        let horizon = SimTime::from_secs(10.0);
        let mk = |seed| FaultClock::poisson(seed, horizon, 2.0, 5.0, 1.0, 6400, 27);
        let a = mk(7);
        assert_eq!(a.events, mk(7).events);
        assert!(a.remaining() > 10, "~80 expected events");
        let mut last = SimTime::ZERO;
        for ev in &a.events {
            assert!(ev.at >= last, "events must be time-ordered");
            assert!(ev.at < horizon);
            last = ev.at;
            if let FaultKind::MediaDefect {
                tip,
                row_start,
                row_end,
            } = ev.kind
            {
                assert!(tip < 6400 && row_start <= row_end && row_end < 27);
            }
        }
    }

    #[test]
    fn zero_rates_disable_streams() {
        let c = FaultClock::poisson(1, SimTime::from_secs(5.0), 0.0, 0.0, 0.0, 100, 10);
        assert!(c.is_empty());
    }
}
