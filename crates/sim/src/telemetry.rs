//! Windowed time-series telemetry over the simulated timeline.
//!
//! The paper's aggregate figures (mean response time, σ²/µ²) hide the
//! dynamics that explain them: SPTF starving edge-of-sled requests shows
//! up as a widening p99/p50 gap over time, degraded mode shows up as a
//! utilization shift into `fault_recovery`, and energy draw tracks the
//! positioning duty cycle. [`Telemetry`] is a [`Tracer`] that buckets
//! sim-time into fixed windows and records, per window: throughput,
//! response-time distribution (via the mergeable
//! [`LogHistogram`]), queue depth, per-phase device
//! utilization, energy rate, and fault counts.
//!
//! Everything recorded here derives from *simulated* time, so telemetry
//! output is deterministic and CSV exports can be byte-gated goldens —
//! unlike the wall-clock numbers in [`crate::profile`].
//!
//! Memory is bounded: when a run outgrows the configured window budget the
//! series **coarsens** — adjacent windows merge pairwise and the window
//! width doubles. Coarsening is lossless for counts, sums, and histogram
//! bins (the log-histogram merges exactly), so a multi-hour closed-loop
//! run degrades resolution, never correctness, and never grows without
//! limit.
//!
//! Compose telemetry with an event-ring tracer via [`TracerPair`]:
//! `TracerPair::new(RingTracer::new(n), Telemetry::new(0.5, 256))`.

use crate::device::{PhaseEnergy, ServiceBreakdown};
use crate::fault::FaultKind;
use crate::profile::ProfScope;
use crate::request::{Completion, Request};
use crate::stats::LogHistogram;
use crate::time::SimTime;
use crate::tracer::Tracer;

/// One telemetry window: everything observed in `[start, start + width)`
/// of simulated time. All fields are mergeable, which is what makes
/// pairwise coarsening exact.
#[derive(Debug, Clone)]
pub struct Window {
    /// Requests that arrived in this window.
    pub arrivals: u64,
    /// Requests that completed in this window.
    pub completions: u64,
    /// Response times of the requests that completed here, seconds.
    pub responses: LogHistogram,
    /// Sum of queue-depth samples taken in this window.
    pub depth_sum: u64,
    /// Number of queue-depth samples taken.
    pub depth_samples: u64,
    /// Largest queue depth sampled.
    pub depth_max: usize,
    /// Per-phase device time for services *starting* in this window,
    /// seconds.
    pub phase: ServiceBreakdown,
    /// Per-phase energy for services starting in this window, joules.
    pub energy: PhaseEnergy,
    /// Fault events delivered in this window.
    pub faults: u64,
}

impl Window {
    fn empty() -> Self {
        Window {
            arrivals: 0,
            completions: 0,
            responses: LogHistogram::response_times(),
            depth_sum: 0,
            depth_samples: 0,
            depth_max: 0,
            phase: ServiceBreakdown::default(),
            energy: PhaseEnergy::default(),
            faults: 0,
        }
    }

    /// Merges `other` into this window (used by coarsening; exact).
    pub fn merge(&mut self, other: &Window) {
        self.arrivals += other.arrivals;
        self.completions += other.completions;
        self.responses.merge(&other.responses);
        self.depth_sum += other.depth_sum;
        self.depth_samples += other.depth_samples;
        self.depth_max = self.depth_max.max(other.depth_max);
        self.phase.accumulate(&other.phase);
        self.energy.accumulate(&other.energy);
        self.faults += other.faults;
    }

    /// Mean sampled queue depth; zero when nothing was sampled.
    pub fn queue_avg(&self) -> f64 {
        if self.depth_samples == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.depth_samples as f64
        }
    }

    /// Whether nothing at all was observed in this window.
    pub fn is_empty(&self) -> bool {
        self.arrivals == 0
            && self.completions == 0
            && self.depth_samples == 0
            && self.faults == 0
            && self.phase.total() == 0.0
    }
}

/// A tracer that aggregates the request stream into fixed sim-time
/// windows, with bounded memory via pairwise coarsening.
///
/// Attribution rules (documented because they are schema): arrivals and
/// faults land in the window of their event time; per-phase service time
/// and energy land in the window where the service *started*; response
/// times land in the window of *completion* (so a long-starved request
/// shows up late, where the latency was actually felt).
///
/// # Examples
///
/// ```
/// use storage_sim::{ConstantDevice, Driver, FifoScheduler, IoKind, Request,
///                   SimTime, Telemetry, VecWorkload};
///
/// let reqs = (0..10)
///     .map(|i| Request::new(i, SimTime::from_ms(i as f64 * 2.0), i * 64, 8, IoKind::Read))
///     .collect();
/// let mut driver = Driver::new(
///     VecWorkload::new(reqs),
///     FifoScheduler::new(),
///     ConstantDevice::new(10_000, 0.001),
/// )
/// .with_tracer(Telemetry::new(0.005, 64));
/// driver.run();
/// let tel = driver.tracer();
/// let total: u64 = tel.windows().iter().map(|w| w.completions).sum();
/// assert_eq!(total, 10);
/// assert!(tel.windows().len() <= 64);
/// ```
#[derive(Debug, Clone)]
pub struct Telemetry {
    window_secs: f64,
    max_windows: usize,
    windows: Vec<Window>,
    coarsenings: u32,
}

impl Telemetry {
    /// Creates a telemetry series with `window_secs`-wide buckets and at
    /// most `max_windows` retained windows. When simulated time outgrows
    /// the budget, adjacent windows merge pairwise and the width doubles
    /// (deterministically — the trigger is sim-time, never wall-clock).
    ///
    /// # Panics
    ///
    /// Panics if `window_secs` is not positive and finite, or
    /// `max_windows < 2` (coarsening needs at least a pair).
    pub fn new(window_secs: f64, max_windows: usize) -> Self {
        assert!(
            window_secs > 0.0 && window_secs.is_finite(),
            "window width must be positive and finite"
        );
        assert!(max_windows >= 2, "need at least two windows to coarsen");
        Telemetry {
            window_secs,
            max_windows,
            windows: Vec::new(),
            coarsenings: 0,
        }
    }

    /// Current window width, seconds (doubles on every coarsening).
    pub fn window_secs(&self) -> f64 {
        self.window_secs
    }

    /// How many times the series has coarsened.
    pub fn coarsenings(&self) -> u32 {
        self.coarsenings
    }

    /// The recorded windows, oldest first. Interior windows with no
    /// activity are present (and empty), so the timeline has no gaps.
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// `[start, end)` bounds of window `i`, seconds.
    pub fn window_bounds(&self, i: usize) -> (f64, f64) {
        (
            self.window_secs * i as f64,
            self.window_secs * (i + 1) as f64,
        )
    }

    fn at(&mut self, t: SimTime) -> &mut Window {
        let mut idx = (t.as_secs() / self.window_secs) as usize;
        while idx >= self.max_windows {
            self.coarsen();
            idx = (t.as_secs() / self.window_secs) as usize;
        }
        if idx >= self.windows.len() {
            self.windows.resize_with(idx + 1, Window::empty);
        }
        &mut self.windows[idx]
    }

    /// Coarsens the series until its window width reaches `target_width`.
    ///
    /// This is the alignment half of the fleet merge API: per-station
    /// series that coarsened a different number of times (stations see
    /// different event densities) are brought to a common width before
    /// window-wise merging. Coarsening is the same exact pairwise merge
    /// the memory bound uses, so counts, sums, and histogram bins are
    /// preserved bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `target_width` is not the current width times a
    /// non-negative power of two — anything else cannot be reached by
    /// pairwise merging and would silently misalign windows.
    pub fn coarsen_to(&mut self, target_width: f64) {
        assert!(
            target_width >= self.window_secs,
            "cannot refine a coarsened series ({} -> {target_width})",
            self.window_secs
        );
        while self.window_secs < target_width {
            self.coarsen();
        }
        assert!(
            self.window_secs == target_width,
            "target width {target_width} is not a power-of-two multiple of \
             the base width (reached {})",
            self.window_secs
        );
    }

    /// Merges another series into this one, window-by-window. Both series
    /// must share the same window width (align with
    /// [`Telemetry::coarsen_to`] first); window `i` of `other` folds into
    /// window `i` of `self` via the exact [`Window::merge`]. The window
    /// budget grows if `other` is longer, so merging never triggers a
    /// coarsening of its own.
    ///
    /// # Panics
    ///
    /// Panics if the window widths differ.
    pub fn merge_from(&mut self, other: &Telemetry) {
        assert!(
            self.window_secs == other.window_secs,
            "merge requires equal window widths ({} vs {})",
            self.window_secs,
            other.window_secs
        );
        if other.windows.len() > self.windows.len() {
            self.windows.resize_with(other.windows.len(), Window::empty);
            self.max_windows = self.max_windows.max(self.windows.len());
        }
        for (mine, theirs) in self.windows.iter_mut().zip(&other.windows) {
            mine.merge(theirs);
        }
    }

    fn coarsen(&mut self) {
        let mut merged = Vec::with_capacity(self.windows.len().div_ceil(2));
        for pair in self.windows.chunks(2) {
            let mut w = pair[0].clone();
            if let Some(second) = pair.get(1) {
                w.merge(second);
            }
            merged.push(w);
        }
        self.windows = merged;
        self.window_secs *= 2.0;
        self.coarsenings += 1;
    }

    /// The CSV column header matching [`Telemetry::csv_rows`]. Utilization
    /// columns are phase-seconds divided by window width; `energy_w` is
    /// joules per window divided by width (watts); response quantiles come
    /// from the log histogram (within one bin, ~12 %, of exact).
    pub fn csv_header() -> &'static str {
        "cell,window,start_s,end_s,arrivals,completions,throughput_rps,\
         resp_mean_ms,resp_p50_ms,resp_p95_ms,resp_p99_ms,queue_avg,queue_max,\
         util_seek_x,util_settle,util_seek_y,util_rotation,util_transfer,\
         util_turnaround,util_fault_recovery,util_background_wait,energy_w,faults"
    }

    /// The series as CSV rows (no header), one line per window, each
    /// prefixed with `cell` so several runs can share one file. Purely
    /// sim-time derived: byte-stable across hosts and reruns.
    pub fn csv_rows(&self, cell: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.windows.len() * 160);
        let width = self.window_secs;
        for (i, w) in self.windows.iter().enumerate() {
            let (start, end) = self.window_bounds(i);
            let _ = writeln!(
                out,
                "{cell},{i},{start:.3},{end:.3},{},{},{:.2},{:.3},{:.3},{:.3},{:.3},{:.3},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{}",
                w.arrivals,
                w.completions,
                w.completions as f64 / width,
                w.responses.mean() * 1e3,
                w.responses.quantile(0.50) * 1e3,
                w.responses.quantile(0.95) * 1e3,
                w.responses.quantile(0.99) * 1e3,
                w.queue_avg(),
                w.depth_max,
                w.phase.seek_x / width,
                w.phase.settle / width,
                w.phase.seek_y / width,
                w.phase.rotation / width,
                w.phase.transfer / width,
                w.phase.turnaround / width,
                w.phase.fault_recovery / width,
                w.phase.background_wait / width,
                w.energy.total() / width,
                w.faults,
            );
        }
        out
    }
}

impl Tracer for Telemetry {
    const ENABLED: bool = true;

    fn on_arrival(&mut self, _req: &Request, now: SimTime, _queue_depth: usize) {
        self.at(now).arrivals += 1;
    }

    fn on_service(
        &mut self,
        _req: &Request,
        start: SimTime,
        breakdown: &ServiceBreakdown,
        energy: &PhaseEnergy,
    ) {
        let w = self.at(start);
        w.phase.accumulate(breakdown);
        w.energy.accumulate(energy);
    }

    fn on_complete(&mut self, c: &Completion) {
        let response = c.response_time().as_secs();
        let w = self.at(c.completion);
        w.completions += 1;
        w.responses.push(response);
    }

    fn on_queue_depth(&mut self, now: SimTime, depth: usize) {
        let w = self.at(now);
        w.depth_sum += depth as u64;
        w.depth_samples += 1;
        w.depth_max = w.depth_max.max(depth);
    }

    fn on_fault(&mut self, _fault: &FaultKind, now: SimTime) {
        self.at(now).faults += 1;
    }
}

/// Runs two tracers side by side; the driver instruments for the union of
/// their needs (`ENABLED`/`PROFILE` are OR'd at compile time). Use this to
/// record an event ring *and* a telemetry timeline in one run.
///
/// # Examples
///
/// ```
/// use storage_sim::{ConstantDevice, Driver, FifoScheduler, IoKind, Request,
///                   RingTracer, SimTime, Telemetry, TracerPair, VecWorkload};
///
/// let reqs = vec![Request::new(0, SimTime::ZERO, 0, 8, IoKind::Read)];
/// let mut driver = Driver::new(
///     VecWorkload::new(reqs),
///     FifoScheduler::new(),
///     ConstantDevice::new(1_000, 0.001),
/// )
/// .with_tracer(TracerPair::new(RingTracer::new(64), Telemetry::new(0.01, 16)));
/// driver.run();
/// let pair = driver.tracer();
/// assert_eq!(pair.first.counters().completions, 1);
/// assert_eq!(pair.second.windows().iter().map(|w| w.completions).sum::<u64>(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TracerPair<A, B> {
    /// The first component tracer.
    pub first: A,
    /// The second component tracer.
    pub second: B,
}

impl<A: Tracer, B: Tracer> TracerPair<A, B> {
    /// Pairs two tracers.
    pub fn new(first: A, second: B) -> Self {
        TracerPair { first, second }
    }
}

impl<A: Tracer, B: Tracer> Tracer for TracerPair<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;
    const PROFILE: bool = A::PROFILE || B::PROFILE;

    fn on_arrival(&mut self, req: &Request, now: SimTime, queue_depth: usize) {
        self.first.on_arrival(req, now, queue_depth);
        self.second.on_arrival(req, now, queue_depth);
    }

    fn on_pick(&mut self, req: &Request, now: SimTime, queue_depth: usize, candidates: u64) {
        self.first.on_pick(req, now, queue_depth, candidates);
        self.second.on_pick(req, now, queue_depth, candidates);
    }

    fn on_service(
        &mut self,
        req: &Request,
        start: SimTime,
        breakdown: &ServiceBreakdown,
        energy: &PhaseEnergy,
    ) {
        self.first.on_service(req, start, breakdown, energy);
        self.second.on_service(req, start, breakdown, energy);
    }

    fn on_complete(&mut self, completion: &Completion) {
        self.first.on_complete(completion);
        self.second.on_complete(completion);
    }

    fn on_queue_depth(&mut self, now: SimTime, depth: usize) {
        self.first.on_queue_depth(now, depth);
        self.second.on_queue_depth(now, depth);
    }

    fn on_fault(&mut self, fault: &FaultKind, now: SimTime) {
        self.first.on_fault(fault, now);
        self.second.on_fault(fault, now);
    }

    fn on_scope(&mut self, scope: ProfScope, wall_nanos: u64) {
        self.first.on_scope(scope, wall_nanos);
        self.second.on_scope(scope, wall_nanos);
    }

    fn on_run_wall(&mut self, events: u64, wall_nanos: u64) {
        self.first.on_run_wall(events, wall_nanos);
        self.second.on_run_wall(events, wall_nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::IoKind;

    fn complete_at(id: u64, t_ms: f64, response_ms: f64) -> Completion {
        let start = SimTime::from_ms(t_ms - response_ms);
        Completion {
            request: Request::new(id, start, 0, 8, IoKind::Read),
            start_service: start,
            completion: SimTime::from_ms(t_ms),
        }
    }

    #[test]
    fn events_land_in_their_windows() {
        let mut t = Telemetry::new(0.010, 64); // 10 ms windows
        t.on_arrival(
            &Request::new(0, SimTime::ZERO, 0, 8, IoKind::Read),
            SimTime::from_ms(3.0),
            1,
        );
        t.on_arrival(
            &Request::new(1, SimTime::ZERO, 0, 8, IoKind::Read),
            SimTime::from_ms(14.0),
            1,
        );
        t.on_complete(&complete_at(0, 9.0, 2.0));
        t.on_complete(&complete_at(1, 25.0, 4.0));
        t.on_fault(&FaultKind::TransientSeekError, SimTime::from_ms(21.0));
        let w = t.windows();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].arrivals, 1);
        assert_eq!(w[1].arrivals, 1);
        assert_eq!(w[0].completions, 1);
        assert_eq!(w[2].completions, 1);
        assert_eq!(w[2].faults, 1);
        assert!((w[2].responses.mean() - 4e-3).abs() < 1e-12);
        assert_eq!(t.window_bounds(1), (0.010, 0.020));
    }

    #[test]
    fn coarsening_bounds_memory_and_preserves_totals() {
        let mut t = Telemetry::new(0.001, 8);
        // 100 completions spread over 100 ms force several coarsenings.
        for i in 0..100u64 {
            t.on_complete(&complete_at(i, i as f64, 0.5));
            t.on_queue_depth(SimTime::from_ms(i as f64), (i % 5) as usize);
        }
        assert!(t.windows().len() <= 8, "window budget is a hard cap");
        assert!(t.coarsenings() >= 4, "0.001 → ≥0.016 s windows");
        assert_eq!(t.window_secs(), 0.001 * 2f64.powi(t.coarsenings() as i32));
        let completions: u64 = t.windows().iter().map(|w| w.completions).sum();
        let samples: u64 = t.windows().iter().map(|w| w.depth_samples).sum();
        assert_eq!(completions, 100, "coarsening loses no counts");
        assert_eq!(samples, 100);
        let max_depth = t.windows().iter().map(|w| w.depth_max).max().unwrap();
        assert_eq!(max_depth, 4);
    }

    #[test]
    fn csv_rows_are_stable_and_match_header_arity() {
        let mut t = Telemetry::new(0.010, 16);
        t.on_complete(&complete_at(0, 5.0, 1.0));
        let header_cols = Telemetry::csv_header().split(',').count();
        let rows = t.csv_rows("cellA");
        let first = rows.lines().next().unwrap();
        assert_eq!(first.split(',').count(), header_cols);
        assert!(first.starts_with("cellA,0,0.000,0.010,0,1,100.00,1.000,"));
        // Deterministic: same inputs, same bytes.
        assert_eq!(rows, t.csv_rows("cellA"));
    }

    #[test]
    fn pair_forwards_to_both() {
        use crate::tracer::{NoopTracer, RingTracer};
        let mut pair = TracerPair::new(RingTracer::new(8), Telemetry::new(0.01, 8));
        pair.on_complete(&complete_at(0, 5.0, 1.0));
        assert_eq!(pair.first.counters().completions, 1);
        assert_eq!(pair.second.windows()[0].completions, 1);
        const {
            assert!(TracerPair::<RingTracer, Telemetry>::ENABLED);
            assert!(!TracerPair::<NoopTracer, NoopTracer>::ENABLED);
            assert!(!TracerPair::<RingTracer, Telemetry>::PROFILE);
        }
    }

    #[test]
    #[should_panic(expected = "two windows")]
    fn tiny_window_budget_rejected() {
        let _ = Telemetry::new(0.01, 1);
    }

    #[test]
    fn coarsen_to_aligns_and_preserves_totals() {
        let mut t = Telemetry::new(0.001, 256);
        for i in 0..40u64 {
            t.on_complete(&complete_at(i, i as f64, 0.2));
        }
        let before: u64 = t.windows().iter().map(|w| w.completions).sum();
        t.coarsen_to(0.008); // 0.001 * 2^3
        assert_eq!(t.window_secs(), 0.008);
        let after: u64 = t.windows().iter().map(|w| w.completions).sum();
        assert_eq!(before, after);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn coarsen_to_rejects_unreachable_width() {
        let mut t = Telemetry::new(0.001, 16);
        t.coarsen_to(0.003);
    }

    #[test]
    fn merge_from_is_window_wise_and_exact() {
        let mut a = Telemetry::new(0.010, 16);
        let mut b = Telemetry::new(0.010, 16);
        a.on_complete(&complete_at(0, 5.0, 1.0));
        b.on_complete(&complete_at(1, 5.0, 3.0));
        b.on_complete(&complete_at(2, 25.0, 2.0));
        b.on_fault(&FaultKind::TransientSeekError, SimTime::from_ms(25.0));
        a.merge_from(&b);
        assert_eq!(a.windows().len(), 3);
        assert_eq!(a.windows()[0].completions, 2);
        assert_eq!(a.windows()[2].completions, 1);
        assert_eq!(a.windows()[2].faults, 1);
        assert!((a.windows()[0].responses.mean() - 2e-3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal window widths")]
    fn merge_from_rejects_width_mismatch() {
        let mut a = Telemetry::new(0.010, 16);
        let b = Telemetry::new(0.020, 16);
        a.merge_from(&b);
    }
}
