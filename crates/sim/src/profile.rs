//! Simulator self-profiling: where does the *simulator* spend wall-clock
//! time?
//!
//! The roadmap's "as fast as the hardware allows" goal needs data, not
//! guesses: is a run bound by scheduler picks (positioning solves, memo
//! lookups), by device service computation, or by the event loop itself?
//! [`Profiler`] is a [`Tracer`] that answers this with wall-clock scoped
//! timers the driver wraps around its hot components. The timers are gated
//! on [`Tracer::PROFILE`], which defaults to `false` — a [`NoopTracer`] or
//! [`crate::RingTracer`] build compiles every `Instant::now()` call out,
//! exactly like the `ENABLED` gate on the trace hooks.
//!
//! Wall-clock numbers are inherently nondeterministic, so profile output is
//! informational only — never part of a byte-gated golden. Crucially, the
//! timers read the host clock but never feed anything back into the
//! simulation, so a profiled run's *simulated* results remain bit-identical
//! to an unprofiled run (asserted by the telemetry equivalence tests).
//!
//! [`Tracer`]: crate::tracer::Tracer
//! [`NoopTracer`]: crate::tracer::NoopTracer

use std::fmt::Write as _;

use crate::tracer::Tracer;

/// A driver component wrapped in a wall-clock scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfScope {
    /// One scheduler `pick` call — includes every positioning-time query
    /// (and seek-table memo lookup) the scheduler issues while scoring
    /// candidates.
    SchedPick,
    /// One device `service` call (kinematic solves and state advance).
    DeviceService,
    /// One fault delivery (`on_fault` on the device).
    FaultDelivery,
    /// One event-queue `push` (calendar bucket insert or heap sift-up).
    EventPush,
    /// One event-queue `pop` (bucket scan or heap sift-down).
    EventPop,
    /// One slab insertion parking in-flight request state.
    SlabAlloc,
    /// One slab removal redeeming a slot handle.
    SlabFree,
    /// One fleet barrier: the engine waiting for every shard worker to
    /// advance its stations to the epoch-grid barrier time.
    BarrierWait,
    /// One fleet cross-shard merge: draining per-station completions,
    /// stable-sorting the batch, and feeding the stripe assembler.
    FleetMerge,
}

impl ProfScope {
    /// Stable snake_case label used in the profile JSON.
    pub fn label(&self) -> &'static str {
        match self {
            ProfScope::SchedPick => "sched_pick",
            ProfScope::DeviceService => "device_service",
            ProfScope::FaultDelivery => "fault_delivery",
            ProfScope::EventPush => "event_push",
            ProfScope::EventPop => "event_pop",
            ProfScope::SlabAlloc => "slab_alloc",
            ProfScope::SlabFree => "slab_free",
            ProfScope::BarrierWait => "barrier_wait",
            ProfScope::FleetMerge => "fleet_merge",
        }
    }
}

/// Accumulated wall-clock statistics for one scope.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScopeStats {
    /// Times the scope was entered.
    pub calls: u64,
    /// Total wall-clock nanoseconds spent inside the scope.
    pub nanos: u64,
    /// Longest single call, nanoseconds.
    pub max_nanos: u64,
}

impl ScopeStats {
    /// Folds one timed call into the stats (public so layers above the
    /// driver — e.g. the fleet engine — can reuse the same accumulator).
    pub fn record(&mut self, nanos: u64) {
        self.calls += 1;
        self.nanos += nanos;
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Total seconds spent inside the scope.
    pub fn seconds(&self) -> f64 {
        self.nanos as f64 * 1e-9
    }
}

/// A tracer that accumulates the driver's wall-clock scope timings.
///
/// # Examples
///
/// ```
/// use storage_sim::{ConstantDevice, Driver, FifoScheduler, IoKind, Profiler,
///                   Request, SimTime, VecWorkload};
///
/// let reqs = vec![Request::new(0, SimTime::ZERO, 0, 8, IoKind::Read)];
/// let mut driver = Driver::new(
///     VecWorkload::new(reqs),
///     FifoScheduler::new(),
///     ConstantDevice::new(1_000, 0.001),
/// )
/// .with_tracer(Profiler::new());
/// let report = driver.run();
/// let prof = driver.tracer();
/// assert_eq!(report.completed, 1);
/// assert!(prof.events() >= 2, "arrival + completion events");
/// assert!(prof.run_nanos() > 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    sched_pick: ScopeStats,
    device_service: ScopeStats,
    fault_delivery: ScopeStats,
    event_push: ScopeStats,
    event_pop: ScopeStats,
    slab_alloc: ScopeStats,
    slab_free: ScopeStats,
    barrier_wait: ScopeStats,
    fleet_merge: ScopeStats,
    events: u64,
    run_nanos: u64,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Statistics for one scope.
    pub fn scope(&self, scope: ProfScope) -> ScopeStats {
        match scope {
            ProfScope::SchedPick => self.sched_pick,
            ProfScope::DeviceService => self.device_service,
            ProfScope::FaultDelivery => self.fault_delivery,
            ProfScope::EventPush => self.event_push,
            ProfScope::EventPop => self.event_pop,
            ProfScope::SlabAlloc => self.slab_alloc,
            ProfScope::SlabFree => self.slab_free,
            ProfScope::BarrierWait => self.barrier_wait,
            ProfScope::FleetMerge => self.fleet_merge,
        }
    }

    /// Simulation events processed (arrivals + completions + faults).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total wall-clock nanoseconds of the event loop (`Driver::run`).
    pub fn run_nanos(&self) -> u64 {
        self.run_nanos
    }

    /// Events processed per wall-clock second; zero before a run.
    pub fn events_per_sec(&self) -> f64 {
        if self.run_nanos == 0 {
            0.0
        } else {
            self.events as f64 / (self.run_nanos as f64 * 1e-9)
        }
    }

    /// The profile as one pretty-printed JSON object. `cache` optionally
    /// carries the device's seek-time memo-table `(hits, misses)` counters
    /// so cache effectiveness lands next to the time it saves.
    ///
    /// Wall-clock derived and therefore nondeterministic: informational
    /// artifacts only, never a byte-gated golden.
    pub fn profile_json(&self, cache: Option<(u64, u64)>) -> String {
        let wall = self.run_nanos as f64 * 1e-9;
        let mut s = String::with_capacity(1024);
        let _ = write!(
            s,
            "{{\n  \"events\": {},\n  \"wall_seconds\": {:.6},\n  \"events_per_sec\": {:.1},\n  \"scopes\": {{\n",
            self.events,
            wall,
            self.events_per_sec()
        );
        let scopes = [
            ProfScope::SchedPick,
            ProfScope::DeviceService,
            ProfScope::FaultDelivery,
            ProfScope::EventPush,
            ProfScope::EventPop,
            ProfScope::SlabAlloc,
            ProfScope::SlabFree,
            ProfScope::BarrierWait,
            ProfScope::FleetMerge,
        ];
        let mut attributed = 0.0;
        for (i, sc) in scopes.iter().enumerate() {
            let st = self.scope(*sc);
            attributed += st.seconds();
            let share = if wall > 0.0 { st.seconds() / wall } else { 0.0 };
            let _ = writeln!(
                s,
                "    \"{}\": {{ \"calls\": {}, \"seconds\": {:.6}, \"max_us\": {:.3}, \"share_of_wall\": {:.4} }}{}",
                sc.label(),
                st.calls,
                st.seconds(),
                st.max_nanos as f64 * 1e-3,
                share,
                if i + 1 < scopes.len() { "," } else { "" }
            );
        }
        let _ = write!(
            s,
            "  }},\n  \"event_loop_other_seconds\": {:.6}",
            (wall - attributed).max(0.0)
        );
        if let Some((hits, misses)) = cache {
            let total = hits + misses;
            let rate = if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            };
            let _ = write!(
                s,
                ",\n  \"seek_cache\": {{ \"hits\": {hits}, \"misses\": {misses}, \"hit_rate\": {rate:.4} }}"
            );
        }
        s.push_str("\n}\n");
        s
    }
}

impl Tracer for Profiler {
    const ENABLED: bool = true;
    const PROFILE: bool = true;

    fn on_scope(&mut self, scope: ProfScope, wall_nanos: u64) {
        match scope {
            ProfScope::SchedPick => self.sched_pick.record(wall_nanos),
            ProfScope::DeviceService => self.device_service.record(wall_nanos),
            ProfScope::FaultDelivery => self.fault_delivery.record(wall_nanos),
            ProfScope::EventPush => self.event_push.record(wall_nanos),
            ProfScope::EventPop => self.event_pop.record(wall_nanos),
            ProfScope::SlabAlloc => self.slab_alloc.record(wall_nanos),
            ProfScope::SlabFree => self.slab_free.record(wall_nanos),
            ProfScope::BarrierWait => self.barrier_wait.record(wall_nanos),
            ProfScope::FleetMerge => self.fleet_merge.record(wall_nanos),
        }
    }

    fn on_run_wall(&mut self, events: u64, wall_nanos: u64) {
        // Accumulate so a profiler reused across cells reports totals.
        self.events += events;
        self.run_nanos += wall_nanos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_accumulate_and_share_adds_up() {
        let mut p = Profiler::new();
        p.on_scope(ProfScope::SchedPick, 100);
        p.on_scope(ProfScope::SchedPick, 300);
        p.on_scope(ProfScope::DeviceService, 600);
        p.on_run_wall(10, 2_000);
        let pick = p.scope(ProfScope::SchedPick);
        assert_eq!(pick.calls, 2);
        assert_eq!(pick.nanos, 400);
        assert_eq!(pick.max_nanos, 300);
        assert_eq!(p.events(), 10);
        assert!((p.events_per_sec() - 10.0 / 2e-6).abs() < 1e-6);
        p.on_scope(ProfScope::EventPush, 50);
        p.on_scope(ProfScope::EventPop, 60);
        p.on_scope(ProfScope::SlabAlloc, 20);
        p.on_scope(ProfScope::SlabFree, 10);
        let json = p.profile_json(Some((7, 3)));
        assert!(json.contains("\"sched_pick\": { \"calls\": 2"));
        assert!(json.contains("\"event_push\": { \"calls\": 1"));
        assert!(json.contains("\"event_pop\": { \"calls\": 1"));
        assert!(json.contains("\"slab_alloc\": { \"calls\": 1"));
        assert!(json.contains("\"slab_free\": { \"calls\": 1"));
        assert!(json.contains("\"hit_rate\": 0.7000"));
        assert!(json.contains("\"events\": 10"));
    }

    #[test]
    fn empty_profile_is_benign() {
        let p = Profiler::new();
        assert_eq!(p.events_per_sec(), 0.0);
        let json = p.profile_json(None);
        assert!(json.contains("\"events\": 0"));
        assert!(!json.contains("seek_cache"));
    }
}
