//! The simulation driver: couples a workload, a scheduler, and a device.
//!
//! The driver runs the classic open-queueing storage simulation: requests
//! arrive from the workload, wait in the scheduler's pending set while the
//! device is busy, and each time the device goes idle the scheduler elects
//! the next request given the device's mechanical state (this is where
//! SPTF's positioning-time oracle gets consulted). One device, one
//! outstanding request — the configuration used throughout the paper.

use std::time::Instant;

use crate::device::{ServiceBreakdown, StorageDevice};
use crate::event::EventQueue;
use crate::fault::{FaultClock, FaultKind};
use crate::profile::ProfScope;
use crate::request::{Completion, Request};
use crate::sched::{SchedCounters, Scheduler};
use crate::stats::{ResponseStats, Welford};
use crate::time::SimTime;
use crate::tracer::{NoopTracer, Tracer};
use crate::workload::Workload;

/// Aggregated results of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Number of completed requests (after warm-up exclusion).
    pub completed: u64,
    /// Simulated time of the last completion.
    pub makespan: SimTime,
    /// Response time (queue + service) statistics, in seconds.
    pub response: ResponseStats,
    /// Queue-time statistics, in seconds.
    pub queue_time: Welford,
    /// Service-time statistics, in seconds.
    pub service_time: Welford,
    /// Sum of per-request service components (divide by `completed` for means).
    pub breakdown_sum: ServiceBreakdown,
    /// Total time the device spent servicing requests, in seconds.
    pub busy_secs: f64,
    /// Time-averaged number of requests in the scheduler queue.
    pub mean_queue_depth: f64,
    /// Largest queue depth observed.
    pub max_queue_depth: usize,
    /// Fault events delivered to the device during the run.
    pub fault_events: u64,
    /// Every completion, in completion order (only if recording was enabled).
    pub completions: Option<Vec<Completion>>,
}

impl SimReport {
    /// Device utilization over the makespan: busy time / total time.
    pub fn utilization(&self) -> f64 {
        let span = self.makespan.as_secs();
        if span > 0.0 {
            self.busy_secs / span
        } else {
            0.0
        }
    }

    /// Mean service time in milliseconds.
    pub fn mean_service_ms(&self) -> f64 {
        self.service_time.mean() * 1e3
    }
}

enum Ev {
    Arrival(Request),
    Complete(Completion),
    Fault(FaultKind),
}

/// Couples a [`Workload`], a [`Scheduler`], and a [`StorageDevice`] and
/// runs the workload to exhaustion.
///
/// The driver is generic over a [`Tracer`]; the default [`NoopTracer`]
/// compiles every observation hook to nothing, so an untraced driver is
/// exactly the pre-observability driver (asserted bit-identical by test).
/// Attach a recording tracer with [`Driver::with_tracer`].
///
/// # Examples
///
/// ```
/// use storage_sim::{ConstantDevice, Driver, FifoScheduler, IoKind, Request, SimTime,
///                   VecWorkload};
///
/// let reqs = vec![
///     Request::new(0, SimTime::ZERO, 0, 8, IoKind::Read),
///     Request::new(1, SimTime::ZERO, 64, 8, IoKind::Read),
/// ];
/// let report = Driver::new(
///     VecWorkload::new(reqs),
///     FifoScheduler::new(),
///     ConstantDevice::new(1_000, 0.001),
/// )
/// .run();
/// // Second request queues behind the first: responses are 1 ms and 2 ms.
/// assert!((report.response.mean_ms() - 1.5).abs() < 1e-9);
/// ```
pub struct Driver<W, S, D, T = NoopTracer> {
    workload: W,
    scheduler: S,
    device: D,
    tracer: T,
    faults: FaultClock,
    warmup_requests: u64,
    record_completions: bool,
}

impl<W: Workload, S: Scheduler, D: StorageDevice> Driver<W, S, D, NoopTracer> {
    /// Creates an untraced driver with no warm-up exclusion and completion
    /// recording disabled.
    pub fn new(workload: W, scheduler: S, device: D) -> Self {
        Driver {
            workload,
            scheduler,
            device,
            tracer: NoopTracer,
            faults: FaultClock::empty(),
            warmup_requests: 0,
            record_completions: false,
        }
    }
}

impl<W: Workload, S: Scheduler, D: StorageDevice, T: Tracer> Driver<W, S, D, T> {
    /// Replaces the tracer, rebinding the driver to the new tracer type.
    /// Typically called right after [`Driver::new`] to attach a
    /// [`crate::RingTracer`].
    pub fn with_tracer<T2: Tracer>(self, tracer: T2) -> Driver<W, S, D, T2> {
        Driver {
            workload: self.workload,
            scheduler: self.scheduler,
            device: self.device,
            tracer,
            faults: self.faults,
            warmup_requests: self.warmup_requests,
            record_completions: self.record_completions,
        }
    }

    /// Attaches a schedule of fault events. Each fault is delivered to the
    /// device via [`StorageDevice::on_fault`] as a first-class simulation
    /// event at its scheduled time; an empty clock (the default) schedules
    /// nothing, leaving the fault-free event sequence bit-identical.
    pub fn with_faults(mut self, faults: FaultClock) -> Self {
        self.faults = faults;
        self
    }

    /// Excludes the first `n` completed requests from the statistics.
    pub fn warmup_requests(mut self, n: u64) -> Self {
        self.warmup_requests = n;
        self
    }

    /// Retains every [`Completion`] in the report.
    pub fn record_completions(mut self, yes: bool) -> Self {
        self.record_completions = yes;
        self
    }

    /// Returns a reference to the device (e.g. to inspect energy state
    /// after [`Driver::run`]).
    pub fn device(&self) -> &D {
        &self.device
    }

    /// Returns a reference to the tracer (e.g. to export a
    /// [`crate::RingTracer`]'s events after [`Driver::run`]).
    pub fn tracer(&self) -> &T {
        &self.tracer
    }

    /// Runs the workload to exhaustion and returns the aggregated report.
    ///
    /// # Panics
    ///
    /// Panics if the workload yields decreasing arrival times.
    pub fn run(&mut self) -> SimReport {
        // One outstanding arrival plus one completion is the steady state;
        // pre-size generously so the heap never reallocates mid-run.
        let mut events: EventQueue<Ev> = EventQueue::with_capacity(16);
        let mut report = SimReport {
            completed: 0,
            makespan: SimTime::ZERO,
            response: ResponseStats::new(),
            queue_time: Welford::new(),
            service_time: Welford::new(),
            breakdown_sum: ServiceBreakdown::default(),
            busy_secs: 0.0,
            mean_queue_depth: 0.0,
            max_queue_depth: 0,
            fault_events: 0,
            completions: if self.record_completions {
                Some(Vec::new())
            } else {
                None
            },
        };

        let mut last_arrival = match self.workload.next_request() {
            Some(first) => {
                let at = first.arrival;
                events.push(at, Ev::Arrival(first));
                at
            }
            None => return report,
        };

        // Faults enter the heap one at a time (the clock is already time-
        // ordered); each delivery schedules its successor, exactly like the
        // workload's arrival chain. An empty clock pushes nothing, so the
        // fault-free event sequence is untouched.
        if let Some(fault) = self.faults.pop() {
            events.push(fault.at, Ev::Fault(fault.kind));
        }

        let mut device_busy = false;
        let mut completed_total: u64 = 0;
        let mut depth_integral = 0.0; // ∫ queue_depth dt
        let mut last_event_time = SimTime::ZERO;
        // Wall-clock self-profiling: reads the host clock but never feeds
        // anything back into the simulation, so simulated results are
        // identical with or without it.
        let run_start = if T::PROFILE {
            Some(Instant::now())
        } else {
            None
        };
        let mut event_count: u64 = 0;

        while let Some(event) = events.pop() {
            let now = event.at;
            if T::PROFILE {
                event_count += 1;
            }
            depth_integral += self.scheduler.len() as f64 * (now - last_event_time).as_secs();
            last_event_time = now;
            if T::ENABLED {
                self.tracer.on_queue_depth(now, self.scheduler.len());
            }

            match event.payload {
                Ev::Arrival(req) => {
                    self.scheduler.enqueue(req);
                    if T::ENABLED {
                        self.tracer.on_arrival(&req, now, self.scheduler.len());
                    }
                    report.max_queue_depth = report.max_queue_depth.max(self.scheduler.len());
                    if let Some(next) = self.workload.next_request() {
                        assert!(
                            next.arrival >= last_arrival,
                            "workload arrival times must be non-decreasing"
                        );
                        last_arrival = next.arrival;
                        events.push(next.arrival, Ev::Arrival(next));
                    }
                    if !device_busy {
                        device_busy = self.start_next(now, &mut events, &mut report);
                    }
                }
                Ev::Complete(completion) => {
                    completed_total += 1;
                    if completed_total > self.warmup_requests {
                        report.completed += 1;
                        report.response.push(completion.response_time().as_secs());
                        report.queue_time.push(completion.queue_time().as_secs());
                        report
                            .service_time
                            .push(completion.service_time().as_secs());
                    }
                    report.makespan = report.makespan.max(completion.completion);
                    if T::ENABLED {
                        self.tracer.on_complete(&completion);
                    }
                    if let Some(all) = report.completions.as_mut() {
                        all.push(completion);
                    }
                    device_busy = self.start_next(now, &mut events, &mut report);
                }
                Ev::Fault(kind) => {
                    // Faults never preempt: the device absorbs the state
                    // change now and applies it from its next service call.
                    let t0 = if T::PROFILE {
                        Some(Instant::now())
                    } else {
                        None
                    };
                    self.device.on_fault(&kind, now);
                    if let Some(t0) = t0 {
                        self.tracer
                            .on_scope(ProfScope::FaultDelivery, t0.elapsed().as_nanos() as u64);
                    }
                    report.fault_events += 1;
                    if T::ENABLED {
                        self.tracer.on_fault(&kind, now);
                    }
                    if let Some(next) = self.faults.pop() {
                        events.push(next.at, Ev::Fault(next.kind));
                    }
                }
            }
        }

        if let Some(run_start) = run_start {
            self.tracer
                .on_run_wall(event_count, run_start.elapsed().as_nanos() as u64);
        }

        let span = report.makespan.as_secs();
        report.mean_queue_depth = if span > 0.0 {
            depth_integral / span
        } else {
            0.0
        };
        report
    }

    /// Starts servicing the scheduler's next pick at `now`, if any.
    /// Returns whether the device is now busy.
    fn start_next(
        &mut self,
        now: SimTime,
        events: &mut EventQueue<Ev>,
        report: &mut SimReport,
    ) -> bool {
        let depth_before = if T::ENABLED { self.scheduler.len() } else { 0 };
        let counters_before = if T::ENABLED {
            self.scheduler.counters()
        } else {
            SchedCounters::default()
        };
        let pick_t0 = if T::PROFILE {
            Some(Instant::now())
        } else {
            None
        };
        let picked = self.scheduler.pick(&self.device, now);
        if let Some(t0) = pick_t0 {
            self.tracer
                .on_scope(ProfScope::SchedPick, t0.elapsed().as_nanos() as u64);
        }
        match picked {
            Some(req) => {
                if T::ENABLED {
                    let examined = self
                        .scheduler
                        .counters()
                        .candidates_examined
                        .saturating_sub(counters_before.candidates_examined);
                    self.tracer.on_pick(&req, now, depth_before, examined);
                }
                let svc_t0 = if T::PROFILE {
                    Some(Instant::now())
                } else {
                    None
                };
                let breakdown = self.device.service(&req, now);
                if let Some(t0) = svc_t0 {
                    self.tracer
                        .on_scope(ProfScope::DeviceService, t0.elapsed().as_nanos() as u64);
                }
                if T::ENABLED {
                    let energy = self.device.phase_energy(&breakdown);
                    self.tracer.on_service(&req, now, &breakdown, &energy);
                }
                let total = breakdown.total_time();
                report.breakdown_sum.accumulate(&breakdown);
                report.busy_secs += breakdown.total();
                let completion = Completion {
                    request: req,
                    start_service: now,
                    completion: now + total,
                };
                events.push(completion.completion, Ev::Complete(completion));
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::ConstantDevice;
    use crate::request::IoKind;
    use crate::sched::FifoScheduler;
    use crate::workload::VecWorkload;

    fn req(id: u64, at_ms: f64, lbn: u64) -> Request {
        Request::new(id, SimTime::from_ms(at_ms), lbn, 8, IoKind::Read)
    }

    #[test]
    fn empty_workload_yields_empty_report() {
        let mut d = Driver::new(
            VecWorkload::new(vec![]),
            FifoScheduler::new(),
            ConstantDevice::new(100, 1e-3),
        );
        let r = d.run();
        assert_eq!(r.completed, 0);
        assert_eq!(r.makespan, SimTime::ZERO);
    }

    #[test]
    fn sequential_requests_have_service_only_response() {
        // Requests spaced wider than the service time never queue.
        let reqs = vec![req(0, 0.0, 0), req(1, 10.0, 8), req(2, 20.0, 16)];
        let mut d = Driver::new(
            VecWorkload::new(reqs),
            FifoScheduler::new(),
            ConstantDevice::new(100, 1e-3),
        );
        let r = d.run();
        assert_eq!(r.completed, 3);
        assert!((r.response.mean_ms() - 1.0).abs() < 1e-9);
        assert_eq!(r.queue_time.mean(), 0.0);
        assert!((r.makespan.as_ms() - 21.0).abs() < 1e-9);
    }

    #[test]
    fn simultaneous_arrivals_queue_fifo() {
        let reqs = vec![req(0, 0.0, 0), req(1, 0.0, 8), req(2, 0.0, 16)];
        let mut d = Driver::new(
            VecWorkload::new(reqs),
            FifoScheduler::new(),
            ConstantDevice::new(100, 1e-3),
        )
        .record_completions(true);
        let r = d.run();
        let completions = r.completions.as_ref().unwrap();
        assert_eq!(completions.len(), 3);
        // FIFO: response times 1, 2, 3 ms.
        for (i, c) in completions.iter().enumerate() {
            assert!((c.response_time().as_ms() - (i as f64 + 1.0)).abs() < 1e-9);
            assert_eq!(c.request.id, i as u64);
        }
        assert!((r.response.mean_ms() - 2.0).abs() < 1e-9);
        // The first request starts service immediately, so at most two
        // requests are ever waiting in the queue.
        assert_eq!(r.max_queue_depth, 2);
    }

    #[test]
    fn warmup_excludes_leading_requests() {
        let reqs = vec![req(0, 0.0, 0), req(1, 0.0, 8), req(2, 0.0, 16)];
        let mut d = Driver::new(
            VecWorkload::new(reqs),
            FifoScheduler::new(),
            ConstantDevice::new(100, 1e-3),
        )
        .warmup_requests(2);
        let r = d.run();
        assert_eq!(r.completed, 1);
        assert!((r.response.mean_ms() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn traced_run_matches_untraced_run_exactly() {
        use crate::tracer::RingTracer;
        let reqs = vec![req(0, 0.0, 0), req(1, 0.5, 8), req(2, 0.6, 16)];
        let plain = Driver::new(
            VecWorkload::new(reqs.clone()),
            FifoScheduler::new(),
            ConstantDevice::new(100, 1e-3),
        )
        .run();
        let mut traced_driver = Driver::new(
            VecWorkload::new(reqs),
            FifoScheduler::new(),
            ConstantDevice::new(100, 1e-3),
        )
        .with_tracer(RingTracer::new(64));
        let traced = traced_driver.run();
        assert_eq!(plain.completed, traced.completed);
        assert_eq!(plain.makespan, traced.makespan);
        assert_eq!(plain.response.mean(), traced.response.mean());
        assert_eq!(plain.busy_secs, traced.busy_secs);
        let t = traced_driver.tracer();
        assert_eq!(t.counters().arrivals, 3);
        assert_eq!(t.counters().picks, 3);
        assert_eq!(t.counters().completions, 3);
    }

    #[test]
    fn faults_are_delivered_in_order_and_counted() {
        use crate::fault::{FaultClock, FaultEvent};

        /// Constant device that logs every fault delivered to it.
        struct Probe {
            inner: ConstantDevice,
            seen: Vec<(f64, FaultKind)>,
        }
        impl crate::device::PositionOracle for Probe {
            fn position_time(&self, req: &Request, now: SimTime) -> f64 {
                self.inner.position_time(req, now)
            }
        }
        impl StorageDevice for Probe {
            fn name(&self) -> &str {
                self.inner.name()
            }
            fn capacity_lbns(&self) -> u64 {
                self.inner.capacity_lbns()
            }
            fn service(&mut self, req: &Request, now: SimTime) -> ServiceBreakdown {
                self.inner.service(req, now)
            }
            fn reset(&mut self) {
                self.inner.reset();
            }
            fn on_fault(&mut self, fault: &FaultKind, now: SimTime) {
                self.seen.push((now.as_secs(), *fault));
            }
        }

        let reqs = vec![req(0, 0.0, 0), req(1, 5.0, 8)];
        let clock = FaultClock::from_events(vec![
            FaultEvent {
                at: SimTime::from_ms(4.0),
                kind: FaultKind::TransientSeekError,
            },
            FaultEvent {
                at: SimTime::from_ms(2.0),
                kind: FaultKind::TipFailure { tip: 3 },
            },
        ]);
        let mut d = Driver::new(
            VecWorkload::new(reqs),
            FifoScheduler::new(),
            Probe {
                inner: ConstantDevice::new(100, 1e-3),
                seen: Vec::new(),
            },
        )
        .with_faults(clock);
        let r = d.run();
        assert_eq!(r.fault_events, 2);
        assert_eq!(r.completed, 2);
        let seen = &d.device().seen;
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], (2.0e-3, FaultKind::TipFailure { tip: 3 }));
        assert_eq!(seen[1], (4.0e-3, FaultKind::TransientSeekError));
    }

    #[test]
    fn empty_fault_clock_is_bit_identical_to_no_clock() {
        let reqs = vec![req(0, 0.0, 0), req(1, 0.5, 8), req(2, 0.6, 16)];
        let plain = Driver::new(
            VecWorkload::new(reqs.clone()),
            FifoScheduler::new(),
            ConstantDevice::new(100, 1e-3),
        )
        .record_completions(true)
        .run();
        let clocked = Driver::new(
            VecWorkload::new(reqs),
            FifoScheduler::new(),
            ConstantDevice::new(100, 1e-3),
        )
        .with_faults(crate::fault::FaultClock::empty())
        .record_completions(true)
        .run();
        assert_eq!(plain.fault_events, 0);
        assert_eq!(clocked.fault_events, 0);
        assert_eq!(plain.makespan, clocked.makespan);
        assert_eq!(plain.response.mean(), clocked.response.mean());
        assert_eq!(plain.busy_secs, clocked.busy_secs);
        let (a, b) = (
            plain.completions.as_ref().unwrap(),
            clocked.completions.as_ref().unwrap(),
        );
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.request.id, y.request.id);
            assert_eq!(x.start_service, y.start_service);
            assert_eq!(x.completion, y.completion);
        }
    }

    #[test]
    fn utilization_is_busy_fraction() {
        let reqs = vec![req(0, 0.0, 0), req(1, 1.0, 8)];
        let mut d = Driver::new(
            VecWorkload::new(reqs),
            FifoScheduler::new(),
            ConstantDevice::new(100, 1e-3),
        );
        let r = d.run();
        // Busy 2 ms of a 2 ms makespan... second request arrives at 1 ms,
        // so makespan = 2 ms and busy = 2 ms, utilization 1.0.
        assert!((r.utilization() - 1.0).abs() < 1e-9);
        assert!((r.busy_secs - 2e-3).abs() < 1e-12);
    }
}
